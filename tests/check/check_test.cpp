#include "check/checkers.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "check/scenario.hpp"

namespace nowlb::check {
namespace {

// ---- checker unit tests: synthetic event streams, no simulation ----

TEST(WorkConservation, BalancedTransferPasses) {
  InvariantSet set;
  auto& c = set.add(std::make_unique<WorkConservationChecker>());
  (void)c;
  set.on_units_packed(10, /*from=*/0, /*to=*/1, /*ordered=*/5, /*actual=*/3);
  set.on_units_unpacked(20, /*rank=*/1, /*from=*/0, /*ordered=*/5,
                        /*actual=*/3);
  set.on_run_end(30);
  EXPECT_TRUE(set.ok()) << set.report();
}

TEST(WorkConservation, LostTransferFailsAtRunEnd) {
  InvariantSet set;
  set.add(std::make_unique<WorkConservationChecker>());
  set.on_units_packed(10, 0, 1, 5, 5);
  set.on_run_end(30);  // never unpacked
  ASSERT_FALSE(set.ok());
  EXPECT_EQ(set.failures()[0].checker, "conservation");
}

TEST(WorkConservation, UnpackWithoutPackFails) {
  InvariantSet set;
  set.add(std::make_unique<WorkConservationChecker>());
  set.on_units_unpacked(10, 1, 0, 5, 5);
  ASSERT_FALSE(set.ok());
}

TEST(WorkConservation, UnitCountMismatchFails) {
  InvariantSet set;
  set.add(std::make_unique<WorkConservationChecker>());
  set.on_units_packed(10, 0, 1, 5, 5);
  set.on_units_unpacked(20, 1, 0, 5, 4);  // one unit vanished on the wire
  ASSERT_FALSE(set.ok());
}

TEST(WorkConservation, PlanMustRedistributeExactly) {
  InvariantSet set;
  set.add(std::make_unique<WorkConservationChecker>());
  lb::Decision d;
  d.target = {3, 4};  // 7 planned...
  set.on_master_decision(5, d, {4, 4});  // ...of 8 reported
  ASSERT_FALSE(set.ok());
}

TEST(Contiguity, NonAdjacentTransferFails) {
  InvariantSet set;
  set.add(std::make_unique<ContiguityChecker>(4));
  lb::Decision d;
  d.move = true;
  d.target = {1, 1, 1, 1};
  d.transfers = {{0, 2, 1}};  // skips rank 1
  set.on_master_decision(5, d, {2, 1, 0, 1});
  ASSERT_FALSE(set.ok());
  EXPECT_EQ(set.failures()[0].checker, "contiguity");
}

TEST(Contiguity, GapAtStablePointFails) {
  InvariantSet set;
  set.add(std::make_unique<ContiguityChecker>(2));
  set.on_slice_added(0, 3);
  set.on_slice_added(0, 5);  // hole at 4
  set.on_run_end(10);
  ASSERT_FALSE(set.ok());
}

TEST(Contiguity, AdjacentBlocksPass) {
  InvariantSet set;
  set.add(std::make_unique<ContiguityChecker>(2));
  set.on_slice_added(0, 0);
  set.on_slice_added(0, 1);
  set.on_slice_added(1, 2);
  set.on_slice_added(1, 3);
  set.on_run_end(10);
  EXPECT_TRUE(set.ok()) << set.report();
}

TEST(PipelineLag, InstructionRoundMustMatchLag) {
  InvariantSet set;
  set.add(std::make_unique<PipelineLagChecker>(/*lag=*/1));
  std::vector<lb::StatusReport> reports(1);
  reports[0].round = 1;
  set.on_master_reports(5, 1, reports, {true});
  lb::Instructions ins;
  ins.round = 1;  // pipelined master must label these round 2
  set.on_master_instructions(6, 0, ins);
  ASSERT_FALSE(set.ok());
  EXPECT_EQ(set.failures()[0].checker, "pipeline");
}

TEST(PipelineLag, SlaveRoundsMustBeConsecutive) {
  InvariantSet set;
  set.add(std::make_unique<PipelineLagChecker>(0));
  lb::StatusReport rep;
  rep.round = 1;
  set.on_slave_report(5, 0, rep);
  rep.round = 3;  // skipped round 2
  set.on_slave_report(6, 0, rep);
  ASSERT_FALSE(set.ok());
}

TEST(SliceOwnership, DuplicateAddFails) {
  InvariantSet set;
  set.add(std::make_unique<SliceOwnershipChecker>());
  set.on_slice_added(0, 7);
  set.on_slice_added(1, 7);  // two owners for slice 7
  ASSERT_FALSE(set.ok());
  EXPECT_EQ(set.failures()[0].checker, "ownership");
}

TEST(SliceOwnership, MoveAndCoverageAccountedFor) {
  InvariantSet set;
  set.add(std::make_unique<SliceOwnershipChecker>(/*expected_total=*/2));
  set.on_slice_added(0, 0);
  set.on_slice_added(0, 1);
  set.on_slice_removed(0, 1);
  set.on_slice_added(1, 1);  // clean handoff
  set.on_run_end(3);
  EXPECT_TRUE(set.ok()) << set.report();
}

TEST(SliceOwnership, SliceLostInFlightFails) {
  InvariantSet set;
  set.add(std::make_unique<SliceOwnershipChecker>(2));
  set.on_slice_added(0, 0);
  set.on_slice_added(0, 1);
  set.on_slice_removed(0, 1);  // never re-added anywhere
  set.on_run_end(3);
  ASSERT_FALSE(set.ok());
}

// ---- end-to-end: scenarios through the real simulation ----

TEST(Scenario, CleanSeedsPassAllCheckers) {
  for (App app : {App::kMm, App::kSor, App::kLu}) {
    const Scenario sc = generate_scenario(1, app);
    const FuzzResult res = run_scenario(sc);
    EXPECT_TRUE(res.ok) << sc.describe() << "\nfailures:\n"
                        << res.failures.size();
  }
}

TEST(Scenario, RunIsDeterministic) {
  const Scenario sc = generate_scenario(3, App::kSor);
  const FuzzResult a = run_scenario(sc);
  const FuzzResult b = run_scenario(sc);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);
}

TEST(Scenario, InstrumentationDoesNotPerturbTiming) {
  // A checker-free run must dispatch the identical event trace: the
  // invariant layer is purely observational.
  const Scenario sc = generate_scenario(2, App::kMm);
  const FuzzResult with_checkers = run_scenario(sc);
  // run_scenario always attaches checkers; equality of two instrumented
  // runs plus the fuzzer's 0-failure sweeps pin the observational claim.
  const FuzzResult again = run_scenario(sc);
  EXPECT_EQ(with_checkers.trace_hash, again.trace_hash);
}

// Deliberately breaking an invariant must produce a deterministic failure
// naming the offending checker (the ISSUE's negative acceptance test).
TEST(Scenario, SkipCreditFaultIsDetected) {
  // The fault needs a seed whose run actually moves work; scan a few per
  // app until one detects.
  bool detected = false;
  for (std::uint64_t seed = 1; seed <= 10 && !detected; ++seed) {
    for (App app : {App::kMm, App::kSor, App::kLu}) {
      const Scenario sc = generate_scenario(seed, app);
      const FuzzResult res =
          run_scenario(sc, InvariantSet::Fault::kSkipCredit);
      for (const Failure& f : res.failures) {
        if (f.checker == "conservation") detected = true;
      }
    }
  }
  EXPECT_TRUE(detected);
}

TEST(Scenario, WrongRoundFaultIsDetected) {
  bool detected = false;
  for (std::uint64_t seed = 1; seed <= 5 && !detected; ++seed) {
    const Scenario sc = generate_scenario(seed, App::kSor);
    const FuzzResult res = run_scenario(sc, InvariantSet::Fault::kWrongRound);
    for (const Failure& f : res.failures) {
      if (f.checker == "pipeline") detected = true;
    }
  }
  EXPECT_TRUE(detected);
}

TEST(Scenario, GeneratorIsSeedStable) {
  const Scenario a = generate_scenario(17, App::kLu);
  const Scenario b = generate_scenario(17, App::kLu);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.time_bound, b.time_bound);
  const Scenario c = generate_scenario(18, App::kLu);
  EXPECT_NE(a.describe(), c.describe());
}

}  // namespace
}  // namespace nowlb::check
