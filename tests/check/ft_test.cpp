// End-to-end fault-tolerance tests through the scenario harness: message
// loss survived by the transport, a mid-run crash survived by eviction +
// orphan recovery, and the bit-identical guarantee when faults are off.
#include <gtest/gtest.h>

#include "check/scenario.hpp"

namespace nowlb::check {
namespace {

FaultPlan lossy_plan() {
  FaultPlan p;
  p.drop_rate = 0.05;
  p.dup_rate = 0.02;
  p.reorder_delay = 500 * sim::kMicrosecond;
  return p;
}

TEST(FaultTolerance, FaultsOffLeavesTheTraceBitIdentical) {
  // apply_fault_plan with an empty plan must not perturb anything; the
  // scenario itself must also replay identically run over run.
  Scenario plain = generate_scenario(3, App::kMm);
  Scenario planned = generate_scenario(3, App::kMm);
  apply_fault_plan(planned, FaultPlan{});
  const FuzzResult a = run_scenario(plain);
  const FuzzResult b = run_scenario(planned);
  EXPECT_TRUE(a.ok) << plain.describe();
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);
}

TEST(FaultTolerance, LossySweepCompletesCorrectly) {
  for (const App app : {App::kMm, App::kSor, App::kLu}) {
    Scenario sc = generate_scenario(11, app);
    apply_fault_plan(sc, lossy_plan());
    const FuzzResult res = run_scenario(sc);
    EXPECT_TRUE(res.ok) << sc.describe() << "\n"
                        << (res.failures.empty()
                                ? ""
                                : res.failures.front().message);
  }
}

TEST(FaultTolerance, CrashIsDetectedAndRecovered) {
  FaultPlan plan = lossy_plan();
  plan.kill_rank = 1;
  plan.kill_round = 3;
  Scenario sc = generate_scenario(7, App::kMm);
  apply_fault_plan(sc, plan);
  ASSERT_GE(sc.slaves, 2);  // the plan guarantees a survivor
  const FuzzResult res = run_scenario(sc);
  EXPECT_TRUE(res.ok) << sc.describe() << "\n"
                      << (res.failures.empty() ? ""
                                               : res.failures.front().message);
}

TEST(FaultTolerance, CrashRunsAreDeterministic) {
  FaultPlan plan = lossy_plan();
  plan.kill_rank = 0;
  plan.kill_round = 2;
  auto run_once = [&] {
    Scenario sc = generate_scenario(5, App::kMm);
    apply_fault_plan(sc, plan);
    return run_scenario(sc);
  };
  const FuzzResult a = run_once();
  const FuzzResult b = run_once();
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

TEST(FaultTolerance, KillPlanIsDroppedForAppsWithoutRecovery) {
  // SOR's ghost chain has no crash-recovery path: the kill is dropped but
  // the message-level faults stay armed.
  FaultPlan plan = lossy_plan();
  plan.kill_rank = 1;
  Scenario sc = generate_scenario(9, App::kSor);
  apply_fault_plan(sc, plan);
  EXPECT_LT(sc.faults.kill_rank, 0);
  EXPECT_GT(sc.world.net.drop_prob, 0.0);
  EXPECT_TRUE(sc.lb.transport.enabled);
}

}  // namespace
}  // namespace nowlb::check
