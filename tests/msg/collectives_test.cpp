#include "msg/collectives.hpp"

#include <gtest/gtest.h>

#include "msg/serialize.hpp"
#include "sim/world.hpp"

namespace nowlb::msg {
namespace {

using sim::Bytes;
using sim::Context;
using sim::Pid;
using sim::Task;
using sim::World;

Bytes payload_of(int v) {
  Writer w;
  w.put(v);
  return w.take();
}

int value_of(const Bytes& b) {
  Reader r(b);
  return r.get<int>();
}

class CollectivesTest : public ::testing::Test {
 protected:
  // Spawn `n` processes on distinct hosts running `body(ctx, rank)`.
  template <typename Body>
  std::vector<Pid> spawn_group(World& w, int n, Body body) {
    std::vector<Pid> pids;
    for (int i = 0; i < n; ++i) {
      auto& h = w.add_host();
      pids.push_back(w.spawn(h, "p" + std::to_string(i),
                             [body, i](Context& ctx) -> Task<> {
                               co_await body(ctx, i);
                             }));
    }
    return pids;
  }
};

TEST_F(CollectivesTest, BroadcastDeliversToAll) {
  World w;
  std::vector<int> got(4, -1);
  std::vector<Pid> group{0, 1, 2, 3};
  auto body = [&](Context& ctx, int rank) -> Task<> {
    Bytes mine = rank == 2 ? payload_of(77) : Bytes{};
    Bytes result = co_await broadcast(ctx, group, /*root=*/2, 42, mine);
    got[rank] = value_of(result);
  };
  spawn_group(w, 4, body);
  w.run();
  EXPECT_EQ(got, (std::vector<int>{77, 77, 77, 77}));
}

TEST_F(CollectivesTest, GatherCollectsInRankOrder) {
  World w;
  std::vector<int> collected;
  std::vector<Pid> group{0, 1, 2};
  auto body = [&](Context& ctx, int rank) -> Task<> {
    auto all = co_await gather(ctx, group, /*root=*/0, 43,
                               payload_of(rank * 10));
    if (rank == 0) {
      for (const auto& b : all) collected.push_back(value_of(b));
    }
  };
  spawn_group(w, 3, body);
  w.run();
  EXPECT_EQ(collected, (std::vector<int>{0, 10, 20}));
}

TEST_F(CollectivesTest, BarrierSynchronizes) {
  World w;
  std::vector<sim::Time> release_times(3, -1);
  std::vector<Pid> group{0, 1, 2};
  auto body = [&](Context& ctx, int rank) -> Task<> {
    // Each rank computes a different amount before the barrier.
    co_await ctx.compute((rank + 1) * 100 * sim::kMillisecond);
    co_await barrier(ctx, group, /*coordinator=*/0, 44);
    release_times[rank] = ctx.now();
  };
  spawn_group(w, 3, body);
  w.run();
  // No rank is released before the slowest (300 ms) has arrived.
  for (auto t : release_times) EXPECT_GE(t, 300 * sim::kMillisecond);
}

TEST_F(CollectivesTest, GatherRejectsOutsiders) {
  World w;
  std::vector<Pid> group{0, 1};
  // pid 2 sends a stray message with the gather tag to the root.
  auto body0 = [&](Context& ctx) -> Task<> {
    EXPECT_THROW(
        {
          auto all = co_await gather(ctx, group, 0, 45, payload_of(0));
          (void)all;
        },
        CheckFailure);
  };
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  auto& h2 = w.add_host();
  w.spawn(h0, "root", [&](Context& ctx) -> Task<> { co_await body0(ctx); });
  w.spawn(h1, "member", [](Context& ctx) -> Task<> {
    co_await ctx.sleep(10 * sim::kSecond);  // stays silent
    co_return;
  }, /*essential=*/false);
  w.spawn(h2, "outsider", [](Context& ctx) -> Task<> {
    Writer wtr;
    wtr.put(99);
    co_await ctx.send(0, 45, wtr.take());
  });
  w.run();
}

}  // namespace
}  // namespace nowlb::msg
