#include "msg/serialize.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "lb/protocol.hpp"
#include "util/rng.hpp"

namespace nowlb::msg {
namespace {

using nowlb::Rng;

TEST(Serialize, PodRoundtrip) {
  Writer w;
  w.put<std::int32_t>(-7).put<double>(3.25).put<std::uint8_t>(255);
  Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.get<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 255);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, StringRoundtrip) {
  Writer w;
  w.put(std::string("hello world")).put(std::string(""));
  Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VectorRoundtrip) {
  Writer w;
  std::vector<double> v{1.5, -2.5, 0.0};
  w.put_vec(v);
  w.put_vec(std::vector<int>{});
  Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.get_vec<double>(), v);
  EXPECT_TRUE(r.get_vec<int>().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, NestedBytes) {
  Writer inner;
  inner.put<int>(42);
  Writer outer;
  outer.put_bytes(inner.take());
  Bytes b = outer.take();
  Reader r(b);
  Bytes extracted = r.get_bytes();
  Reader r2(extracted);
  EXPECT_EQ(r2.get<int>(), 42);
}

TEST(Serialize, TruncatedPayloadThrows) {
  Writer w;
  w.put<std::int64_t>(1);
  Bytes b = w.take();
  b.resize(4);  // cut in half
  Reader r(b);
  EXPECT_THROW(r.get<std::int64_t>(), CheckFailure);
}

TEST(Serialize, TruncatedVectorThrows) {
  Writer w;
  w.put_vec(std::vector<double>{1, 2, 3});
  Bytes b = w.take();
  b.resize(b.size() - 8);
  Reader r(b);
  EXPECT_THROW(r.get_vec<double>(), CheckFailure);
}

TEST(Serialize, StatusReportRoundtrip) {
  lb::StatusReport s;
  s.round = 12;
  s.units_done = 34.5;
  s.elapsed_s = 1.75;
  s.remaining = 99;
  s.lb_blocked_s = 0.002;
  s.move_time_s = 0.125;
  s.moved_units = 8;
  auto b = encode(s);
  auto out = decode<lb::StatusReport>(b);
  EXPECT_EQ(out.round, 12);
  EXPECT_DOUBLE_EQ(out.units_done, 34.5);
  EXPECT_DOUBLE_EQ(out.elapsed_s, 1.75);
  EXPECT_EQ(out.remaining, 99);
  EXPECT_DOUBLE_EQ(out.lb_blocked_s, 0.002);
  EXPECT_DOUBLE_EQ(out.move_time_s, 0.125);
  EXPECT_EQ(out.moved_units, 8);
}

TEST(Serialize, InstructionsRoundtrip) {
  lb::Instructions ins;
  ins.round = 3;
  ins.phase_done = 1;
  ins.units_until_next = 17.25;
  ins.orders = {{2, 5, 1}, {0, 3, 0}};
  auto b = encode(ins);
  auto out = decode<lb::Instructions>(b);
  EXPECT_EQ(out.round, 3);
  EXPECT_EQ(out.phase_done, 1);
  EXPECT_DOUBLE_EQ(out.units_until_next, 17.25);
  ASSERT_EQ(out.orders.size(), 2u);
  EXPECT_EQ(out.orders[0].peer_rank, 2);
  EXPECT_EQ(out.orders[0].count, 5);
  EXPECT_EQ(out.orders[0].is_send, 1);
  EXPECT_EQ(out.orders[1].peer_rank, 0);
  EXPECT_EQ(out.orders[1].is_send, 0);
}

// ---- randomized round-trip properties over every protocol message ----

double random_double(Rng& rng) {
  // Mix ordinary magnitudes with exact-bit-pattern extremes (the wire
  // format must preserve doubles bit-for-bit, not just approximately).
  switch (rng.below(4)) {
    case 0:
      return rng.uniform(-1e6, 1e6);
    case 1:
      return rng.uniform(-1e-300, 1e-300);  // subnormal territory
    case 2:
      return std::numeric_limits<double>::max() * rng.uniform(-1.0, 1.0);
    default:
      return static_cast<double>(rng.next_u64()) * 1e-3;
  }
}

std::int32_t random_i32(Rng& rng) {
  switch (rng.below(3)) {
    case 0:
      return static_cast<std::int32_t>(rng.below(1000));
    case 1:
      return std::numeric_limits<std::int32_t>::max() -
             static_cast<std::int32_t>(rng.below(2));
    default:
      return std::numeric_limits<std::int32_t>::min() +
             static_cast<std::int32_t>(rng.below(2));
  }
}

TEST(Serialize, StatusReportRandomizedRoundtrip) {
  Rng rng(101);
  for (int iter = 0; iter < 500; ++iter) {
    lb::StatusReport s;
    s.round = random_i32(rng);
    s.units_done = random_double(rng);
    s.elapsed_s = random_double(rng);
    s.remaining = random_i32(rng);
    s.lb_blocked_s = random_double(rng);
    s.move_time_s = random_double(rng);
    s.moved_units = random_i32(rng);
    s.done = static_cast<std::uint8_t>(rng.below(256));
    const auto out = decode<lb::StatusReport>(encode(s));
    EXPECT_EQ(out.round, s.round);
    EXPECT_EQ(out.units_done, s.units_done);
    EXPECT_EQ(out.elapsed_s, s.elapsed_s);
    EXPECT_EQ(out.remaining, s.remaining);
    EXPECT_EQ(out.lb_blocked_s, s.lb_blocked_s);
    EXPECT_EQ(out.move_time_s, s.move_time_s);
    EXPECT_EQ(out.moved_units, s.moved_units);
    EXPECT_EQ(out.done, s.done);
  }
}

TEST(Serialize, MoveOrderRandomizedRoundtrip) {
  Rng rng(102);
  for (int iter = 0; iter < 500; ++iter) {
    lb::MoveOrder m;
    m.peer_rank = random_i32(rng);
    m.count = random_i32(rng);
    m.is_send = static_cast<std::uint8_t>(rng.below(256));
    Writer w;
    m.encode(w);
    const Bytes b = w.take();
    Reader r(b);
    const auto out = lb::MoveOrder::decode(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(out.peer_rank, m.peer_rank);
    EXPECT_EQ(out.count, m.count);
    EXPECT_EQ(out.is_send, m.is_send);
  }
}

TEST(Serialize, InstructionsRandomizedRoundtrip) {
  Rng rng(103);
  for (int iter = 0; iter < 300; ++iter) {
    lb::Instructions ins;
    ins.round = random_i32(rng);
    ins.phase_done = static_cast<std::uint8_t>(rng.below(2));
    ins.units_until_next = random_double(rng);
    const int norders = static_cast<int>(rng.below(17));  // includes empty
    for (int i = 0; i < norders; ++i) {
      ins.orders.push_back({random_i32(rng), random_i32(rng),
                            static_cast<std::uint8_t>(rng.below(2))});
    }
    const auto out = decode<lb::Instructions>(encode(ins));
    EXPECT_EQ(out.round, ins.round);
    EXPECT_EQ(out.phase_done, ins.phase_done);
    EXPECT_EQ(out.units_until_next, ins.units_until_next);
    ASSERT_EQ(out.orders.size(), ins.orders.size());
    for (std::size_t i = 0; i < ins.orders.size(); ++i) {
      EXPECT_EQ(out.orders[i].peer_rank, ins.orders[i].peer_rank);
      EXPECT_EQ(out.orders[i].count, ins.orders[i].count);
      EXPECT_EQ(out.orders[i].is_send, ins.orders[i].is_send);
    }
  }
}

}  // namespace
}  // namespace nowlb::msg
