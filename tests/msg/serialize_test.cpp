#include "msg/serialize.hpp"

#include <gtest/gtest.h>

#include "lb/protocol.hpp"

namespace nowlb::msg {
namespace {

TEST(Serialize, PodRoundtrip) {
  Writer w;
  w.put<std::int32_t>(-7).put<double>(3.25).put<std::uint8_t>(255);
  Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.get<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 255);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, StringRoundtrip) {
  Writer w;
  w.put(std::string("hello world")).put(std::string(""));
  Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VectorRoundtrip) {
  Writer w;
  std::vector<double> v{1.5, -2.5, 0.0};
  w.put_vec(v);
  w.put_vec(std::vector<int>{});
  Bytes b = w.take();
  Reader r(b);
  EXPECT_EQ(r.get_vec<double>(), v);
  EXPECT_TRUE(r.get_vec<int>().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, NestedBytes) {
  Writer inner;
  inner.put<int>(42);
  Writer outer;
  outer.put_bytes(inner.take());
  Bytes b = outer.take();
  Reader r(b);
  Bytes extracted = r.get_bytes();
  Reader r2(extracted);
  EXPECT_EQ(r2.get<int>(), 42);
}

TEST(Serialize, TruncatedPayloadThrows) {
  Writer w;
  w.put<std::int64_t>(1);
  Bytes b = w.take();
  b.resize(4);  // cut in half
  Reader r(b);
  EXPECT_THROW(r.get<std::int64_t>(), CheckFailure);
}

TEST(Serialize, TruncatedVectorThrows) {
  Writer w;
  w.put_vec(std::vector<double>{1, 2, 3});
  Bytes b = w.take();
  b.resize(b.size() - 8);
  Reader r(b);
  EXPECT_THROW(r.get_vec<double>(), CheckFailure);
}

TEST(Serialize, StatusReportRoundtrip) {
  lb::StatusReport s;
  s.round = 12;
  s.units_done = 34.5;
  s.elapsed_s = 1.75;
  s.remaining = 99;
  s.lb_blocked_s = 0.002;
  s.move_time_s = 0.125;
  s.moved_units = 8;
  auto b = encode(s);
  auto out = decode<lb::StatusReport>(b);
  EXPECT_EQ(out.round, 12);
  EXPECT_DOUBLE_EQ(out.units_done, 34.5);
  EXPECT_DOUBLE_EQ(out.elapsed_s, 1.75);
  EXPECT_EQ(out.remaining, 99);
  EXPECT_DOUBLE_EQ(out.lb_blocked_s, 0.002);
  EXPECT_DOUBLE_EQ(out.move_time_s, 0.125);
  EXPECT_EQ(out.moved_units, 8);
}

TEST(Serialize, InstructionsRoundtrip) {
  lb::Instructions ins;
  ins.round = 3;
  ins.phase_done = 1;
  ins.units_until_next = 17.25;
  ins.orders = {{2, 5, 1}, {0, 3, 0}};
  auto b = encode(ins);
  auto out = decode<lb::Instructions>(b);
  EXPECT_EQ(out.round, 3);
  EXPECT_EQ(out.phase_done, 1);
  EXPECT_DOUBLE_EQ(out.units_until_next, 17.25);
  ASSERT_EQ(out.orders.size(), 2u);
  EXPECT_EQ(out.orders[0].peer_rank, 2);
  EXPECT_EQ(out.orders[0].count, 5);
  EXPECT_EQ(out.orders[0].is_send, 1);
  EXPECT_EQ(out.orders[1].peer_rank, 0);
  EXPECT_EQ(out.orders[1].is_send, 0);
}

}  // namespace
}  // namespace nowlb::msg
