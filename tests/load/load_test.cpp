// Load generator tests: each generator consumes the expected CPU share.
#include <gtest/gtest.h>

#include "load/generators.hpp"
#include "sim/world.hpp"

namespace nowlb::load {
namespace {

using sim::kMillisecond;
using sim::kSecond;

double cpu_share_after(sim::ProcessBody body, sim::Time horizon) {
  sim::World w;
  auto& h = w.add_host();
  const sim::Pid pid = w.spawn(h, "load", std::move(body), /*essential=*/false);
  w.run_until(horizon);
  return sim::to_seconds(w.cpu_used(pid)) / sim::to_seconds(horizon);
}

TEST(Load, ConstantUsesAllCpuWhenAlone) {
  EXPECT_NEAR(cpu_share_after(constant(), 10 * kSecond), 1.0, 0.02);
}

TEST(Load, OscillatingUsesDutyCycle) {
  // 10 s on / 10 s off -> ~50% over long horizons.
  EXPECT_NEAR(cpu_share_after(oscillating(20 * kSecond, 10 * kSecond),
                              100 * kSecond),
              0.5, 0.05);
}

TEST(Load, OscillatingInitialDelayShiftsPhase) {
  sim::World w;
  auto& h = w.add_host();
  const sim::Pid pid = w.spawn(
      h, "load", oscillating(20 * kSecond, 10 * kSecond, 5 * kSecond),
      /*essential=*/false);
  w.run_until(5 * kSecond);
  EXPECT_EQ(w.cpu_used(pid), 0);  // still in the initial delay
  w.run_until(10 * kSecond);
  EXPECT_GT(w.cpu_used(pid), 4 * kSecond);
}

TEST(Load, RampGrowsOverTime) {
  sim::World w;
  auto& h = w.add_host();
  const sim::Pid pid =
      w.spawn(h, "load", ramp(100 * kSecond), /*essential=*/false);
  w.run_until(10 * kSecond);
  const double early = sim::to_seconds(w.cpu_used(pid));
  w.run_until(100 * kSecond);
  const double total = sim::to_seconds(w.cpu_used(pid));
  // Early share is small; the average over the whole ramp is ~50%.
  EXPECT_LT(early / 10.0, 0.15);
  EXPECT_NEAR(total / 100.0, 0.5, 0.1);
}

TEST(Load, RandomBurstsStayWithinBounds) {
  const double share = cpu_share_after(
      random_bursts(kSecond, 5 * kSecond, kSecond, 5 * kSecond),
      200 * kSecond);
  EXPECT_GT(share, 0.25);
  EXPECT_LT(share, 0.75);
}

TEST(Load, CompetingLoadHalvesAWorkersRate) {
  sim::World w;
  auto& h = w.add_host();
  sim::Time done = 0;
  w.spawn(h, "worker", [&](sim::Context& ctx) -> sim::Task<> {
    co_await ctx.compute(10 * kSecond);
    done = ctx.now();
  });
  w.spawn(h, "load", constant(), /*essential=*/false);
  w.run();
  EXPECT_NEAR(sim::to_seconds(done), 20.0, 0.5);
}

}  // namespace
}  // namespace nowlb::load
