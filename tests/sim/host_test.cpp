// Host scheduler tests: quantum slicing, fairness, CPU accounting.
#include "sim/host.hpp"

#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace nowlb::sim {
namespace {

WorldConfig fast_config() {
  WorldConfig cfg;
  cfg.host.quantum = 10 * kMillisecond;
  cfg.host.context_switch = 0;
  return cfg;
}

TEST(Host, SingleProcessRunsUninterrupted) {
  World w(fast_config());
  auto& h = w.add_host();
  Time finished = -1;
  w.spawn(h, "p", [&](Context& ctx) -> Task<> {
    co_await ctx.compute(35 * kMillisecond);
    finished = ctx.now();
  });
  w.run();
  EXPECT_EQ(finished, 35 * kMillisecond);
  EXPECT_EQ(w.cpu_used(0), 35 * kMillisecond);
}

TEST(Host, TwoEqualProcessesShareCpuFairly) {
  World w(fast_config());
  auto& h = w.add_host();
  Time done_a = -1, done_b = -1;
  w.spawn(h, "a", [&](Context& ctx) -> Task<> {
    co_await ctx.compute(50 * kMillisecond);
    done_a = ctx.now();
  });
  w.spawn(h, "b", [&](Context& ctx) -> Task<> {
    co_await ctx.compute(50 * kMillisecond);
    done_b = ctx.now();
  });
  w.run();
  // Interleaved in 10ms quanta: total 100ms of work; both finish near the
  // end, within one quantum of each other.
  EXPECT_EQ(std::max(done_a, done_b), 100 * kMillisecond);
  EXPECT_GE(std::min(done_a, done_b), 90 * kMillisecond);
  EXPECT_EQ(w.cpu_used(0), 50 * kMillisecond);
  EXPECT_EQ(w.cpu_used(1), 50 * kMillisecond);
}

TEST(Host, CompetingLoadHalvesRate) {
  World w(fast_config());
  auto& h = w.add_host();
  Time done = -1;
  w.spawn(h, "worker", [&](Context& ctx) -> Task<> {
    co_await ctx.compute(kSecond);
    done = ctx.now();
  });
  // Infinite competing load, non-essential.
  w.spawn(h, "load", [](Context& ctx) -> Task<> {
    for (;;) co_await ctx.compute(kSecond);
  }, /*essential=*/false);
  w.run();
  // Worker needs 1s CPU but shares 50/50 — ~2s wall time.
  EXPECT_NEAR(to_seconds(done), 2.0, 0.05);
}

TEST(Host, ShortDemandCompletesWithinQuantum) {
  World w(fast_config());
  auto& h = w.add_host();
  Time done = -1;
  w.spawn(h, "p", [&](Context& ctx) -> Task<> {
    co_await ctx.compute(3 * kMillisecond);
    done = ctx.now();
  });
  w.run();
  EXPECT_EQ(done, 3 * kMillisecond);
}

TEST(Host, ZeroDemandDoesNotSuspend) {
  World w(fast_config());
  auto& h = w.add_host();
  Time done = -1;
  w.spawn(h, "p", [&](Context& ctx) -> Task<> {
    co_await ctx.compute(0);
    done = ctx.now();
  });
  w.run();
  EXPECT_EQ(done, 0);
}

TEST(Host, ContextSwitchOverheadDelaysCompletion) {
  WorldConfig cfg = fast_config();
  cfg.host.context_switch = kMillisecond;
  World w(cfg);
  auto& h = w.add_host();
  Time done_a = -1;
  w.spawn(h, "a", [&](Context& ctx) -> Task<> {
    co_await ctx.compute(20 * kMillisecond);
    done_a = ctx.now();
  });
  w.spawn(h, "b", [](Context& ctx) -> Task<> {
    co_await ctx.compute(20 * kMillisecond);
  });
  w.run();
  // a:0-10, switch, b:11-21, switch, a:22-32 — a completes at 32 ms, 12 ms
  // later than it would alone and 2 ms later than with free switches.
  EXPECT_EQ(done_a, 32 * kMillisecond);
  EXPECT_GT(w.host(0).context_switches(), 0u);
}

TEST(Host, CpuAccountingIncludesInFlightSlice) {
  WorldConfig cfg = fast_config();
  cfg.host.quantum = 100 * kMillisecond;
  World w(cfg);
  auto& h = w.add_host();
  Pid p = w.spawn(h, "p", [&](Context& ctx) -> Task<> {
    co_await ctx.compute(80 * kMillisecond);
  });
  w.run_until(40 * kMillisecond);
  // Mid-slice: accounting must reflect partial progress.
  EXPECT_EQ(w.cpu_used(p), 40 * kMillisecond);
  w.run();
  EXPECT_EQ(w.cpu_used(p), 80 * kMillisecond);
}

TEST(Host, ManyProcessesProportionalSharing) {
  World w(fast_config());
  auto& h = w.add_host();
  constexpr int kN = 5;
  std::vector<Time> done(kN, -1);
  for (int i = 0; i < kN; ++i) {
    w.spawn(h, "p" + std::to_string(i), [&, i](Context& ctx) -> Task<> {
      co_await ctx.compute(100 * kMillisecond);
      done[i] = ctx.now();
    });
  }
  w.run();
  // All work = 500ms serialized; everyone finishes in the last round.
  EXPECT_EQ(*std::max_element(done.begin(), done.end()), 500 * kMillisecond);
  for (Time t : done) EXPECT_GE(t, 450 * kMillisecond);
}

TEST(Host, RepeatedComputeAccumulatesAccounting) {
  World w(fast_config());
  auto& h = w.add_host();
  Pid p = w.spawn(h, "p", [](Context& ctx) -> Task<> {
    for (int i = 0; i < 10; ++i) co_await ctx.compute(7 * kMillisecond);
  });
  w.run();
  EXPECT_EQ(w.cpu_used(p), 70 * kMillisecond);
}

}  // namespace
}  // namespace nowlb::sim
