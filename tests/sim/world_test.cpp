// World integration tests: messaging, network timing, teardown, errors.
#include "sim/world.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace nowlb::sim {
namespace {

Bytes to_bytes(const std::string& s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

std::string to_string(const Bytes& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

WorldConfig zero_overhead() {
  WorldConfig cfg;
  cfg.host.context_switch = 0;
  cfg.msg.send_overhead = 0;
  cfg.msg.recv_overhead = 0;
  cfg.net.latency = kMillisecond;
  cfg.net.local_latency = 0;
  cfg.net.header_bytes = 0;
  return cfg;
}

TEST(World, PingPongAcrossHosts) {
  World w(zero_overhead());
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  std::string got;

  Pid ponger = w.spawn(h1, "ponger", [&](Context& ctx) -> Task<> {
    Message m = co_await ctx.recv(1);
    co_await ctx.send(m.src, 2, to_bytes("pong:" + to_string(m.payload)));
  });
  w.spawn(h0, "pinger", [&](Context& ctx) -> Task<> {
    co_await ctx.send(ponger, 1, to_bytes("hello"));
    Message m = co_await ctx.recv(2);
    got = to_string(m.payload);
  });
  w.run();
  EXPECT_EQ(got, "pong:hello");
}

TEST(World, MessageLatencyIsModelled) {
  World w(zero_overhead());
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  Time arrival = -1;
  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    co_await ctx.recv(7);
    arrival = ctx.now();
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx, 7, Bytes(0));
  });
  w.run();
  EXPECT_EQ(arrival, kMillisecond);  // pure latency, no payload / overheads
}

TEST(World, BandwidthAddsTransmissionTime) {
  WorldConfig cfg = zero_overhead();
  cfg.net.bandwidth_bps = 1e6;  // 1 MB/s
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  Time arrival = -1;
  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    co_await ctx.recv(7);
    arrival = ctx.now();
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx, 7, Bytes(100'000));  // 0.1s at 1 MB/s
  });
  w.run();
  EXPECT_NEAR(to_seconds(arrival), 0.101, 1e-6);
}

TEST(World, LinkSerializesBackToBackMessages) {
  WorldConfig cfg = zero_overhead();
  cfg.net.bandwidth_bps = 1e6;
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  std::vector<Time> arrivals;
  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    for (int i = 0; i < 2; ++i) {
      co_await ctx.recv(7);
      arrivals.push_back(ctx.now());
    }
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx, 7, Bytes(100'000));
    co_await ctx.send(rx, 7, Bytes(100'000));
  });
  w.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second message waits for the first's transmission to finish.
  EXPECT_NEAR(to_seconds(arrivals[1] - arrivals[0]), 0.1, 1e-6);
}

TEST(World, SelectiveReceiveByTag) {
  World w(zero_overhead());
  auto& h0 = w.add_host();
  std::vector<int> order;
  Pid rx = w.spawn(h0, "rx", [&](Context& ctx) -> Task<> {
    Message a = co_await ctx.recv(2);  // deliberately receive tag 2 first
    order.push_back(a.tag);
    Message b = co_await ctx.recv(1);
    order.push_back(b.tag);
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx, 1, Bytes{});
    co_await ctx.send(rx, 2, Bytes{});
  });
  w.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(World, SelectiveReceiveBySource) {
  World w(zero_overhead());
  auto& h0 = w.add_host();
  Pid rx_pid{};
  std::vector<Pid> sources;
  rx_pid = w.spawn(h0, "rx", [&](Context& ctx) -> Task<> {
    Message a = co_await ctx.recv(kAnyTag, 2);  // from tx2 only
    sources.push_back(a.src);
    Message b = co_await ctx.recv(kAnyTag, kAnyPid);
    sources.push_back(b.src);
  });
  w.spawn(h0, "tx1", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx_pid, 9, Bytes{});
  });
  w.spawn(h0, "tx2", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx_pid, 9, Bytes{});
  });
  w.run();
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], 2);
  EXPECT_EQ(sources[1], 1);
}

TEST(World, ProcessErrorPropagatesFromRun) {
  World w(zero_overhead());
  auto& h0 = w.add_host();
  w.spawn(h0, "bad", [](Context& ctx) -> Task<> {
    co_await ctx.compute(kMillisecond);
    throw std::runtime_error("app failure");
  });
  EXPECT_THROW(w.run(), std::runtime_error);
}

TEST(World, NonEssentialProcessDoesNotBlockCompletion) {
  World w(zero_overhead());
  auto& h0 = w.add_host();
  w.spawn(h0, "main", [](Context& ctx) -> Task<> {
    co_await ctx.compute(10 * kMillisecond);
  });
  w.spawn(h0, "forever", [](Context& ctx) -> Task<> {
    for (;;) co_await ctx.compute(kSecond);
  }, /*essential=*/false);
  w.run();  // must terminate
  SUCCEED();
}

TEST(World, TeardownWithSuspendedProcessesDoesNotLeak) {
  // Exercised under ASan in CI-style runs; here we just make sure
  // destruction with live coroutines doesn't crash.
  auto run = [] {
    World w;
    auto& h0 = w.add_host();
    w.spawn(h0, "blocked-recv", [](Context& ctx) -> Task<> {
      co_await ctx.recv(99);  // never satisfied
    }, /*essential=*/false);
    w.spawn(h0, "main", [](Context& ctx) -> Task<> {
      co_await ctx.compute(kMillisecond);
    });
    w.run();
  };
  EXPECT_NO_THROW(run());
}

TEST(World, SendOverheadChargesSenderCpu) {
  WorldConfig cfg = zero_overhead();
  cfg.msg.send_overhead = 5 * kMillisecond;
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  Pid rx = w.spawn(h1, "rx", [](Context& ctx) -> Task<> {
    co_await ctx.recv(1);
  });
  Pid tx = w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx, 1, Bytes{});
  });
  w.run();
  EXPECT_EQ(w.cpu_used(tx), 5 * kMillisecond);
}

TEST(World, RecvOverheadChargesReceiverCpu) {
  WorldConfig cfg = zero_overhead();
  cfg.msg.recv_overhead = 3 * kMillisecond;
  World w(cfg);
  auto& h0 = w.add_host();
  Pid rx = w.spawn(h0, "rx", [](Context& ctx) -> Task<> {
    co_await ctx.recv(1);
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx, 1, Bytes{});
  });
  w.run();
  EXPECT_EQ(w.cpu_used(rx), 3 * kMillisecond);
}

TEST(World, RecorderCollectsSeries) {
  World w(zero_overhead());
  auto& h0 = w.add_host();
  w.spawn(h0, "p", [](Context& ctx) -> Task<> {
    ctx.recorder().record("x", ctx.now(), 1.0);
    co_await ctx.compute(kSecond);
    ctx.recorder().record("x", ctx.now(), 2.0);
  });
  w.run();
  const Series* s = w.recorder().find("x");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 2u);
  EXPECT_DOUBLE_EQ(s->v[0], 1.0);
  EXPECT_DOUBLE_EQ(s->t[1], 1.0);
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    World w;  // default config incl. overheads
    auto& h0 = w.add_host();
    auto& h1 = w.add_host();
    Time result = 0;
    Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
      for (int i = 0; i < 10; ++i) {
        co_await ctx.recv(1);
        co_await ctx.compute(7 * kMillisecond);
      }
      result = ctx.now();
    });
    w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
      for (int i = 0; i < 10; ++i) {
        co_await ctx.compute(3 * kMillisecond);
        co_await ctx.send(rx, 1, Bytes(1024));
      }
    });
    w.spawn(h1, "load", [](Context& ctx) -> Task<> {
      for (;;) co_await ctx.compute(kSecond);
    }, /*essential=*/false);
    w.run();
    return result;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace nowlb::sim
