#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <coroutine>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace nowlb::sim {
namespace {

// A manual gate that parks the handle for external resumption — stands in
// for the engine in these unit tests. Awaited via a prvalue awaiter holding
// a pointer: GCC (≤12) materializes a copy when co_awaiting an lvalue
// reached through a lambda capture, so the awaiter must be copy-safe.
struct ManualGate {
  std::coroutine_handle<> parked;
  struct Awaiter {
    ManualGate* gate;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { gate->parked = h; }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{this}; }
  void release() {
    auto h = parked;
    parked = nullptr;
    h.resume();
  }
};

TEST(Task, IsLazy) {
  bool ran = false;
  auto make = [&]() -> Task<> {
    ran = true;
    co_return;
  };
  Task<> t = make();
  EXPECT_FALSE(ran);
  t.start();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(t.done());
}

TEST(Task, NestedTasksReturnValues) {
  auto leaf = []() -> Task<int> { co_return 21; };
  auto mid = [&]() -> Task<int> {
    int a = co_await leaf();
    int b = co_await leaf();
    co_return a + b;
  };
  int result = 0;
  auto root = [&]() -> Task<> {
    result = co_await mid();
  };
  Task<> t = root();
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(result, 42);
}

TEST(Task, ResumptionContinuesThroughNesting) {
  ManualGate gate;
  std::vector<std::string> log;
  auto inner = [&]() -> Task<int> {
    log.push_back("inner-before");
    co_await gate.wait();
    log.push_back("inner-after");
    co_return 7;
  };
  int got = 0;
  auto outer = [&]() -> Task<> {
    log.push_back("outer-before");
    got = co_await inner();
    log.push_back("outer-after");
  };
  Task<> t = outer();
  t.start();
  EXPECT_EQ(log, (std::vector<std::string>{"outer-before", "inner-before"}));
  EXPECT_FALSE(t.done());
  gate.release();  // external resumption unwinds inner -> outer
  EXPECT_TRUE(t.done());
  EXPECT_EQ(got, 7);
  EXPECT_EQ(log.back(), "outer-after");
}

TEST(Task, ExceptionsPropagateAcrossNesting) {
  auto thrower = []() -> Task<int> {
    throw std::runtime_error("inner failure");
    co_return 0;
  };
  std::string caught;
  auto root = [&]() -> Task<> {
    try {
      co_await thrower();
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
  };
  Task<> t = root();
  t.start();
  EXPECT_EQ(caught, "inner failure");
}

TEST(Task, RethrowIfErrorSurfacesRootFailure) {
  auto root = []() -> Task<> {
    throw std::logic_error("root failure");
    co_return;
  };
  Task<> t = root();
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.rethrow_if_error(), std::logic_error);
}

TEST(Task, DestroyingSuspendedStackReclaimsFrames) {
  // Frame-local objects must be destroyed when an outer Task is dropped
  // mid-suspension (this is how the World tears down infinite processes).
  struct Sentinel {
    int* counter;
    explicit Sentinel(int* c) : counter(c) { ++*counter; }
    ~Sentinel() { --*counter; }
  };
  int live = 0;
  ManualGate gate;
  auto inner = [&]() -> Task<> {
    Sentinel s(&live);
    co_await gate.wait();
  };
  auto outer = [&]() -> Task<> {
    Sentinel s(&live);
    co_await inner();
  };
  {
    Task<> t = outer();
    t.start();
    EXPECT_EQ(live, 2);  // both frames alive, suspended at gate
  }
  EXPECT_EQ(live, 0);  // dropping the root destroyed the whole stack
}

TEST(Task, MoveTransfersOwnership) {
  auto make = []() -> Task<int> { co_return 5; };
  Task<int> a = make();
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move) — deliberate
  EXPECT_TRUE(b.valid());
  int out = 0;
  auto root = [&]() -> Task<> { out = co_await std::move(b); };
  Task<> t = root();
  t.start();
  EXPECT_EQ(out, 5);
}

TEST(Task, DeepNestingDoesNotOverflowStack) {
  // Symmetric transfer should keep resumption O(1) stack depth. The final
  // frame teardown is still one native call per nesting level; sanitizer
  // builds grow each of those frames ~10x, so scale the depth down there
  // (resumption at this depth would overflow either way if it recursed).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  static constexpr int kDepth = 4'000;
#else
  static constexpr int kDepth = 50'000;
#endif
  std::function<Task<int>(int)> rec = [&](int n) -> Task<int> {
    if (n == 0) co_return 0;
    co_return 1 + co_await rec(n - 1);
  };
  int result = -1;
  auto root = [&]() -> Task<> { result = co_await rec(kDepth); };
  Task<> t = root();
  t.start();
  EXPECT_EQ(result, kDepth);
}

TEST(Task, MovedFromTaskAwaitsAsReady) {
  auto make = []() -> Task<int> { co_return 1; };
  Task<int> a = make();
  Task<int> b = std::move(a);
  EXPECT_TRUE(a.done());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
}

}  // namespace
}  // namespace nowlb::sim
