#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace nowlb::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, DispatchesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(1); });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.schedule_at(5, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  Time seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, CancelPreventsDispatch) {
  Engine e;
  bool fired = false;
  auto id = e.schedule_at(10, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, CancelAfterFireIsSafe) {
  Engine e;
  auto id = e.schedule_at(10, [] {});
  e.run();
  e.cancel(id);  // must not crash or corrupt counters
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, EventsScheduledDuringDispatchRun) {
  Engine e;
  int count = 0;
  e.schedule_at(1, [&] {
    ++count;
    e.schedule_after(1, [&] { ++count; });
  });
  e.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.now(), 2);
}

TEST(Engine, StopHaltsDispatch) {
  Engine e;
  int count = 0;
  e.schedule_at(1, [&] {
    ++count;
    e.stop();
  });
  e.schedule_at(2, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 1);
  // Remaining event still pending.
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine e;
  e.run_until(500);
  EXPECT_EQ(e.now(), 500);
}

TEST(Engine, RunUntilStopsBeforeLaterEvents) {
  Engine e;
  bool early = false, late = false;
  e.schedule_at(100, [&] { early = true; });
  e.schedule_at(1000, [&] { late = true; });
  e.run_until(500);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(e.now(), 500);
}

TEST(Engine, SchedulingInPastThrows) {
  Engine e;
  e.schedule_at(100, [&] {
    EXPECT_THROW(e.schedule_at(50, [] {}), CheckFailure);
  });
  e.run();
}

TEST(Engine, FailRethrowsFromRun) {
  Engine e;
  e.schedule_at(1, [&] {
    e.fail(std::make_exception_ptr(std::runtime_error("boom")));
  });
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, CountsDispatchedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.dispatched_events(), 5u);
}

}  // namespace
}  // namespace nowlb::sim
