#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace nowlb::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, DispatchesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(1); });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.schedule_at(5, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  Time seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, CancelPreventsDispatch) {
  Engine e;
  bool fired = false;
  auto id = e.schedule_at(10, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, CancelAfterFireIsSafe) {
  Engine e;
  auto id = e.schedule_at(10, [] {});
  e.run();
  e.cancel(id);  // must not crash or corrupt counters
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, EventsScheduledDuringDispatchRun) {
  Engine e;
  int count = 0;
  e.schedule_at(1, [&] {
    ++count;
    e.schedule_after(1, [&] { ++count; });
  });
  e.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(e.now(), 2);
}

TEST(Engine, StopHaltsDispatch) {
  Engine e;
  int count = 0;
  e.schedule_at(1, [&] {
    ++count;
    e.stop();
  });
  e.schedule_at(2, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 1);
  // Remaining event still pending.
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(Engine, RunUntilAdvancesClockWithoutEvents) {
  Engine e;
  e.run_until(500);
  EXPECT_EQ(e.now(), 500);
}

TEST(Engine, RunUntilStopsBeforeLaterEvents) {
  Engine e;
  bool early = false, late = false;
  e.schedule_at(100, [&] { early = true; });
  e.schedule_at(1000, [&] { late = true; });
  e.run_until(500);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(e.now(), 500);
}

TEST(Engine, SchedulingInPastThrows) {
  Engine e;
  e.schedule_at(100, [&] {
    EXPECT_THROW(e.schedule_at(50, [] {}), CheckFailure);
  });
  e.run();
}

TEST(Engine, FailRethrowsFromRun) {
  Engine e;
  e.schedule_at(1, [&] {
    e.fail(std::make_exception_ptr(std::runtime_error("boom")));
  });
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, CountsDispatchedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.dispatched_events(), 5u);
}

TEST(Engine, DoubleCancelLeavesQueueConsistent) {
  Engine e;
  bool other = false;
  auto id = e.schedule_at(10, [] {});
  auto copy = id;
  e.schedule_at(20, [&] { other = true; });
  e.cancel(id);
  EXPECT_EQ(e.pending_events(), 1u);
  // Cancelling again — via the original or a copy taken before the first
  // cancel — must not decrement the live count a second time.
  e.cancel(id);
  e.cancel(copy);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_TRUE(other);
  EXPECT_EQ(e.pending_events(), 0u);
  EXPECT_EQ(e.dispatched_events(), 1u);
}

TEST(Engine, CancelCopiesAfterFireLeaveQueueConsistent) {
  Engine e;
  auto id = e.schedule_at(10, [] {});
  auto copy = id;
  e.run();
  EXPECT_EQ(e.pending_events(), 0u);
  e.cancel(id);
  e.cancel(copy);
  e.cancel(copy);  // id already reset by the first cancel of this handle
  EXPECT_EQ(e.pending_events(), 0u);
  // The engine must still schedule and dispatch normally afterwards.
  bool fired = false;
  e.schedule_at(20, [&] { fired = true; });
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_TRUE(fired);
}

// Golden seed-stability regression: the same seeded event cascade must
// produce bit-identical trace hashes run after run — the property the
// fuzzer's replay-to-prove-determinism step rests on.
namespace {

std::pair<std::uint64_t, std::uint64_t> traced_cascade(std::uint64_t seed) {
  Engine e;
  std::uint64_t state = seed;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  // Each event reschedules a few descendants at pseudo-random offsets and
  // cancels some of them again, exercising queue order and cancellation.
  std::vector<Engine::EventId> cancellable;
  std::function<void()> spawn = [&] {
    if (e.dispatched_events() > 400) return;
    const int kids = static_cast<int>(next() % 3);
    for (int i = 0; i <= kids; ++i) {
      auto id = e.schedule_after(static_cast<Time>(1 + next() % 50), spawn);
      if (next() % 4 == 0) cancellable.push_back(id);
    }
    if (!cancellable.empty() && next() % 2 == 0) {
      e.cancel(cancellable.back());
      cancellable.pop_back();
    }
  };
  e.schedule_at(0, spawn);
  e.schedule_at(0, spawn);
  e.run();
  return {e.trace_hash(), e.dispatched_events()};
}

}  // namespace

TEST(Engine, TraceHashStableForSameSeed) {
  const auto a = traced_cascade(42);
  const auto b = traced_cascade(42);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  // And the hash actually depends on the trace.
  const auto c = traced_cascade(43);
  EXPECT_NE(a.first, c.first);
}

}  // namespace
}  // namespace nowlb::sim
