// Fault-model tests: lossy-network injection (drop / duplicate / delay),
// crash faults via World::kill, and the deadline receive they build on.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/world.hpp"

namespace nowlb::sim {
namespace {

WorldConfig lossy_base() {
  WorldConfig cfg;
  cfg.host.context_switch = 0;
  cfg.msg.send_overhead = 0;
  cfg.msg.recv_overhead = 0;
  cfg.net.latency = kMillisecond;
  cfg.net.local_latency = 0;
  cfg.net.header_bytes = 0;
  return cfg;
}

TEST(FaultNet, DefaultConfigInjectsNothing) {
  const NetConfig def;
  EXPECT_FALSE(def.faulty());

  World w(lossy_base());
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    for (int i = 0; i < 4; ++i) co_await ctx.recv(7);
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    for (int i = 0; i < 4; ++i) co_await ctx.send(rx, 7, Bytes(8));
  });
  w.run();
  EXPECT_EQ(w.network().messages_dropped(), 0u);
  EXPECT_EQ(w.network().messages_duplicated(), 0u);
}

TEST(FaultNet, DropLosesTheMessageAndCountsIt) {
  WorldConfig cfg = lossy_base();
  cfg.net.drop_prob = 1.0;
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  bool got = false;
  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    auto m = co_await ctx.recv_until(7, kAnyPid, 50 * kMillisecond);
    got = m.has_value();
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx, 7, Bytes(8));
  });
  w.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(w.network().messages_dropped(), 1u);
}

TEST(FaultNet, TagRangeGatesInjection) {
  WorldConfig cfg = lossy_base();
  cfg.net.drop_prob = 1.0;
  cfg.net.fault_tag_lo = 100;  // tag 7 is outside the faulty range
  cfg.net.fault_tag_hi = 200;
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  bool got = false;
  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    auto m = co_await ctx.recv_until(7, kAnyPid, 50 * kMillisecond);
    got = m.has_value();
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx, 7, Bytes(8));
  });
  w.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(w.network().messages_dropped(), 0u);
}

TEST(FaultNet, DuplicationDeliversASecondCopy) {
  WorldConfig cfg = lossy_base();
  cfg.net.dup_prob = 1.0;
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  int copies = 0;
  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    while (co_await ctx.recv_until(7, kAnyPid, 100 * kMillisecond)) ++copies;
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.send(rx, 7, Bytes(8));
  });
  w.run();
  EXPECT_EQ(copies, 2);
  EXPECT_EQ(w.network().messages_duplicated(), 1u);
}

// The fault stream is a private seeded Rng: the same seed must reproduce
// the exact same loss pattern, run after run.
TEST(FaultNet, InjectionIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t fault_seed) {
    WorldConfig cfg = lossy_base();
    cfg.net.drop_prob = 0.5;
    cfg.net.fault_seed = fault_seed;
    World w(cfg);
    auto& h0 = w.add_host();
    auto& h1 = w.add_host();
    std::vector<std::size_t> sizes;  // payload size identifies the message
    Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
      while (auto m = co_await ctx.recv_until(7, kAnyPid, kSecond)) {
        sizes.push_back(m->payload.size());
      }
    });
    w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
      for (int i = 0; i < 32; ++i) co_await ctx.send(rx, 7, Bytes(i));
    });
    w.run();
    return sizes;
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a, b);
  EXPECT_LT(a.size(), 32u);  // 32 straight survivals at p=0.5 is one in 4e9
  const auto c = run_once(43);
  EXPECT_NE(a, c);  // different stream (astronomically unlikely to collide)
}

TEST(FaultNet, ExtraDelayReordersAcrossLinks) {
  WorldConfig cfg = lossy_base();
  cfg.net.max_extra_delay = 20 * kMillisecond;
  World w(cfg);
  auto& ha = w.add_host();
  auto& hb = w.add_host();
  auto& hc = w.add_host();
  std::vector<std::size_t> order;
  Pid rx = w.spawn(hc, "rx", [&](Context& ctx) -> Task<> {
    while (auto m = co_await ctx.recv_until(7, kAnyPid, kSecond)) {
      order.push_back(m->payload.size());
    }
  });
  // Two senders on distinct links, racing: with up to 20 ms of jitter on a
  // 1 ms wire, some pair arrives out of send order.
  w.spawn(ha, "tx-a", [&](Context& ctx) -> Task<> {
    for (int i = 0; i < 8; ++i) co_await ctx.send(rx, 7, Bytes(2 * i));
  });
  w.spawn(hb, "tx-b", [&](Context& ctx) -> Task<> {
    for (int i = 0; i < 8; ++i) co_await ctx.send(rx, 7, Bytes(2 * i + 1));
  });
  w.run();
  ASSERT_EQ(order.size(), 16u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(RecvUntil, TimesOutAtTheDeadline) {
  World w(lossy_base());
  auto& h = w.add_host();
  Time woke = -1;
  bool got = true;
  w.spawn(h, "rx", [&](Context& ctx) -> Task<> {
    auto m = co_await ctx.recv_until(7, kAnyPid, 30 * kMillisecond);
    got = m.has_value();
    woke = ctx.now();
  });
  w.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(woke, 30 * kMillisecond);
}

TEST(RecvUntil, DeliversWhenTheMessageBeatsTheDeadline) {
  World w(lossy_base());
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  std::optional<Message> got;
  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    got = co_await ctx.recv_until(7, kAnyPid, kSecond);
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    co_await ctx.sleep(5 * kMillisecond);
    co_await ctx.send(rx, 7, Bytes(3));
  });
  w.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload.size(), 3u);
}

// A killed essential process no longer gates run(): the watchdog shape the
// crash injector depends on.
TEST(WorldKill, KilledProcessStopsGatingTheRun) {
  World w(lossy_base());
  auto& h = w.add_host();
  Pid victim = w.spawn(h, "victim", [&](Context& ctx) -> Task<> {
    co_await ctx.recv(99);  // would block forever
  });
  w.spawn(h, "killer", [&](Context& ctx) -> Task<> {
    co_await ctx.sleep(kMillisecond);
    ctx.world().kill(victim);
    ctx.world().kill(victim);  // idempotent
  });
  w.run();  // terminates: the kill retired the blocked essential process
  EXPECT_EQ(w.essential_remaining(), 0u);
}

TEST(WorldKill, MessagesToTheDeadAreDiscarded) {
  World w(lossy_base());
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  Pid victim = w.spawn(h1, "victim", [&](Context& ctx) -> Task<> {
    co_await ctx.recv(99);
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    ctx.world().kill(victim);
    co_await ctx.send(victim, 7, Bytes(8));  // into the closed mailbox
    co_await ctx.sleep(50 * kMillisecond);
  });
  w.run();  // no crash, no stuck delivery
}

}  // namespace
}  // namespace nowlb::sim
