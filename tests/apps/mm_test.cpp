// MM application tests: correctness against sequential execution under
// load balancing (including forced work movement), conservation, timing.
#include "apps/mm.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/world.hpp"

namespace nowlb::apps {
namespace {

using sim::kMillisecond;
using sim::kSecond;

sim::WorldConfig test_world_config() {
  sim::WorldConfig wc;
  wc.host.quantum = 10 * kMillisecond;
  return wc;
}

lb::LbConfig test_lb() {
  lb::LbConfig cfg;
  cfg.min_period = 250 * kMillisecond;
  cfg.quantum = 10 * kMillisecond;
  return cfg;
}

struct MmOutcome {
  double makespan_s;
  lb::MasterStats stats;
  std::shared_ptr<MmShared> shared;
};

MmOutcome run_mm(const MmConfig& cfg, int slaves,
                 const std::vector<int>& loaded = {}) {
  sim::World w(test_world_config());
  auto shared = std::make_shared<MmShared>();
  mm_make_inputs(cfg, *shared);
  lb::Cluster cluster(w, mm_cluster_config(cfg, slaves, test_lb()));
  mm_build(cluster, cfg, shared);
  for (int rank : loaded) {
    cluster.add_load(rank, [](sim::Context& ctx) -> sim::Task<> {
      for (;;) co_await ctx.compute(kSecond);
    });
  }
  w.run();
  return {sim::to_seconds(w.now()), cluster.stats(), shared};
}

TEST(Mm, SpecMatchesTable1) {
  MmConfig cfg;
  cfg.repeats = 3;
  const auto props = loop::analyze(mm_spec(cfg));
  EXPECT_FALSE(props.loop_carried_dependences);
  EXPECT_FALSE(props.communication_outside_loop);
  EXPECT_TRUE(props.repeated_execution);
  EXPECT_FALSE(props.varying_loop_bounds);
  EXPECT_FALSE(props.index_dependent_iteration_size);
  EXPECT_FALSE(props.data_dependent_iteration_size);
}

TEST(Mm, SequentialTimeMatchesPaperScale) {
  MmConfig cfg;  // 500x500, 2us per MAC
  EXPECT_NEAR(mm_seq_time_s(cfg), 250.0, 1.0);
}

TEST(Mm, ResultMatchesSequentialDedicated) {
  MmConfig cfg;
  cfg.n = 24;
  cfg.real_compute = true;
  cfg.mac_cost = 200 * sim::kMicrosecond;  // big units so rounds happen
  auto out = run_mm(cfg, 3);
  const auto expect = mm_sequential(cfg, *out.shared);
  EXPECT_EQ(out.shared->c, expect);  // bit-for-bit
  for (int count : out.shared->compute_count_per_column)
    EXPECT_EQ(count, 1);
}

TEST(Mm, ResultMatchesSequentialUnderLoadWithMovement) {
  MmConfig cfg;
  cfg.n = 30;
  cfg.real_compute = true;
  cfg.mac_cost = 200 * sim::kMicrosecond;
  auto out = run_mm(cfg, 3, /*loaded=*/{0});
  const auto expect = mm_sequential(cfg, *out.shared);
  EXPECT_EQ(out.shared->c, expect);
  // Load balancing actually moved columns.
  EXPECT_GT(out.stats.units_moved, 0);
  // Every column computed exactly once.
  for (int count : out.shared->compute_count_per_column)
    EXPECT_EQ(count, 1);
}

TEST(Mm, RepeatsComputeEveryColumnEachPhase) {
  MmConfig cfg;
  cfg.n = 20;
  cfg.repeats = 3;
  cfg.real_compute = true;
  cfg.mac_cost = 200 * sim::kMicrosecond;
  auto out = run_mm(cfg, 2, /*loaded=*/{1});
  for (int count : out.shared->compute_count_per_column)
    EXPECT_EQ(count, cfg.repeats);
  const auto expect = mm_sequential(cfg, *out.shared);
  EXPECT_EQ(out.shared->c, expect);
}

TEST(Mm, SpeedupNearLinearDedicated) {
  MmConfig cfg;
  cfg.n = 120;
  cfg.mac_cost = 20 * sim::kMicrosecond;  // column = 288 ms
  const double seq = mm_seq_time_s(cfg);
  auto out4 = run_mm(cfg, 4);
  const double speedup = seq / out4.makespan_s;
  EXPECT_GT(speedup, 3.4);
  EXPECT_LE(speedup, 4.05);
}

TEST(Mm, LoadBalancingRecoversEfficiencyUnderLoad) {
  MmConfig cfg;
  cfg.n = 120;
  cfg.mac_cost = 20 * sim::kMicrosecond;
  auto loaded = run_mm(cfg, 4, /*loaded=*/{0});
  // Static distribution would take ~2x the dedicated time (the loaded
  // slave halves); DLB should stay well under that.
  auto dedicated = run_mm(cfg, 4);
  EXPECT_LT(loaded.makespan_s, dedicated.makespan_s * 1.45);
  // And the loaded slave computed materially less.
  EXPECT_LT(loaded.shared->columns_computed[0],
            loaded.shared->columns_computed[1]);
}

TEST(Mm, SingleSlaveMatchesSequentialTime) {
  MmConfig cfg;
  cfg.n = 60;
  cfg.mac_cost = 50 * sim::kMicrosecond;
  auto out = run_mm(cfg, 1);
  // One slave: no parallelism; makespan ~= sequential time + LB overhead.
  EXPECT_NEAR(out.makespan_s, mm_seq_time_s(cfg),
              0.05 * mm_seq_time_s(cfg) + 0.5);
}

}  // namespace
}  // namespace nowlb::apps
