// LU application tests: correctness with dynamic pivot-owner broadcast,
// active/inactive slices, shrinking work units, done-flag termination.
#include "apps/lu.hpp"

#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace nowlb::apps {
namespace {

using sim::kMillisecond;
using sim::kSecond;

sim::WorldConfig test_world_config() {
  sim::WorldConfig wc;
  wc.host.quantum = 10 * kMillisecond;
  return wc;
}

lb::LbConfig test_lb() {
  lb::LbConfig cfg;
  cfg.min_period = 250 * kMillisecond;
  cfg.quantum = 10 * kMillisecond;
  return cfg;
}

struct LuOutcome {
  double makespan_s;
  lb::MasterStats stats;
  std::shared_ptr<LuShared> shared;
};

LuOutcome run_lu(const LuConfig& cfg, int slaves,
                 const std::vector<int>& loaded = {},
                 lb::LbConfig lbc = test_lb()) {
  sim::World w(test_world_config());
  auto shared = std::make_shared<LuShared>();
  lu_make_inputs(cfg, *shared);
  lb::Cluster cluster(w, lu_cluster_config(cfg, slaves, lbc));
  lu_build(cluster, cfg, shared);
  for (int rank : loaded) {
    cluster.add_load(rank, [](sim::Context& ctx) -> sim::Task<> {
      for (;;) co_await ctx.compute(kSecond);
    });
  }
  w.run();
  return {sim::to_seconds(w.now()), cluster.stats(), shared};
}

std::vector<std::vector<double>> reference(const LuConfig& cfg) {
  LuShared tmp;
  lu_make_inputs(cfg, tmp);
  lu_sequential(cfg, tmp.a);
  return tmp.a;
}

TEST(Lu, SpecMatchesTable1) {
  LuConfig cfg;
  const auto props = loop::analyze(lu_spec(cfg));
  EXPECT_FALSE(props.loop_carried_dependences);
  EXPECT_TRUE(props.communication_outside_loop);
  EXPECT_TRUE(props.repeated_execution);
  EXPECT_TRUE(props.varying_loop_bounds);
  EXPECT_TRUE(props.index_dependent_iteration_size);
  EXPECT_FALSE(props.data_dependent_iteration_size);
}

TEST(Lu, MatchesSequentialDedicated) {
  LuConfig cfg;
  cfg.n = 40;
  cfg.real_compute = true;
  cfg.update_cost = 500 * sim::kMicrosecond;
  auto out = run_lu(cfg, 3);
  EXPECT_EQ(out.shared->a, reference(cfg));
}

TEST(Lu, MatchesSequentialSingleSlave) {
  LuConfig cfg;
  cfg.n = 24;
  cfg.real_compute = true;
  cfg.update_cost = 500 * sim::kMicrosecond;
  auto out = run_lu(cfg, 1);
  EXPECT_EQ(out.shared->a, reference(cfg));
}

TEST(Lu, MatchesSequentialUnderLoadWithMovement) {
  LuConfig cfg;
  cfg.n = 48;
  cfg.real_compute = true;
  cfg.update_cost = 500 * sim::kMicrosecond;
  auto out = run_lu(cfg, 4, /*loaded=*/{0});
  EXPECT_EQ(out.shared->a, reference(cfg));
  EXPECT_GT(out.stats.units_moved, 0);
}

TEST(Lu, MatchesSequentialWithAggressiveMovement) {
  LuConfig cfg;
  cfg.n = 36;
  cfg.real_compute = true;
  cfg.update_cost = 500 * sim::kMicrosecond;
  lb::LbConfig lbc = test_lb();
  lbc.min_period = 60 * kMillisecond;
  lbc.improvement_threshold = 0.02;
  lbc.profitability_check = false;
  auto out = run_lu(cfg, 3, /*loaded=*/{1}, lbc);
  EXPECT_EQ(out.shared->a, reference(cfg));
  EXPECT_GT(out.stats.units_moved, 0);
}

TEST(Lu, EveryColumnHasExactlyOneFinalOwner) {
  LuConfig cfg;
  cfg.n = 30;
  cfg.real_compute = true;
  cfg.update_cost = 500 * sim::kMicrosecond;
  auto out = run_lu(cfg, 3, /*loaded=*/{2});
  for (int owner : out.shared->final_owner) {
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 3);
  }
}

TEST(Lu, ShrinkingWorkKeepsOverheadBounded) {
  // Cost-only run at a larger size: the run must terminate with the
  // balancing round count far below the number of outer steps, because the
  // frequency controller spaces rounds by work, not by invocation (§4.7).
  LuConfig cfg;
  cfg.n = 200;
  cfg.update_cost = 50 * sim::kMicrosecond;
  auto out = run_lu(cfg, 4);
  EXPECT_LT(out.stats.rounds, cfg.n / 2);
}

}  // namespace
}  // namespace nowlb::apps
