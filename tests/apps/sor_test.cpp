// SOR application tests: bit-for-bit equivalence with sequential execution
// under pipelined execution, strip mining, and mid-sweep work movement with
// catch-up / set-aside reconciliation.
#include "apps/sor.hpp"

#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace nowlb::apps {
namespace {

using sim::kMillisecond;
using sim::kSecond;

sim::WorldConfig test_world_config() {
  sim::WorldConfig wc;
  wc.host.quantum = 10 * kMillisecond;
  return wc;
}

lb::LbConfig test_lb() {
  lb::LbConfig cfg;
  cfg.min_period = 250 * kMillisecond;
  cfg.quantum = 10 * kMillisecond;
  return cfg;
}

struct SorOutcome {
  double makespan_s;
  lb::MasterStats stats;
  std::shared_ptr<SorShared> shared;
};

SorOutcome run_sor(const SorConfig& cfg, int slaves,
                   const std::vector<int>& loaded = {},
                   lb::LbConfig lbc = test_lb()) {
  sim::World w(test_world_config());
  auto shared = std::make_shared<SorShared>();
  sor_make_inputs(cfg, *shared);
  lb::Cluster cluster(w, sor_cluster_config(cfg, slaves, lbc));
  sor_build(cluster, cfg, shared);
  for (int rank : loaded) {
    cluster.add_load(rank, [](sim::Context& ctx) -> sim::Task<> {
      for (;;) co_await ctx.compute(kSecond);
    });
  }
  w.run();
  return {sim::to_seconds(w.now()), cluster.stats(), shared};
}

std::vector<std::vector<double>> reference(const SorConfig& cfg) {
  SorShared tmp;
  sor_make_inputs(cfg, tmp);
  sor_sequential(cfg, tmp.grid);
  return tmp.grid;
}

TEST(Sor, SpecMatchesTable1) {
  SorConfig cfg;
  const auto props = loop::analyze(sor_spec(cfg));
  EXPECT_TRUE(props.loop_carried_dependences);
  EXPECT_TRUE(props.communication_outside_loop);
  EXPECT_TRUE(props.repeated_execution);
  EXPECT_FALSE(props.varying_loop_bounds);
  EXPECT_FALSE(props.index_dependent_iteration_size);
  EXPECT_FALSE(props.data_dependent_iteration_size);
}

TEST(Sor, SequentialTimeMatchesPaperScale) {
  SorConfig cfg;  // 2000x2000 x 20 sweeps
  EXPECT_NEAR(sor_seq_time_s(cfg), 350.0, 5.0);
}

TEST(Sor, MatchesSequentialDedicated) {
  SorConfig cfg;
  cfg.n = 34;       // 32 interior columns
  cfg.sweeps = 4;
  cfg.real_compute = true;
  cfg.update_cost = 2 * kMillisecond;  // sizeable strips
  auto out = run_sor(cfg, 3);
  EXPECT_EQ(out.shared->grid, reference(cfg));
}

TEST(Sor, MatchesSequentialSingleSlave) {
  SorConfig cfg;
  cfg.n = 20;
  cfg.sweeps = 3;
  cfg.real_compute = true;
  cfg.update_cost = 2 * kMillisecond;
  auto out = run_sor(cfg, 1);
  EXPECT_EQ(out.shared->grid, reference(cfg));
}

TEST(Sor, MatchesSequentialUnderLoadWithMovement) {
  SorConfig cfg;
  cfg.n = 42;
  cfg.sweeps = 6;
  cfg.real_compute = true;
  cfg.update_cost = 2 * kMillisecond;
  auto out = run_sor(cfg, 4, /*loaded=*/{1});
  EXPECT_EQ(out.shared->grid, reference(cfg));
  EXPECT_GT(out.stats.units_moved, 0)
      << "expected the load balancer to move columns";
}

TEST(Sor, MatchesSequentialWithAggressiveMovement) {
  // Very low threshold and short period force frequent movement, stressing
  // catch-up, set-aside, and ghost retro-sends.
  SorConfig cfg;
  cfg.n = 38;
  cfg.sweeps = 6;
  cfg.real_compute = true;
  cfg.update_cost = 2 * kMillisecond;
  lb::LbConfig lbc = test_lb();
  lbc.min_period = 60 * kMillisecond;
  lbc.improvement_threshold = 0.02;
  lbc.profitability_check = false;
  auto out = run_sor(cfg, 3, /*loaded=*/{0, 2}, lbc);
  EXPECT_EQ(out.shared->grid, reference(cfg));
  EXPECT_GT(out.stats.units_moved, 0);
}

TEST(Sor, BlockDistributionStaysContiguous) {
  SorConfig cfg;
  cfg.n = 42;
  cfg.sweeps = 5;
  cfg.real_compute = true;
  cfg.update_cost = 2 * kMillisecond;
  auto out = run_sor(cfg, 4, /*loaded=*/{3});
  EXPECT_EQ(out.shared->grid, reference(cfg));
  // Final ownership must be a block partition: ranks non-decreasing across
  // interior columns (restricted movement preserves contiguity).
  const auto& owner = out.shared->final_owner;
  for (int j = 2; j < cfg.n - 1; ++j) {
    EXPECT_GE(owner[j], owner[j - 1])
        << "ownership not contiguous at column " << j;
  }
}

TEST(Sor, AutoGrainSizePicksReasonableBlock) {
  SorConfig cfg;
  cfg.n = 200;
  cfg.sweeps = 1;
  cfg.update_cost = 50 * sim::kMicrosecond;
  // per row (66 cols): 3.3 ms; target 15 ms -> ~4-5 rows per strip.
  auto out = run_sor(cfg, 3);
  EXPECT_GE(out.shared->block_rows_used, 3);
  EXPECT_LE(out.shared->block_rows_used, 6);
}

TEST(Sor, LoadBalancingHelpsUnderLoad) {
  // Scaled so per-strip work stays well above the scheduling quantum even
  // after the loaded rank sheds columns (the paper's grain-size rule);
  // below that scale, quantum-queueing noise drowns the rate signal.
  SorConfig cfg;
  cfg.n = 150;
  cfg.sweeps = 6;
  cfg.update_cost = sim::kMillisecond;
  auto with_dlb = run_sor(cfg, 4, /*loaded=*/{0});
  SorConfig static_cfg = cfg;
  static_cfg.use_lb = false;
  auto static_run = run_sor(static_cfg, 4, /*loaded=*/{0});
  // Dynamic balancing must clearly beat the static distribution when one
  // workstation is shared (Fig. 8's shape).
  EXPECT_LT(with_dlb.makespan_s, static_run.makespan_s * 0.90);
  EXPECT_GT(with_dlb.stats.units_moved, 0);
}

}  // namespace
}  // namespace nowlb::apps
