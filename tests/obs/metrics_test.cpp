// Metrics registry: counter/gauge/histogram semantics, Prometheus text
// exposition (escaping, cumulative buckets), JSON snapshots, and snapshot
// determinism across two identical seeded simulation runs.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/harness.hpp"
#include "obs/obs.hpp"

namespace nowlb {
namespace {

TEST(Counter, IncrementsAndReads) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, BucketsAreUpperBoundInclusive) {
  obs::Histogram h({1.0, 10.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (le is inclusive, Prometheus convention)
  h.observe(5.0);   // <= 10
  h.observe(100.0); // +Inf
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
}

TEST(Histogram, QuantilesInterpolateInsideTheBucket) {
  obs::Histogram h({10.0, 20.0, 40.0});
  // 4 observations in (0,10], 4 in (10,20], 2 in (20,40].
  for (int i = 0; i < 4; ++i) h.observe(5.0);
  for (int i = 0; i < 4; ++i) h.observe(15.0);
  for (int i = 0; i < 2; ++i) h.observe(30.0);
  // p50: rank 5 of 10 -> 1st observation inside (10,20] -> 10 + 20%*10.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 12.5);
  // p90: rank 9 -> 1st of 2 inside (20,40] -> 20 + 50%*20.
  EXPECT_DOUBLE_EQ(h.quantile(0.90), 30.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));  // clamped
}

TEST(Histogram, QuantileEdgeCases) {
  obs::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  // Estimates landing in +Inf clamp to the highest finite bound.
  obs::Histogram inf_heavy({1.0});
  inf_heavy.observe(100.0);
  inf_heavy.observe(200.0);
  EXPECT_DOUBLE_EQ(inf_heavy.quantile(0.99), 1.0);
}

TEST(MetricsRegistry, PrometheusDumpCarriesQuantiles) {
  obs::MetricsRegistry m;
  obs::Histogram& h = m.histogram("lat", {10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("lat_p50 5\n"), std::string::npos) << text;
  // p90/p99 interpolate to 9 and 9.9; full-precision formatting may carry
  // representation digits, so only pin the prefix.
  EXPECT_NE(text.find("lat_p90 9"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_p99 9.9"), std::string::npos) << text;
  // An empty histogram dumps no quantile lines (they would be meaningless).
  obs::MetricsRegistry m2;
  m2.histogram("idle", {1.0});
  EXPECT_EQ(m2.prometheus_text().find("_p50"), std::string::npos);
}

TEST(MetricsRegistry, ReRegistrationReturnsTheSameMetric) {
  obs::MetricsRegistry m;
  obs::Counter& a = m.counter("x", "first help wins");
  obs::Counter& b = m.counter("x", "ignored");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(m.find_counter("x")->value(), 3u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry m;
  m.counter("x");
  EXPECT_THROW(m.gauge("x"), std::logic_error);
  EXPECT_THROW(m.histogram("x", {1.0}), std::logic_error);
}

TEST(MetricsRegistry, FindReturnsNullOnAbsentOrWrongKind) {
  obs::MetricsRegistry m;
  m.counter("c");
  EXPECT_EQ(m.find_counter("missing"), nullptr);
  EXPECT_EQ(m.find_gauge("c"), nullptr);
  EXPECT_NE(m.find_counter("c"), nullptr);
}

TEST(MetricsRegistry, PrometheusTextIsNameOrderedAndTyped) {
  obs::MetricsRegistry m;
  m.counter("zeta", "last").inc(7);
  m.gauge("alpha", "first").set(1.5);
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("# HELP alpha first\n# TYPE alpha gauge\nalpha 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE zeta counter\nzeta 7\n"), std::string::npos);
  EXPECT_LT(text.find("alpha"), text.find("zeta"));
}

TEST(MetricsRegistry, PrometheusHelpEscaping) {
  obs::MetricsRegistry m;
  m.counter("c", "line one\nback\\slash");
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("# HELP c line one\\nback\\\\slash\n"),
            std::string::npos);
}

TEST(MetricsRegistry, PrometheusHistogramIsCumulativeWithInf) {
  obs::MetricsRegistry m;
  obs::Histogram& h = m.histogram("lat", {0.25, 1.0}, "latency");
  h.observe(0.25);
  h.observe(0.5);
  h.observe(2.0);
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("lat_bucket{le=\"0.25\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 2.75\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
}

TEST(MetricsRegistry, JsonSnapshotShape) {
  obs::MetricsRegistry m;
  m.counter("c").inc(2);
  m.gauge("g").set(0.5);
  m.histogram("h", {1.0}).observe(3.0);
  const std::string json = m.json_snapshot();
  EXPECT_EQ(json,
            "{\"counters\":{\"c\":2},\"gauges\":{\"g\":0.5},"
            "\"histograms\":{\"h\":{\"buckets\":[[1,0]],\"inf\":1,"
            "\"sum\":3,\"count\":1,\"p50\":1,\"p90\":1,\"p99\":1}}}");
}

// Two identical seeded runs must register and count the exact same
// metrics: both export formats are deterministic byte-for-byte.
TEST(MetricsRegistry, SnapshotsAreDeterministicAcrossIdenticalRuns) {
  auto run = [] {
    obs::Observability hub;
    apps::MmConfig mm;
    mm.n = 48;
    exp::ExperimentConfig cfg;
    cfg.slaves = 3;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();
    cfg.world.seed = 1234;
    cfg.obs = &hub;
    exp::run_mm(mm, cfg);
    return std::pair<std::string, std::string>(hub.metrics.json_snapshot(),
                                               hub.metrics.prometheus_text());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_FALSE(a.first.empty());
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  // The run actually counted something.
  EXPECT_NE(a.second.find("lb_rounds"), std::string::npos);
  EXPECT_NE(a.second.find("sim_messages_sent"), std::string::npos);
}

}  // namespace
}  // namespace nowlb
