// Metrics registry: counter/gauge/histogram semantics, Prometheus text
// exposition (escaping, cumulative buckets), JSON snapshots, and snapshot
// determinism across two identical seeded simulation runs.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/harness.hpp"
#include "obs/obs.hpp"

namespace nowlb {
namespace {

TEST(Counter, IncrementsAndReads) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Histogram, BucketsAreUpperBoundInclusive) {
  obs::Histogram h({1.0, 10.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (le is inclusive, Prometheus convention)
  h.observe(5.0);   // <= 10
  h.observe(100.0); // +Inf
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
}

TEST(MetricsRegistry, ReRegistrationReturnsTheSameMetric) {
  obs::MetricsRegistry m;
  obs::Counter& a = m.counter("x", "first help wins");
  obs::Counter& b = m.counter("x", "ignored");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(m.find_counter("x")->value(), 3u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  obs::MetricsRegistry m;
  m.counter("x");
  EXPECT_THROW(m.gauge("x"), std::logic_error);
  EXPECT_THROW(m.histogram("x", {1.0}), std::logic_error);
}

TEST(MetricsRegistry, FindReturnsNullOnAbsentOrWrongKind) {
  obs::MetricsRegistry m;
  m.counter("c");
  EXPECT_EQ(m.find_counter("missing"), nullptr);
  EXPECT_EQ(m.find_gauge("c"), nullptr);
  EXPECT_NE(m.find_counter("c"), nullptr);
}

TEST(MetricsRegistry, PrometheusTextIsNameOrderedAndTyped) {
  obs::MetricsRegistry m;
  m.counter("zeta", "last").inc(7);
  m.gauge("alpha", "first").set(1.5);
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("# HELP alpha first\n# TYPE alpha gauge\nalpha 1.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE zeta counter\nzeta 7\n"), std::string::npos);
  EXPECT_LT(text.find("alpha"), text.find("zeta"));
}

TEST(MetricsRegistry, PrometheusHelpEscaping) {
  obs::MetricsRegistry m;
  m.counter("c", "line one\nback\\slash");
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("# HELP c line one\\nback\\\\slash\n"),
            std::string::npos);
}

TEST(MetricsRegistry, PrometheusHistogramIsCumulativeWithInf) {
  obs::MetricsRegistry m;
  obs::Histogram& h = m.histogram("lat", {0.25, 1.0}, "latency");
  h.observe(0.25);
  h.observe(0.5);
  h.observe(2.0);
  const std::string text = m.prometheus_text();
  EXPECT_NE(text.find("lat_bucket{le=\"0.25\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 2.75\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
}

TEST(MetricsRegistry, JsonSnapshotShape) {
  obs::MetricsRegistry m;
  m.counter("c").inc(2);
  m.gauge("g").set(0.5);
  m.histogram("h", {1.0}).observe(3.0);
  const std::string json = m.json_snapshot();
  EXPECT_EQ(json,
            "{\"counters\":{\"c\":2},\"gauges\":{\"g\":0.5},"
            "\"histograms\":{\"h\":{\"buckets\":[[1,0]],\"inf\":1,"
            "\"sum\":3,\"count\":1}}}");
}

// Two identical seeded runs must register and count the exact same
// metrics: both export formats are deterministic byte-for-byte.
TEST(MetricsRegistry, SnapshotsAreDeterministicAcrossIdenticalRuns) {
  auto run = [] {
    obs::Observability hub;
    apps::MmConfig mm;
    mm.n = 48;
    exp::ExperimentConfig cfg;
    cfg.slaves = 3;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();
    cfg.world.seed = 1234;
    cfg.obs = &hub;
    exp::run_mm(mm, cfg);
    return std::pair<std::string, std::string>(hub.metrics.json_snapshot(),
                                               hub.metrics.prometheus_text());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_FALSE(a.first.empty());
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  // The run actually counted something.
  EXPECT_NE(a.second.find("lb_rounds"), std::string::npos);
  EXPECT_NE(a.second.find("sim_messages_sent"), std::string::npos);
}

}  // namespace
}  // namespace nowlb
