// Decision ledger: one record per balancing round, explanation rendering,
// and the LedgerChecker cross-check (including its failure path on a
// ledger whose arithmetic does not add up).
#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include "check/checkers.hpp"
#include "check/invariant.hpp"
#include "exp/harness.hpp"
#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace nowlb {
namespace {

TEST(Gate, NamesAreStable) {
  EXPECT_STREQ(obs::gate_name(obs::Gate::kMove), "move");
  EXPECT_STREQ(obs::gate_name(obs::Gate::kBelowThreshold), "below-threshold");
  EXPECT_STREQ(obs::gate_name(obs::Gate::kNotProfitable), "not-profitable");
  EXPECT_STREQ(obs::gate_name(obs::Gate::kHold), "hold");
  EXPECT_STREQ(obs::gate_name(obs::Gate::kRecoveryFreeze), "recovery-freeze");
  EXPECT_STREQ(obs::gate_name(obs::Gate::kPhaseEnd), "phase-end");
  EXPECT_STREQ(obs::gate_name(obs::Gate::kFinalReports), "final-reports");
}

obs::DecisionRecord moved_record() {
  obs::DecisionRecord rec;
  rec.round = 3;
  rec.t = sim::from_seconds(1.5);
  rec.gate = obs::Gate::kMove;
  rec.reason = "rebalance";
  rec.raw_rates = {10.0, 30.0};
  rec.rates = {12.0, 28.0};
  rec.remaining = {30, 10};
  rec.target = {12, 28};
  rec.moves = {{0, 1, 18}};
  rec.improvement = 0.4;
  rec.projected_current_s = 3.0;
  rec.projected_new_s = 1.8;
  rec.est_move_cost_s = 0.1;
  rec.period_s = 0.5;
  return rec;
}

TEST(DecisionLedger, ExplainLineShowsGateRatesAndMoves) {
  const std::string line = obs::DecisionLedger::explain_line(moved_record());
  EXPECT_NE(line.find("round 3"), std::string::npos);
  EXPECT_NE(line.find("gate=move"), std::string::npos);
  EXPECT_NE(line.find("rebalance"), std::string::npos);
  EXPECT_NE(line.find("raw=[10 30]"), std::string::npos);
  EXPECT_NE(line.find("filtered=[12 28]"), std::string::npos);
  EXPECT_NE(line.find("0->1 x18"), std::string::npos);
}

TEST(DecisionLedger, ExplainCoversEveryRecord) {
  obs::DecisionLedger ledger;
  ledger.append(moved_record());
  obs::DecisionRecord held = moved_record();
  held.round = 4;
  held.gate = obs::Gate::kPhaseEnd;
  held.reason = "no work remaining";
  held.moves.clear();
  held.target = held.remaining;
  ledger.append(held);
  const std::string text = ledger.explain();
  EXPECT_NE(text.find("round 3"), std::string::npos);
  EXPECT_NE(text.find("round 4"), std::string::npos);
  EXPECT_NE(text.find("gate=phase-end"), std::string::npos);
}

// Every balancing round of a real run produces exactly one record — the
// --explain contract: nothing the master decided is missing.
TEST(DecisionLedger, OneRecordPerRoundInHarnessRuns) {
  for (const bool pipelined : {false, true}) {
    obs::Observability hub;
    apps::MmConfig mm;
    mm.n = 64;
    exp::ExperimentConfig cfg;
    cfg.slaves = 4;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();
    cfg.lb.pipelined = pipelined;
    cfg.obs = &hub;
    const exp::Measurement m = exp::run_mm(mm, cfg);
    EXPECT_EQ(hub.ledger.records().size(),
              static_cast<std::size_t>(m.stats.rounds))
        << "pipelined=" << pipelined;
    std::uint64_t round = 0;
    for (const obs::DecisionRecord& rec : hub.ledger.records()) {
      EXPECT_EQ(rec.round, ++round);
    }
  }
}

TEST(LedgerChecker, AcceptsConsistentLedger) {
  obs::DecisionLedger ledger;
  check::InvariantSet set;
  set.add(std::make_unique<check::LedgerChecker>(&ledger));
  ledger.append(moved_record());
  set.on_master_reports(0, 1, {}, {});
  set.on_run_end(sim::from_seconds(2.0));
  EXPECT_TRUE(set.ok()) << set.report();
}

TEST(LedgerChecker, FlagsMovesThatDoNotAddUp) {
  obs::DecisionLedger ledger;
  check::InvariantSet set;
  set.add(std::make_unique<check::LedgerChecker>(&ledger));
  obs::DecisionRecord bad = moved_record();
  bad.moves = {{0, 1, 5}};  // target - remaining is +/-18, not 5
  ledger.append(bad);
  set.on_master_reports(0, 1, {}, {});
  set.on_run_end(sim::from_seconds(2.0));
  ASSERT_FALSE(set.ok());
  EXPECT_NE(set.failures()[0].message.find("ordered flow"),
            std::string::npos);
}

TEST(LedgerChecker, FlagsCancelledRoundsThatOrderMoves) {
  obs::DecisionLedger ledger;
  check::InvariantSet set;
  set.add(std::make_unique<check::LedgerChecker>(&ledger));
  obs::DecisionRecord bad = moved_record();
  bad.gate = obs::Gate::kBelowThreshold;  // cancelled, but moves remain
  ledger.append(bad);
  set.on_master_reports(0, 1, {}, {});
  set.on_run_end(sim::from_seconds(2.0));
  ASSERT_FALSE(set.ok());
}

TEST(LedgerChecker, FlagsMissingRecords) {
  obs::DecisionLedger ledger;
  check::InvariantSet set;
  set.add(std::make_unique<check::LedgerChecker>(&ledger));
  set.on_master_reports(0, 1, {}, {});  // a collection with no record
  set.on_run_end(sim::from_seconds(1.0));
  ASSERT_FALSE(set.ok());
  EXPECT_NE(set.failures()[0].message.find("report collection"),
            std::string::npos);
}

TEST(LedgerChecker, SkipsRecordsFromEarlierRuns) {
  obs::DecisionLedger ledger;
  ledger.append(moved_record());  // pre-existing (shared hub)
  check::InvariantSet set;
  set.add(std::make_unique<check::LedgerChecker>(&ledger));
  ledger.append(moved_record());
  set.on_master_reports(0, 1, {}, {});
  set.on_run_end(sim::from_seconds(2.0));
  EXPECT_TRUE(set.ok()) << set.report();
}

}  // namespace
}  // namespace nowlb
