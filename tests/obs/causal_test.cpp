// Causal round DAG tests (DESIGN.md §13): well-formedness of graphs
// reconstructed from clean and crash-fault runs, determinism with causal
// wire propagation on, the runfile round-trip `nowlb-inspect` relies on,
// and the critical-path walk.
#include "obs/causal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "check/scenario.hpp"
#include "obs/critical_path.hpp"
#include "obs/obs.hpp"
#include "obs/runfile.hpp"
#include "sim/time.hpp"

namespace nowlb {
namespace {

std::string problems_of(const obs::CausalGraph& g) {
  std::ostringstream os;
  for (const std::string& p : g.problems) os << p << "\n";
  return os.str();
}

check::FuzzResult run_with_hub(check::Scenario& sc, obs::Observability& hub) {
  return check::run_scenario(sc, check::InvariantSet::Fault::kNone, &hub);
}

TEST(CausalGraph, CleanRunIsWellFormed) {
  for (const check::App app :
       {check::App::kMm, check::App::kSor, check::App::kLu}) {
    check::Scenario sc = check::generate_scenario(11, app);
    obs::Observability hub;
    const check::FuzzResult res = run_with_hub(sc, hub);
    ASSERT_TRUE(res.ok) << sc.describe();
    const obs::CausalGraph g = obs::build_causal_graph(hub.trace, hub.ledger);
    EXPECT_TRUE(g.well_formed()) << app_name(app) << "\n" << problems_of(g);
    EXPECT_EQ(g.nranks, sc.slaves) << app_name(app);
    EXPECT_FALSE(g.rounds.empty()) << app_name(app);
    EXPECT_FALSE(g.spans.empty()) << app_name(app);
    EXPECT_TRUE(g.evicted.empty()) << app_name(app);
    EXPECT_GT(g.total_compute_s(), 0.0);
    EXPECT_GT(g.efficiency(), 0.0);
    EXPECT_LE(g.efficiency(), 1.0 + 1e-9);
    for (const obs::RoundBreakdown& r : g.rounds) {
      EXPECT_GE(r.compute_s, 0.0);
      EXPECT_GE(r.blocked_s, 0.0);
      EXPECT_GE(r.transport_s, 0.0);
      EXPECT_GE(r.decision_s, 0.0);
      EXPECT_GE(r.migration_s, 0.0);
      EXPECT_GE(r.t_end, r.t_begin);
    }
  }
}

// Causal wire propagation on: every migration span must carry the round
// whose instructions ordered it, and report/instruction transits join up.
TEST(CausalGraph, CausalWireRunAttributesMigrations) {
  check::Scenario sc = check::generate_scenario(3, check::App::kMm);
  sc.lb.causal = true;
  obs::Observability hub;
  const check::FuzzResult res = run_with_hub(sc, hub);
  ASSERT_TRUE(res.ok) << sc.describe();
  const obs::CausalGraph g = obs::build_causal_graph(hub.trace, hub.ledger);
  EXPECT_TRUE(g.well_formed()) << problems_of(g);
  bool saw_transit = false;
  for (const obs::CausalSpan& s : g.spans) {
    EXPECT_GE(s.dur(), 0);
    if (s.kind == obs::SpanKind::kReportTransit ||
        s.kind == obs::SpanKind::kInstrTransit) {
      saw_transit = true;
    }
    if (s.kind == obs::SpanKind::kMigration) {
      EXPECT_GT(s.round, 0) << "migration not attributed to a round";
      EXPECT_GE(s.rank, 0);
      EXPECT_GE(s.peer, 0);
    }
  }
  EXPECT_TRUE(saw_transit);
}

// The feature gate must not perturb determinism in either state: with
// causal wire propagation on, the run replays bit-identically, and the
// recorder stays pure observation.
TEST(CausalGraph, CausalWireRunsAreDeterministic) {
  auto run_once = [](obs::Observability* hub) {
    check::Scenario sc = check::generate_scenario(5, check::App::kMm);
    sc.lb.causal = true;
    return check::run_scenario(sc, check::InvariantSet::Fault::kNone, hub);
  };
  const check::FuzzResult bare = run_once(nullptr);
  obs::Observability hub_a;
  obs::Observability hub_b;
  const check::FuzzResult a = run_once(&hub_a);
  const check::FuzzResult b = run_once(&hub_b);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.trace_hash, bare.trace_hash);
  EXPECT_EQ(hub_a.trace.events().size(), hub_b.trace.events().size());
}

// A slave killed mid-round must leave a recoverable DAG: the evicted
// rank's subgraph simply terminates, with no events after the eviction.
TEST(CausalGraph, KillSlaveRunStaysWellFormed) {
  for (const bool causal : {false, true}) {
    check::FaultPlan plan;
    plan.drop_rate = 0.05;
    plan.dup_rate = 0.02;
    plan.reorder_delay = 500 * sim::kMicrosecond;
    plan.kill_rank = 1;
    plan.kill_round = 3;
    check::Scenario sc = check::generate_scenario(7, check::App::kMm);
    check::apply_fault_plan(sc, plan);
    sc.lb.causal = causal;
    ASSERT_GE(sc.slaves, 2);
    obs::Observability hub;
    const check::FuzzResult res = run_with_hub(sc, hub);
    ASSERT_TRUE(res.ok) << sc.describe();
    const obs::CausalGraph g = obs::build_causal_graph(hub.trace, hub.ledger);
    EXPECT_TRUE(g.well_formed()) << "causal=" << causal << "\n"
                                 << problems_of(g);
    EXPECT_EQ(g.evicted, std::vector<int>{1}) << "causal=" << causal;
  }
}

TEST(CausalGraph, ValidatorFlagsNonMonotoneRoundsAndNegativeSpans) {
  obs::TraceBus bus;
  obs::DecisionLedger ledger;
  bus.complete(0, 100, 1, 1, "cz", "cz.window", {"rank", 0.0}, {"round", 2.0},
               {"blocked", 0.0});
  bus.complete(100, 200, 1, 1, "cz", "cz.window", {"rank", 0.0},
               {"round", 1.0}, {"blocked", 0.0});
  bus.complete(300, 250, 1, 1, "cz", "cz.window", {"rank", 0.0},
               {"round", 3.0}, {"blocked", 0.0});
  const obs::CausalGraph g = obs::build_causal_graph(bus, ledger);
  EXPECT_FALSE(g.well_formed());
  bool saw_monotone = false;
  bool saw_negative = false;
  for (const std::string& p : g.problems) {
    saw_monotone = saw_monotone || p.find("not monotone") != std::string::npos;
    saw_negative = saw_negative || p.find("negative") != std::string::npos;
  }
  EXPECT_TRUE(saw_monotone) << problems_of(g);
  EXPECT_TRUE(saw_negative) << problems_of(g);
}

TEST(CausalGraph, ValidatorFlagsInstructionWithoutReport) {
  obs::TraceBus bus;
  obs::DecisionLedger ledger;
  // An applied instruction on rank 0 round 1 with no report anywhere.
  bus.instant(50, 1, 1, "lb", "slave.instr", {"rank", 0.0}, {"round", 1.0});
  const obs::CausalGraph g = obs::build_causal_graph(bus, ledger);
  EXPECT_FALSE(g.well_formed());
  ASSERT_FALSE(g.problems.empty());
  EXPECT_NE(g.problems.front().find("no matching report"), std::string::npos);

  // The same orphaned application on an evicted rank is fine: its round
  // subgraph terminated with the crash.
  obs::TraceBus bus2;
  bus2.instant(50, 1, 1, "lb", "slave.instr", {"rank", 0.0}, {"round", 1.0});
  bus2.instant(60, 0, 0, "lb", "lb.evict", {"rank", 0.0});
  const obs::CausalGraph g2 = obs::build_causal_graph(bus2, ledger);
  EXPECT_TRUE(g2.well_formed()) << problems_of(g2);
}

TEST(CriticalPath, CoversTheRunAndOrdersSteps) {
  check::Scenario sc = check::generate_scenario(11, check::App::kMm);
  sc.lb.causal = true;
  obs::Observability hub;
  const check::FuzzResult res = run_with_hub(sc, hub);
  ASSERT_TRUE(res.ok);
  const obs::CausalGraph g = obs::build_causal_graph(hub.trace, hub.ledger);
  const obs::CriticalPath path = obs::critical_path(g);
  ASSERT_FALSE(path.steps.empty());
  for (std::size_t i = 1; i < path.steps.size(); ++i) {
    EXPECT_LE(path.steps[i - 1].begin, path.steps[i].begin);
  }
  // The path cannot be longer than the wall it explains.
  EXPECT_LE(sim::to_seconds(path.length()), g.wall_s() + 1e-9);
  EXPECT_GT(sim::to_seconds(path.length()), 0.0);

  const auto edges = obs::top_edges(path, 3);
  ASSERT_FALSE(edges.empty());
  EXPECT_LE(edges.size(), 3u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GE(edges[i - 1].total, edges[i].total);  // heaviest first
  }
  int steps = 0;
  for (const auto& e : edges) steps += e.count;
  EXPECT_LE(steps, static_cast<int>(path.steps.size()));
}

TEST(Runfile, RoundtripPreservesTheGraph) {
  check::Scenario sc = check::generate_scenario(3, check::App::kMm);
  sc.lb.causal = true;
  obs::Observability hub;
  const check::FuzzResult res = run_with_hub(sc, hub);
  ASSERT_TRUE(res.ok);
  const obs::CausalGraph before =
      obs::build_causal_graph(hub.trace, hub.ledger);

  std::ostringstream os;
  obs::write_runfile(os, hub.trace, hub.ledger,
                     {{"app", "mm"}, {"note", "roundtrip"}});
  std::istringstream is(os.str());
  obs::LoadedRun run;
  std::string error;
  ASSERT_TRUE(obs::load_runfile(is, run, error)) << error;
  EXPECT_EQ(run.meta.at("app"), "mm");
  EXPECT_EQ(run.ledger.records().size(), hub.ledger.records().size());

  const obs::CausalGraph after = obs::build_causal_graph(run.trace, run.ledger);
  EXPECT_TRUE(after.well_formed()) << problems_of(after);
  EXPECT_EQ(after.nranks, before.nranks);
  ASSERT_EQ(after.rounds.size(), before.rounds.size());
  EXPECT_EQ(after.spans.size(), before.spans.size());
  for (std::size_t i = 0; i < after.rounds.size(); ++i) {
    EXPECT_EQ(after.rounds[i].round, before.rounds[i].round);
    EXPECT_EQ(after.rounds[i].units_moved, before.rounds[i].units_moved);
    EXPECT_NEAR(after.rounds[i].efficiency, before.rounds[i].efficiency,
                1e-12);
  }
  EXPECT_NEAR(after.efficiency(), before.efficiency(), 1e-12);

  // Writing the loaded run again reproduces the exact same file: the
  // format is canonical, so runfiles can be diffed byte-for-byte.
  std::ostringstream os2;
  obs::write_runfile(os2, run.trace, run.ledger, run.meta);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(Runfile, MalformedInputsAreRejectedWithLineNumbers) {
  auto rejects = [](const std::string& text, const char* needle) {
    std::istringstream is(text);
    obs::LoadedRun run;
    std::string error;
    EXPECT_FALSE(obs::load_runfile(is, run, error)) << text;
    EXPECT_NE(error.find(needle), std::string::npos) << error;
  };
  rejects("", "empty input");
  rejects("garbage\n", "bad header");
  rejects("nowlb-run 1\nwat 1 2\nend events=0 ledger=0\n",
          "unknown directive");
  rejects("nowlb-run 1\ne i 5 0 1 1 cz cz.window\n", "missing end trailer");
  // Trailer counts catch truncation.
  rejects("nowlb-run 1\nend events=3 ledger=0\n", "count mismatch");
  rejects("nowlb-run 1\ne i 5 0 1 1 cz cz.window rank=x\n",
          "bad numeric arg value");
  rejects("nowlb-run 1\nledger 1 0 99 0 0.1 0.2 ok\nend events=0 ledger=1\n",
          "gate out of range");
  rejects("nowlb-run 1\nend events=0 ledger=0\ntrailing\n",
          "content after end");
}

}  // namespace
}  // namespace nowlb
