// Trace bus and Chrome trace_event exporter: event capture, capacity cap,
// JSON structure (metadata, instants, complete spans, escaping), monotonic
// timestamps, pid/tid -> host/lane mapping, and the zero-perturbation
// guarantee (attaching the recorder never changes the dispatched event
// sequence of a simulation).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "check/scenario.hpp"
#include "exp/harness.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "sim/time.hpp"

namespace nowlb {
namespace {

TEST(TraceBus, CapturesInstantsAndSpans) {
  obs::TraceBus bus;
  bus.instant(5 * sim::kMicrosecond, 1, 2, "msg", "msg.send",
              {"bytes", 64.0});
  bus.complete(sim::kMicrosecond, 3 * sim::kMicrosecond, 0, 1, "tx",
               "tx.drain");
  ASSERT_EQ(bus.events().size(), 2u);
  EXPECT_EQ(bus.events()[0].phase, obs::TraceEvent::Phase::kInstant);
  EXPECT_STREQ(bus.events()[0].a0.key, "bytes");
  EXPECT_EQ(bus.events()[1].phase, obs::TraceEvent::Phase::kComplete);
  EXPECT_EQ(bus.events()[1].dur, 2 * sim::kMicrosecond);
  EXPECT_EQ(bus.dropped(), 0u);
}

TEST(TraceBus, CapacityCapCountsDrops) {
  obs::TraceBus bus;
  bus.set_capacity(2);
  for (int i = 0; i < 5; ++i) bus.instant(i, 0, 0, "c", "n");
  EXPECT_EQ(bus.events().size(), 2u);
  EXPECT_EQ(bus.dropped(), 3u);
  bus.clear();
  EXPECT_TRUE(bus.events().empty());
  EXPECT_EQ(bus.dropped(), 0u);
}

TEST(ChromeTrace, EmitsMetadataEventsAndArgs) {
  obs::TraceBus bus;
  bus.name_host(3, "host3");
  bus.name_lane(3, 7, "slave\"2\"");  // exercises string escaping
  bus.instant(1500, 3, 7, "lb", "lb.report", {"rank", 2.0});
  bus.complete(0, 2 * sim::kMicrosecond, 3, 7, "lb", "lb.round");
  std::ostringstream os;
  obs::write_chrome_trace(os, bus);
  const std::string json = os.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":3,"
                      "\"tid\":0,\"args\":{\"name\":\"host3\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":3,"
                      "\"tid\":7,\"args\":{\"name\":\"slave\\\"2\\\"\"}"),
            std::string::npos);
  // 1500 ns is not a whole microsecond: fractional ts with 3 decimals.
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":1.500,\"s\":\"t\",\"pid\":3,"
                      "\"tid\":7,\"args\":{\"rank\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":0,\"dur\":2,"), std::string::npos);
}

TEST(ChromeTrace, TimestampsAreSortedAndNonNegative) {
  // Interleave two "runs" on one bus (fig5 --trace shares a hub).
  obs::TraceBus bus;
  bus.instant(9 * sim::kMicrosecond, 0, 0, "c", "late");
  bus.instant(1 * sim::kMicrosecond, 0, 0, "c", "early");
  std::ostringstream os;
  obs::write_chrome_trace(os, bus);
  const std::string json = os.str();
  EXPECT_LT(json.find("early"), json.find("late"));
}

// End-to-end: a simulated run through the harness emits a loadable trace
// whose ts values are monotonic and whose pid/tid pairs are all named.
TEST(ChromeTrace, HarnessRunExportsNamedMonotonicTrace) {
  obs::Observability hub;
  apps::MmConfig mm;
  mm.n = 48;
  exp::ExperimentConfig cfg;
  cfg.slaves = 3;
  cfg.world = exp::paper_world();
  cfg.lb = exp::paper_lb();
  cfg.obs = &hub;
  exp::run_mm(mm, cfg);

  ASSERT_FALSE(hub.trace.events().empty());
  EXPECT_EQ(hub.trace.dropped(), 0u);
  // Every event's (host, lane) has thread_name metadata (the rank/agent
  // mapping Perfetto shows), and every host is named.
  for (const obs::TraceEvent& e : hub.trace.events()) {
    EXPECT_TRUE(hub.trace.lanes().count({e.host, e.lane}) == 1 ||
                hub.trace.hosts().count(e.host) == 1)
        << "unnamed pid/tid " << e.host << "/" << e.lane;
    EXPECT_GE(e.t, 0);
    EXPECT_GE(e.dur, 0);
  }
  std::ostringstream os;
  obs::write_chrome_trace(os, hub.trace);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"master\""), std::string::npos);
  EXPECT_NE(json.find("\"slave0\""), std::string::npos);
  EXPECT_NE(json.find("\"lb.decision\""), std::string::npos);
  EXPECT_NE(json.find("\"msg.send\""), std::string::npos);
}

// Per-category sampling: a deterministic keep-every-Nth decimation of the
// bulky categories so 10k-host runs fit the flight-recorder bound.
TEST(TraceBus, PerCategorySamplingIsDeterministicKeepEveryNth) {
  obs::TraceBus bus;
  bus.set_sampling("msg", 3);
  for (int i = 0; i < 9; ++i) {
    bus.instant(i, 0, 0, "msg", "msg.send", {"i", static_cast<double>(i)});
    bus.instant(i, 0, 0, "lb", "lb.report");  // untouched category
  }
  // Every 3rd msg event kept (the 1st, 4th, 7th), all lb events kept.
  ASSERT_EQ(bus.events().size(), 3u + 9u);
  EXPECT_EQ(bus.sampled_out(), 6u);
  EXPECT_EQ(bus.dropped(), 0u);  // sampling is not a capacity drop
  std::vector<double> kept;
  for (const auto& e : bus.events()) {
    if (std::string(e.cat) == "msg") kept.push_back(e.a0.value);
  }
  EXPECT_EQ(kept, (std::vector<double>{0, 3, 6}));
}

TEST(TraceBus, SamplingZeroDropsTheCategoryAndClearRearms) {
  obs::TraceBus bus;
  bus.set_sampling("msg", 0);
  bus.instant(1, 0, 0, "msg", "msg.send");
  bus.instant(2, 0, 0, "cz", "cz.window");
  ASSERT_EQ(bus.events().size(), 1u);
  EXPECT_STREQ(bus.events()[0].cat, "cz");
  EXPECT_EQ(bus.sampled_out(), 1u);

  // clear() resets the phase so a re-used bus samples identically.
  bus.set_sampling("msg", 2);
  bus.clear();
  EXPECT_EQ(bus.sampled_out(), 0u);
  for (int i = 0; i < 4; ++i) bus.instant(i, 0, 0, "msg", "msg.send");
  EXPECT_EQ(bus.events().size(), 2u);  // kept the 1st and 3rd again
}

// The acceptance property: a seeded run dispatches the bit-identical
// event sequence with the flight recorder attached and without.
TEST(ZeroPerturbation, TraceHashIsIdenticalWithRecorderAttached) {
  for (const check::App app : {check::App::kMm, check::App::kSor}) {
    const check::Scenario sc = check::generate_scenario(11, app);
    const check::FuzzResult bare = check::run_scenario(sc);
    obs::Observability hub;
    const check::FuzzResult rec =
        check::run_scenario(sc, check::InvariantSet::Fault::kNone, &hub);
    EXPECT_EQ(bare.trace_hash, rec.trace_hash) << app_name(app);
    EXPECT_TRUE(rec.ok);
    EXPECT_FALSE(hub.trace.events().empty());
  }
}

}  // namespace
}  // namespace nowlb
