// Compiler-layer tests: grain-size control, hook placement, spec analysis.
#include <gtest/gtest.h>

#include "loop/grain.hpp"
#include "loop/hooks.hpp"
#include "loop/spec.hpp"
#include "sim/world.hpp"

namespace nowlb::loop {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TEST(Grain, TargetIsOneAndAHalfQuanta) {
  EXPECT_EQ(grain_target(100 * kMillisecond), 150 * kMillisecond);
}

TEST(Grain, BlockSizeDividesTargetByIterationCost) {
  EXPECT_EQ(block_size_for(150 * kMillisecond, 10 * kMillisecond, 1000), 15);
}

TEST(Grain, BlockSizeClampedToOne) {
  EXPECT_EQ(block_size_for(150 * kMillisecond, kSecond, 1000), 1);
}

TEST(Grain, BlockSizeClampedToExtent) {
  EXPECT_EQ(block_size_for(kSecond, kMillisecond, 20), 20);
}

TEST(Grain, CalibrationMeasuresIterations) {
  sim::World w;
  auto& h = w.add_host();
  int measured = -1;
  w.spawn(h, "calib", [&](sim::Context& ctx) -> sim::Task<> {
    measured = co_await calibrate_block_size(
        ctx, /*quantum=*/100 * kMillisecond, /*extent=*/1000,
        /*measure_iters=*/3, [&](int) -> sim::Task<> {
          co_await ctx.compute(10 * kMillisecond);  // true per-iter cost
        });
  });
  w.run();
  EXPECT_EQ(measured, 15);  // 150 ms / 10 ms
}

TEST(Hooks, PicksDeepestAffordableLevel) {
  // Hook overhead 20 us; 1% rule needs body cost >= 2 ms.
  std::vector<HookLevel> levels{
      {"outer", 10 * kSecond},
      {"strip", 100 * kMillisecond},
      {"iteration", 500 * sim::kMicrosecond},  // too cheap: 4% overhead
  };
  EXPECT_EQ(place_hook(levels), 1);
}

TEST(Hooks, AllLevelsAffordablePicksInnermost) {
  std::vector<HookLevel> levels{{"outer", kSecond}, {"inner", 100 * kMillisecond}};
  EXPECT_EQ(place_hook(levels), 1);
}

TEST(Hooks, DegenerateNestFallsBackToOutermost) {
  std::vector<HookLevel> levels{{"outer", 100 * sim::kMicrosecond}};
  EXPECT_EQ(place_hook(levels), 0);
}

TEST(Hooks, CustomFractionChangesChoice) {
  std::vector<HookLevel> levels{
      {"outer", kSecond},
      {"inner", kMillisecond},
  };
  EXPECT_EQ(place_hook(levels, 20 * sim::kMicrosecond, 0.01), 0);
  EXPECT_EQ(place_hook(levels, 20 * sim::kMicrosecond, 0.05), 1);
}

TEST(Analysis, VaryingBoundsDetected) {
  LoopNestSpec spec;
  spec.name = "tri";
  spec.distributed_extent = 10;
  spec.outer_iters = 5;
  spec.bounds = [](int k) { return data::SliceRange{k, 10}; };
  EXPECT_TRUE(analyze(spec).varying_loop_bounds);
}

TEST(Analysis, StaticBoundsNotFlagged) {
  LoopNestSpec spec;
  spec.name = "flat";
  spec.distributed_extent = 10;
  spec.outer_iters = 5;
  spec.bounds = [](int) { return data::SliceRange{0, 10}; };
  EXPECT_FALSE(analyze(spec).varying_loop_bounds);
}

TEST(Analysis, SingleInvocationNotRepeated) {
  LoopNestSpec spec;
  spec.distributed_extent = 10;
  spec.outer_iters = 1;
  EXPECT_FALSE(analyze(spec).repeated_execution);
}

}  // namespace
}  // namespace nowlb::loop
