#include <gtest/gtest.h>

#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nowlb {
namespace {

TEST(Check, PassesSilently) { NOWLB_CHECK(1 + 1 == 2); }

TEST(Check, ThrowsWithContext) {
  try {
    NOWLB_CHECK(false, "value=" << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("value=42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  acc.add(3.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 1.0);
  EXPECT_DOUBLE_EQ(acc.range_halfwidth(), 1.0);
}

TEST(Stats, EmptyAccumulatorIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Table, AlignsAndPrints) {
  Table t("demo");
  t.header({"name", "value"});
  t.row().cell("alpha").cell(3.14159, 2);
  t.row().cell("b").cell(42LL);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvRoundtrip) {
  Table t("demo");
  t.header({"a", "b"});
  t.row().cell(1LL).cell(2LL);
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CellBeforeRowThrows) {
  Table t("demo");
  EXPECT_THROW(t.cell("x"), CheckFailure);
}

TEST(AsciiChart, RendersNonEmpty) {
  std::vector<double> t{0, 1, 2, 3}, v{0, 1, 0, 1};
  const std::string s = ascii_chart(t, v, 20, 5, "wave");
  EXPECT_NE(s.find("wave"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n=5", "--rate=2.5", "--verbose", "pos1"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("quiet", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, FallbacksApply) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("missing", 9), 9);
}

/// Scoped fixture: captures log output and restores every global knob.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Log::set_sink(&captured_);
    Log::set_level(LogLevel::Warn);
    Log::clear_component_levels();
  }
  void TearDown() override {
    Log::set_sink(&std::cerr);
    Log::set_level(LogLevel::Warn);
    Log::clear_component_levels();
    Log::clear_time_source(this);
  }
  std::string text() const { return captured_.str(); }
  std::ostringstream captured_;
};

TEST_F(LogTest, GlobalLevelFilters) {
  NOWLB_LOG(Debug, "comp") << "hidden";
  NOWLB_LOG(Warn, "comp") << "shown";
  EXPECT_EQ(text().find("hidden"), std::string::npos);
  EXPECT_NE(text().find("[WARN] [comp] shown"), std::string::npos);
}

TEST_F(LogTest, PerComponentOverrideRaisesOneComponent) {
  Log::set_level("transport", LogLevel::Debug);
  NOWLB_LOG(Debug, "transport") << "verbose transport";
  NOWLB_LOG(Debug, "lb.master") << "still quiet";
  EXPECT_NE(text().find("verbose transport"), std::string::npos);
  EXPECT_EQ(text().find("still quiet"), std::string::npos);
  Log::clear_component_levels();
  NOWLB_LOG(Debug, "transport") << "quiet again";
  EXPECT_EQ(text().find("quiet again"), std::string::npos);
}

TEST_F(LogTest, ComponentOverrideNeverSuppressesGlobalLevel) {
  Log::set_level("transport", LogLevel::Error);
  NOWLB_LOG(Warn, "transport") << "warn stays on";
  EXPECT_NE(text().find("warn stays on"), std::string::npos);
}

TEST_F(LogTest, TimeSourcePrefixesSimulatedSeconds) {
  Log::set_time_source([](void*) { return 12.345678; }, this);
  NOWLB_LOG(Warn, "comp") << "stamped";
  EXPECT_NE(text().find("[t=12.345678s] [WARN] [comp] stamped"),
            std::string::npos);
  Log::clear_time_source(this);
  NOWLB_LOG(Warn, "comp") << "bare";
  EXPECT_EQ(text().find("[t=12.345678s] [WARN] [comp] bare"),
            std::string::npos);
}

TEST_F(LogTest, ClearTimeSourceIgnoresWrongOwner) {
  Log::set_time_source([](void*) { return 1.0; }, this);
  int other = 0;
  Log::clear_time_source(&other);
  EXPECT_TRUE(Log::has_time_source());
  Log::clear_time_source(this);
  EXPECT_FALSE(Log::has_time_source());
}

}  // namespace
}  // namespace nowlb
