// D003 + S001 fixture: unordered containers and suppression hygiene.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fx {

struct Registry {
  // Fresh finding: no whitelist entry, no suppression.
  std::unordered_map<int, int> by_id;

  // Properly suppressed: justified, so no finding.
  std::unordered_set<int> seen;  // NOLINT(nowlb-unordered: membership only, never iterated)

  // Reason missing: the suppression is void (D003 fires) and the NOLINT
  // itself is an S001 finding.
  std::unordered_map<int, std::string> names;  // NOLINT(nowlb-unordered)
};

}  // namespace fx
