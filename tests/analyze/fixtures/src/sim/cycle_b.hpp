// L002 fixture, half two: closes the cycle back to cycle_a.hpp.
#pragma once

#include "sim/cycle_a.hpp"

namespace fx {
struct B {
  int payload = 0;
};
}  // namespace fx
