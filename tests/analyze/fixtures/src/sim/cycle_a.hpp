// L002 fixture, half one: includes its own includer.
#pragma once

#include "sim/cycle_b.hpp"

namespace fx {
struct A {
  int payload = 0;
};
}  // namespace fx
