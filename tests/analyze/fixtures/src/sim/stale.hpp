// S-rule fixture: suppression hygiene — used, stale, acknowledged-stale,
// and unknown-rule NOLINTs.
#pragma once

#include <map>

namespace simfx {

// Used: D003 fires on the next line and this suppression absorbs it.
// NOLINTNEXTLINE(nowlb-unordered: bounded debug map, never iterated for output)
std::unordered_map<int, int> debug_map();

// Stale: nothing on this line trips D001 any more -> S002.
int zero();  // NOLINT(nowlb-wallclock: guard kept after the clock call moved)

// Stale but acknowledged: the S002 finding is itself suppressed.
int one();  // NOLINT(nowlb-entropy: migration leftover) NOLINT(nowlb-nolint-stale: acknowledged while the entropy shim migrates)

// Unknown rule name: S001.
int two();  // NOLINT(nowlb-made-up: no such rule)

}  // namespace simfx
