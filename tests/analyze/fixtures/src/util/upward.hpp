// L001 fixture: util (layer 0) reaching up into lb (layer 5).
#pragma once

#include "lb/orders.hpp"

namespace fx {
inline int peek_tag() { return lbfx::kTagGood; }
}  // namespace fx
