// D002 fixture: raw entropy sources outside util/rng.hpp.
#include <cstdlib>
#include <random>

namespace fx {

int roll() {
  std::random_device rd;                         // D002
  std::mt19937 gen(rd());                        // D002 (x2 on two lines)
  return static_cast<int>(gen() % 6) + rand();   // D002 (rand call)
}

// Identifier containing the token as a substring must not fire.
int rand_like_counter = 0;
int bump() { return ++rand_like_counter; }

}  // namespace fx
