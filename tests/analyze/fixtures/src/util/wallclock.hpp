// D001 fixture: every host-clock read below must be flagged; the mentions
// inside this comment (system_clock, time()) must not be.
#pragma once

#include <chrono>
#include <ctime>

namespace fx {

inline double now_seconds() {
  auto t = std::chrono::steady_clock::now();          // D001
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

inline long stamp() { return time(nullptr); }         // D001

inline long ticks() { return clock(); }               // D001

// A member call spelled like the libc function is fine: the engine's
// virtual clock is the whole point.
struct Engine {
  long now = 0;
  long time_() const { return now; }
};
inline long ok(const Engine& e) { return e.time_(); }

// String mention must not fire either.
inline const char* label() { return "system_clock"; }

}  // namespace fx
