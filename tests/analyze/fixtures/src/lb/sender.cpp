// P-rule fixture: the dispatch side for orders.hpp's tags.
#include "lb/orders.hpp"

namespace lbfx {

struct Ctx {
  void send(int dst, sim::Tag tag) { (void)dst, (void)tag; }
  int recv(sim::Tag tag) { return tag; }
};

void pump(Ctx& ctx) {
  ctx.send(1, kTagGood);
  ctx.send(1, kTagBlast);  // send-only: never matched on receive
  while (ctx.recv(kTagGood) != 0) {
  }
}

}  // namespace lbfx
