// W/T-rule fixture: a fully symmetric wire contract — nested struct
// vectors, a scalar vector, and an optional marker trailer. Must produce
// zero findings: every shape here also appears in src/lb/protocol.hpp.
#pragma once

#include "lb/wire.hpp"

namespace lbfx {

inline constexpr std::uint8_t kTrailerOpt = 9;

struct Part {
  std::int32_t id = 0;
  double weight = 0;

  static constexpr std::size_t encoded_size() {
    return sizeof(id) + sizeof(weight);
  }
  void encode(msg::Writer& w) const { w.put(id).put(weight); }
  static Part decode(msg::Reader& r) {
    Part p;
    p.id = r.get<std::int32_t>();
    p.weight = r.get<double>();
    return p;
  }
};

struct CleanMsg {
  std::int32_t round = 0;
  std::vector<Part> parts;
  std::vector<std::int32_t> items;

  std::uint8_t opt = 0;
  std::int32_t opt_val = 0;

  std::size_t encoded_size() const {
    std::size_t n = sizeof(round) + sizeof(std::uint32_t) +
                    parts.size() * Part::encoded_size() +
                    sizeof(std::uint64_t) + items.size() * sizeof(std::int32_t);
    if (opt) n += sizeof(kTrailerOpt) + sizeof(opt_val);
    return n;
  }

  void encode(msg::Writer& w) const {
    w.put(round);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(parts.size()));
    for (const auto& p : parts) p.encode(w);
    w.put_vec(items);
    if (opt) {
      w.put(kTrailerOpt);
      w.put(opt_val);
    }
  }
  static CleanMsg decode(msg::Reader& r) {
    CleanMsg m;
    m.round = r.get<std::int32_t>();
    const auto n = r.get<std::uint32_t>();
    m.parts.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) m.parts.push_back(Part::decode(r));
    m.items = r.get_vec<std::int32_t>();
    while (r.remaining() > 0) {
      const auto marker = r.get<std::uint8_t>();
      if (marker == kTrailerOpt) {
        m.opt = 1;
        m.opt_val = r.get<std::int32_t>();
      } else {
        return m;
      }
    }
    return m;
  }
};

}  // namespace lbfx
