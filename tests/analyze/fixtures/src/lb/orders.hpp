// P-rule fixture: three wire tags with three fates.
#pragma once

namespace sim {
using Tag = int;
}

namespace lbfx {

// Declared, sent, and examined on the receive side (sender.cpp): clean.
inline constexpr sim::Tag kTagGood = 7001;

// Declared and sent, but no recv/comparison anywhere: P002.
inline constexpr sim::Tag kTagBlast = 7002;

// Declared and never referenced again: P001.
inline constexpr sim::Tag kTagOrphan = 7003;

}  // namespace lbfx
