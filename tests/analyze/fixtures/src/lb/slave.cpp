// F-rule fixture: the slave half of the configured endpoint pair.
#include "lb/orders.hpp"

namespace lbfx {

struct SlaveCtx {
  int recv(sim::Tag tag);
};

void slave_pump(SlaveCtx& ctx) {
  while (ctx.recv(kTagPaired) != 0) {
  }
  if (ctx.recv(kTagUnsent) == kTagUnsent) {
  }
}

}  // namespace lbfx
