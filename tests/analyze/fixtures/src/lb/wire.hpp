// W/T-rule fixture: wire structs with deliberate contract drift.
#pragma once

#include "lb/orders.hpp"

namespace msg {
struct Writer;
struct Reader;
}  // namespace msg

namespace lbfx {

// T001: two markers sharing a byte value.
inline constexpr std::uint8_t kTrailerAlpha = 1;
inline constexpr std::uint8_t kTrailerBeta = 1;
inline constexpr std::uint8_t kTrailerGamma = 3;

// W001: decode reads the two fields in the opposite order.
struct BadOrder {
  std::int32_t a = 0;
  std::int32_t b = 0;

  void encode(msg::Writer& w) const { w.put(a).put(b); }
  static BadOrder decode(msg::Reader& r) {
    BadOrder s;
    s.b = r.get<std::int32_t>();
    s.a = r.get<std::int32_t>();
    return s;
  }
};

// W002: encoded_size() forgets the tail field.
struct BadSize {
  std::int32_t head = 0;
  double tail = 0;

  std::size_t encoded_size() const { return sizeof(head); }
  void encode(msg::Writer& w) const { w.put(head).put(tail); }
  static BadSize decode(msg::Reader& r) {
    BadSize s;
    s.head = r.get<std::int32_t>();
    s.tail = r.get<double>();
    return s;
  }
};

// W003: encode with no decode anywhere.
struct HalfOpen {
  std::int32_t x = 0;

  void encode(msg::Writer& w) const { w.put(x); }
};

// T002 three ways: the encoder appends kTrailerAlpha (no decode branch),
// the decoder handles kTrailerGamma (never appended), and the trailer
// loop has no rejecting else.
struct BadTrailer {
  std::uint8_t opt = 0;
  std::int32_t extra = 0;

  void encode(msg::Writer& w) const {
    w.put(extra);
    if (opt) {
      w.put(kTrailerAlpha);
      w.put(extra);
    }
  }
  static BadTrailer decode(msg::Reader& r) {
    BadTrailer s;
    s.extra = r.get<std::int32_t>();
    while (r.remaining() > 0) {
      const auto marker = r.get<std::uint8_t>();
      if (marker == kTrailerGamma) {
        s.extra = r.get<std::int32_t>();
      }
    }
    return s;
  }
};

// T003: OrderA emits alpha before gamma, OrderB the reverse.
struct OrderA {
  std::uint8_t pa = 0;
  std::uint8_t pg = 0;
  std::int32_t va = 0;
  std::int32_t vg = 0;

  void encode(msg::Writer& w) const {
    if (pa) {
      w.put(kTrailerAlpha);
      w.put(va);
    }
    if (pg) {
      w.put(kTrailerGamma);
      w.put(vg);
    }
  }
  static OrderA decode(msg::Reader& r) {
    OrderA s;
    while (r.remaining() > 0) {
      const auto marker = r.get<std::uint8_t>();
      if (marker == kTrailerAlpha) {
        s.va = r.get<std::int32_t>();
      } else if (marker == kTrailerGamma) {
        s.vg = r.get<std::int32_t>();
      } else {
        s.pa = 0;
      }
    }
    return s;
  }
};

struct OrderB {
  std::uint8_t pa = 0;
  std::uint8_t pg = 0;
  std::int32_t va = 0;
  std::int32_t vg = 0;

  void encode(msg::Writer& w) const {
    if (pg) {
      w.put(kTrailerGamma);
      w.put(vg);
    }
    if (pa) {
      w.put(kTrailerAlpha);
      w.put(va);
    }
  }
  static OrderB decode(msg::Reader& r) {
    OrderB s;
    while (r.remaining() > 0) {
      const auto marker = r.get<std::uint8_t>();
      if (marker == kTrailerGamma) {
        s.vg = r.get<std::int32_t>();
      } else if (marker == kTrailerAlpha) {
        s.va = r.get<std::int32_t>();
      } else {
        s.pa = 0;
      }
    }
    return s;
  }
};

}  // namespace lbfx
