// F-rule fixture: the master half of the configured endpoint pair
// (lb/master.cpp, lb/slave.cpp).
#include "lb/orders.hpp"

namespace lbfx {

// Sent here, received in slave.cpp: clean.
inline constexpr sim::Tag kTagPaired = 7101;
// Sent here, received only in relay.cpp (outside the pair): F002.
inline constexpr sim::Tag kTagLost = 7102;
// Never sent anywhere; slave.cpp waits on it: F001.
inline constexpr sim::Tag kTagUnsent = 7103;

struct MasterCtx {
  void send(int dst, sim::Tag tag);
  int recv(sim::Tag tag);
};

void master_pump(MasterCtx& ctx) {
  ctx.send(2, kTagPaired);
  ctx.send(2, kTagLost);
}

}  // namespace lbfx
