// F-rule fixture: an out-of-pair observer. Receiving kTagLost here keeps
// it globally received (no F001) while the pair itself stays asymmetric.
#include "lb/orders.hpp"

namespace lbfx {

struct RelayCtx {
  int recv(sim::Tag tag);
};

void relay_pump(RelayCtx& ctx) {
  if (ctx.recv(kTagLost) != 0) {
  }
}

}  // namespace lbfx
