// nowlb-lint's own test suite: lexer soundness, rule behaviour against the
// deliberately-violating fixture tree (golden output), suppression and
// baseline mechanics. NOWLB_FIXTURE_DIR points at tests/analyze/fixtures.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analyze/lex.hpp"
#include "analyze/lint.hpp"
#include "analyze/proto_model.hpp"
#include "analyze/rules.hpp"

namespace fs = std::filesystem;
using namespace nowlb::analyze;

namespace {

std::string fixture_root() {
  return std::string(NOWLB_FIXTURE_DIR) + "/src";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

TEST(Lex, BlanksCommentsAndStrings) {
  const std::string src =
      "int a = rand(); // rand() in a comment\n"
      "const char* s = \"rand()\";\n"
      "/* rand()\n"
      "   rand() */ int b = 0;\n";
  const ScannedFile f = scan_source("util/x.cpp", src);
  EXPECT_NE(find_ident(f.code[0], "rand"), std::string::npos);
  EXPECT_EQ(find_ident(f.code[1], "rand"), std::string::npos);
  EXPECT_EQ(find_ident(f.code[2], "rand"), std::string::npos);
  EXPECT_EQ(find_ident(f.code[3], "rand"), std::string::npos);
  // Comment text is preserved for NOLINT parsing.
  EXPECT_NE(f.comments[0].find("rand() in a comment"), std::string::npos);
  // Column positions survive blanking ("   rand() */ int b = 0;").
  EXPECT_EQ(f.code[3].find("int b"), 13u);
}

TEST(Lex, RawStringsAndDigitSeparators) {
  const std::string src =
      "auto j = R\"(rand() \"quoted\" )\" ;\n"
      "long n = 1'000'000; int after = rand();\n";
  const ScannedFile f = scan_source("util/x.cpp", src);
  EXPECT_EQ(find_ident(f.code[0], "rand"), std::string::npos);
  // The digit separator must not open a char literal and swallow the rest.
  EXPECT_NE(find_ident(f.code[1], "rand"), std::string::npos);
}

TEST(Lex, IncludeExtraction) {
  const ScannedFile f = scan_source(
      "sim/x.hpp",
      "#pragma once\n#include <vector>\n  #  include \"util/rng.hpp\"\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_TRUE(f.includes[0].angled);
  EXPECT_EQ(f.includes[1].path, "util/rng.hpp");
  EXPECT_EQ(f.includes[1].line, 3);
  EXPECT_FALSE(f.includes[1].angled);
}

TEST(Lex, CallDetection) {
  EXPECT_TRUE(has_call("long t = time(nullptr);", "time"));
  EXPECT_TRUE(has_call("long t = time (0);", "time"));
  EXPECT_FALSE(has_call("long t = e.time();", "time"));     // member
  EXPECT_FALSE(has_call("long t = e->time();", "time"));    // member
  EXPECT_FALSE(has_call("double move_time_s = 0;", "time"));
  EXPECT_FALSE(has_call("to_seconds(time)", "time"));       // not a call
}

TEST(Rules, FixtureGoldenOutput) {
  LintOptions opts;
  opts.root = fixture_root();
  opts.label = "src";
  const LintResult res = run_lint(opts);
  EXPECT_EQ(res.files_scanned, 14);
  const std::string got = format_findings(res.fresh, "src");
  const std::string want =
      read_file(std::string(NOWLB_FIXTURE_DIR) + "/expected.txt");
  EXPECT_EQ(got, want);
}

TEST(Rules, EveryFamilyRepresentedInFixtures) {
  LintOptions opts;
  opts.root = fixture_root();
  const LintResult res = run_lint(opts);
  std::set<std::string> codes;
  for (const auto& f : res.fresh) codes.insert(f.rule->code);
  for (const char* code :
       {"D001", "D002", "D003", "L001", "L002", "P001", "P002", "S001",
        "S002", "W001", "W002", "W003", "T001", "T002", "T003", "F001",
        "F002"})
    EXPECT_TRUE(codes.count(code)) << "fixture suite lost coverage of "
                                   << code;
}

TEST(Rules, WhitelistSilencesUnordered) {
  LintOptions opts;
  opts.root = fixture_root();
  opts.config.unordered_whitelist.push_back("sim/unordered.hpp");
  const LintResult res = run_lint(opts);
  for (const auto& f : res.fresh)
    EXPECT_STRNE(f.rule->code, "D003") << f.rel_path << ":" << f.line;
}

TEST(Rules, SuppressionWithReasonIsHonoured) {
  LintOptions opts;
  opts.root = fixture_root();
  const LintResult res = run_lint(opts);
  // unordered.hpp line 15 carries a justified NOLINT; 12 and 19 do not.
  for (const auto& f : res.fresh) {
    if (f.rel_path == "sim/unordered.hpp" &&
        std::string(f.rule->code) == "D003") {
      EXPECT_NE(f.line, 15);
    }
  }
}

TEST(Baseline, RoundTripAndStaleness) {
  const fs::path tmp =
      fs::temp_directory_path() / "nowlb_lint_baseline_test.txt";
  LintOptions opts;
  opts.root = fixture_root();
  opts.baseline_path = tmp.string();
  opts.update_baseline = true;
  (void)run_lint(opts);

  // With the freshly written baseline the tree is clean.
  opts.update_baseline = false;
  LintResult res = run_lint(opts);
  EXPECT_TRUE(res.clean());
  EXPECT_EQ(res.baselined.size(), 27u);
  EXPECT_TRUE(res.stale_baseline.empty());

  // A baseline entry that matches nothing is reported stale, not fatal.
  {
    std::ofstream out(tmp, std::ios::app);
    out << "D001\tutil/gone.cpp\ttime#1\n";
  }
  res = run_lint(opts);
  EXPECT_TRUE(res.clean());
  ASSERT_EQ(res.stale_baseline.size(), 1u);
  EXPECT_NE(res.stale_baseline[0].find("util/gone.cpp"), std::string::npos);
  fs::remove(tmp);
}

TEST(Baseline, MissingFileMeansEmpty) {
  LintOptions opts;
  opts.root = fixture_root();
  opts.baseline_path = "/nonexistent/nowlb-baseline";
  const LintResult res = run_lint(opts);
  EXPECT_FALSE(res.clean());
  EXPECT_TRUE(res.stale_baseline.empty());
}

// Non-vacuity guard: the wire rules only check structs the extractor can
// parse, so silently-opaque extraction would make lint_self pass for the
// wrong reason. Pin the real protocol structs to fully-parsed status.
TEST(ProtoModel, RealProtocolStructsAreNotOpaque) {
  const std::string path = std::string(NOWLB_SRC_DIR) + "/lb/protocol.hpp";
  std::vector<ScannedFile> files;
  files.push_back(scan_source("lb/protocol.hpp", read_file(path)));
  const ProtoModel model = build_proto_model(files);

  std::set<std::string> want = {"StatusReport", "MoveOrder", "Instructions"};
  for (const auto& s : model.structs) {
    if (!want.count(s.name)) continue;
    want.erase(s.name);
    EXPECT_TRUE(s.has_encode) << s.name;
    EXPECT_TRUE(s.has_decode) << s.name;
    EXPECT_TRUE(s.has_size) << s.name;
    EXPECT_FALSE(s.encode_opaque) << s.name;
    EXPECT_FALSE(s.decode_opaque) << s.name;
    EXPECT_FALSE(s.size_opaque) << s.name;
    // StatusReport and Instructions carry optional marker trailers.
    if (s.name != "MoveOrder") {
      EXPECT_TRUE(s.decode_has_trailer_loop) << s.name;
      EXPECT_TRUE(s.decode_trailer_has_else) << s.name;
    }
  }
  EXPECT_TRUE(want.empty()) << "protocol struct missing from model";
  EXPECT_FALSE(model.trailers.empty());
}

TEST(Catalog, NamesResolve) {
  for (const auto& r : rule_catalog()) {
    const Rule* found = rule_by_name(r.name);
    ASSERT_NE(found, nullptr);
    EXPECT_STREQ(found->code, r.code);
  }
  EXPECT_EQ(rule_by_name("nowlb-bogus"), nullptr);
}
