// Determinism lockdown for the perf workloads (ISSUE: perf harness).
//
// Two guarantees are pinned here, and together they license every host-side
// optimization in sim/msg/lb/data:
//
//   1. Run-to-run: each figure scenario and fuzz case, run twice plus once
//      with the flight recorder attached, produces byte-identical
//      fingerprints (engine trace hash, dispatched-event count, printed
//      summary). Observation must never perturb the simulation.
//   2. Cross-version: the fingerprints equal golden constants captured
//      before the allocation/batching optimizations landed. An optimization
//      that changes any virtual-time event ordering — rather than just host
//      CPU/allocation cost — trips these goldens and is rejected.
//
// Regenerate goldens (only for *intentional* semantic changes, e.g. a new
// protocol message) with: nowlb-bench --hashes
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "perf/scenarios.hpp"

namespace nowlb::perf {
namespace {

struct FigureGolden {
  const char* name;
  std::uint64_t trace_hash;
  std::uint64_t dispatched_events;
};

// Captured pre-optimization (nowlb-bench --hashes); see file comment.
constexpr FigureGolden kFigureGoldens[] = {
    {"fig5.mm_dedicated", 0x6bb90cf2543d1ed5ull, 5241},
    {"fig6.sor_dedicated", 0x42721f23808a194cull, 14659},
    {"fig7.mm_loaded", 0x3271a830d0842406ull, 4595},
    {"fig8.sor_loaded", 0x7b6f921ce6e2c034ull, 18239},
    {"fig9.mm_oscillating", 0x4840d57dc1d349full, 16985},
};

struct FuzzGolden {
  const char* name;
  std::uint64_t trace_hash;
};

constexpr FuzzGolden kFuzzGoldens[] = {
    {"fuzz.mm.clean", 0xb0e7652e2abed0e3ull},
    {"fuzz.sor.clean", 0x1d0016d0b108d1d2ull},
    {"fuzz.lu.clean", 0x6e9e048b47f4d373ull},
    {"fuzz.mm.faults", 0x453508ba345e4f6ull},
};

const FigureScenario* find_figure(const std::string& name) {
  for (const auto& f : figure_scenarios()) {
    if (name == f.name) return &f;
  }
  return nullptr;
}

const FuzzCase* find_fuzz(const std::string& name) {
  for (const auto& c : fuzz_cases()) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

class FigureDeterminism : public ::testing::TestWithParam<FigureGolden> {};

TEST_P(FigureDeterminism, RepeatAndObsRunsAreBitIdentical) {
  const FigureGolden& g = GetParam();
  const FigureScenario* fig = find_figure(g.name);
  ASSERT_NE(fig, nullptr) << g.name << " missing from figure_scenarios()";

  const FigureRun a = fig->run(/*with_obs=*/false);
  const FigureRun b = fig->run(/*with_obs=*/false);
  const FigureRun c = fig->run(/*with_obs=*/true);

  // Run-to-run, and with the flight recorder attached.
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.trace_hash, c.trace_hash) << "obs recording perturbed the run";
  EXPECT_EQ(a.dispatched_events, b.dispatched_events);
  EXPECT_EQ(a.dispatched_events, c.dispatched_events);
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_EQ(a.summary, c.summary);

  // The recorder actually recorded (it was attached, not ignored).
  EXPECT_EQ(a.ledger_records, 0);
  EXPECT_GT(c.ledger_records, 0);

  // Cross-version goldens: host-side optimizations must not shift these.
  EXPECT_EQ(a.trace_hash, g.trace_hash)
      << g.name << ": event trace changed; if intentional, regenerate "
      << "goldens with nowlb-bench --hashes";
  EXPECT_EQ(a.dispatched_events, g.dispatched_events);
  EXPECT_GT(a.lb_rounds, 0);
}

INSTANTIATE_TEST_SUITE_P(Figures, FigureDeterminism,
                         ::testing::ValuesIn(kFigureGoldens),
                         [](const auto& pinfo) {
                           std::string n = pinfo.param.name;
                           for (char& ch : n) {
                             if (ch == '.') ch = '_';
                           }
                           return n;
                         });

class FuzzDeterminism : public ::testing::TestWithParam<FuzzGolden> {};

TEST_P(FuzzDeterminism, RepeatAndObsRunsAreBitIdentical) {
  const FuzzGolden& g = GetParam();
  const FuzzCase* fc = find_fuzz(g.name);
  ASSERT_NE(fc, nullptr) << g.name << " missing from fuzz_cases()";

  const check::FuzzResult a = run_fuzz_case(*fc, /*with_obs=*/false);
  const check::FuzzResult b = run_fuzz_case(*fc, /*with_obs=*/false);
  const check::FuzzResult c = run_fuzz_case(*fc, /*with_obs=*/true);

  EXPECT_TRUE(a.ok) << g.name;
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.trace_hash, c.trace_hash) << "obs recording perturbed the run";
  EXPECT_EQ(a.elapsed_s, b.elapsed_s);
  EXPECT_EQ(a.elapsed_s, c.elapsed_s);

  EXPECT_EQ(a.trace_hash, g.trace_hash)
      << g.name << ": event trace changed; if intentional, regenerate "
      << "goldens with nowlb-bench --hashes";
}

INSTANTIATE_TEST_SUITE_P(FuzzClasses, FuzzDeterminism,
                         ::testing::ValuesIn(kFuzzGoldens),
                         [](const auto& pinfo) {
                           std::string n = pinfo.param.name;
                           for (char& ch : n) {
                             if (ch == '.') ch = '_';
                           }
                           return n;
                         });

// Every scenario the bench ships is covered by a golden, and vice versa —
// adding a figure or fuzz class without pinning it fails here.
TEST(DeterminismCoverage, GoldensMatchScenarioList) {
  std::map<std::string, int> names;
  for (const auto& f : figure_scenarios()) names[f.name]++;
  for (const auto& g : kFigureGoldens) names[g.name]--;
  for (const auto& c : fuzz_cases()) names[c.name]++;
  for (const auto& g : kFuzzGoldens) names[g.name]--;
  for (const auto& [name, delta] : names) {
    EXPECT_EQ(delta, 0) << name << " lacks a golden or a scenario";
  }
}

}  // namespace
}  // namespace nowlb::perf
