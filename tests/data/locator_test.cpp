// §4.6 broadcast-and-discard locator: accessing distributed elements whose
// owner is unknown locally because the distribution changes at run time.
#include "data/locator.hpp"

#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace nowlb::data {
namespace {

using sim::Context;
using sim::Pid;
using sim::Task;
using sim::World;

TEST(Locator, FetchReplicatesFromUnknownOwner) {
  World w;
  constexpr int kN = 3;
  std::vector<Pid> group{0, 1, 2};
  std::vector<double> got(kN, 0.0);

  for (int rank = 0; rank < kN; ++rank) {
    auto& h = w.add_host();
    w.spawn(h, "s" + std::to_string(rank),
            [&, rank](Context& ctx) -> Task<> {
              DistArray<double> arr(4);
              // Rank r owns slice r; nobody knows the others' ownership.
              arr.add(rank, {10.0 * rank, 1, 2, 3});
              got[rank] = co_await locate_fetch(ctx, group, 77, arr,
                                                /*slice=*/2, /*offset=*/0);
            });
  }
  w.run();
  EXPECT_EQ(got, (std::vector<double>{20.0, 20.0, 20.0}));
}

TEST(Locator, AssignCrossesUnknownOwners) {
  World w;
  constexpr int kN = 3;
  std::vector<Pid> group{0, 1, 2};
  std::vector<double> final_value(kN, -1.0);

  for (int rank = 0; rank < kN; ++rank) {
    auto& h = w.add_host();
    w.spawn(h, "s" + std::to_string(rank),
            [&, rank](Context& ctx) -> Task<> {
              DistArray<double> arr(2);
              arr.add(rank, {100.0 + rank, 0.0});
              // arr[slice 2][1] = arr[slice 0][0]: source owned by rank 0,
              // destination by rank 2; neither owner known to the others.
              co_await locate_assign(ctx, group, 78, arr, /*src=*/0,
                                     /*src_off=*/0, /*dst=*/2, /*dst_off=*/1);
              if (arr.owns(2)) final_value[rank] = arr.slice(2)[1];
            });
  }
  w.run();
  EXPECT_DOUBLE_EQ(final_value[2], 100.0);
  EXPECT_DOUBLE_EQ(final_value[0], -1.0);  // non-owners unchanged
}

TEST(Locator, OwnerAlsoReceivesItsOwnValue) {
  World w;
  std::vector<Pid> group{0, 1};
  double owner_got = 0;
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  w.spawn(h0, "owner", [&](Context& ctx) -> Task<> {
    DistArray<double> arr(1);
    arr.add(0, {42.0});
    owner_got = co_await locate_fetch(ctx, group, 79, arr, 0, 0);
  });
  w.spawn(h1, "other", [&](Context& ctx) -> Task<> {
    DistArray<double> arr(1);
    co_await locate_fetch(ctx, group, 79, arr, 0, 0);
  });
  w.run();
  EXPECT_DOUBLE_EQ(owner_got, 42.0);
}

}  // namespace
}  // namespace nowlb::data
