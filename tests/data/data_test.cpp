#include <gtest/gtest.h>

#include "data/activity.hpp"
#include "data/dist_array.hpp"
#include "data/index_set.hpp"
#include "data/slice.hpp"

namespace nowlb::data {
namespace {

// ------------------------------------------------------------- BlockMap

TEST(BlockMap, EvenDistributionSplitsRemainder) {
  auto m = BlockMap::even(10, 3);
  EXPECT_EQ(m.counts(), (std::vector<int>{4, 3, 3}));
  EXPECT_EQ(m.total(), 10);
  EXPECT_EQ(m.range(0), (SliceRange{0, 4}));
  EXPECT_EQ(m.range(2), (SliceRange{7, 10}));
}

TEST(BlockMap, OwnerLookup) {
  auto m = BlockMap::from_counts({2, 0, 3});
  EXPECT_EQ(m.owner(0), 0);
  EXPECT_EQ(m.owner(1), 0);
  EXPECT_EQ(m.owner(2), 2);  // rank 1 owns nothing
  EXPECT_EQ(m.owner(4), 2);
  EXPECT_THROW(m.owner(5), CheckFailure);
  EXPECT_THROW(m.owner(-1), CheckFailure);
}

TEST(BlockMap, EmptyRanksAllowed) {
  auto m = BlockMap::from_counts({0, 5, 0});
  EXPECT_EQ(m.count(0), 0);
  EXPECT_EQ(m.count(1), 5);
  EXPECT_EQ(m.range(2).count(), 0);
}

class BlockMapEvenProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BlockMapEvenProperty, PartitionInvariants) {
  const auto [total, slaves] = GetParam();
  auto m = BlockMap::even(total, slaves);
  // Counts sum to total and differ by at most one.
  int sum = 0, lo = total, hi = 0;
  for (int c : m.counts()) {
    sum += c;
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_EQ(sum, total);
  EXPECT_LE(hi - lo, 1);
  // Every slice has exactly one owner and lies in that owner's range.
  for (SliceId s = 0; s < total; ++s) {
    const int r = m.owner(s);
    EXPECT_TRUE(m.range(r).contains(s));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockMapEvenProperty,
    ::testing::Values(std::pair{0, 1}, std::pair{1, 1}, std::pair{1, 7},
                      std::pair{7, 7}, std::pair{500, 7}, std::pair{2000, 6},
                      std::pair{13, 5}, std::pair{100, 3}));

// ------------------------------------------------------------- IndexSet

TEST(IndexSet, ConstructFromRange) {
  IndexSet s(SliceRange{3, 7});
  EXPECT_EQ(s.size(), 4);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(6));
  EXPECT_FALSE(s.contains(7));
  EXPECT_TRUE(s.is_contiguous());
}

TEST(IndexSet, InsertEraseMaintainOrder) {
  IndexSet s;
  s.insert(5);
  s.insert(1);
  s.insert(3);
  EXPECT_EQ(s.ids(), (std::vector<SliceId>{1, 3, 5}));
  s.erase(3);
  EXPECT_EQ(s.ids(), (std::vector<SliceId>{1, 5}));
  EXPECT_FALSE(s.is_contiguous());
}

TEST(IndexSet, DuplicateInsertThrows) {
  IndexSet s(SliceRange{0, 3});
  EXPECT_THROW(s.insert(1), CheckFailure);
}

TEST(IndexSet, EraseMissingThrows) {
  IndexSet s(SliceRange{0, 3});
  EXPECT_THROW(s.erase(9), CheckFailure);
}

TEST(IndexSet, TakeHighestAndLowest) {
  IndexSet s(SliceRange{0, 10});
  auto hi = s.take_highest(3);
  EXPECT_EQ(hi, (std::vector<SliceId>{7, 8, 9}));
  auto lo = s.take_lowest(2);
  EXPECT_EQ(lo, (std::vector<SliceId>{0, 1}));
  EXPECT_EQ(s.size(), 5);
  EXPECT_EQ(s.min(), 2);
  EXPECT_EQ(s.max(), 6);
  EXPECT_TRUE(s.is_contiguous());
}

TEST(IndexSet, TakeTooManyThrows) {
  IndexSet s(SliceRange{0, 2});
  EXPECT_THROW(s.take_highest(3), CheckFailure);
}

// ------------------------------------------------------------ DistArray

TEST(DistArray, AddRemoveAccess) {
  DistArray<double> a(4);
  a.add(7, {1, 2, 3, 4});
  EXPECT_TRUE(a.owns(7));
  EXPECT_FALSE(a.owns(8));
  a.slice(7)[2] = 99;
  auto [contents, marker] = a.remove(7);
  EXPECT_EQ(contents, (std::vector<double>{1, 2, 99, 4}));
  EXPECT_EQ(marker, 0);
  EXPECT_FALSE(a.owns(7));
}

TEST(DistArray, WrongLengthThrows) {
  DistArray<double> a(4);
  EXPECT_THROW(a.add(0, {1, 2}), CheckFailure);
}

TEST(DistArray, DuplicateAddThrows) {
  DistArray<double> a(2);
  a.add(0, {1, 2});
  EXPECT_THROW(a.add(0, {3, 4}), CheckFailure);
}

TEST(DistArray, AccessMissingThrows) {
  DistArray<double> a(2);
  EXPECT_THROW(a.slice(5), CheckFailure);
  EXPECT_THROW(a.remove(5), CheckFailure);
  EXPECT_THROW(a.marker(5), CheckFailure);
}

TEST(DistArray, MarkersSurvivePackUnpack) {
  DistArray<double> src(3), dst(3);
  src.add(1, {1, 1, 1}, /*marker=*/5);
  src.add(2, {2, 2, 2}, /*marker=*/6);
  src.add(3, {3, 3, 3});
  auto payload = src.pack_and_remove({1, 3});
  EXPECT_FALSE(src.owns(1));
  EXPECT_FALSE(src.owns(3));
  EXPECT_TRUE(src.owns(2));
  auto ids = dst.unpack_and_add(payload);
  EXPECT_EQ(ids, (std::vector<SliceId>{1, 3}));
  EXPECT_EQ(dst.marker(1), 5);
  EXPECT_EQ(dst.marker(3), 0);
  EXPECT_EQ(dst.slice(3), (std::vector<double>{3, 3, 3}));
}

TEST(DistArray, EmptyPackRoundtrip) {
  DistArray<float> src(2), dst(2);
  auto payload = src.pack_and_remove({});
  EXPECT_TRUE(dst.unpack_and_add(payload).empty());
}

TEST(DistArray, OwnedIdsSorted) {
  DistArray<int> a(1);
  a.add(5, {0});
  a.add(1, {0});
  a.add(3, {0});
  EXPECT_EQ(a.owned_ids(), (std::vector<SliceId>{1, 3, 5}));
}

// --------------------------------------------------------- ActivityMask

TEST(ActivityMask, DeactivateBelow) {
  ActivityMask m(5);
  EXPECT_EQ(m.active_count(), 5);
  m.deactivate_below(3);
  EXPECT_FALSE(m.active(0));
  EXPECT_FALSE(m.active(2));
  EXPECT_TRUE(m.active(3));
  EXPECT_EQ(m.active_count(), 2);
}

TEST(ActivityMask, ActiveInOwnedSet) {
  ActivityMask m(10);
  m.deactivate_below(4);
  IndexSet owned(SliceRange{2, 8});
  EXPECT_EQ(m.active_in(owned), 4);  // 4,5,6,7
}

TEST(ActivityMask, HighestLowestActiveSkipInactive) {
  ActivityMask m(10);
  m.deactivate(5);
  m.deactivate(8);
  IndexSet owned(SliceRange{4, 10});
  EXPECT_EQ(m.highest_active(owned, 2), (std::vector<SliceId>{9, 7}));
  EXPECT_EQ(m.lowest_active(owned, 2), (std::vector<SliceId>{4, 6}));
}

TEST(ActivityMask, RequestingTooManyActiveThrows) {
  ActivityMask m(4);
  m.deactivate_below(3);
  IndexSet owned(SliceRange{0, 4});
  EXPECT_THROW(m.highest_active(owned, 2), CheckFailure);
}

}  // namespace
}  // namespace nowlb::data
