// End-to-end master/slave protocol tests over a synthetic workload:
// abstract work units with a fixed CPU cost, a hook after every unit.
#include <gtest/gtest.h>

#include <numeric>

#include "lb/master.hpp"
#include "lb/slave.hpp"
#include "msg/serialize.hpp"
#include "sim/world.hpp"

namespace nowlb::lb {
namespace {

using sim::Context;
using sim::Pid;
using sim::Task;
using sim::Time;
using sim::World;
using sim::kMillisecond;
using sim::kSecond;

struct RunResult {
  double makespan_s = 0;
  std::vector<int> units_computed;    // per rank
  std::vector<int> received_from;     // flattened peer matrix [rank*n+peer]
  MasterStats stats;
};

struct Scenario {
  std::vector<int> initial;  // per-rank unit counts
  // CPU per work unit: 5x the scheduling quantum, honouring the paper's
  // grain-size rule (blocks >= 1.5 quanta) so rate windows measure cleanly.
  Time unit_cost = 50 * kMillisecond;
  int phases = 1;
  bool use_lb = true;
  LbConfig lb;
  std::vector<int> loaded_ranks;       // ranks with an infinite competing task
};

LbConfig fast_lb() {
  LbConfig cfg;
  cfg.min_period = 250 * kMillisecond;
  cfg.quantum = 10 * kMillisecond;
  cfg.initial_move_cost = 2 * kMillisecond;
  cfg.initial_interaction_cost = kMillisecond;
  return cfg;
}

sim::WorldConfig fast_world() {
  sim::WorldConfig wc;
  wc.host.quantum = 10 * kMillisecond;
  wc.host.context_switch = 10 * sim::kMicrosecond;
  return wc;
}

RunResult run_scenario(const Scenario& sc) {
  const int n = static_cast<int>(sc.initial.size());
  World w(fast_world());
  RunResult result;
  result.units_computed.assign(n, 0);
  result.received_from.assign(n * n, 0);
  auto stats = std::make_shared<MasterStats>();

  std::vector<Pid> slave_pids(n);
  std::iota(slave_pids.begin(), slave_pids.end(), 0);
  // Pids follow spawn order: slaves 0..n-1, then load generators, then the
  // master.
  const Pid master_pid = n + static_cast<Pid>(sc.loaded_ranks.size());

  // Work state per rank lives in the test scope so the closures in WorkOps
  // can reference it beyond the spawn call.
  std::vector<int> units = sc.initial;

  for (int rank = 0; rank < n; ++rank) {
    auto& host = w.add_host();
    w.spawn(host, "slave" + std::to_string(rank),
            [&, rank](Context& ctx) -> Task<> {
              SlaveAgent::WorkOps ops;
              ops.remaining = [&, rank] { return units[rank]; };
              ops.pack = [&, rank](int count,
                                   int) -> Task<std::pair<sim::Bytes, int>> {
                const int actual = std::min(count, units[rank]);
                units[rank] -= actual;
                msg::Writer wr;
                wr.put(actual);
                co_return std::make_pair(wr.take(), actual);
              };
              ops.unpack = [&, rank](const sim::Bytes& b,
                                     int peer) -> Task<int> {
                msg::Reader r(b);
                const int c = r.get<int>();
                units[rank] += c;
                result.received_from[rank * n + peer] += c;
                co_return c;
              };
              if (!sc.use_lb) {
                while (units[rank] * sc.phases > 0) {
                  for (int phase = 0; phase < sc.phases; ++phase) {
                    for (int u = sc.initial[rank]; u > 0; --u) {
                      co_await ctx.compute(sc.unit_cost);
                      ++result.units_computed[rank];
                    }
                  }
                  break;
                }
                co_return;
              }
              SlaveAgent agent(
                  ctx, master_pid, rank, slave_pids, sc.lb, ops,
                  std::max(1.0, 0.25 * sc.initial[rank]));
              for (int phase = 0; phase < sc.phases; ++phase) {
                agent.begin_phase();
                for (;;) {
                  while (units[rank] > 0) {
                    co_await ctx.compute(sc.unit_cost);
                    --units[rank];
                    ++result.units_computed[rank];
                    agent.add_units(1);
                    co_await agent.hook();
                  }
                  co_await agent.drain();
                  if (agent.phase_done()) break;
                }
                if (phase + 1 < sc.phases) units[rank] = sc.initial[rank];
              }
            });
  }
  // Load generators are spawned after all slaves so that slave pids stay
  // 0..n-1 (pids are assigned in spawn order).
  for (int lr : sc.loaded_ranks) {
    w.spawn(w.host(lr), "load" + std::to_string(lr),
            [](Context& ctx) -> Task<> {
              for (;;) co_await ctx.compute(kSecond);
            },
            /*essential=*/false);
  }

  if (sc.use_lb) {
    auto& mh = w.add_host();
    w.spawn(mh, "master", [&, stats](Context& ctx) -> Task<> {
      MasterConfig mc;
      mc.slaves = slave_pids;
      mc.initial_counts = sc.initial;
      mc.phases = sc.phases;
      mc.lb = sc.lb;
      mc.stats = stats;
      Master m(ctx, mc);
      co_await m.run();
    });
  }

  w.run();
  result.makespan_s = sim::to_seconds(w.now());
  result.stats = *stats;
  return result;
}

int total(const std::vector<int>& v) {
  return std::accumulate(v.begin(), v.end(), 0);
}

TEST(LbIntegration, DedicatedTwoSlavesCompleteAllWork) {
  Scenario sc;
  sc.initial = {50, 50};
  sc.lb = fast_lb();
  auto r = run_scenario(sc);
  EXPECT_EQ(total(r.units_computed), 100);
  EXPECT_GT(r.stats.rounds, 0);
  // Balanced dedicated system: no movement should be ordered.
  EXPECT_EQ(r.stats.units_moved, 0);
}

TEST(LbIntegration, OverheadIsSmallInDedicatedSystem) {
  Scenario with;
  with.initial = {50, 50, 50, 50};
  with.lb = fast_lb();
  auto r_with = run_scenario(with);

  Scenario without = with;
  without.use_lb = false;
  auto r_without = run_scenario(without);

  EXPECT_EQ(total(r_with.units_computed), total(r_without.units_computed));
  // Load balancing overhead under 10 % in the dedicated homogeneous case.
  EXPECT_LT(r_with.makespan_s, r_without.makespan_s * 1.10);
}

TEST(LbIntegration, LoadedSlaveShedsWork) {
  Scenario sc;
  sc.initial = {60, 60};
  sc.lb = fast_lb();
  sc.loaded_ranks = {0};
  auto r = run_scenario(sc);
  EXPECT_EQ(total(r.units_computed), 120);
  // The loaded slave computes materially less than the free one.
  EXPECT_LT(r.units_computed[0], r.units_computed[1]);
  EXPECT_GT(r.stats.units_moved, 0);
}

TEST(LbIntegration, LoadBalancingBeatsStaticOnLoadedSystem) {
  // Long enough that balancing transients (the first measurement window,
  // instruction lag) amortize, as in the paper's 100 s-scale runs.
  Scenario base;
  base.initial = {100, 100, 100, 100};
  base.lb = fast_lb();
  base.loaded_ranks = {0};

  auto with = run_scenario(base);
  Scenario static_sc = base;
  static_sc.use_lb = false;
  auto without = run_scenario(static_sc);

  // Static: the loaded slave takes ~2x its dedicated time (10 s) and
  // everyone waits for it. Dynamic: work shifts away; the bound is ~5.7 s
  // plus balancing overhead and the endgame tail.
  EXPECT_LT(with.makespan_s, without.makespan_s * 0.78);
}

TEST(LbIntegration, SynchronousModeAlsoCompletes) {
  Scenario sc;
  sc.initial = {40, 40, 40};
  sc.lb = fast_lb();
  sc.lb.pipelined = false;
  sc.loaded_ranks = {1};
  auto r = run_scenario(sc);
  EXPECT_EQ(total(r.units_computed), 120);
  EXPECT_GT(r.stats.units_moved, 0);
}

TEST(LbIntegration, RestrictedModeMovesOnlyBetweenNeighbors) {
  Scenario sc;
  sc.initial = {60, 60, 60, 60};
  sc.lb = fast_lb();
  sc.lb.movement = Movement::kRestricted;
  sc.loaded_ranks = {0};
  auto r = run_scenario(sc);
  const int n = 4;
  EXPECT_EQ(total(r.units_computed), 240);
  for (int rank = 0; rank < n; ++rank) {
    for (int peer = 0; peer < n; ++peer) {
      if (r.received_from[rank * n + peer] > 0) {
        EXPECT_EQ(std::abs(rank - peer), 1)
            << "rank " << rank << " received from non-neighbor " << peer;
      }
    }
  }
}

TEST(LbIntegration, MultiPhaseRunsStayAligned) {
  Scenario sc;
  sc.initial = {20, 20};
  sc.phases = 4;
  sc.lb = fast_lb();
  auto r = run_scenario(sc);
  EXPECT_EQ(total(r.units_computed), 160);  // 40 units x 4 phases
}

TEST(LbIntegration, EmptySlaveReceivesWork) {
  Scenario sc;
  sc.initial = {100, 0};
  sc.lb = fast_lb();
  auto r = run_scenario(sc);
  EXPECT_EQ(total(r.units_computed), 100);
  EXPECT_GT(r.units_computed[1], 0)
      << "idle slave never received any work";
}

TEST(LbIntegration, ThresholdPreventsThrashingWhenBalanced) {
  Scenario sc;
  sc.initial = {50, 50, 50};
  sc.phases = 2;
  sc.lb = fast_lb();
  auto r = run_scenario(sc);
  EXPECT_EQ(r.stats.units_moved, 0);
  EXPECT_GT(r.stats.cancelled_threshold, 0);
}

TEST(LbIntegration, SingleSlaveDegenerateCase) {
  Scenario sc;
  sc.initial = {25};
  sc.lb = fast_lb();
  auto r = run_scenario(sc);
  EXPECT_EQ(total(r.units_computed), 25);
  EXPECT_EQ(r.stats.units_moved, 0);
}

}  // namespace
}  // namespace nowlb::lb
