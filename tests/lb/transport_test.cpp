// Reliable-transport unit tests: classic perfect-channel semantics (in
// order, exactly once) recovered on top of a network that drops,
// duplicates and reorders.
#include "lb/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/world.hpp"

namespace nowlb::lb {
namespace {

using sim::Bytes;
using sim::Context;
using sim::Pid;
using sim::Task;
using sim::Time;
using sim::World;
using sim::WorldConfig;

constexpr sim::Tag kData = 7;
constexpr sim::Tag kBye = 8;

WorldConfig lossy_on_data_tag() {
  WorldConfig cfg;
  cfg.host.context_switch = 0;
  cfg.msg.send_overhead = 0;
  cfg.msg.recv_overhead = 0;
  cfg.net.latency = sim::kMillisecond;
  cfg.net.local_latency = 0;
  cfg.net.header_bytes = 0;
  cfg.net.drop_prob = 0.3;
  cfg.net.dup_prob = 0.2;
  cfg.net.max_extra_delay = 5 * sim::kMillisecond;
  cfg.net.fault_tag_lo = kData;  // the control tag kBye stays reliable
  cfg.net.fault_tag_hi = kData;
  return cfg;
}

TransportConfig enabled_transport() {
  TransportConfig t;
  t.enabled = true;
  return t;
}

TEST(Transport, InOrderExactlyOnceOverLossyNetwork) {
  constexpr int kCount = 50;
  World w(lossy_on_data_tag());
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  std::vector<std::size_t> got;  // payload size identifies the message
  TransportStats tx_stats;

  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, enabled_transport(), {kData}, nullptr);
    for (int i = 0; i < kCount; ++i) {
      sim::Message m = co_await ctx.recv(kData);
      got.push_back(m.payload.size());
    }
    // Stay alive (acking retransmits) until the sender has drained.
    co_await ctx.recv(kBye);
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, enabled_transport(), {kData}, nullptr);
    for (int i = 0; i < kCount; ++i) {
      co_await t.send(rx, kData, Bytes(i));
    }
    co_await t.drain();
    tx_stats = t.stats();
    co_await ctx.send(rx, kBye, Bytes(0));
  });
  w.run();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i], static_cast<std::size_t>(i)) << "at position " << i;
  }
  // At 30 % loss over 50 messages plus acks, silence would be a miracle.
  EXPECT_GT(tx_stats.retransmits, 0u);
  EXPECT_EQ(tx_stats.gave_up, 0u);
}

TEST(Transport, DrainCompletesOnceEverythingIsAcked) {
  World w(lossy_on_data_tag());
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  bool drained = false;
  bool received = false;

  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, enabled_transport(), {kData}, nullptr);
    co_await ctx.recv(kData);
    received = true;
    co_await ctx.recv(kBye);
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, enabled_transport(), {kData}, nullptr);
    co_await t.send(rx, kData, Bytes(16));
    co_await t.drain();
    drained = !t.has_pending();
    co_await ctx.send(rx, kBye, Bytes(0));
  });
  w.run();
  EXPECT_TRUE(received);
  EXPECT_TRUE(drained);
}

TEST(Transport, BlackholedPeerGetsNothingAndCostsNothing) {
  WorldConfig cfg = lossy_on_data_tag();
  cfg.net.drop_prob = 0;  // isolate the blackhole from network loss
  cfg.net.dup_prob = 0;
  cfg.net.max_extra_delay = 0;
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  bool got = true;

  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, enabled_transport(), {kData}, nullptr);
    auto m = co_await ctx.recv_until(kData, sim::kAnyPid, sim::kSecond);
    got = m.has_value();
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, enabled_transport(), {kData}, nullptr);
    t.blackhole(rx);
    co_await t.send(rx, kData, Bytes(16));
    co_await t.drain();  // nothing pending: the send was discarded
    EXPECT_FALSE(t.has_pending());
  });
  w.run();
  EXPECT_FALSE(got);
}

TEST(Transport, DisabledIsAPlainSend) {
  WorldConfig cfg;
  cfg.host.context_switch = 0;
  cfg.msg.send_overhead = 0;
  cfg.msg.recv_overhead = 0;
  cfg.net.local_latency = 0;
  cfg.net.header_bytes = 0;
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  std::size_t got = 0;

  // No Transport on the receiver at all: a disabled sender must emit bare
  // (unenveloped) messages a plain recv understands.
  Pid rx = w.spawn(h1, "rx", [&](Context& ctx) -> Task<> {
    sim::Message m = co_await ctx.recv(kData);
    got = m.payload.size();
  });
  w.spawn(h0, "tx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, TransportConfig{}, {kData}, nullptr);
    co_await t.send(rx, kData, Bytes(23));
    co_await t.drain();  // no-op when disabled
  });
  w.run();
  EXPECT_EQ(got, 23u);
}

}  // namespace
}  // namespace nowlb::lb
