#include "lb/allocate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace nowlb::lb {
namespace {

TEST(Allocate, ProportionalToRates) {
  auto a = proportional_allocation({2.0, 1.0, 1.0}, 100);
  EXPECT_EQ(a, (std::vector<int>{50, 25, 25}));
}

TEST(Allocate, ConservesTotalWithRemainders) {
  auto a = proportional_allocation({1.0, 1.0, 1.0}, 100);
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 100);
  // 100/3: two ranks get 33, the largest-remainder one gets 34.
  std::vector<int> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{33, 33, 34}));
}

TEST(Allocate, ZeroRateGetsNothing) {
  auto a = proportional_allocation({1.0, 0.0, 1.0}, 10);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(a[0] + a[2], 10);
}

TEST(Allocate, NegativeRateTreatedAsZero) {
  auto a = proportional_allocation({1.0, -5.0, 1.0}, 10);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 10);
}

TEST(Allocate, AllZeroRatesFallsBackToEven) {
  auto a = proportional_allocation({0.0, 0.0, 0.0, 0.0}, 10);
  EXPECT_EQ(a, (std::vector<int>{3, 3, 2, 2}));
}

TEST(Allocate, ZeroTotalYieldsZeros) {
  auto a = proportional_allocation({1.0, 2.0}, 0);
  EXPECT_EQ(a, (std::vector<int>{0, 0}));
}

TEST(Allocate, SingleSlaveTakesAll) {
  EXPECT_EQ(proportional_allocation({0.5}, 7), (std::vector<int>{7}));
}

struct AllocCase {
  std::vector<double> rates;
  int total;
};

class AllocateProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocateProperty, RandomizedInvariants) {
  // Property sweep: conservation, non-negativity, and near-proportionality
  // (each assignment within 1 of the exact real-valued share).
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 200; ++iter) {
    const int n = 1 + static_cast<int>(rng.below(8));
    const int total = static_cast<int>(rng.below(3000));
    std::vector<double> rates(n);
    double agg = 0;
    for (auto& r : rates) {
      r = rng.next_double() * 10.0;
      agg += r;
    }
    auto a = proportional_allocation(rates, total);
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), total);
    for (std::size_t i = 0; i < rates.size(); ++i) {
      EXPECT_GE(a[i], 0);
      if (agg > 0) {
        const double exact = rates[i] / agg * total;
        EXPECT_NEAR(a[i], exact, 1.0 + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocateProperty, ::testing::Values(1, 2, 3));

TEST(ProjectedTime, MaxOverSlaves) {
  EXPECT_DOUBLE_EQ(projected_time({10, 20}, {1.0, 4.0}), 10.0);
  EXPECT_DOUBLE_EQ(projected_time({10, 20}, {1.0, 1.0}), 20.0);
}

TEST(ProjectedTime, ZeroWorkIgnoresRate) {
  EXPECT_DOUBLE_EQ(projected_time({0, 5}, {0.0, 1.0}), 5.0);
}

TEST(ProjectedTime, StalledSlaveIsInfinite) {
  EXPECT_TRUE(std::isinf(projected_time({5, 5}, {0.0, 1.0})));
}

}  // namespace
}  // namespace nowlb::lb
