#include "lb/allocate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace nowlb::lb {
namespace {

TEST(Allocate, ProportionalToRates) {
  auto a = proportional_allocation({2.0, 1.0, 1.0}, 100);
  EXPECT_EQ(a, (std::vector<int>{50, 25, 25}));
}

TEST(Allocate, ConservesTotalWithRemainders) {
  auto a = proportional_allocation({1.0, 1.0, 1.0}, 100);
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 100);
  // 100/3: two ranks get 33, the largest-remainder one gets 34.
  std::vector<int> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{33, 33, 34}));
}

TEST(Allocate, ZeroRateGetsNothing) {
  auto a = proportional_allocation({1.0, 0.0, 1.0}, 10);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(a[0] + a[2], 10);
}

TEST(Allocate, NegativeRateTreatedAsZero) {
  auto a = proportional_allocation({1.0, -5.0, 1.0}, 10);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 10);
}

TEST(Allocate, AllZeroRatesFallsBackToEven) {
  auto a = proportional_allocation({0.0, 0.0, 0.0, 0.0}, 10);
  EXPECT_EQ(a, (std::vector<int>{3, 3, 2, 2}));
}

TEST(Allocate, ZeroTotalYieldsZeros) {
  auto a = proportional_allocation({1.0, 2.0}, 0);
  EXPECT_EQ(a, (std::vector<int>{0, 0}));
}

TEST(Allocate, SingleSlaveTakesAll) {
  EXPECT_EQ(proportional_allocation({0.5}, 7), (std::vector<int>{7}));
}

struct AllocCase {
  std::vector<double> rates;
  int total;
};

class AllocateProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocateProperty, RandomizedInvariants) {
  // Property sweep: conservation, non-negativity, and near-proportionality
  // (each assignment within 1 of the exact real-valued share).
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 200; ++iter) {
    const int n = 1 + static_cast<int>(rng.below(8));
    const int total = static_cast<int>(rng.below(3000));
    std::vector<double> rates(n);
    double agg = 0;
    for (auto& r : rates) {
      r = rng.next_double() * 10.0;
      agg += r;
    }
    auto a = proportional_allocation(rates, total);
    EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), total);
    for (std::size_t i = 0; i < rates.size(); ++i) {
      EXPECT_GE(a[i], 0);
      if (agg > 0) {
        const double exact = rates[i] / agg * total;
        EXPECT_NEAR(a[i], exact, 1.0 + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocateProperty, ::testing::Values(1, 2, 3));

TEST(Allocate, SlaveCountSweepConservesTotal) {
  // Every cluster size the balancer can see: heterogeneous rates whose
  // shares rarely divide evenly, several totals per size. The reassigned
  // counts must sum exactly to the total every time.
  Rng rng(7);
  for (int n = 1; n <= 64; ++n) {
    std::vector<double> rates(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < rates.size(); ++i) {
      rates[i] = 0.1 + static_cast<double>(i % 7) * 0.3 + rng.next_double();
    }
    for (int total : {0, 1, n - 1, n, n + 1, 7 * n + 3, 1000}) {
      if (total < 0) continue;
      auto a = proportional_allocation(rates, total);
      ASSERT_EQ(static_cast<int>(a.size()), n);
      EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), total)
          << "n=" << n << " total=" << total;
      for (int v : a) EXPECT_GE(v, 0);
    }
  }
}

TEST(Allocate, HugeTotalSurvivesFloatRounding) {
  // At totals near 2^53 an ulp of a share exceeds one unit, so the floored
  // shares can over- or under-shoot; the reclaim/wrap paths must still
  // conserve the total exactly.
  Rng rng(11);
  for (int iter = 0; iter < 50; ++iter) {
    const int n = 1 + static_cast<int>(rng.below(16));
    std::vector<double> rates(static_cast<std::size_t>(n));
    for (auto& r : rates) r = rng.next_double() + 1e-3;
    const int total =
        std::numeric_limits<int>::max() - static_cast<int>(rng.below(1000));
    auto a = proportional_allocation(rates, total);
    long long sum = 0;
    for (int v : a) {
      EXPECT_GE(v, 0);
      sum += v;
    }
    EXPECT_EQ(sum, total);
  }
}

// Property sweep over ~200 seeded random vectors: the three allocation
// invariants the runtime depends on must hold for every input shape —
// conservation (sum == total), non-negativity, and rate-monotonicity
// (a strictly faster slave never receives less; largest-remainder ties
// can equalize but never invert the order).
TEST(Allocate, PropertySweepConservesAndOrdersByRate) {
  Rng rng(2026);
  for (int iter = 0; iter < 200; ++iter) {
    const int n = 1 + static_cast<int>(rng.below(12));
    std::vector<double> rates(static_cast<std::size_t>(n));
    for (auto& r : rates) {
      switch (rng.below(4)) {
        case 0: r = 0.0; break;                          // stalled slave
        case 1: r = rng.uniform(1e-9, 1e-3); break;      // near-stalled
        case 2: r = rng.uniform(0.1, 10.0); break;       // typical
        default: r = rng.uniform(10.0, 1e6); break;      // very fast
      }
    }
    const int total = static_cast<int>(rng.below(100'000));
    const auto a = proportional_allocation(rates, total);
    ASSERT_EQ(a.size(), rates.size()) << "iter " << iter;

    long long sum = 0;
    for (int v : a) {
      EXPECT_GE(v, 0) << "iter " << iter;
      sum += v;
    }
    EXPECT_EQ(sum, total) << "iter " << iter;

    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (rates[static_cast<std::size_t>(i)] >
            rates[static_cast<std::size_t>(j)]) {
          EXPECT_GE(a[static_cast<std::size_t>(i)],
                    a[static_cast<std::size_t>(j)])
              << "iter " << iter << ": rate " << rates[static_cast<std::size_t>(i)]
              << " got less than rate " << rates[static_cast<std::size_t>(j)];
        }
      }
    }
  }
}

TEST(ProjectedTime, MaxOverSlaves) {
  EXPECT_DOUBLE_EQ(projected_time({10, 20}, {1.0, 4.0}), 10.0);
  EXPECT_DOUBLE_EQ(projected_time({10, 20}, {1.0, 1.0}), 20.0);
}

TEST(ProjectedTime, ZeroWorkIgnoresRate) {
  EXPECT_DOUBLE_EQ(projected_time({0, 5}, {0.0, 1.0}), 5.0);
}

TEST(ProjectedTime, StalledSlaveIsInfinite) {
  EXPECT_TRUE(std::isinf(projected_time({5, 5}, {0.0, 1.0})));
}

}  // namespace
}  // namespace nowlb::lb
