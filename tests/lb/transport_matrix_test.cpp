// Combined-fault matrix for the reliable transport: every non-empty subset
// of {drop, dup, reorder}, across several fault seeds, must still yield
// exactly-once in-order delivery per (source, tag) channel — plus the two
// lifecycle corners that single-fault tests miss: transport teardown while
// retransmit timers are armed, and an effective blackout (delays spanning
// many RTOs) that later recovers.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "lb/transport.hpp"
#include "sim/world.hpp"

namespace nowlb::lb {
namespace {

using sim::Bytes;
using sim::Context;
using sim::Pid;
using sim::Task;
using sim::World;
using sim::WorldConfig;

constexpr sim::Tag kDataA = 7;
constexpr sim::Tag kDataB = 8;
constexpr sim::Tag kBye = 9;

struct MatrixCase {
  const char* name;
  bool drop;
  bool dup;
  bool reorder;
  std::uint64_t seed;
};

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  static const char* kNames[] = {"drop",     "dup",      "reorder",
                                 "drop_dup", "drop_reo", "dup_reo",
                                 "all"};
  static const bool kFlags[][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
                                   {1, 1, 0}, {1, 0, 1}, {0, 1, 1},
                                   {1, 1, 1}};
  for (int i = 0; i < 7; ++i) {
    for (std::uint64_t seed : {101u, 202u}) {
      cases.push_back(
          {kNames[i], kFlags[i][0], kFlags[i][1], kFlags[i][2], seed});
    }
  }
  return cases;
}

WorldConfig faulty_world(const MatrixCase& c) {
  WorldConfig cfg;
  cfg.host.context_switch = 0;
  cfg.msg.send_overhead = 0;
  cfg.msg.recv_overhead = 0;
  cfg.net.latency = sim::kMillisecond;
  cfg.net.local_latency = 0;
  cfg.net.header_bytes = 0;
  cfg.net.drop_prob = c.drop ? 0.3 : 0.0;
  cfg.net.dup_prob = c.dup ? 0.25 : 0.0;
  cfg.net.max_extra_delay = c.reorder ? 8 * sim::kMillisecond : 0;
  cfg.net.fault_seed = c.seed;
  cfg.net.fault_tag_lo = kDataA;  // kBye stays on the perfect channel
  cfg.net.fault_tag_hi = kDataB;
  return cfg;
}

TransportConfig enabled_transport() {
  TransportConfig t;
  t.enabled = true;
  return t;
}

class TransportMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(TransportMatrix, ExactlyOnceInOrderPerSrcAndTag) {
  const MatrixCase& c = GetParam();
  constexpr int kPerChannel = 25;
  World w(faulty_world(c));
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  auto& h2 = w.add_host();

  // Delivery log per (src, tag); payload size encodes the send index.
  std::map<std::pair<Pid, sim::Tag>, std::vector<std::size_t>> got;
  int byes = 0;

  Pid rx = w.spawn(h0, "rx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, enabled_transport(), {kDataA, kDataB}, nullptr);
    // 2 senders x 2 tags x kPerChannel messages, interleaved with the
    // senders' byes; keep acking retransmits until both senders drained.
    int data = 0;
    while (data < 4 * kPerChannel || byes < 2) {
      sim::Message m = co_await ctx.recv(sim::kAnyTag);
      if (m.tag == kBye) {
        ++byes;
        continue;
      }
      got[{m.src, m.tag}].push_back(m.payload.size());
      ++data;
    }
  });
  auto sender = [&](Context& ctx) -> Task<> {
    Transport t(ctx, enabled_transport(), {kDataA, kDataB}, nullptr);
    for (int i = 0; i < kPerChannel; ++i) {
      co_await t.send(rx, kDataA, Bytes(static_cast<std::size_t>(i)));
      co_await t.send(rx, kDataB, Bytes(static_cast<std::size_t>(i) + 100));
    }
    co_await t.drain();
    EXPECT_EQ(t.stats().gave_up, 0u);
    co_await ctx.send(rx, kBye, Bytes(0));
  };
  Pid tx1 = w.spawn(h1, "tx1", sender);
  Pid tx2 = w.spawn(h2, "tx2", sender);
  w.run();

  ASSERT_EQ(got.size(), 4u) << c.name << " seed " << c.seed;
  for (Pid src : {tx1, tx2}) {
    for (sim::Tag tag : {kDataA, kDataB}) {
      const auto& log = got[{src, tag}];
      const std::size_t base = tag == kDataA ? 0 : 100;
      ASSERT_EQ(log.size(), static_cast<std::size_t>(kPerChannel))
          << c.name << " seed " << c.seed << " src " << src << " tag " << tag;
      for (int i = 0; i < kPerChannel; ++i) {
        EXPECT_EQ(log[static_cast<std::size_t>(i)],
                  base + static_cast<std::size_t>(i))
            << c.name << " seed " << c.seed << " src " << src << " tag "
            << tag << " position " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FaultCombos, TransportMatrix,
                         ::testing::ValuesIn(matrix_cases()),
                         [](const auto& pinfo) {
                           return std::string(pinfo.param.name) + "_seed" +
                                  std::to_string(pinfo.param.seed);
                         });

// Destroying a transport while retransmit timers are armed (sender exits
// without draining) must cancel cleanly: no stray timer fires into a dead
// object, and whatever did arrive is still in order without duplicates.
TEST(TransportMatrix, TeardownDuringRetransmitIsClean) {
  MatrixCase c{"all", true, true, true, 303};
  WorldConfig cfg = faulty_world(c);
  cfg.net.drop_prob = 0.5;  // guarantee unacked messages at teardown
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  std::vector<std::size_t> got;

  Pid rx = w.spawn(h0, "rx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, enabled_transport(), {kDataA}, nullptr);
    while (true) {
      auto m = co_await ctx.recv_until(kDataA, sim::kAnyPid,
                                       ctx.now() + 200 * sim::kMillisecond);
      if (!m) break;  // sender is gone and the channel went quiet
      got.push_back(m->payload.size());
    }
  });
  w.spawn(h1, "tx", [&](Context& ctx) -> Task<> {
    {
      Transport t(ctx, enabled_transport(), {kDataA}, nullptr);
      for (int i = 0; i < 10; ++i) {
        co_await t.send(rx, kDataA, Bytes(static_cast<std::size_t>(i)));
      }
      // First retransmits are armed now; leave scope without draining.
      co_await ctx.sleep(30 * sim::kMillisecond);
    }
    co_await ctx.sleep(sim::kSecond);  // outlive any stray timer
  });
  w.run();

  // Delivery is a prefix-free ordered subsequence: strictly increasing,
  // starting at 0 (seq 0 can only be lost, never skipped past).
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], i) << "delivered out of order or with a gap";
  }
}

// A network whose delays dwarf the RTO looks like a dead peer for many
// timeouts in a row; with enough retries the channel must recover with
// classic semantics intact once the delay clears.
TEST(TransportMatrix, BlackoutLongDelaysThenRecover) {
  MatrixCase c{"reorder", false, false, true, 404};
  WorldConfig cfg = faulty_world(c);
  cfg.net.max_extra_delay = 120 * sim::kMillisecond;  // many RTOs of silence
  World w(cfg);
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  std::vector<std::size_t> got;
  TransportStats tx_stats;

  TransportConfig tcfg = enabled_transport();
  tcfg.rto = 10 * sim::kMillisecond;
  tcfg.max_retries = 20;  // ride out the blackout

  Pid rx = w.spawn(h0, "rx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, tcfg, {kDataA}, nullptr);
    for (int i = 0; i < 20; ++i) {
      sim::Message m = co_await ctx.recv(kDataA);
      got.push_back(m.payload.size());
    }
    co_await ctx.recv(kBye);
  });
  w.spawn(h1, "tx", [&](Context& ctx) -> Task<> {
    Transport t(ctx, tcfg, {kDataA}, nullptr);
    for (int i = 0; i < 20; ++i) {
      co_await t.send(rx, kDataA, Bytes(static_cast<std::size_t>(i)));
    }
    co_await t.drain();
    tx_stats = t.stats();
    co_await ctx.send(rx, kBye, Bytes(0));
  });
  w.run();

  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], static_cast<std::size_t>(i));
  }
  // The blackout actually bit: retransmits fired, duplicates were
  // suppressed at the receiver, and nothing was abandoned.
  EXPECT_GT(tx_stats.retransmits, 0u);
  EXPECT_EQ(tx_stats.gave_up, 0u);
}

}  // namespace
}  // namespace nowlb::lb
