#include "lb/filter.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nowlb::lb {
namespace {

TEST(TrendFilter, FirstSamplePassesThrough) {
  TrendFilter f;
  EXPECT_DOUBLE_EQ(f.update(10.0), 10.0);
  EXPECT_TRUE(f.initialized());
}

TEST(TrendFilter, DampsIsolatedSpike) {
  TrendFilter f(0.3, 0.75, 3);
  f.update(10.0);
  const double after_spike = f.update(100.0);
  // Only 30 % of the spike passes through.
  EXPECT_DOUBLE_EQ(after_spike, 10.0 + 0.3 * 90.0);
}

TEST(TrendFilter, TrendAcceleratesConvergence) {
  TrendFilter slow(0.3, 0.75, 3);
  for (int i = 0; i < 4; ++i) slow.update(10.0);  // settle at 10
  // Step change sustained: after `trend_len` same-direction moves, the
  // filter switches to the fast weight and closes the gap quickly.
  double v = 0;
  for (int i = 0; i < 6; ++i) v = slow.update(100.0);
  EXPECT_GT(v, 95.0);
  EXPECT_GE(slow.trend_run(), 3);
}

TEST(TrendFilter, OscillationStaysDamped) {
  TrendFilter f(0.3, 0.75, 3);
  f.update(50.0);
  // Alternating samples never build a trend run >= 3.
  for (int i = 0; i < 20; ++i) f.update(i % 2 ? 100.0 : 0.0);
  EXPECT_LT(f.trend_run(), 3);
  // Filtered value stays in the middle band rather than pinning to extremes.
  EXPECT_GT(f.value(), 20.0);
  EXPECT_LT(f.value(), 80.0);
}

TEST(TrendFilter, TracksDropWithLag) {
  // Fig. 9 behaviour: a sustained drop is followed, but the adjusted rate
  // lags the raw rate.
  TrendFilter f;
  for (int i = 0; i < 10; ++i) f.update(100.0);
  std::vector<double> path;
  for (int i = 0; i < 6; ++i) path.push_back(f.update(40.0));
  EXPECT_GT(path.front(), 40.0);      // lags at first
  EXPECT_NEAR(path.back(), 40.0, 2.0);  // converged
  for (std::size_t i = 1; i < path.size(); ++i)
    EXPECT_LT(path[i], path[i - 1]);  // monotone pursuit
}

TEST(TrendFilter, ResetClearsState) {
  TrendFilter f;
  f.update(5.0);
  f.reset();
  EXPECT_FALSE(f.initialized());
  EXPECT_DOUBLE_EQ(f.update(7.0), 7.0);
}

TEST(TrendFilter, ConstantInputIsFixedPoint) {
  TrendFilter f;
  f.update(42.0);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(f.update(42.0), 42.0);
}

}  // namespace
}  // namespace nowlb::lb
