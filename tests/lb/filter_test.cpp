#include "lb/filter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "lb/master.hpp"

namespace nowlb::lb {
namespace {

TEST(TrendFilter, FirstSamplePassesThrough) {
  TrendFilter f;
  EXPECT_DOUBLE_EQ(f.update(10.0), 10.0);
  EXPECT_TRUE(f.initialized());
}

TEST(TrendFilter, DampsIsolatedSpike) {
  TrendFilter f(0.3, 0.75, 3);
  f.update(10.0);
  const double after_spike = f.update(100.0);
  // Only 30 % of the spike passes through.
  EXPECT_DOUBLE_EQ(after_spike, 10.0 + 0.3 * 90.0);
}

TEST(TrendFilter, TrendAcceleratesConvergence) {
  TrendFilter slow(0.3, 0.75, 3);
  for (int i = 0; i < 4; ++i) slow.update(10.0);  // settle at 10
  // Step change sustained: after `trend_len` same-direction moves, the
  // filter switches to the fast weight and closes the gap quickly.
  double v = 0;
  for (int i = 0; i < 6; ++i) v = slow.update(100.0);
  EXPECT_GT(v, 95.0);
  EXPECT_GE(slow.trend_run(), 3);
}

TEST(TrendFilter, OscillationStaysDamped) {
  TrendFilter f(0.3, 0.75, 3);
  f.update(50.0);
  // Alternating samples never build a trend run >= 3.
  for (int i = 0; i < 20; ++i) f.update(i % 2 ? 100.0 : 0.0);
  EXPECT_LT(f.trend_run(), 3);
  // Filtered value stays in the middle band rather than pinning to extremes.
  EXPECT_GT(f.value(), 20.0);
  EXPECT_LT(f.value(), 80.0);
}

TEST(TrendFilter, TracksDropWithLag) {
  // Fig. 9 behaviour: a sustained drop is followed, but the adjusted rate
  // lags the raw rate.
  TrendFilter f;
  for (int i = 0; i < 10; ++i) f.update(100.0);
  std::vector<double> path;
  for (int i = 0; i < 6; ++i) path.push_back(f.update(40.0));
  EXPECT_GT(path.front(), 40.0);      // lags at first
  EXPECT_NEAR(path.back(), 40.0, 2.0);  // converged
  for (std::size_t i = 1; i < path.size(); ++i)
    EXPECT_LT(path[i], path[i - 1]);  // monotone pursuit
}

TEST(TrendFilter, ResetClearsState) {
  TrendFilter f;
  f.update(5.0);
  f.reset();
  EXPECT_FALSE(f.initialized());
  EXPECT_DOUBLE_EQ(f.update(7.0), 7.0);
}

TEST(TrendFilter, ConstantInputIsFixedPoint) {
  TrendFilter f;
  f.update(42.0);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(f.update(42.0), 42.0);
}

TEST(TrendFilter, ForceOverridesWithoutBuildingATrend) {
  TrendFilter f;
  for (int i = 0; i < 5; ++i) f.update(100.0 + i);  // direction run going up
  f.force(10.0);
  EXPECT_DOUBLE_EQ(f.value(), 10.0);
  EXPECT_EQ(f.trend_run(), 0);
}

// The master updates a slave's rate only from informative windows — the
// gate that keeps a missing report's zeroed placeholder (elapsed 0) out of
// the units/elapsed division. These mirror the cases process_measurements
// sees with a crashed or silent rank.
TEST(InformativeWindow, MissingReportPlaceholderIsNotInformative) {
  StatusReport rep{};  // exactly what an unheard rank contributes
  EXPECT_FALSE(informative_window(rep));
}

TEST(InformativeWindow, DegenerateElapsedIsNotInformative) {
  StatusReport rep{};
  rep.units_done = 5;
  rep.remaining = 3;
  rep.elapsed_s = 0.0;  // would divide by ~zero
  EXPECT_FALSE(informative_window(rep));
  rep.elapsed_s = 1e-5;  // sub-threshold window
  EXPECT_FALSE(informative_window(rep));
}

TEST(InformativeWindow, IdleSlaveWindowIsNotInformative) {
  StatusReport rep{};
  rep.units_done = 0;  // spun balance rounds with no work
  rep.remaining = 0;
  rep.elapsed_s = 0.5;
  EXPECT_FALSE(informative_window(rep));
}

TEST(InformativeWindow, WorkingWindowIsInformative) {
  StatusReport rep{};
  rep.units_done = 12;
  rep.remaining = 4;
  rep.elapsed_s = 0.25;
  EXPECT_TRUE(informative_window(rep));
}

TEST(InformativeWindow, StarvedButBusyWindowIsInformative) {
  // Zero units completed but work still queued: the window measured a
  // genuinely slow slave, not an idle one.
  StatusReport rep{};
  rep.units_done = 0;
  rep.remaining = 6;
  rep.elapsed_s = 0.25;
  EXPECT_TRUE(informative_window(rep));
}

}  // namespace
}  // namespace nowlb::lb
