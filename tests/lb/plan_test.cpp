#include "lb/plan.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/check.hpp"

#include "util/rng.hpp"

namespace nowlb::lb {
namespace {

// Apply transfers to a distribution and return the result (units clamped
// at zero would indicate an invalid plan; we check non-negativity at every
// intermediate state reachable by a topological execution, approximated by
// final-state checks plus chain-feasibility in the restricted tests).
std::vector<int> apply_transfers(const std::vector<int>& current,
                       const std::vector<Transfer>& ts) {
  std::vector<int> out = current;
  for (const auto& t : ts) {
    out[t.from_rank] -= t.count;
    out[t.to_rank] += t.count;
  }
  return out;
}

// ---------------------------------------------------------- unrestricted

TEST(PlanUnrestricted, SimpleSurplusToDeficit) {
  auto ts = plan_unrestricted({10, 0}, {5, 5});
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0], (Transfer{0, 1, 5}));
}

TEST(PlanUnrestricted, NoMovementWhenBalanced) {
  EXPECT_TRUE(plan_unrestricted({3, 3, 4}, {3, 3, 4}).empty());
}

TEST(PlanUnrestricted, MultiWayMatch) {
  auto ts = plan_unrestricted({9, 1, 2}, {4, 4, 4});
  EXPECT_EQ(apply_transfers({9, 1, 2}, ts), (std::vector<int>{4, 4, 4}));
  // Minimal total movement: exactly the surplus.
  EXPECT_EQ(units_moved(ts), 5);
  // No rank both sends and receives.
  for (const auto& t : ts) {
    for (const auto& u : ts) {
      EXPECT_FALSE(t.from_rank == u.to_rank && t.count > 0 && u.count > 0);
    }
  }
}

TEST(PlanUnrestricted, MismatchedTotalsThrow) {
  EXPECT_THROW(plan_unrestricted({5, 5}, {5, 6}), CheckFailure);
}

class PlanUnrestrictedProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlanUnrestrictedProperty, RandomizedInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int iter = 0; iter < 300; ++iter) {
    const int n = 2 + static_cast<int>(rng.below(7));
    std::vector<int> current(n), target(n);
    int total = 0;
    for (auto& c : current) {
      c = static_cast<int>(rng.below(50));
      total += c;
    }
    // Random re-partition of the same total.
    int left = total;
    for (int i = 0; i < n - 1; ++i) {
      target[i] = static_cast<int>(rng.below(static_cast<std::uint64_t>(left + 1)));
      left -= target[i];
    }
    target[n - 1] = left;

    auto ts = plan_unrestricted(current, target);
    EXPECT_EQ(apply_transfers(current, ts), target);
    // Movement is minimal: total transferred == total positive surplus.
    int surplus = 0;
    for (int i = 0; i < n; ++i) surplus += std::max(0, current[i] - target[i]);
    EXPECT_EQ(units_moved(ts), surplus);
    // Donors only send; receivers only receive.
    for (const auto& t : ts) {
      EXPECT_GT(t.count, 0);
      EXPECT_GT(current[t.from_rank], target[t.from_rank]);
      EXPECT_LT(current[t.to_rank], target[t.to_rank]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanUnrestrictedProperty,
                         ::testing::Values(1, 2, 3, 4));

// ------------------------------------------------------------ restricted

TEST(PlanRestricted, AdjacentOnly) {
  auto ts = plan_restricted({10, 0, 0}, {3, 4, 3});
  EXPECT_EQ(apply_transfers({10, 0, 0}, ts), (std::vector<int>{3, 4, 3}));
  for (const auto& t : ts) {
    EXPECT_EQ(std::abs(t.from_rank - t.to_rank), 1);
  }
}

TEST(PlanRestricted, ChainThroughIntermediate) {
  // All surplus on rank 0, deficit on rank 2: rank 1 forwards.
  auto ts = plan_restricted({6, 2, 1}, {3, 3, 3});
  // Boundary 1 shifts: rank0 sends 3 right; boundary 2: rank1 sends 2 right.
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0], (Transfer{0, 1, 3}));
  EXPECT_EQ(ts[1], (Transfer{1, 2, 2}));
}

TEST(PlanRestricted, BothDirections) {
  auto ts = plan_restricted({1, 8, 1}, {3, 4, 3});
  EXPECT_EQ(apply_transfers({1, 8, 1}, ts), (std::vector<int>{3, 4, 3}));
  // Rank 1 sends 2 left and 2 right.
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0], (Transfer{1, 0, 2}));
  EXPECT_EQ(ts[1], (Transfer{1, 2, 2}));
}

TEST(PlanRestricted, PreservesBlockDistribution) {
  // If current is a block partition of [0, total), the moved slices (edge
  // slices by construction in the slave) keep every rank contiguous. Here
  // we verify the *counts* invariant: prefix sums of target are the new
  // boundaries, and each transfer crosses exactly one boundary.
  const std::vector<int> current{5, 5, 5, 5};
  const std::vector<int> target{2, 8, 7, 3};
  auto ts = plan_restricted(current, target);
  EXPECT_EQ(apply_transfers(current, ts), target);
  for (const auto& t : ts) EXPECT_EQ(std::abs(t.from_rank - t.to_rank), 1);
}

class PlanRestrictedProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlanRestrictedProperty, RandomizedInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int iter = 0; iter < 300; ++iter) {
    const int n = 2 + static_cast<int>(rng.below(7));
    std::vector<int> current(n), target(n);
    int total = 0;
    for (auto& c : current) {
      c = static_cast<int>(rng.below(40));
      total += c;
    }
    int left = total;
    for (int i = 0; i < n - 1; ++i) {
      target[i] = static_cast<int>(rng.below(static_cast<std::uint64_t>(left + 1)));
      left -= target[i];
    }
    target[n - 1] = left;

    auto ts = plan_restricted(current, target);
    EXPECT_EQ(apply_transfers(current, ts), target);
    for (const auto& t : ts) {
      EXPECT_GT(t.count, 0);
      EXPECT_EQ(std::abs(t.from_rank - t.to_rank), 1);
    }
    // At most one transfer per boundary per direction.
    for (std::size_t i = 0; i < ts.size(); ++i) {
      for (std::size_t j = i + 1; j < ts.size(); ++j) {
        EXPECT_FALSE(ts[i].from_rank == ts[j].from_rank &&
                     ts[i].to_rank == ts[j].to_rank);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanRestrictedProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------- decide

LbConfig cfg_with(double threshold, bool profit) {
  LbConfig cfg;
  cfg.improvement_threshold = threshold;
  cfg.profitability_check = profit;
  return cfg;
}

TEST(Decide, BalancedStaysPut) {
  auto d = decide(cfg_with(0.1, true), {10, 10}, {1.0, 1.0}, 0.01);
  EXPECT_FALSE(d.move);
  EXPECT_STREQ(d.reason, "below improvement threshold");
}

TEST(Decide, LargeImbalanceMoves) {
  auto d = decide(cfg_with(0.1, true), {20, 0}, {1.0, 1.0}, 0.01);
  EXPECT_TRUE(d.move);
  EXPECT_EQ(d.target, (std::vector<int>{10, 10}));
  EXPECT_NEAR(d.improvement, 0.5, 1e-9);
}

TEST(Decide, ThresholdGatesSmallImbalance) {
  // 11 vs 9 at equal rates: projected 11 -> 10, improvement ~9 % < 10 %.
  auto d = decide(cfg_with(0.10, true), {11, 9}, {1.0, 1.0}, 0.0);
  EXPECT_FALSE(d.move);
  // With a 5 % threshold the same situation moves.
  auto d2 = decide(cfg_with(0.05, true), {11, 9}, {1.0, 1.0}, 0.0);
  EXPECT_TRUE(d2.move);
}

TEST(Decide, ProfitabilityCancelsExpensiveMove) {
  // Benefit is 20 s - 10 s = 10 s, but moving 10 units at 1.5 s/unit
  // costs 15 s: cancelled.
  auto d = decide(cfg_with(0.1, true), {20, 0}, {1.0, 1.0}, 1.5);
  EXPECT_FALSE(d.move);
  EXPECT_STREQ(d.reason, "movement not profitable");
  // Disabling the check lets it through (ablation).
  auto d2 = decide(cfg_with(0.1, false), {20, 0}, {1.0, 1.0}, 1.5);
  EXPECT_TRUE(d2.move);
}

TEST(Decide, StalledSlaveForcesMove) {
  // A slave with work but zero rate makes current time infinite; movement
  // must happen regardless of cost.
  auto d = decide(cfg_with(0.1, true), {10, 10}, {0.0, 1.0}, 100.0);
  EXPECT_TRUE(d.move);
  EXPECT_EQ(d.target, (std::vector<int>{0, 20}));
}

TEST(Decide, NoWorkNoMove) {
  auto d = decide(cfg_with(0.1, true), {0, 0}, {1.0, 1.0}, 0.01);
  EXPECT_FALSE(d.move);
  EXPECT_STREQ(d.reason, "no work remaining");
}

TEST(Decide, AllStalledNoMove) {
  auto d = decide(cfg_with(0.1, true), {5, 5}, {0.0, 0.0}, 0.01);
  EXPECT_FALSE(d.move);
  EXPECT_STREQ(d.reason, "no slave can make progress");
}

TEST(Decide, RestrictedModePlansAdjacent) {
  LbConfig cfg = cfg_with(0.1, false);
  cfg.movement = Movement::kRestricted;
  auto d = decide(cfg, {12, 0, 0}, {1.0, 1.0, 1.0}, 0.0);
  EXPECT_TRUE(d.move);
  for (const auto& t : d.transfers)
    EXPECT_EQ(std::abs(t.from_rank - t.to_rank), 1);
}

}  // namespace
}  // namespace nowlb::lb
