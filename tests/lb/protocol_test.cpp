// Wire-format tests for the causal trailers (DESIGN.md §13): byte-level
// compatibility with the classic format when causal propagation is off,
// round-trip of the causal fields when on, composition with the
// fault-tolerance trailer, strict rejection of unknown markers, and the
// kTagMove causal envelope.
#include "lb/protocol.hpp"

#include <gtest/gtest.h>

#include "msg/serialize.hpp"
#include "util/check.hpp"

namespace nowlb::lb {
namespace {

StatusReport sample_report() {
  StatusReport s;
  s.round = 12;
  s.units_done = 34.5;
  s.elapsed_s = 1.75;
  s.remaining = 99;
  s.lb_blocked_s = 0.002;
  s.move_time_s = 0.125;
  s.moved_units = 8;
  return s;
}

Instructions sample_instr() {
  Instructions ins;
  ins.round = 3;
  ins.units_until_next = 17.25;
  ins.orders = {{2, 5, 1}, {0, 3, 0}};
  return ins;
}

// The acceptance bar for the feature gate: with causal off, the payload
// must be bit-identical to the classic encoding even when the causal
// fields hold stale values.
TEST(CausalTrailer, OffMeansBitIdenticalBytes) {
  const StatusReport classic = sample_report();
  StatusReport stale = sample_report();
  stale.ctx_round = 7;  // never encoded while causal == 0
  EXPECT_EQ(msg::encode(classic), msg::encode(stale));

  const Instructions classic_ins = sample_instr();
  Instructions stale_ins = sample_instr();
  stale_ins.decision_round = 4;
  EXPECT_EQ(msg::encode(classic_ins), msg::encode(stale_ins));
}

TEST(CausalTrailer, StatusReportRoundtrip) {
  StatusReport s = sample_report();
  s.causal = 1;
  s.ctx_round = 11;
  EXPECT_EQ(msg::encode(s).size(), s.encoded_size());
  const auto out = msg::decode<StatusReport>(msg::encode(s));
  EXPECT_EQ(out.causal, 1);
  EXPECT_EQ(out.ctx_round, 11);
  EXPECT_EQ(out.round, s.round);
  EXPECT_EQ(out.remaining, s.remaining);
}

TEST(CausalTrailer, InstructionsRoundtrip) {
  Instructions ins = sample_instr();
  ins.causal = 1;
  ins.decision_round = 6;
  EXPECT_EQ(msg::encode(ins).size(), ins.encoded_size());
  const auto out = msg::decode<Instructions>(msg::encode(ins));
  EXPECT_EQ(out.causal, 1);
  EXPECT_EQ(out.decision_round, 6);
  ASSERT_EQ(out.orders.size(), 2u);
  EXPECT_EQ(out.orders[0].count, 5);
}

// Both trailers ride together: ft first (its marker doubles as the legacy
// presence flag), causal behind it.
TEST(CausalTrailer, ComposesWithFtTrailer) {
  StatusReport s = sample_report();
  s.ft = 1;
  s.inventory = {4, 9, 13};
  s.causal = 1;
  s.ctx_round = 2;
  EXPECT_EQ(msg::encode(s).size(), s.encoded_size());
  const auto out = msg::decode<StatusReport>(msg::encode(s));
  EXPECT_EQ(out.ft, 1);
  EXPECT_EQ(out.inventory, (std::vector<std::int32_t>{4, 9, 13}));
  EXPECT_EQ(out.causal, 1);
  EXPECT_EQ(out.ctx_round, 2);

  Instructions ins = sample_instr();
  ins.ft = 1;
  ins.evicted = {1};
  ins.adopt = {17, 18};
  ins.causal = 1;
  ins.decision_round = 5;
  EXPECT_EQ(msg::encode(ins).size(), ins.encoded_size());
  const auto iout = msg::decode<Instructions>(msg::encode(ins));
  EXPECT_EQ(iout.ft, 1);
  EXPECT_EQ(iout.evicted, (std::vector<std::int32_t>{1}));
  EXPECT_EQ(iout.adopt, (std::vector<std::int32_t>{17, 18}));
  EXPECT_EQ(iout.causal, 1);
  EXPECT_EQ(iout.decision_round, 5);
}

// A legacy ft payload (pre-trailer encoding: flag byte 1 then the
// inventory) decodes unchanged — the marker value was chosen to match.
TEST(CausalTrailer, LegacyFtPayloadStillDecodes) {
  msg::Writer w;
  const StatusReport s = sample_report();
  w.put(s.round).put(s.units_done).put(s.elapsed_s).put(s.remaining)
      .put(s.lb_blocked_s).put(s.move_time_s).put(s.moved_units).put(s.done);
  w.put<std::uint8_t>(1);  // the legacy ft presence flag
  w.put_vec(std::vector<std::int32_t>{7, 8});
  auto b = w.take();
  const auto out = msg::decode<StatusReport>(b);
  EXPECT_EQ(out.ft, 1);
  EXPECT_EQ(out.inventory, (std::vector<std::int32_t>{7, 8}));
  EXPECT_EQ(out.causal, 0);
}

TEST(CausalTrailer, UnknownMarkerIsRejected) {
  StatusReport s = sample_report();
  msg::Writer w;
  s.encode(w);
  w.put<std::uint8_t>(99);  // no such trailer
  auto b = w.take();
  EXPECT_THROW(msg::decode<StatusReport>(b), CheckFailure);

  Instructions ins = sample_instr();
  msg::Writer wi;
  ins.encode(wi);
  wi.put<std::uint8_t>(99);
  auto bi = wi.take();
  EXPECT_THROW(msg::decode<Instructions>(bi), CheckFailure);
}

TEST(MoveEnvelope, WrapUnwrapRoundtrip) {
  sim::Bytes payload = {std::byte{1}, std::byte{2}, std::byte{3}};
  sim::Bytes wire = wrap_move({14, 2}, payload);
  EXPECT_NE(wire, payload);
  const MoveContext mc = unwrap_move(wire);
  EXPECT_EQ(mc.round, 14);
  EXPECT_EQ(mc.from_rank, 2);
  EXPECT_EQ(wire, payload);  // unwrap restores the raw application bytes
}

TEST(MoveEnvelope, TrailingBytesAreRejected) {
  sim::Bytes payload = {std::byte{5}};
  sim::Bytes wire = wrap_move({1, 0}, payload);
  wire.push_back(std::byte{0});
  EXPECT_THROW(unwrap_move(wire), CheckFailure);
}

}  // namespace
}  // namespace nowlb::lb
