#include "lb/frequency.hpp"

#include <gtest/gtest.h>

namespace nowlb::lb {
namespace {

using sim::kMillisecond;
using sim::kSecond;

LbConfig base() {
  LbConfig cfg;
  cfg.quantum = 100 * kMillisecond;
  cfg.min_period = 500 * kMillisecond;
  cfg.initial_interaction_cost = 2 * kMillisecond;
  cfg.initial_move_cost = 50 * kMillisecond;
  return cfg;
}

TEST(Frequency, QuantumBoundDominatesByDefault) {
  FrequencyController f(base());
  // 5 x 100ms quantum == 500ms == min period; everything else is smaller.
  EXPECT_EQ(f.period(), 500 * kMillisecond);
}

TEST(Frequency, InteractionCostRaisesPeriod) {
  FrequencyController f(base());
  // Sustained 100 ms interactions push the estimate up; 20x bound kicks in.
  for (int i = 0; i < 10; ++i) f.observe_interaction(100 * kMillisecond);
  EXPECT_GT(f.period(), 1900 * kMillisecond);  // ~ 20 x 100ms
}

TEST(Frequency, MoveCostRaisesPeriod) {
  FrequencyController f(base());
  for (int i = 0; i < 10; ++i) f.observe_move_event(20 * kSecond);
  // 0.1 x 20 s = 2 s > 500 ms floor.
  EXPECT_GT(f.period(), 1900 * kMillisecond);
}

TEST(Frequency, MinPeriodIsFloor) {
  LbConfig cfg = base();
  cfg.quantum = kMillisecond;  // tiny quantum: 5x bound = 5 ms
  FrequencyController f(cfg);
  EXPECT_EQ(f.period(), cfg.min_period);
}

TEST(Frequency, UnitsForPeriodScalesWithRate) {
  FrequencyController f(base());  // period 500 ms
  EXPECT_DOUBLE_EQ(f.units_for_period(100.0), 50.0);
  EXPECT_DOUBLE_EQ(f.units_for_period(2.0), 1.0);  // at least one unit
  EXPECT_DOUBLE_EQ(f.units_for_period(0.0), 1.0);
}

TEST(Frequency, EwmaConverges) {
  FrequencyController f(base());
  for (int i = 0; i < 20; ++i) f.observe_interaction(10 * kMillisecond);
  EXPECT_NEAR(sim::to_seconds(f.interaction_cost()), 0.010, 0.001);
}

TEST(Frequency, ShrinkingWorkUnitsReduceRelativeOverhead) {
  // §4.7: as per-unit cost shrinks, rate (units/s) grows, so the same
  // period maps to more units between balances — relative overhead drops.
  FrequencyController f(base());
  const double early_rate = 10.0;   // big LU columns
  const double late_rate = 1000.0;  // small LU columns
  EXPECT_LT(f.units_for_period(early_rate), f.units_for_period(late_rate));
}

}  // namespace
}  // namespace nowlb::lb
