// Experiment harness tests: the paper's metrics computed correctly.
#include <gtest/gtest.h>

#include "exp/harness.hpp"
#include "load/generators.hpp"

namespace nowlb::exp {
namespace {

apps::MmConfig small_mm() {
  apps::MmConfig mm;
  mm.n = 80;
  mm.mac_cost = 20 * sim::kMicrosecond;  // seq ~10.2 s
  return mm;
}

ExperimentConfig small_cfg(int slaves) {
  ExperimentConfig cfg;
  cfg.slaves = slaves;
  cfg.world = paper_world();
  cfg.lb = paper_lb();
  return cfg;
}

TEST(Harness, DedicatedEfficiencyNearOne) {
  auto m = run_mm(small_mm(), small_cfg(4));
  EXPECT_NEAR(m.speedup, 4.0, 0.4);
  EXPECT_GT(m.efficiency, 0.9);
  EXPECT_LE(m.efficiency, 1.01);
  EXPECT_DOUBLE_EQ(m.competing_cpu_s, 0.0);
}

TEST(Harness, CompetingCpuMeasured) {
  auto cfg = small_cfg(2);
  cfg.loads.push_back({0, [] { return load::constant(); }});
  auto m = run_mm(small_mm(), cfg);
  // The load shares its host with the slave: it gets at least half the
  // CPU while the slave computes there, more once work migrates away.
  EXPECT_GT(m.competing_cpu_s, m.elapsed_s * 0.4);
  EXPECT_LE(m.competing_cpu_s, m.elapsed_s * 1.01);
  // Efficiency accounts for the stolen CPU: it stays well above
  // seq/(P*elapsed).
  EXPECT_GT(m.efficiency, m.seq_s / (2 * m.elapsed_s));
}

TEST(Harness, TraceCapturesSeries) {
  auto cfg = small_cfg(3);
  cfg.want_trace = true;
  Trace trace;
  auto m = run_mm(small_mm(), cfg, &trace);
  (void)m;
  EXPECT_NE(trace.find("lb.work.0"), nullptr);
  EXPECT_NE(trace.find("lb.adj_rate.2"), nullptr);
  EXPECT_EQ(trace.find("lb.work.9"), nullptr);
}

TEST(Harness, RepeatAccumulatesStatistics) {
  auto cfg = small_cfg(2);
  auto rep = repeat(3, cfg, [&](const ExperimentConfig& c) {
    return run_mm(small_mm(), c);
  });
  EXPECT_EQ(rep.elapsed_s.count(), 3u);
  EXPECT_GT(rep.speedup.mean(), 1.5);
}

TEST(Harness, StaticRunHasNoMasterStats) {
  auto mm = small_mm();
  mm.use_lb = false;
  auto m = run_mm(mm, small_cfg(3));
  EXPECT_EQ(m.stats.rounds, 0);
  EXPECT_GT(m.speedup, 2.5);
}

TEST(Harness, SorAndLuRunnersWork) {
  apps::SorConfig sor;
  sor.n = 100;
  sor.sweeps = 2;
  sor.update_cost = 100 * sim::kMicrosecond;
  auto ms = run_sor(sor, small_cfg(3));
  EXPECT_GT(ms.speedup, 1.2);

  apps::LuConfig lu;
  lu.n = 100;
  lu.update_cost = 50 * sim::kMicrosecond;
  auto ml = run_lu(lu, small_cfg(3));
  EXPECT_GT(ml.speedup, 1.2);
}

}  // namespace
}  // namespace nowlb::exp
