// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "exp/harness.hpp"
#include "load/generators.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace nowlb::bench {

/// Wire the standard `--trace=FILE` / `--metrics=FILE` flags to a flight
/// recorder shared across the whole sweep. Returns the hub to install as
/// ExperimentConfig::obs, or nullptr when neither flag is present (runs
/// then pay no recording cost at all).
inline obs::Observability* flight_recorder(const Cli& cli,
                                           obs::Observability& hub) {
  return (cli.has("trace") || cli.has("metrics")) ? &hub : nullptr;
}

/// Dump the recorder per the `--trace` / `--metrics` flags. Status goes to
/// stderr only: the figure tables on stdout stay byte-identical whether
/// tracing is on or off (CI compares them).
inline void dump_flight_recorder(const Cli& cli,
                                 const obs::Observability& hub) {
  const std::string trace_path = cli.get("trace", "");
  if (!trace_path.empty()) {
    if (obs::write_chrome_trace_file(trace_path, hub.trace)) {
      std::cerr << "trace: wrote " << hub.trace.events().size()
                << " events to " << trace_path << '\n';
    } else {
      std::cerr << "trace: failed to write " << trace_path << '\n';
    }
  }
  const std::string metrics_path = cli.get("metrics", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (out) {
      out << hub.metrics.prometheus_text();
      std::cerr << "metrics: wrote " << metrics_path << '\n';
    } else {
      std::cerr << "metrics: failed to write " << metrics_path << '\n';
    }
  }
}

/// Paper-style repetition: >= 3 measurements, mean with range bars.
/// Seeds vary per repetition (stochastic loads differ; deterministic
/// scenarios produce tight ranges).
inline exp::RepeatedMeasurement measure(
    int reps, const exp::ExperimentConfig& cfg,
    const std::function<exp::Measurement(const exp::ExperimentConfig&)>&
        run_once) {
  return exp::repeat(reps, cfg, run_once);
}

inline void print_table(const Table& t) {
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace nowlb::bench
