// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <functional>
#include <iostream>

#include "exp/harness.hpp"
#include "load/generators.hpp"
#include "util/table.hpp"

namespace nowlb::bench {

/// Paper-style repetition: >= 3 measurements, mean with range bars.
/// Seeds vary per repetition (stochastic loads differ; deterministic
/// scenarios produce tight ranges).
inline exp::RepeatedMeasurement measure(
    int reps, const exp::ExperimentConfig& cfg,
    const std::function<exp::Measurement(const exp::ExperimentConfig&)>&
        run_once) {
  return exp::repeat(reps, cfg, run_once);
}

inline void print_table(const Table& t) {
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace nowlb::bench
