// Ablation (§4.2 / §4.4, Figs. 3-4): strip-mine grain size and hook
// placement.
//
// Part 1: SOR completion time across strip sizes — blocks far below the
// scheduling quantum mean per-strip synchronization dominates and quantum
// effects make execution erratic; far above it, the pipeline fills/drains
// slowly and balancing is less responsive. The automatic startup
// calibration (~1.5 x quantum) should sit near the sweet spot.
//
// Part 2: the compiler's hook-placement rule on SOR's loop levels.
#include "bench_common.hpp"
#include "loop/grain.hpp"
#include "loop/hooks.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 2));

  apps::SorConfig sor;
  sor.n = static_cast<int>(cli.get_int("n", 1000));
  sor.sweeps = static_cast<int>(cli.get_int("sweeps", 10));

  Table t("Ablation: SOR strip size (n=" + std::to_string(sor.n) +
          ", 6 slaves, load on slave 0; quantum 100 ms)");
  t.header({"block rows", "time(s)", "efficiency", "units moved"});

  for (int bs : {1, 4, 0 /*auto*/, 120, 499}) {
    exp::ExperimentConfig cfg;
    cfg.slaves = 6;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();
    cfg.loads.push_back({0, [] { return load::constant(); }});

    sor.block_rows = bs;
    sor.use_lb = true;
    auto r = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_sor(sor, c);
    });
    t.row()
        .cell(bs == 0 ? std::string("auto (1.5x quantum)")
                      : std::to_string(bs))
        .cell_pm(r.elapsed_s.mean(), r.elapsed_s.range_halfwidth(), 1)
        .cell(r.efficiency.mean(), 2)
        .cell(r.last_stats.units_moved);
  }
  bench::print_table(t);

  // ---- hook placement rule (§4.2, Fig. 3) ----
  const auto spec = apps::sor_spec(sor);
  const sim::Time col_cost = spec.iteration_cost(0, 1);
  const int cols_per_slave = spec.distributed_extent / 6;
  const sim::Time strip_cost = col_cost / 10;  // ~10 strips per column
  std::vector<loop::HookLevel> levels{
      {"outer (whole sweep)", col_cost * cols_per_slave},
      {"strip (lbhook1a)", strip_cost * cols_per_slave},
      {"column within strip (lbhook2)", strip_cost},
  };
  const int placed = loop::place_hook(levels);
  Table h("Hook placement (SOR, per-level body cost vs 1% rule)");
  h.header({"level", "body cost(ms)", "hook overhead share", "chosen"});
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double share = sim::to_seconds(loop::kDefaultHookOverhead) /
                         sim::to_seconds(levels[i].body_cost);
    h.row()
        .cell(levels[i].label)
        .cell(sim::to_seconds(levels[i].body_cost) * 1e3, 2)
        .cell(share * 100.0, 3)
        .cell(static_cast<int>(i) == placed ? "<== hook here" : "");
  }
  bench::print_table(h);
  return 0;
}
