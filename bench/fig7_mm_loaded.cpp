// Figure 7: 500x500 MM with a constant competing load on slave 0 —
// (a) execution time and (b) the paper's resource-usage efficiency
// (T_seq / sum(elapsed - competing CPU)). Expected shape: without DLB the
// loaded slave drags everyone (~2x); with DLB efficiency stays near the
// dedicated level.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int max_slaves = static_cast<int>(cli.get_int("max-slaves", 7));

  apps::MmConfig mm;
  mm.n = static_cast<int>(cli.get_int("n", 500));

  Table t("Fig 7: MM " + std::to_string(mm.n) + "x" + std::to_string(mm.n) +
          ", constant competing load on slave 0");
  t.header({"slaves", "par(s)", "par+DLB(s)", "eff", "eff+DLB",
            "units moved"});

  for (int s = 1; s <= max_slaves; ++s) {
    exp::ExperimentConfig cfg;
    cfg.slaves = s;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();
    cfg.loads.push_back({0, [] { return load::constant(); }});

    mm.use_lb = false;
    auto par = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_mm(mm, c);
    });
    mm.use_lb = true;
    auto dlb = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_mm(mm, c);
    });

    t.row()
        .cell(s)
        .cell_pm(par.elapsed_s.mean(), par.elapsed_s.range_halfwidth(), 1)
        .cell_pm(dlb.elapsed_s.mean(), dlb.elapsed_s.range_halfwidth(), 1)
        .cell(par.efficiency.mean(), 2)
        .cell(dlb.efficiency.mean(), 2)
        .cell(dlb.last_stats.units_moved);
  }
  bench::print_table(t);
  return 0;
}
