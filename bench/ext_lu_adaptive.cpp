// Extension (§4.7): LU decomposition — shrinking loop bounds, shrinking
// work units, active/inactive slices, and automatic balancing-frequency
// adaptation. The paper analyzes LU but only measures MM and SOR; this
// binary provides the measurement. The key §4.7 claim: as work units
// shrink, the measured rate in units/s rises, so a fixed time period maps
// to more units between balances and relative overhead stays bounded.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 2));

  apps::LuConfig lu;
  lu.n = static_cast<int>(cli.get_int("n", 500));

  Table t("LU n=" + std::to_string(lu.n) +
          " (done-flag termination, dynamic pivot-owner broadcast)");
  t.header({"slaves", "load?", "par(s)", "par+DLB(s)", "eff", "eff+DLB",
            "rounds", "units moved"});

  for (int s : {4, 6}) {
    for (int loaded = 0; loaded <= 1; ++loaded) {
      exp::ExperimentConfig cfg;
      cfg.slaves = s;
      cfg.world = exp::paper_world();
      cfg.lb = exp::paper_lb();
      if (loaded) cfg.loads.push_back({0, [] { return load::constant(); }});

      lu.use_lb = false;
      auto par = bench::measure(reps, cfg,
                                [&](const exp::ExperimentConfig& c) {
                                  return exp::run_lu(lu, c);
                                });
      lu.use_lb = true;
      auto dlb = bench::measure(reps, cfg,
                                [&](const exp::ExperimentConfig& c) {
                                  return exp::run_lu(lu, c);
                                });

      t.row()
          .cell(s)
          .cell(loaded ? "slave 0" : "no")
          .cell(par.elapsed_s.mean(), 1)
          .cell(dlb.elapsed_s.mean(), 1)
          .cell(par.efficiency.mean(), 2)
          .cell(dlb.efficiency.mean(), 2)
          .cell(dlb.last_stats.rounds)
          .cell(dlb.last_stats.units_moved);
    }
  }
  bench::print_table(t);
  std::cout << "note: LU balancing rounds stay far below the " << lu.n - 1
            << " outer steps — the §4.7 frequency adaptation in action.\n";
  return 0;
}
