// Ablation (Fig. 2 / §3.3): pipelined vs synchronous master interactions.
// "Experiments comparing the pipelined and synchronous approaches confirm
// that pipelining is important" — especially as network latency grows,
// because the synchronous round trip sits on every slave's critical path.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 2));

  apps::MmConfig mm;
  mm.n = static_cast<int>(cli.get_int("n", 500));

  Table t("Ablation: pipelined vs synchronous master interaction "
          "(MM, 6 slaves, load on slave 0)");
  t.header({"net latency(ms)", "sync(s)", "pipelined(s)", "sync eff",
            "pipe eff"});

  for (double latency_ms : {0.1, 1.0, 5.0, 20.0}) {
    exp::ExperimentConfig cfg;
    cfg.slaves = 6;
    cfg.world = exp::paper_world();
    cfg.world.net.latency = sim::from_seconds(latency_ms / 1000.0);
    cfg.lb = exp::paper_lb();
    cfg.loads.push_back({0, [] { return load::constant(); }});

    mm.use_lb = true;
    cfg.lb.pipelined = false;
    auto sync = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_mm(mm, c);
    });
    cfg.lb.pipelined = true;
    auto pipe = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_mm(mm, c);
    });

    t.row()
        .cell(latency_ms, 1)
        .cell(sync.elapsed_s.mean(), 1)
        .cell(pipe.elapsed_s.mean(), 1)
        .cell(sync.efficiency.mean(), 2)
        .cell(pipe.efficiency.mean(), 2);
  }
  bench::print_table(t);
  return 0;
}
