// Figure 9: work assignment tracking an oscillating load. 500x500 MM
// (repeated so the run spans ~100 s) on 4 slaves, with a competing task on
// slave 0 that is busy 10 s out of every 20 s. Prints the raw measured
// rate, the trend-filtered (adjusted) rate, and the work assignment for
// the loaded slave, each normalized as in the paper (rates to their
// maximum, work to the equal-distribution share). Expected shape: work
// tracks the available rate with ~2 balancing periods of lag; the filtered
// rate is smoother than the raw rate.
#include <algorithm>

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace nowlb;

namespace {

void print_normalized(const char* label, const Series* s, double norm) {
  if (s == nullptr || s->size() == 0) {
    std::cout << label << ": (no data)\n";
    return;
  }
  std::vector<double> v = s->v;
  for (auto& x : v) x /= norm;
  std::cout << ascii_chart(s->t, v, 72, 10, label);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  apps::MmConfig mm;
  mm.n = static_cast<int>(cli.get_int("n", 500));
  // Repeats stretch the run to the paper's ~100 s horizontal axis.
  mm.repeats = static_cast<int>(cli.get_int("repeats", 3));

  exp::ExperimentConfig cfg;
  cfg.slaves = 4;
  cfg.world = exp::paper_world();
  cfg.lb = exp::paper_lb();
  cfg.want_trace = true;
  cfg.loads.push_back({0, [] {
                         return load::oscillating(20 * sim::kSecond,
                                                  10 * sim::kSecond);
                       }});

  exp::Trace trace;
  const auto m = exp::run_mm(mm, cfg, &trace);

  std::cout << "== Fig 9: MM with oscillating load (20 s period, 10 s "
               "duration) on slave 0 of 4 ==\n";
  std::cout << "run took " << m.elapsed_s << " s, " << m.stats.rounds
            << " balancing rounds, " << m.stats.units_moved
            << " columns moved\n\n";

  const Series* raw = trace.find("lb.raw_rate.0");
  const Series* adj = trace.find("lb.adj_rate.0");
  const Series* work = trace.find("lb.work.0");

  double max_rate = 1e-9;
  if (raw != nullptr) {
    for (double v : raw->v) max_rate = std::max(max_rate, v);
  }
  const double equal_share = static_cast<double>(mm.n) / cfg.slaves;

  print_normalized("raw rate (normalized to max)", raw, max_rate);
  std::cout << '\n';
  print_normalized("adjusted (filtered) rate", adj, max_rate);
  std::cout << '\n';
  print_normalized("work assignment (normalized to equal share)", work,
                   equal_share);

  // Numeric series for plotting, sourced straight from the decision
  // ledger: one row per round where the planner ran.
  Table t("Fig 9 series (slave 0)");
  t.header({"t(s)", "raw", "adjusted", "work"});
  for (const auto& rec : trace.rounds) {
    switch (rec.gate) {
      case obs::Gate::kMove:
      case obs::Gate::kBelowThreshold:
      case obs::Gate::kNotProfitable:
      case obs::Gate::kHold:
        break;
      default:
        continue;  // wind-down / frozen rounds carry no planner output
    }
    if (rec.raw_rates.empty()) continue;
    t.row()
        .cell(sim::to_seconds(rec.t), 1)
        .cell(rec.raw_rates[0] / max_rate, 3)
        .cell(rec.rates[0] / max_rate, 3)
        .cell(static_cast<double>(rec.target[0]) / equal_share, 3);
  }
  bench::print_table(t);
  return 0;
}
