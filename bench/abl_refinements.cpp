// Ablation (§3.2 refinements): rate filtering, the 10 % improvement
// threshold, and the profitability determination phase, under an
// oscillating load (the environment they were designed for). Disabling
// them increases movement churn and usually hurts completion time.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 2));

  apps::MmConfig mm;
  mm.n = static_cast<int>(cli.get_int("n", 500));
  mm.repeats = 4;

  struct Variant {
    const char* name;
    bool filtering;
    double threshold;
    bool profitability;
  };
  const Variant variants[] = {
      {"all refinements (paper)", true, 0.10, true},
      {"no filtering", false, 0.10, true},
      {"no 10% threshold", true, 0.0, true},
      {"no profitability", true, 0.10, false},
      {"none", false, 0.0, false},
  };

  Table t("Ablation: §3.2 refinements under oscillating load "
          "(MM x4, 4 slaves)");
  t.header({"variant", "time(s)", "efficiency", "moves", "units moved"});

  for (const auto& v : variants) {
    exp::ExperimentConfig cfg;
    cfg.slaves = 4;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();
    cfg.lb.filtering = v.filtering;
    cfg.lb.improvement_threshold = v.threshold;
    cfg.lb.profitability_check = v.profitability;
    cfg.loads.push_back({0, [] {
                           return load::oscillating(20 * sim::kSecond,
                                                    10 * sim::kSecond);
                         }});

    auto r = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_mm(mm, c);
    });
    t.row()
        .cell(v.name)
        .cell_pm(r.elapsed_s.mean(), r.elapsed_s.range_halfwidth(), 1)
        .cell(r.efficiency.mean(), 2)
        .cell(r.last_stats.moves_ordered)
        .cell(r.last_stats.units_moved);
  }
  bench::print_table(t);
  return 0;
}
