// Figure 8: 2000x2000 SOR with a constant competing load on slave 0 —
// execution time and efficiency, static vs dynamically balanced. The
// pipelined application is the hard case: movement is restricted to
// adjacent ranks and moved columns need catch-up / set-aside handling.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int max_slaves = static_cast<int>(cli.get_int("max-slaves", 7));

  apps::SorConfig sor;
  sor.n = static_cast<int>(cli.get_int("n", 2000));
  sor.sweeps = static_cast<int>(cli.get_int("sweeps", 20));

  Table t("Fig 8: SOR " + std::to_string(sor.n) + "x" + std::to_string(sor.n) +
          ", constant competing load on slave 0");
  t.header({"slaves", "par(s)", "par+DLB(s)", "eff", "eff+DLB",
            "units moved"});

  for (int s = 1; s <= max_slaves; ++s) {
    exp::ExperimentConfig cfg;
    cfg.slaves = s;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();
    cfg.loads.push_back({0, [] { return load::constant(); }});

    sor.use_lb = false;
    auto par = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_sor(sor, c);
    });
    sor.use_lb = true;
    auto dlb = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_sor(sor, c);
    });

    t.row()
        .cell(s)
        .cell_pm(par.elapsed_s.mean(), par.elapsed_s.range_halfwidth(), 1)
        .cell_pm(dlb.elapsed_s.mean(), dlb.elapsed_s.range_halfwidth(), 1)
        .cell(par.efficiency.mean(), 2)
        .cell(dlb.efficiency.mean(), 2)
        .cell(dlb.last_stats.units_moved);
  }
  bench::print_table(t);
  return 0;
}
