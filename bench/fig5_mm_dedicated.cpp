// Figure 5: 500x500 matrix multiplication in a dedicated homogeneous
// environment — (a) execution time, (b) speedup, (c) efficiency for
// 1..7 slaves, comparing sequential, parallel (static), and parallel with
// dynamic load balancing. The headline result: DLB overhead is small, so
// the two parallel curves nearly coincide.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int max_slaves = static_cast<int>(cli.get_int("max-slaves", 7));

  apps::MmConfig mm;
  mm.n = static_cast<int>(cli.get_int("n", 500));

  // Optional flight recorder shared across the whole sweep
  // (--trace=FILE / --metrics=FILE). Never touches stdout.
  obs::Observability hub;
  obs::Observability* obs = bench::flight_recorder(cli, hub);

  Table t("Fig 5: MM " + std::to_string(mm.n) + "x" + std::to_string(mm.n) +
          " dedicated homogeneous (paper: seq ~250 s)");
  t.header({"slaves", "seq(s)", "par(s)", "par+DLB(s)", "speedup",
            "speedup+DLB", "eff", "eff+DLB"});

  const double seq = apps::mm_seq_time_s(mm);
  for (int s = 1; s <= max_slaves; ++s) {
    exp::ExperimentConfig cfg;
    cfg.slaves = s;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();
    cfg.obs = obs;

    mm.use_lb = false;
    auto par = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_mm(mm, c);
    });
    mm.use_lb = true;
    auto dlb = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_mm(mm, c);
    });

    t.row()
        .cell(s)
        .cell(seq, 1)
        .cell_pm(par.elapsed_s.mean(), par.elapsed_s.range_halfwidth(), 1)
        .cell_pm(dlb.elapsed_s.mean(), dlb.elapsed_s.range_halfwidth(), 1)
        .cell(par.speedup.mean(), 2)
        .cell(dlb.speedup.mean(), 2)
        .cell(par.efficiency.mean(), 2)
        .cell(dlb.efficiency.mean(), 2);
  }
  bench::print_table(t);
  bench::dump_flight_recorder(cli, hub);
  return 0;
}
