// Figure 6: 2000x2000 successive overrelaxation in a dedicated homogeneous
// environment — execution time, speedup, efficiency for 1..7 slaves.
// SOR's pipelined communication makes speedup sublinear; DLB overhead
// stays small.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int max_slaves = static_cast<int>(cli.get_int("max-slaves", 7));

  apps::SorConfig sor;
  sor.n = static_cast<int>(cli.get_int("n", 2000));
  sor.sweeps = static_cast<int>(cli.get_int("sweeps", 20));

  Table t("Fig 6: SOR " + std::to_string(sor.n) + "x" + std::to_string(sor.n) +
          " x" + std::to_string(sor.sweeps) +
          " dedicated homogeneous (paper: seq ~350 s)");
  t.header({"slaves", "seq(s)", "par(s)", "par+DLB(s)", "speedup",
            "speedup+DLB", "eff", "eff+DLB"});

  const double seq = apps::sor_seq_time_s(sor);
  for (int s = 1; s <= max_slaves; ++s) {
    exp::ExperimentConfig cfg;
    cfg.slaves = s;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();

    sor.use_lb = false;
    auto par = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_sor(sor, c);
    });
    sor.use_lb = true;
    auto dlb = bench::measure(reps, cfg, [&](const exp::ExperimentConfig& c) {
      return exp::run_sor(sor, c);
    });

    t.row()
        .cell(s)
        .cell(seq, 1)
        .cell_pm(par.elapsed_s.mean(), par.elapsed_s.range_halfwidth(), 1)
        .cell_pm(dlb.elapsed_s.mean(), dlb.elapsed_s.range_halfwidth(), 1)
        .cell(par.speedup.mean(), 2)
        .cell(dlb.speedup.mean(), 2)
        .cell(par.efficiency.mean(), 2)
        .cell(dlb.efficiency.mean(), 2);
  }
  bench::print_table(t);
  return 0;
}
