// Table 1: application properties, derived automatically from each
// application's LoopNestSpec by the compiler analysis (loop::analyze) —
// the information the paper says "existing compilers are already capable
// of identifying".
#include <iostream>

#include "apps/lu.hpp"
#include "apps/mm.hpp"
#include "apps/sor.hpp"
#include "loop/spec.hpp"
#include "util/table.hpp"

using namespace nowlb;

namespace {
const char* yn(bool b) { return b ? "yes" : "no"; }
}  // namespace

int main() {
  apps::MmConfig mm;
  mm.repeats = 8;  // the benchmark multiplies repeatedly
  apps::SorConfig sor;
  apps::LuConfig lu;

  const loop::AppProperties props[] = {
      loop::analyze(apps::mm_spec(mm)),
      loop::analyze(apps::sor_spec(sor)),
      loop::analyze(apps::lu_spec(lu)),
  };

  Table t("Table 1: application properties (derived from loop specs)");
  t.header({"property", "MM", "SOR", "LU"});
  t.row().cell("loop-carried dependences");
  for (const auto& p : props) t.cell(yn(p.loop_carried_dependences));
  t.row().cell("communication outside loop");
  for (const auto& p : props) t.cell(yn(p.communication_outside_loop));
  t.row().cell("repeated execution of loop");
  for (const auto& p : props) t.cell(yn(p.repeated_execution));
  t.row().cell("varying loop bounds");
  for (const auto& p : props) t.cell(yn(p.varying_loop_bounds));
  t.row().cell("index-dependent iteration size");
  for (const auto& p : props) t.cell(yn(p.index_dependent_iteration_size));
  t.row().cell("data-dependent iteration size");
  for (const auto& p : props) t.cell(yn(p.data_dependent_iteration_size));
  t.print(std::cout);

  std::cout << "\npaper's Table 1 row for comparison: MM(no,no,yes,no,no,no) "
               "SOR(yes,yes,yes,no,no,no) LU(no,yes,yes,yes,yes,no)\n";
  return 0;
}
