// Microbenchmarks of the runtime substrate (google-benchmark): event
// engine throughput, coroutine task overhead, serialization, mailbox
// matching, and the load balancer's planning primitives.
#include <benchmark/benchmark.h>

#include "data/dist_array.hpp"
#include "lb/allocate.hpp"
#include "lb/filter.hpp"
#include "lb/plan.hpp"
#include "apps/mm.hpp"
#include "lb/cluster.hpp"
#include "msg/serialize.hpp"
#include "sim/engine.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

using namespace nowlb;

static void BM_EngineScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    for (int i = 0; i < 1000; ++i) {
      e.schedule_at(i, [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.dispatched_events());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleDispatch);

static void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::World w;
    auto& h0 = w.add_host();
    auto& h1 = w.add_host();
    sim::Pid rx = w.spawn(h1, "rx", [](sim::Context& ctx) -> sim::Task<> {
      for (int i = 0; i < 100; ++i) {
        sim::Message m = co_await ctx.recv(1);
        co_await ctx.send(m.src, 2, sim::Bytes{});
      }
    });
    w.spawn(h0, "tx", [rx](sim::Context& ctx) -> sim::Task<> {
      for (int i = 0; i < 100; ++i) {
        co_await ctx.send(rx, 1, sim::Bytes{});
        co_await ctx.recv(2);
      }
    });
    w.run();
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_CoroutinePingPong);

static void BM_SerializeColumn(benchmark::State& state) {
  std::vector<double> col(2000, 1.5);
  for (auto _ : state) {
    msg::Writer w;
    w.put_vec(col);
    auto b = w.take();
    msg::Reader r(b);
    auto out = r.get_vec<double>();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 2000 * sizeof(double));
}
BENCHMARK(BM_SerializeColumn);

static void BM_DistArrayPackUnpack(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    data::DistArray<double> src(2000), dst(2000);
    std::vector<data::SliceId> ids;
    for (int j = 0; j < 32; ++j) {
      src.add(j, std::vector<double>(2000, 1.0));
      ids.push_back(j);
    }
    state.ResumeTiming();
    auto payload = src.pack_and_remove(ids);
    dst.unpack_and_add(payload);
    benchmark::DoNotOptimize(dst.owned_count());
  }
}
BENCHMARK(BM_DistArrayPackUnpack);

static void BM_ProportionalAllocation(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> rates(static_cast<std::size_t>(state.range(0)));
  for (auto& r : rates) r = rng.uniform(1.0, 10.0);
  for (auto _ : state) {
    auto a = lb::proportional_allocation(rates, 5000);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_ProportionalAllocation)->Arg(4)->Arg(16)->Arg(64);

static void BM_PlanRestricted(benchmark::State& state) {
  const std::vector<int> current{50, 50, 50, 50, 50, 50};
  const std::vector<int> target{20, 60, 60, 60, 60, 40};
  for (auto _ : state) {
    auto t = lb::plan_restricted(current, target);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_PlanRestricted);

static void BM_TrendFilter(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> samples(1024);
  for (auto& s : samples) s = rng.uniform(40.0, 60.0);
  std::size_t i = 0;
  lb::TrendFilter f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.update(samples[i++ & 1023]));
  }
}
BENCHMARK(BM_TrendFilter);

static void BM_FullMmSimulation(benchmark::State& state) {
  // End-to-end simulator throughput: a small MM run with balancing.
  for (auto _ : state) {
    sim::World w;
    apps::MmConfig mm;
    mm.n = 60;
    mm.mac_cost = 50 * sim::kMicrosecond;
    lb::LbConfig lbc;
    auto shared = std::make_shared<apps::MmShared>();
    apps::mm_make_inputs(mm, *shared);
    lb::Cluster cluster(w, apps::mm_cluster_config(mm, 4, lbc));
    apps::mm_build(cluster, mm, shared);
    w.run();
    benchmark::DoNotOptimize(w.now());
  }
}
BENCHMARK(BM_FullMmSimulation);

BENCHMARK_MAIN();
