file(REMOVE_RECURSE
  "CMakeFiles/nowlb_msg.dir/collectives.cpp.o"
  "CMakeFiles/nowlb_msg.dir/collectives.cpp.o.d"
  "libnowlb_msg.a"
  "libnowlb_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
