# Empty dependencies file for nowlb_msg.
# This may be replaced when dependencies are built.
