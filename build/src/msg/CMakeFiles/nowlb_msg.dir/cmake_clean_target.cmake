file(REMOVE_RECURSE
  "libnowlb_msg.a"
)
