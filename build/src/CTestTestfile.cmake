# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("msg")
subdirs("data")
subdirs("lb")
subdirs("loop")
subdirs("load")
subdirs("apps")
subdirs("check")
subdirs("exp")
