# Empty dependencies file for nowlb_lb.
# This may be replaced when dependencies are built.
