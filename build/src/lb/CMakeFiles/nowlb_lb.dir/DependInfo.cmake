
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/allocate.cpp" "src/lb/CMakeFiles/nowlb_lb.dir/allocate.cpp.o" "gcc" "src/lb/CMakeFiles/nowlb_lb.dir/allocate.cpp.o.d"
  "/root/repo/src/lb/cluster.cpp" "src/lb/CMakeFiles/nowlb_lb.dir/cluster.cpp.o" "gcc" "src/lb/CMakeFiles/nowlb_lb.dir/cluster.cpp.o.d"
  "/root/repo/src/lb/master.cpp" "src/lb/CMakeFiles/nowlb_lb.dir/master.cpp.o" "gcc" "src/lb/CMakeFiles/nowlb_lb.dir/master.cpp.o.d"
  "/root/repo/src/lb/plan.cpp" "src/lb/CMakeFiles/nowlb_lb.dir/plan.cpp.o" "gcc" "src/lb/CMakeFiles/nowlb_lb.dir/plan.cpp.o.d"
  "/root/repo/src/lb/slave.cpp" "src/lb/CMakeFiles/nowlb_lb.dir/slave.cpp.o" "gcc" "src/lb/CMakeFiles/nowlb_lb.dir/slave.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msg/CMakeFiles/nowlb_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nowlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nowlb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
