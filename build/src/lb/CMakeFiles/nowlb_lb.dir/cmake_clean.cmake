file(REMOVE_RECURSE
  "CMakeFiles/nowlb_lb.dir/allocate.cpp.o"
  "CMakeFiles/nowlb_lb.dir/allocate.cpp.o.d"
  "CMakeFiles/nowlb_lb.dir/cluster.cpp.o"
  "CMakeFiles/nowlb_lb.dir/cluster.cpp.o.d"
  "CMakeFiles/nowlb_lb.dir/master.cpp.o"
  "CMakeFiles/nowlb_lb.dir/master.cpp.o.d"
  "CMakeFiles/nowlb_lb.dir/plan.cpp.o"
  "CMakeFiles/nowlb_lb.dir/plan.cpp.o.d"
  "CMakeFiles/nowlb_lb.dir/slave.cpp.o"
  "CMakeFiles/nowlb_lb.dir/slave.cpp.o.d"
  "libnowlb_lb.a"
  "libnowlb_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
