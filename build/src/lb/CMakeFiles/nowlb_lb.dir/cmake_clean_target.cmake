file(REMOVE_RECURSE
  "libnowlb_lb.a"
)
