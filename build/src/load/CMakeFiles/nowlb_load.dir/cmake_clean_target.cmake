file(REMOVE_RECURSE
  "libnowlb_load.a"
)
