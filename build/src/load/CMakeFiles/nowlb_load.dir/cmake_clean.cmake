file(REMOVE_RECURSE
  "CMakeFiles/nowlb_load.dir/generators.cpp.o"
  "CMakeFiles/nowlb_load.dir/generators.cpp.o.d"
  "libnowlb_load.a"
  "libnowlb_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
