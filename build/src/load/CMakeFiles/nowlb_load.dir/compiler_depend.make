# Empty compiler generated dependencies file for nowlb_load.
# This may be replaced when dependencies are built.
