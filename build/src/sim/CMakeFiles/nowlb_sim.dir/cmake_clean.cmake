file(REMOVE_RECURSE
  "CMakeFiles/nowlb_sim.dir/engine.cpp.o"
  "CMakeFiles/nowlb_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nowlb_sim.dir/host.cpp.o"
  "CMakeFiles/nowlb_sim.dir/host.cpp.o.d"
  "CMakeFiles/nowlb_sim.dir/mailbox.cpp.o"
  "CMakeFiles/nowlb_sim.dir/mailbox.cpp.o.d"
  "CMakeFiles/nowlb_sim.dir/network.cpp.o"
  "CMakeFiles/nowlb_sim.dir/network.cpp.o.d"
  "CMakeFiles/nowlb_sim.dir/world.cpp.o"
  "CMakeFiles/nowlb_sim.dir/world.cpp.o.d"
  "libnowlb_sim.a"
  "libnowlb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
