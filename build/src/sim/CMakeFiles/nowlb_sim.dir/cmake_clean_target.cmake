file(REMOVE_RECURSE
  "libnowlb_sim.a"
)
