# Empty compiler generated dependencies file for nowlb_sim.
# This may be replaced when dependencies are built.
