# Empty compiler generated dependencies file for nowlb_data.
# This may be replaced when dependencies are built.
