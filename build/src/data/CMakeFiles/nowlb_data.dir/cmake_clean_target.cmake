file(REMOVE_RECURSE
  "libnowlb_data.a"
)
