file(REMOVE_RECURSE
  "CMakeFiles/nowlb_data.dir/slice.cpp.o"
  "CMakeFiles/nowlb_data.dir/slice.cpp.o.d"
  "libnowlb_data.a"
  "libnowlb_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
