file(REMOVE_RECURSE
  "libnowlb_loop.a"
)
