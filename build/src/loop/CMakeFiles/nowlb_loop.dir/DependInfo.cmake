
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loop/grain.cpp" "src/loop/CMakeFiles/nowlb_loop.dir/grain.cpp.o" "gcc" "src/loop/CMakeFiles/nowlb_loop.dir/grain.cpp.o.d"
  "/root/repo/src/loop/hooks.cpp" "src/loop/CMakeFiles/nowlb_loop.dir/hooks.cpp.o" "gcc" "src/loop/CMakeFiles/nowlb_loop.dir/hooks.cpp.o.d"
  "/root/repo/src/loop/spec.cpp" "src/loop/CMakeFiles/nowlb_loop.dir/spec.cpp.o" "gcc" "src/loop/CMakeFiles/nowlb_loop.dir/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/nowlb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nowlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nowlb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/nowlb_msg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
