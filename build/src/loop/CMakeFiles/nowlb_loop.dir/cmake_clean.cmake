file(REMOVE_RECURSE
  "CMakeFiles/nowlb_loop.dir/grain.cpp.o"
  "CMakeFiles/nowlb_loop.dir/grain.cpp.o.d"
  "CMakeFiles/nowlb_loop.dir/hooks.cpp.o"
  "CMakeFiles/nowlb_loop.dir/hooks.cpp.o.d"
  "CMakeFiles/nowlb_loop.dir/spec.cpp.o"
  "CMakeFiles/nowlb_loop.dir/spec.cpp.o.d"
  "libnowlb_loop.a"
  "libnowlb_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
