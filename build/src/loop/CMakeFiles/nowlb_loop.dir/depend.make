# Empty dependencies file for nowlb_loop.
# This may be replaced when dependencies are built.
