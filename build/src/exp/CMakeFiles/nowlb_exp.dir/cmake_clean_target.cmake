file(REMOVE_RECURSE
  "libnowlb_exp.a"
)
