file(REMOVE_RECURSE
  "CMakeFiles/nowlb_exp.dir/harness.cpp.o"
  "CMakeFiles/nowlb_exp.dir/harness.cpp.o.d"
  "libnowlb_exp.a"
  "libnowlb_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
