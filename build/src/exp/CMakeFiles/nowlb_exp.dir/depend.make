# Empty dependencies file for nowlb_exp.
# This may be replaced when dependencies are built.
