# Empty dependencies file for nowlb_util.
# This may be replaced when dependencies are built.
