file(REMOVE_RECURSE
  "libnowlb_util.a"
)
