file(REMOVE_RECURSE
  "CMakeFiles/nowlb_util.dir/cli.cpp.o"
  "CMakeFiles/nowlb_util.dir/cli.cpp.o.d"
  "CMakeFiles/nowlb_util.dir/log.cpp.o"
  "CMakeFiles/nowlb_util.dir/log.cpp.o.d"
  "CMakeFiles/nowlb_util.dir/table.cpp.o"
  "CMakeFiles/nowlb_util.dir/table.cpp.o.d"
  "libnowlb_util.a"
  "libnowlb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
