file(REMOVE_RECURSE
  "CMakeFiles/nowlb_apps.dir/lu.cpp.o"
  "CMakeFiles/nowlb_apps.dir/lu.cpp.o.d"
  "CMakeFiles/nowlb_apps.dir/mm.cpp.o"
  "CMakeFiles/nowlb_apps.dir/mm.cpp.o.d"
  "CMakeFiles/nowlb_apps.dir/sor.cpp.o"
  "CMakeFiles/nowlb_apps.dir/sor.cpp.o.d"
  "libnowlb_apps.a"
  "libnowlb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
