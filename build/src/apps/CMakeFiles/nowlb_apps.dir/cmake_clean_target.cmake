file(REMOVE_RECURSE
  "libnowlb_apps.a"
)
