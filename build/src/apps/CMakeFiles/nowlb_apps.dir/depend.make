# Empty dependencies file for nowlb_apps.
# This may be replaced when dependencies are built.
