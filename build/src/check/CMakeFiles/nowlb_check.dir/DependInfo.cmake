
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/checkers.cpp" "src/check/CMakeFiles/nowlb_check.dir/checkers.cpp.o" "gcc" "src/check/CMakeFiles/nowlb_check.dir/checkers.cpp.o.d"
  "/root/repo/src/check/scenario.cpp" "src/check/CMakeFiles/nowlb_check.dir/scenario.cpp.o" "gcc" "src/check/CMakeFiles/nowlb_check.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/nowlb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/nowlb_load.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/nowlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nowlb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nowlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nowlb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/loop/CMakeFiles/nowlb_loop.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/nowlb_msg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
