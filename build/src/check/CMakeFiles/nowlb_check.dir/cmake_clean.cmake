file(REMOVE_RECURSE
  "CMakeFiles/nowlb_check.dir/checkers.cpp.o"
  "CMakeFiles/nowlb_check.dir/checkers.cpp.o.d"
  "CMakeFiles/nowlb_check.dir/scenario.cpp.o"
  "CMakeFiles/nowlb_check.dir/scenario.cpp.o.d"
  "libnowlb_check.a"
  "libnowlb_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
