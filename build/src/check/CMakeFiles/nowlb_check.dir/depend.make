# Empty dependencies file for nowlb_check.
# This may be replaced when dependencies are built.
