file(REMOVE_RECURSE
  "libnowlb_check.a"
)
