file(REMOVE_RECURSE
  "CMakeFiles/nowlb-fuzz.dir/fuzz_main.cpp.o"
  "CMakeFiles/nowlb-fuzz.dir/fuzz_main.cpp.o.d"
  "nowlb-fuzz"
  "nowlb-fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nowlb-fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
