# Empty dependencies file for nowlb-fuzz.
# This may be replaced when dependencies are built.
