# CMake generated Testfile for 
# Source directory: /root/repo/src/check
# Build directory: /root/repo/build/src/check
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(fuzz_smoke "/root/repo/build/src/check/nowlb-fuzz" "--seeds=50")
set_tests_properties(fuzz_smoke PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/src/check/CMakeLists.txt;13;add_test;/root/repo/src/check/CMakeLists.txt;0;")
