# Empty dependencies file for abl_grain_and_hooks.
# This may be replaced when dependencies are built.
