file(REMOVE_RECURSE
  "CMakeFiles/abl_grain_and_hooks.dir/abl_grain_and_hooks.cpp.o"
  "CMakeFiles/abl_grain_and_hooks.dir/abl_grain_and_hooks.cpp.o.d"
  "abl_grain_and_hooks"
  "abl_grain_and_hooks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_grain_and_hooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
