file(REMOVE_RECURSE
  "CMakeFiles/abl_pipeline_vs_sync.dir/abl_pipeline_vs_sync.cpp.o"
  "CMakeFiles/abl_pipeline_vs_sync.dir/abl_pipeline_vs_sync.cpp.o.d"
  "abl_pipeline_vs_sync"
  "abl_pipeline_vs_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pipeline_vs_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
