# Empty dependencies file for abl_pipeline_vs_sync.
# This may be replaced when dependencies are built.
