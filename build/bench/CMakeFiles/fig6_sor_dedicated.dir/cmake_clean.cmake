file(REMOVE_RECURSE
  "CMakeFiles/fig6_sor_dedicated.dir/fig6_sor_dedicated.cpp.o"
  "CMakeFiles/fig6_sor_dedicated.dir/fig6_sor_dedicated.cpp.o.d"
  "fig6_sor_dedicated"
  "fig6_sor_dedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sor_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
