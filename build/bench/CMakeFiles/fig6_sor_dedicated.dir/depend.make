# Empty dependencies file for fig6_sor_dedicated.
# This may be replaced when dependencies are built.
