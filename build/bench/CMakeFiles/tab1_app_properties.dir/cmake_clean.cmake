file(REMOVE_RECURSE
  "CMakeFiles/tab1_app_properties.dir/tab1_app_properties.cpp.o"
  "CMakeFiles/tab1_app_properties.dir/tab1_app_properties.cpp.o.d"
  "tab1_app_properties"
  "tab1_app_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_app_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
