# Empty compiler generated dependencies file for fig8_sor_loaded.
# This may be replaced when dependencies are built.
