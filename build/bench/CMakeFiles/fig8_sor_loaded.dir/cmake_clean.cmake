file(REMOVE_RECURSE
  "CMakeFiles/fig8_sor_loaded.dir/fig8_sor_loaded.cpp.o"
  "CMakeFiles/fig8_sor_loaded.dir/fig8_sor_loaded.cpp.o.d"
  "fig8_sor_loaded"
  "fig8_sor_loaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sor_loaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
