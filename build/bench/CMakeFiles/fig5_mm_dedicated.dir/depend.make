# Empty dependencies file for fig5_mm_dedicated.
# This may be replaced when dependencies are built.
