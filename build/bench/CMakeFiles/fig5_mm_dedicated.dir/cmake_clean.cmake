file(REMOVE_RECURSE
  "CMakeFiles/fig5_mm_dedicated.dir/fig5_mm_dedicated.cpp.o"
  "CMakeFiles/fig5_mm_dedicated.dir/fig5_mm_dedicated.cpp.o.d"
  "fig5_mm_dedicated"
  "fig5_mm_dedicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mm_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
