# Empty dependencies file for ext_lu_adaptive.
# This may be replaced when dependencies are built.
