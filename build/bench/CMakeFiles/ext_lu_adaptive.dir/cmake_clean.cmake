file(REMOVE_RECURSE
  "CMakeFiles/ext_lu_adaptive.dir/ext_lu_adaptive.cpp.o"
  "CMakeFiles/ext_lu_adaptive.dir/ext_lu_adaptive.cpp.o.d"
  "ext_lu_adaptive"
  "ext_lu_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lu_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
