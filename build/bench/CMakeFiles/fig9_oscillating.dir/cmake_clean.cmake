file(REMOVE_RECURSE
  "CMakeFiles/fig9_oscillating.dir/fig9_oscillating.cpp.o"
  "CMakeFiles/fig9_oscillating.dir/fig9_oscillating.cpp.o.d"
  "fig9_oscillating"
  "fig9_oscillating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_oscillating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
