# Empty compiler generated dependencies file for fig9_oscillating.
# This may be replaced when dependencies are built.
