# Empty compiler generated dependencies file for fig7_mm_loaded.
# This may be replaced when dependencies are built.
