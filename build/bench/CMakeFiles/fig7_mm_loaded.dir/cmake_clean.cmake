file(REMOVE_RECURSE
  "CMakeFiles/fig7_mm_loaded.dir/fig7_mm_loaded.cpp.o"
  "CMakeFiles/fig7_mm_loaded.dir/fig7_mm_loaded.cpp.o.d"
  "fig7_mm_loaded"
  "fig7_mm_loaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mm_loaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
