file(REMOVE_RECURSE
  "CMakeFiles/abl_refinements.dir/abl_refinements.cpp.o"
  "CMakeFiles/abl_refinements.dir/abl_refinements.cpp.o.d"
  "abl_refinements"
  "abl_refinements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_refinements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
