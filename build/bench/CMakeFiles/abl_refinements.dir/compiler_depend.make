# Empty compiler generated dependencies file for abl_refinements.
# This may be replaced when dependencies are built.
