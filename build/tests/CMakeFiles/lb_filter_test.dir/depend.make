# Empty dependencies file for lb_filter_test.
# This may be replaced when dependencies are built.
