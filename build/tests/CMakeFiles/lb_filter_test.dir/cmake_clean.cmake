file(REMOVE_RECURSE
  "CMakeFiles/lb_filter_test.dir/lb/filter_test.cpp.o"
  "CMakeFiles/lb_filter_test.dir/lb/filter_test.cpp.o.d"
  "lb_filter_test"
  "lb_filter_test.pdb"
  "lb_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
