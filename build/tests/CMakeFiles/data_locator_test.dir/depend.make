# Empty dependencies file for data_locator_test.
# This may be replaced when dependencies are built.
