file(REMOVE_RECURSE
  "CMakeFiles/data_locator_test.dir/data/locator_test.cpp.o"
  "CMakeFiles/data_locator_test.dir/data/locator_test.cpp.o.d"
  "data_locator_test"
  "data_locator_test.pdb"
  "data_locator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_locator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
