# Empty dependencies file for sim_host_test.
# This may be replaced when dependencies are built.
