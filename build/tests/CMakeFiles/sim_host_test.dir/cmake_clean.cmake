file(REMOVE_RECURSE
  "CMakeFiles/sim_host_test.dir/sim/host_test.cpp.o"
  "CMakeFiles/sim_host_test.dir/sim/host_test.cpp.o.d"
  "sim_host_test"
  "sim_host_test.pdb"
  "sim_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
