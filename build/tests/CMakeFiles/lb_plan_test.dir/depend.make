# Empty dependencies file for lb_plan_test.
# This may be replaced when dependencies are built.
