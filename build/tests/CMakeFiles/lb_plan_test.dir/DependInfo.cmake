
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lb/plan_test.cpp" "tests/CMakeFiles/lb_plan_test.dir/lb/plan_test.cpp.o" "gcc" "tests/CMakeFiles/lb_plan_test.dir/lb/plan_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/check/CMakeFiles/nowlb_check.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/nowlb_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/nowlb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/nowlb_load.dir/DependInfo.cmake"
  "/root/repo/build/src/loop/CMakeFiles/nowlb_loop.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/nowlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nowlb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/nowlb_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nowlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nowlb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
