file(REMOVE_RECURSE
  "CMakeFiles/lb_plan_test.dir/lb/plan_test.cpp.o"
  "CMakeFiles/lb_plan_test.dir/lb/plan_test.cpp.o.d"
  "lb_plan_test"
  "lb_plan_test.pdb"
  "lb_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
