# Empty dependencies file for apps_sor_test.
# This may be replaced when dependencies are built.
