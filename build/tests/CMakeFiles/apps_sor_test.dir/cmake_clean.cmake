file(REMOVE_RECURSE
  "CMakeFiles/apps_sor_test.dir/apps/sor_test.cpp.o"
  "CMakeFiles/apps_sor_test.dir/apps/sor_test.cpp.o.d"
  "apps_sor_test"
  "apps_sor_test.pdb"
  "apps_sor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_sor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
