file(REMOVE_RECURSE
  "CMakeFiles/msg_collectives_test.dir/msg/collectives_test.cpp.o"
  "CMakeFiles/msg_collectives_test.dir/msg/collectives_test.cpp.o.d"
  "msg_collectives_test"
  "msg_collectives_test.pdb"
  "msg_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
