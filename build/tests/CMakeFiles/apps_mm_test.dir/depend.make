# Empty dependencies file for apps_mm_test.
# This may be replaced when dependencies are built.
