file(REMOVE_RECURSE
  "CMakeFiles/apps_mm_test.dir/apps/mm_test.cpp.o"
  "CMakeFiles/apps_mm_test.dir/apps/mm_test.cpp.o.d"
  "apps_mm_test"
  "apps_mm_test.pdb"
  "apps_mm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_mm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
