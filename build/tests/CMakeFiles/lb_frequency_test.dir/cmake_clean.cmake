file(REMOVE_RECURSE
  "CMakeFiles/lb_frequency_test.dir/lb/frequency_test.cpp.o"
  "CMakeFiles/lb_frequency_test.dir/lb/frequency_test.cpp.o.d"
  "lb_frequency_test"
  "lb_frequency_test.pdb"
  "lb_frequency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_frequency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
