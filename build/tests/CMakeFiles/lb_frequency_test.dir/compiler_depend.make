# Empty compiler generated dependencies file for lb_frequency_test.
# This may be replaced when dependencies are built.
