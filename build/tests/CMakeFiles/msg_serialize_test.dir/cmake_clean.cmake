file(REMOVE_RECURSE
  "CMakeFiles/msg_serialize_test.dir/msg/serialize_test.cpp.o"
  "CMakeFiles/msg_serialize_test.dir/msg/serialize_test.cpp.o.d"
  "msg_serialize_test"
  "msg_serialize_test.pdb"
  "msg_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
