# Empty compiler generated dependencies file for msg_serialize_test.
# This may be replaced when dependencies are built.
