file(REMOVE_RECURSE
  "CMakeFiles/lb_integration_test.dir/lb/integration_test.cpp.o"
  "CMakeFiles/lb_integration_test.dir/lb/integration_test.cpp.o.d"
  "lb_integration_test"
  "lb_integration_test.pdb"
  "lb_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
