# Empty dependencies file for loop_test.
# This may be replaced when dependencies are built.
