file(REMOVE_RECURSE
  "CMakeFiles/lb_allocate_test.dir/lb/allocate_test.cpp.o"
  "CMakeFiles/lb_allocate_test.dir/lb/allocate_test.cpp.o.d"
  "lb_allocate_test"
  "lb_allocate_test.pdb"
  "lb_allocate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_allocate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
