# Empty dependencies file for lb_allocate_test.
# This may be replaced when dependencies are built.
