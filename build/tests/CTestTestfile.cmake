# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_task_test[1]_include.cmake")
include("/root/repo/build/tests/sim_host_test[1]_include.cmake")
include("/root/repo/build/tests/sim_world_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/msg_serialize_test[1]_include.cmake")
include("/root/repo/build/tests/msg_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/lb_filter_test[1]_include.cmake")
include("/root/repo/build/tests/lb_allocate_test[1]_include.cmake")
include("/root/repo/build/tests/lb_plan_test[1]_include.cmake")
include("/root/repo/build/tests/lb_frequency_test[1]_include.cmake")
include("/root/repo/build/tests/lb_integration_test[1]_include.cmake")
include("/root/repo/build/tests/apps_mm_test[1]_include.cmake")
include("/root/repo/build/tests/apps_sor_test[1]_include.cmake")
include("/root/repo/build/tests/apps_lu_test[1]_include.cmake")
include("/root/repo/build/tests/loop_test[1]_include.cmake")
include("/root/repo/build/tests/load_test[1]_include.cmake")
include("/root/repo/build/tests/exp_harness_test[1]_include.cmake")
include("/root/repo/build/tests/check_test[1]_include.cmake")
include("/root/repo/build/tests/data_locator_test[1]_include.cmake")
