# Empty dependencies file for sor_pipeline.
# This may be replaced when dependencies are built.
