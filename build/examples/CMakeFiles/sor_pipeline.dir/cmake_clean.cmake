file(REMOVE_RECURSE
  "CMakeFiles/sor_pipeline.dir/sor_pipeline.cpp.o"
  "CMakeFiles/sor_pipeline.dir/sor_pipeline.cpp.o.d"
  "sor_pipeline"
  "sor_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sor_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
