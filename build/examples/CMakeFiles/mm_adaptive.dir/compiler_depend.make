# Empty compiler generated dependencies file for mm_adaptive.
# This may be replaced when dependencies are built.
