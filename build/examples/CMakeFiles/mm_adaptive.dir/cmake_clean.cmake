file(REMOVE_RECURSE
  "CMakeFiles/mm_adaptive.dir/mm_adaptive.cpp.o"
  "CMakeFiles/mm_adaptive.dir/mm_adaptive.cpp.o.d"
  "mm_adaptive"
  "mm_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
