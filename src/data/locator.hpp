// Locating distributed data elements whose owner is unknown locally (§4.6).
//
// With a run-time-varying distribution, a slave cannot compute which peer
// owns a given slice from local information. For statements outside the
// distributed loop that reference distributed data, the paper's solution is
// broadcast-and-discard: the owner broadcasts the element; every other
// slave receives it and keeps it only if relevant. All group members must
// call these functions at the same logical point (SPMD).
#pragma once

#include <vector>

#include "data/dist_array.hpp"
#include "data/slice.hpp"
#include "msg/serialize.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace nowlb::data {

/// Fetch element (slice, offset) of a distributed array into every slave
/// (replicated read). The owner broadcasts; everyone returns the value.
template <typename T>
sim::Task<T> locate_fetch(sim::Context& ctx,
                          const std::vector<sim::Pid>& group, sim::Tag tag,
                          const DistArray<T>& arr, SliceId slice,
                          std::size_t offset) {
  if (arr.owns(slice)) {
    T v = arr.slice(slice).at(offset);
    msg::Writer w;
    w.put(v);
    auto payload = w.take();
    for (sim::Pid p : group) {
      if (p != ctx.pid()) co_await ctx.send(p, tag, payload);
    }
    co_return v;
  }
  sim::Message m = co_await ctx.recv(tag, sim::kAnyPid);
  msg::Reader r(m.payload);
  co_return r.get<T>();
}

/// Distributed assignment `arr[dst][dst_off] = arr[src][src_off]` where
/// neither owner is known locally: the source owner broadcasts, the
/// destination owner stores, everyone else discards.
template <typename T>
sim::Task<> locate_assign(sim::Context& ctx,
                          const std::vector<sim::Pid>& group, sim::Tag tag,
                          DistArray<T>& arr, SliceId src, std::size_t src_off,
                          SliceId dst, std::size_t dst_off) {
  T v = co_await locate_fetch(ctx, group, tag, arr, src, src_off);
  if (arr.owns(dst)) arr.slice(dst).at(dst_off) = v;
}

}  // namespace nowlb::data
