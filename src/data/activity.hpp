// Active/inactive slice tracking (§4.7).
//
// In applications like LU decomposition the distributed loop shrinks: after
// outer iteration k, slices <= k have no future work. Load balancing moves
// *work*, so only active slices are candidates for movement; inactive data
// stays where it last lived.
#pragma once

#include <vector>

#include "data/index_set.hpp"
#include "data/slice.hpp"
#include "util/check.hpp"

namespace nowlb::data {

class ActivityMask {
 public:
  explicit ActivityMask(int total) : active_(total, true) {}

  int total() const { return static_cast<int>(active_.size()); }

  bool active(SliceId s) const {
    NOWLB_CHECK(s >= 0 && s < total());
    return active_[s];
  }

  void deactivate(SliceId s) {
    NOWLB_CHECK(s >= 0 && s < total());
    active_[s] = false;
  }

  /// Deactivate every slice below `first_active` (LU's shrinking front).
  void deactivate_below(SliceId first_active) {
    for (SliceId s = 0; s < first_active && s < total(); ++s)
      active_[s] = false;
  }

  int active_count() const {
    int n = 0;
    for (bool a : active_) n += a ? 1 : 0;
    return n;
  }

  /// Count of active slices within an owned set.
  int active_in(const IndexSet& owned) const {
    int n = 0;
    for (SliceId s : owned) n += active(s) ? 1 : 0;
    return n;
  }

  /// The `n` largest active ids in `owned` (candidates for sending right).
  std::vector<SliceId> highest_active(const IndexSet& owned, int n) const;
  /// The `n` smallest active ids in `owned` (candidates for sending left).
  std::vector<SliceId> lowest_active(const IndexSet& owned, int n) const;

 private:
  std::vector<bool> active_;
};

inline std::vector<SliceId> ActivityMask::highest_active(const IndexSet& owned,
                                                         int n) const {
  std::vector<SliceId> out;
  const auto& ids = owned.ids();
  for (auto it = ids.rbegin(); it != ids.rend() && static_cast<int>(out.size()) < n; ++it) {
    if (active(*it)) out.push_back(*it);
  }
  NOWLB_CHECK(static_cast<int>(out.size()) == n,
              "requested " << n << " active slices, found " << out.size());
  return out;
}

inline std::vector<SliceId> ActivityMask::lowest_active(const IndexSet& owned,
                                                        int n) const {
  std::vector<SliceId> out;
  for (SliceId s : owned) {
    if (static_cast<int>(out.size()) == n) break;
    if (active(s)) out.push_back(s);
  }
  NOWLB_CHECK(static_cast<int>(out.size()) == n,
              "requested " << n << " active slices, found " << out.size());
  return out;
}

}  // namespace nowlb::data
