// Slices: the unit of work and data distribution.
//
// The paper distributes iterations of one loop (the "distributed loop");
// iteration i owns data slice i (owner-computes). A slice is identified by
// its global index; SliceRange is a contiguous block of them.
#pragma once

#include <vector>

#include "util/check.hpp"

namespace nowlb::data {

/// Global index of a work/data slice (e.g. a matrix column).
using SliceId = int;

/// Half-open contiguous range of slices [begin, end).
struct SliceRange {
  SliceId begin = 0;
  SliceId end = 0;

  int count() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool contains(SliceId s) const { return s >= begin && s < end; }

  friend bool operator==(const SliceRange&, const SliceRange&) = default;
};

/// Block-distribution boundaries: slave r owns [bounds[r], bounds[r+1]).
/// This is the distribution shape the paper maintains for applications with
/// loop-carried dependences (restricted work movement, Fig. 1b).
class BlockMap {
 public:
  BlockMap() = default;

  /// Even block distribution of `total` slices over `slaves` ranks
  /// (first `total % slaves` ranks get one extra).
  static BlockMap even(int total, int slaves);

  /// Build from per-rank counts.
  static BlockMap from_counts(const std::vector<int>& counts);

  int slaves() const { return static_cast<int>(bounds_.size()) - 1; }
  int total() const { return bounds_.empty() ? 0 : bounds_.back(); }

  SliceRange range(int rank) const {
    NOWLB_CHECK(rank >= 0 && rank < slaves(), "rank " << rank);
    return {bounds_[rank], bounds_[rank + 1]};
  }
  int count(int rank) const { return range(rank).count(); }
  std::vector<int> counts() const;

  /// Rank owning slice `s`.
  int owner(SliceId s) const;

  const std::vector<SliceId>& bounds() const { return bounds_; }

  friend bool operator==(const BlockMap&, const BlockMap&) = default;

 private:
  // bounds_[0] == 0, bounds_[slaves()] == total, non-decreasing.
  std::vector<SliceId> bounds_;
};

}  // namespace nowlb::data
