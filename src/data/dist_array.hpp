// DistArray<T>: a slave's local portion of a 1-D-distributed 2-D array.
//
// The array is distributed by slices (e.g. columns); each slice is a fixed-
// length vector of T. Because load balancing moves slices at run time, the
// local portion is not a contiguous block: slices are looked up through the
// owned-index structure — the paper's "extra level of indirection" (§4.5).
//
// Each slice carries an application-defined integer `marker`, used by
// pipelined applications (SOR) to track how far a moved slice has been
// computed, enabling the catch-up / set-aside reconciliation of §4.5.
#pragma once

#include <map>
#include <vector>

#include "data/ownership.hpp"
#include "data/slice.hpp"
#include "msg/serialize.hpp"
#include "util/check.hpp"

namespace nowlb::data {

template <typename T>
class DistArray {
 public:
  explicit DistArray(std::size_t slice_len) : slice_len_(slice_len) {}

  std::size_t slice_len() const { return slice_len_; }

  /// Tag this array with its owner's rank so slice add/remove events reach
  /// the active ownership ledger (src/check). Untagged arrays (ghost
  /// buffers, scratch copies) stay invisible to the checkers.
  void enable_ownership_checks(int rank) { check_rank_ = rank; }

  bool owns(SliceId s) const { return slices_.count(s) > 0; }
  int owned_count() const { return static_cast<int>(slices_.size()); }

  /// Add a slice with the given contents (used at initial distribution and
  /// when receiving moved work).
  void add(SliceId id, std::vector<T> contents, int marker = 0) {
    NOWLB_CHECK(contents.size() == slice_len_,
                "slice " << id << " has wrong length " << contents.size());
    const auto [it, inserted] =
        slices_.emplace(id, Slice{std::move(contents), marker});
    NOWLB_CHECK(inserted, "slice " << id << " already present");
    (void)it;
    if (check_rank_ >= 0) {
      if (SliceLedger* ledger = active_slice_ledger()) {
        ledger->on_slice_added(check_rank_, id);
      }
    }
  }

  /// Remove a slice and return its contents (used when sending work away).
  std::pair<std::vector<T>, int> remove(SliceId id) {
    const auto it = slices_.find(id);
    NOWLB_CHECK(it != slices_.end(), "slice " << id << " not present");
    auto result = std::make_pair(std::move(it->second.data), it->second.marker);
    slices_.erase(it);
    if (check_rank_ >= 0) {
      if (SliceLedger* ledger = active_slice_ledger()) {
        ledger->on_slice_removed(check_rank_, id);
      }
    }
    return result;
  }

  std::vector<T>& slice(SliceId id) {
    const auto it = slices_.find(id);
    NOWLB_CHECK(it != slices_.end(), "slice " << id << " not local");
    return it->second.data;
  }
  const std::vector<T>& slice(SliceId id) const {
    const auto it = slices_.find(id);
    NOWLB_CHECK(it != slices_.end(), "slice " << id << " not local");
    return it->second.data;
  }

  int marker(SliceId id) const {
    const auto it = slices_.find(id);
    NOWLB_CHECK(it != slices_.end(), "slice " << id << " not local");
    return it->second.marker;
  }
  void set_marker(SliceId id, int m) {
    const auto it = slices_.find(id);
    NOWLB_CHECK(it != slices_.end(), "slice " << id << " not local");
    it->second.marker = m;
  }

  /// Sorted ids of locally held slices.
  std::vector<SliceId> owned_ids() const {
    std::vector<SliceId> out;
    out.reserve(slices_.size());
    for (const auto& [id, _] : slices_) out.push_back(id);
    return out;
  }

  /// Serialize the given slices (removing them) into a movement payload.
  msg::Bytes pack_and_remove(const std::vector<SliceId>& ids) {
    msg::Writer w;
    // Encoded size: count + per slice (id, marker, length, data); exact
    // when every slice holds slice_len_ elements, an upper bound otherwise.
    w.reserve(sizeof(std::uint32_t) +
              ids.size() * (2 * sizeof(std::int32_t) + sizeof(std::uint64_t) +
                            slice_len_ * sizeof(T)));
    w.put<std::uint32_t>(static_cast<std::uint32_t>(ids.size()));
    for (SliceId id : ids) {
      auto [contents, marker] = remove(id);
      w.put<std::int32_t>(id);
      w.put<std::int32_t>(marker);
      w.put_vec(contents);
    }
    return w.take();
  }

  /// Integrate a movement payload produced by pack_and_remove; returns the
  /// ids received (already added to the local set).
  std::vector<SliceId> unpack_and_add(const msg::Bytes& payload) {
    msg::Reader r(payload);
    const auto n = r.get<std::uint32_t>();
    std::vector<SliceId> ids;
    ids.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto id = r.get<std::int32_t>();
      const auto marker = r.get<std::int32_t>();
      auto contents = r.get_vec<T>();
      add(id, std::move(contents), marker);
      ids.push_back(id);
    }
    return ids;
  }

 private:
  struct Slice {
    std::vector<T> data;
    int marker = 0;
  };

  std::size_t slice_len_;
  int check_rank_ = -1;  // < 0: ownership events not reported
  std::map<SliceId, Slice> slices_;  // ordered for deterministic iteration
};

}  // namespace nowlb::data
