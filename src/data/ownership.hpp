// Slice-ownership tap for the runtime invariant layer (src/check).
//
// A DistArray whose rank tag is set reports every slice add/remove to the
// process-global ledger, letting a checker assert that each slice id is
// owned by exactly one rank at all times (no-duplicate / no-lost ownership
// — the property §4.6's locator protocol silently depends on). The
// simulation is cooperative single-threaded, so one global slot suffices;
// it is null whenever no checker is active, making the tap a single branch.
#pragma once

#include "data/slice.hpp"

namespace nowlb::data {

class SliceLedger {
 public:
  virtual ~SliceLedger() = default;
  virtual void on_slice_added(int rank, SliceId id) = 0;
  virtual void on_slice_removed(int rank, SliceId id) = 0;
};

/// The active ledger slot (null = no checking).
inline SliceLedger*& active_slice_ledger() {
  static SliceLedger* ledger = nullptr;
  return ledger;
}

/// RAII installation of a ledger for the duration of one simulation run.
class SliceLedgerScope {
 public:
  explicit SliceLedgerScope(SliceLedger* ledger) {
    active_slice_ledger() = ledger;
  }
  ~SliceLedgerScope() { active_slice_ledger() = nullptr; }
  SliceLedgerScope(const SliceLedgerScope&) = delete;
  SliceLedgerScope& operator=(const SliceLedgerScope&) = delete;
};

}  // namespace nowlb::data
