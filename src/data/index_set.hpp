// IndexSet: the paper's "index array" — the set of slice ids a slave
// currently owns, maintained sorted for deterministic iteration and cheap
// min/max queries (restricted movement always moves edge slices).
#pragma once

#include <algorithm>
#include <vector>

#include "data/slice.hpp"
#include "util/check.hpp"

namespace nowlb::data {

class IndexSet {
 public:
  IndexSet() = default;
  explicit IndexSet(SliceRange r) {
    ids_.reserve(static_cast<std::size_t>(std::max(0, r.count())));
    for (SliceId s = r.begin; s < r.end; ++s) ids_.push_back(s);
  }

  bool contains(SliceId s) const {
    return std::binary_search(ids_.begin(), ids_.end(), s);
  }

  void insert(SliceId s) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), s);
    NOWLB_CHECK(it == ids_.end() || *it != s, "slice " << s << " already owned");
    ids_.insert(it, s);
  }

  void erase(SliceId s) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), s);
    NOWLB_CHECK(it != ids_.end() && *it == s, "slice " << s << " not owned");
    ids_.erase(it);
  }

  int size() const { return static_cast<int>(ids_.size()); }
  bool empty() const { return ids_.empty(); }

  SliceId min() const {
    NOWLB_CHECK(!ids_.empty());
    return ids_.front();
  }
  SliceId max() const {
    NOWLB_CHECK(!ids_.empty());
    return ids_.back();
  }

  /// Take the `n` smallest ids out of the set (for sending left).
  std::vector<SliceId> take_lowest(int n);
  /// Take the `n` largest ids out of the set (for sending right).
  std::vector<SliceId> take_highest(int n);

  /// True iff the ids form one contiguous block (block-distribution check).
  bool is_contiguous() const {
    return ids_.empty() || ids_.back() - ids_.front() + 1 == size();
  }

  const std::vector<SliceId>& ids() const { return ids_; }
  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

 private:
  std::vector<SliceId> ids_;  // sorted ascending, unique
};

inline std::vector<SliceId> IndexSet::take_lowest(int n) {
  NOWLB_CHECK(n >= 0 && n <= size(), "take_lowest(" << n << ") of " << size());
  std::vector<SliceId> out(ids_.begin(), ids_.begin() + n);
  ids_.erase(ids_.begin(), ids_.begin() + n);
  return out;
}

inline std::vector<SliceId> IndexSet::take_highest(int n) {
  NOWLB_CHECK(n >= 0 && n <= size(), "take_highest(" << n << ") of " << size());
  std::vector<SliceId> out(ids_.end() - n, ids_.end());
  ids_.erase(ids_.end() - n, ids_.end());
  return out;
}

}  // namespace nowlb::data
