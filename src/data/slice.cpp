#include "data/slice.hpp"

#include <algorithm>

namespace nowlb::data {

BlockMap BlockMap::even(int total, int slaves) {
  NOWLB_CHECK(slaves > 0 && total >= 0);
  std::vector<int> counts(slaves, total / slaves);
  for (int r = 0; r < total % slaves; ++r) ++counts[r];
  return from_counts(counts);
}

BlockMap BlockMap::from_counts(const std::vector<int>& counts) {
  BlockMap m;
  m.bounds_.resize(counts.size() + 1);
  m.bounds_[0] = 0;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    NOWLB_CHECK(counts[r] >= 0, "negative count for rank " << r);
    m.bounds_[r + 1] = m.bounds_[r] + counts[r];
  }
  return m;
}

std::vector<int> BlockMap::counts() const {
  std::vector<int> out(slaves());
  for (int r = 0; r < slaves(); ++r) out[r] = count(r);
  return out;
}

int BlockMap::owner(SliceId s) const {
  NOWLB_CHECK(s >= 0 && s < total(), "slice " << s << " out of range");
  // First boundary strictly greater than s; rank is one before it.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), s);
  return static_cast<int>(it - bounds_.begin()) - 1;
}

}  // namespace nowlb::data
