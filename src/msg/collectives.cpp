#include "msg/collectives.hpp"

#include "util/check.hpp"

namespace nowlb::msg {

using sim::Bytes;
using sim::Context;
using sim::Message;
using sim::Pid;
using sim::Tag;
using sim::Task;

Task<Bytes> broadcast(Context& ctx, const std::vector<Pid>& group, Pid root,
                      Tag tag, Bytes payload) {
  if (ctx.pid() == root) {
    for (Pid p : group) {
      if (p == root) continue;
      co_await ctx.send(p, tag, payload);  // payload copied per destination
    }
    co_return payload;
  }
  Message m = co_await ctx.recv(tag, root);
  co_return std::move(m.payload);
}

Task<std::vector<Bytes>> gather(Context& ctx, const std::vector<Pid>& group,
                                Pid root, Tag tag, Bytes mine) {
  if (ctx.pid() != root) {
    co_await ctx.send(root, tag, std::move(mine));
    co_return std::vector<Bytes>{};
  }
  std::vector<Bytes> out(group.size());
  std::size_t expected = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i] == root) {
      out[i] = std::move(mine);
    } else {
      ++expected;
    }
  }
  for (std::size_t n = 0; n < expected; ++n) {
    Message m = co_await ctx.recv(tag, sim::kAnyPid);
    bool placed = false;
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (group[i] == m.src) {
        NOWLB_CHECK(out[i].empty() && group[i] != root,
                    "duplicate gather contribution from pid " << m.src);
        out[i] = std::move(m.payload);
        placed = true;
        break;
      }
    }
    NOWLB_CHECK(placed, "gather message from pid " << m.src
                                                   << " outside the group");
  }
  co_return out;
}

Task<> barrier(Context& ctx, const std::vector<Pid>& group, Pid coordinator,
               Tag tag) {
  if (ctx.pid() == coordinator) {
    std::size_t expected = 0;
    for (Pid p : group)
      if (p != coordinator) ++expected;
    for (std::size_t n = 0; n < expected; ++n) {
      co_await ctx.recv(tag, sim::kAnyPid);
    }
    for (Pid p : group) {
      if (p == coordinator) continue;
      co_await ctx.send(p, tag, Bytes{});
    }
  } else {
    co_await ctx.send(coordinator, tag, Bytes{});
    co_await ctx.recv(tag, coordinator);
  }
}

}  // namespace nowlb::msg
