// Byte-archive serialization for message payloads.
//
// Writer appends fields to a flat byte buffer; Reader extracts them in the
// same order, bounds-checked so a malformed or misrouted message throws
// instead of reading garbage. Only trivially copyable value types, strings,
// and vectors thereof are supported — protocol structs compose these.
#pragma once

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "util/bytes.hpp"
#include "util/check.hpp"

namespace nowlb::msg {

using Bytes = nowlb::Bytes;

class Writer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Writer& put(const T& v) {
    append(&v, sizeof(T));
    return *this;
  }

  Writer& put(const std::string& s) {
    put<std::uint64_t>(s.size());
    append(s.data(), s.size());
    return *this;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  Writer& put_vec(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    append(v.data(), v.size() * sizeof(T));
    return *this;
  }

  Writer& put_bytes(const Bytes& b) {
    put<std::uint64_t>(b.size());
    append(b.data(), b.size());
    return *this;
  }

  /// Pre-size the buffer when the caller knows the encoded size (or a good
  /// bound) up front, avoiding growth reallocations on the hot path.
  Writer& reserve(std::size_t n) {
    buf_.reserve(buf_.size() + n);
    return *this;
  }

  std::size_t size() const { return buf_.size(); }
  Bytes take() { return std::move(buf_); }

 private:
  void append(const void* p, std::size_t n) {
    const auto old = buf_.size();
    buf_.resize(old + n);
    if (n) std::memcpy(buf_.data() + old, p, n);
  }
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(const Bytes& buf) : buf_(buf) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T v{};
    extract(&v, sizeof(T));
    return v;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    check_available(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vec() {
    const auto n = get<std::uint64_t>();
    check_available(n * sizeof(T));
    std::vector<T> v(n);
    if (n) std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  Bytes get_bytes() {
    const auto n = get<std::uint64_t>();
    check_available(n);
    Bytes b(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return pos_ == buf_.size(); }

 private:
  void check_available(std::size_t n) const {
    NOWLB_CHECK(pos_ + n <= buf_.size(),
                "payload truncated: need " << n << " bytes, have "
                                           << buf_.size() - pos_);
  }
  void extract(void* p, std::size_t n) {
    check_available(n);
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
  }

  const Bytes& buf_;
  std::size_t pos_ = 0;
};

/// Serialize-then-send convenience: any struct with `void encode(Writer&)`.
template <typename T>
concept Encodable = requires(const T& t, Writer& w) { t.encode(w); };

/// Decode convenience: any struct with `static T decode(Reader&)`.
template <typename T>
concept Decodable = requires(Reader& r) {
  { T::decode(r) } -> std::same_as<T>;
};

template <Encodable T>
Bytes encode(const T& value) {
  Writer w;
  value.encode(w);
  return w.take();
}

/// encode() with a pre-sized buffer; pair with the struct's encoded_size().
template <Encodable T>
Bytes encode(const T& value, std::size_t size_hint) {
  Writer w;
  w.reserve(size_hint);
  value.encode(w);
  return w.take();
}

template <Decodable T>
T decode(const Bytes& payload) {
  Reader r(payload);
  T v = T::decode(r);
  return v;
}

}  // namespace nowlb::msg
