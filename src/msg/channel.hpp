// Typed point-to-point messaging on top of sim::Context.
//
//   co_await msg::send(ctx, dst, kTagReport, report);     // encodes + sends
//   Report r = co_await msg::recv<Report>(ctx, kTagReport);
#pragma once

#include "msg/serialize.hpp"
#include "sim/context.hpp"
#include "util/task.hpp"

namespace nowlb::msg {

using sim::Context;
using sim::Message;
using sim::Pid;
using sim::Tag;
using nowlb::Task;

/// Encode `value` and send it to `dst` with `tag`.
template <Encodable T>
Task<> send(Context& ctx, Pid dst, Tag tag, const T& value) {
  co_await ctx.send(dst, tag, encode(value));
}

/// Receive a message with `tag` (optionally from `src`) and decode it.
template <Decodable T>
Task<T> recv(Context& ctx, Tag tag, Pid src = sim::kAnyPid) {
  Message m = co_await ctx.recv(tag, src);
  co_return decode<T>(m.payload);
}

/// Receive and decode, also reporting the sender.
template <Decodable T>
Task<std::pair<Pid, T>> recv_from_any(Context& ctx, Tag tag) {
  Message m = co_await ctx.recv(tag, sim::kAnyPid);
  co_return std::pair<Pid, T>(m.src, decode<T>(m.payload));
}

}  // namespace nowlb::msg
