// Collective operations over an explicit process group, built from
// point-to-point messages (the paper's runtime has no hardware collectives;
// LU's pivot distribution and §4.6's broadcast-and-discard use these).
#pragma once

#include <vector>

#include "sim/context.hpp"
#include "util/task.hpp"

namespace nowlb::msg {

/// Broadcast: the root sends `payload` to every other member and everyone
/// returns the broadcast bytes (the root returns its own payload).
/// All members must call this with the same group/root/tag.
sim::Task<sim::Bytes> broadcast(sim::Context& ctx,
                                const std::vector<sim::Pid>& group,
                                sim::Pid root, sim::Tag tag,
                                sim::Bytes payload = {});

/// Gather: every member sends `mine` to the root; the root returns the
/// payloads ordered as in `group` (its own contribution included),
/// non-roots return an empty vector.
sim::Task<std::vector<sim::Bytes>> gather(sim::Context& ctx,
                                          const std::vector<sim::Pid>& group,
                                          sim::Pid root, sim::Tag tag,
                                          sim::Bytes mine);

/// Barrier through a coordinator: everyone reports in, then the coordinator
/// releases the group. Two message rounds; O(N) messages.
sim::Task<> barrier(sim::Context& ctx, const std::vector<sim::Pid>& group,
                    sim::Pid coordinator, sim::Tag tag);

}  // namespace nowlb::msg
