#include "apps/lu.hpp"

#include <algorithm>
#include <map>

#include "data/dist_array.hpp"
#include "data/slice.hpp"
#include "msg/serialize.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace nowlb::apps {

using data::BlockMap;
using data::DistArray;
using data::SliceId;
using sim::Bytes;
using sim::Context;
using sim::Message;
using sim::Task;
using sim::Time;

namespace {

constexpr sim::Tag kTagPivot = 8101;  // multipliers broadcast for step k

}  // namespace

loop::LoopNestSpec lu_spec(const LuConfig& cfg) {
  loop::LoopNestSpec spec;
  spec.name = "LU";
  spec.distributed_extent = cfg.n;
  spec.inner_extent = cfg.n;
  spec.outer_iters = cfg.n - 1;  // steps k = 0 .. n-2
  spec.loop_carried_dependences = false;  // column updates are independent
  spec.communication_outside_loop = true;  // pivot broadcast per step
  spec.bounds = [n = cfg.n](int k) { return data::SliceRange{k + 1, n}; };
  spec.index_dependent_iteration_size = true;  // n-k rows per column
  spec.data_dependent_iteration_size = false;
  spec.iteration_cost = [cfg](int k, SliceId) {
    return static_cast<Time>(cfg.n - k - 1) * cfg.update_cost;
  };
  return spec;
}

double lu_seq_time_s(const LuConfig& cfg) {
  // sum over k of (n-k-1) columns x (n-k-1) rows
  double total = 0;
  for (int k = 0; k < cfg.n - 1; ++k) {
    const double m = cfg.n - k - 1;
    total += m * m;
  }
  return total * sim::to_seconds(cfg.update_cost);
}

void lu_make_inputs(const LuConfig& cfg, LuShared& shared) {
  Rng rng(cfg.seed);
  const std::size_t n = static_cast<std::size_t>(cfg.n);
  shared.a.assign(n, std::vector<double>(n));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      shared.a[j][i] = rng.uniform(-1.0, 1.0);
    }
    // Diagonal dominance keeps the factorization stable without pivoting.
    shared.a[j][j] += static_cast<double>(n);
  }
  shared.final_owner.assign(n, -1);
}

void lu_sequential(const LuConfig& cfg, std::vector<std::vector<double>>& a) {
  const int n = cfg.n;
  for (int k = 0; k < n - 1; ++k) {
    auto& ck = a[static_cast<std::size_t>(k)];
    const double dk = ck[static_cast<std::size_t>(k)];
    for (int i = k + 1; i < n; ++i) {
      ck[static_cast<std::size_t>(i)] /= dk;
    }
    for (int j = k + 1; j < n; ++j) {
      auto& cj = a[static_cast<std::size_t>(j)];
      const double akj = cj[static_cast<std::size_t>(k)];
      for (int i = k + 1; i < n; ++i) {
        cj[static_cast<std::size_t>(i)] -=
            ck[static_cast<std::size_t>(i)] * akj;
      }
    }
  }
}

lb::ClusterConfig lu_cluster_config(const LuConfig& cfg, int slaves,
                                    const lb::LbConfig& lb) {
  lb::ClusterConfig cc;
  cc.slaves = slaves;
  cc.phases = 1;  // unused: termination by done flags
  cc.termination = lb::Termination::kDoneFlags;
  cc.lb = lb;
  cc.lb.movement = lb::Movement::kUnrestricted;
  cc.initial_counts = BlockMap::even(cfg.n, slaves).counts();
  cc.use_master = cfg.use_lb;
  return cc;
}

void lu_build(lb::Cluster& cluster, const LuConfig& cfg,
              std::shared_ptr<LuShared> shared) {
  shared->units_by_rank.assign(cluster.slaves(), 0.0);
  shared->probe.assign(cluster.slaves(), "start");

  cluster.spawn([cfg, shared](Context& ctx, int rank,
                              const lb::Cluster& c) -> Task<> {
    const int n = cfg.n;
    const int R = c.slaves();

    const auto block = BlockMap::even(n, R).range(rank);
    // Column marker = number of steps already applied to it.
    DistArray<double> cols(static_cast<std::size_t>(n));
    cols.enable_ownership_checks(rank);
    for (SliceId j = block.begin; j < block.end; ++j) {
      cols.add(j, shared->a[static_cast<std::size_t>(j)]);
    }

    // Full pivot history: work movement can hand us a column that lags the
    // local step, and catching it up needs the missed multipliers (§4.5
    // applied to LU). pivots[k] holds rows k+1..n-1.
    std::vector<std::vector<double>> pivots(static_cast<std::size_t>(n));

    int k_now = 0;  // current outer step

    lb::SlaveAgent::WorkOps ops;
    ops.remaining = [&cols, &k_now] {
      int r = 0;
      for (SliceId id : cols.owned_ids()) r += id > k_now;
      return r;
    };
    ops.pack = [&](int count, int) -> Task<std::pair<Bytes, int>> {
      // Only active columns move (§4.7): inactive data stays put.
      std::vector<SliceId> active;
      for (SliceId id : cols.owned_ids()) {
        if (id > k_now) active.push_back(id);
      }
      const int actual =
          std::min(count, static_cast<int>(active.size()));
      const std::vector<SliceId> ids(active.end() - actual, active.end());
      co_return std::make_pair(cols.pack_and_remove(ids), actual);
    };
    ops.unpack = [&](const Bytes& payload, int) -> Task<int> {
      const auto ids = cols.unpack_and_add(payload);
      co_return static_cast<int>(ids.size());
    };

    std::optional<lb::SlaveAgent> agent;
    if (cfg.use_lb) agent.emplace(c.make_agent(ctx, rank, std::move(ops)));

    const auto apply_step = [&](SliceId j, int k) {
      // cols[j] -= pivots[k] * a[k][j] on rows k+1..n-1 (marker k -> k+1).
      if (!cfg.real_compute) return;
      auto& cj = cols.slice(j);
      const auto& piv = pivots[static_cast<std::size_t>(k)];
      const double akj = cj[static_cast<std::size_t>(k)];
      for (int i = k + 1; i < n; ++i) {
        cj[static_cast<std::size_t>(i)] -=
            piv[static_cast<std::size_t>(i - k - 1)] * akj;
      }
    };

    for (int k = 0; k < n - 1; ++k) {
      k_now = k;

      // A freshly moved-in column k may lag (its donor was at an earlier
      // step); catch it up before it can serve as the pivot column.
      if (cols.owns(k) && cols.marker(k) < k) {
        Time cost = 0;
        int m = cols.marker(k);
        while (m < k) {
          apply_step(k, m);
          cost += static_cast<Time>(n - m - 1) * cfg.update_cost;
          ++m;
          shared->units_by_rank[static_cast<std::size_t>(rank)] += 1;
          if (agent) agent->add_units(1);
        }
        cols.set_marker(k, m);
        co_await ctx.compute(cost);
      }

      // --- obtain the multipliers for step k ---
      if (cols.owns(k) && cols.marker(k) == k) {
        // We own an up-to-date column k: compute and broadcast.
        auto& ck = cols.slice(k);
        co_await ctx.compute(static_cast<Time>(n - k - 1) * cfg.update_cost);
        std::vector<double> piv(static_cast<std::size_t>(n - k - 1));
        const double dk = ck[static_cast<std::size_t>(k)];
        for (int i = k + 1; i < n; ++i) {
          if (cfg.real_compute) ck[static_cast<std::size_t>(i)] /= dk;
          piv[static_cast<std::size_t>(i - k - 1)] =
              ck[static_cast<std::size_t>(i)];
        }
        pivots[static_cast<std::size_t>(k)] = std::move(piv);
        msg::Writer w;
        w.put<std::int32_t>(k);
        w.put_vec(pivots[static_cast<std::size_t>(k)]);
        Bytes payload = w.take();
        for (int r2 = 0; r2 < R; ++r2) {
          if (r2 == rank) continue;
          co_await ctx.send(c.slave_pid(r2), kTagPivot, payload);
        }
      } else {
        // Someone else owns column k (possibly after a recent transfer):
        // wait for the broadcast, pumping runtime messages meanwhile.
        while (pivots[static_cast<std::size_t>(k)].empty()) {
          if (cols.owns(k)) {
            // Ownership arrived mid-wait — possibly lagging (the donor was
            // behind step k). Restart the step as owner: the catch-up at
            // the step top brings the column to marker == k first. Waiting
            // on would deadlock: no one else can broadcast this pivot.
            break;
          }
          shared->probe[rank] = "pivot k=" + std::to_string(k);
          const Time w0 = ctx.now();
          Message m = co_await ctx.recv(sim::kAnyTag, sim::kAnyPid);
          shared->probe[rank] = "pivot-got k=" + std::to_string(k) +
                                " tag=" + std::to_string(m.tag);
          if (agent) agent->note_blocked(ctx.now() - w0);
          if (m.tag == kTagPivot) {
            msg::Reader r(m.payload);
            const int kp = r.get<std::int32_t>();
            pivots[static_cast<std::size_t>(kp)] = r.get_vec<double>();
          } else {
            NOWLB_CHECK(agent.has_value(), "runtime message without balancer");
            co_await agent->accept_runtime(std::move(m));
          }
        }
        if (pivots[static_cast<std::size_t>(k)].empty()) {
          --k;  // became owner of column k; redo this step in that role
          continue;
        }
      }

      // --- update owned active columns; catch up any that lag (moved
      // in); columns already past step k (moved from a slave that is
      // ahead) are left alone until k reaches them — set-aside. ---
      int steps_applied = 0;
      Time cost = 0;
      for (SliceId j : cols.owned_ids()) {
        if (j <= k) continue;
        int m = cols.marker(j);
        while (m <= k) {
          apply_step(j, m);
          cost += static_cast<Time>(n - m - 1) * cfg.update_cost;
          ++m;
          ++steps_applied;
        }
        cols.set_marker(j, m);
      }
      if (steps_applied > 0) {
        co_await ctx.compute(cost);
        shared->units_by_rank[static_cast<std::size_t>(rank)] +=
            steps_applied;
        if (agent) agent->add_units(steps_applied);
      }

      // Hook at the end of each distributed-loop invocation (§4.2; §4.7's
      // frequency adaptation spaces the actual balances out in units).
      if (agent) {
        shared->probe[rank] = "hook k=" + std::to_string(k);
        co_await agent->hook();
      }
    }

    k_now = n - 1;  // column n-1 needs no further work
    if (agent) {
      shared->probe[rank] = "finalize";
      co_await agent->finalize();
      shared->probe[rank] = "done";
    }

    for (SliceId id : cols.owned_ids()) {
      shared->a[static_cast<std::size_t>(id)] = cols.slice(id);
      shared->final_owner[static_cast<std::size_t>(id)] = rank;
    }
  });
}

}  // namespace nowlb::apps
