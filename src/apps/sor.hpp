// Successive overrelaxation (SOR) — the paper's pipelined application
// (Fig. 3).
//
// Grid b[j][i] (column j, row i), distributed by columns; each sweep
// updates interior points row-by-row (row-major wavefront):
//
//   b[j][i] = 0.493*(b[j][i-1] + b[j-1][i] + b[j][i+1] + b[j+1][i])
//             - 0.972*b[j][i]
//
// b[j][i-1] and b[j-1][i] are this-sweep values (the wavefront), b[j][i+1]
// and b[j+1][i] are previous-sweep values. The row loop is strip-mined
// (§4.4) with the block size calibrated at startup to ~1.5 x the
// scheduling quantum; per strip, a rank receives its left-boundary column
// segment (new values) from the left rank and sends its right-boundary
// segment to the right rank. The previous-sweep values of the right
// neighbour's first column are exchanged whole at sweep start.
//
// Work movement is restricted to adjacent ranks (block distribution) and
// applies at strip-boundary hooks. Columns moved leftwards (donor behind)
// are *caught up* by the receiver, using old-value snapshots shipped in
// the payload, and the receiver retro-sends the ghost segments the donor
// now lacks; columns moved rightwards (donor ahead) are *set aside* until
// the receiver's wavefront reaches their marker (§4.5). The parallel
// update order is exactly the sequential row-major order, so results match
// sequential execution bit-for-bit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lb/cluster.hpp"
#include "loop/spec.hpp"
#include "sim/world.hpp"

namespace nowlb::apps {

struct SorConfig {
  int n = 2000;    // grid dimension; interior is 1..n-2
  int sweeps = 20;
  bool use_lb = true;  // false: static block distribution, no master
  bool real_compute = false;
  sim::Time update_cost = 4'375;  // virtual ns per 5-point update
  /// Strip height in rows; 0 = calibrate at startup (rank 0 measures and
  /// broadcasts, §4.4).
  int block_rows = 0;
  std::uint64_t seed = 42;
};

struct SorShared {
  /// Column-major grid; input before the run, final values after it
  /// (slaves write their owned columns back at the end).
  std::vector<std::vector<double>> grid;
  /// Final owner rank of each column (diagnostic; boundary columns -1).
  std::vector<int> final_owner;
  /// Block size actually used (after calibration).
  int block_rows_used = 0;
  /// Units (column-sweeps) computed per rank, including catch-up work.
  std::vector<double> units_by_rank;
  /// Last blocking point per rank (debugging aid for protocol stalls).
  std::vector<std::string> probe;
};

loop::LoopNestSpec sor_spec(const SorConfig& cfg);
double sor_seq_time_s(const SorConfig& cfg);

/// In-place sequential reference (same FP order as the parallel kernel).
void sor_sequential(const SorConfig& cfg,
                    std::vector<std::vector<double>>& grid);

void sor_make_inputs(const SorConfig& cfg, SorShared& shared);

void sor_build(lb::Cluster& cluster, const SorConfig& cfg,
               std::shared_ptr<SorShared> shared);

lb::ClusterConfig sor_cluster_config(const SorConfig& cfg, int slaves,
                                     const lb::LbConfig& lb);

}  // namespace nowlb::apps
