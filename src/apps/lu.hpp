// LU decomposition (no pivoting) — the paper's shrinking-work application
// (Table 1, §4.7).
//
// Right-looking factorization, distributed by columns. At outer step k the
// owner of column k computes the multipliers and broadcasts them (the
// owner changes at run time with work movement, so receivers accept the
// pivot from any source — the §4.6 situation); every slave then updates
// its *active* columns (j > k). Columns <= k are inactive: they hold final
// factors and are never moved (§4.7). Both the distributed loop's bounds
// (k+1..n) and the per-iteration size (n-k rows) shrink with k, so the
// measured rate in units/s rises and the frequency controller
// automatically spaces balance rounds further apart in work units.
//
// The outer loop synchronizes via the pivot broadcast, not the master, so
// the run uses done-flag termination: slaves balance purely on hook
// counters and send a final report when the factorization ends.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lb/cluster.hpp"
#include "loop/spec.hpp"
#include "sim/world.hpp"

namespace nowlb::apps {

struct LuConfig {
  int n = 500;
  bool use_lb = true;  // false: static block distribution, no master
  bool real_compute = false;
  sim::Time update_cost = 2'900;  // virtual ns per element update
  std::uint64_t seed = 42;
};

struct LuShared {
  /// Column-major matrix; input before the run, L\U factors after.
  std::vector<std::vector<double>> a;
  std::vector<int> final_owner;
  std::vector<double> units_by_rank;  // column-step updates per rank
  /// Last blocking point per rank (debugging aid for protocol stalls).
  std::vector<std::string> probe;
};

loop::LoopNestSpec lu_spec(const LuConfig& cfg);
double lu_seq_time_s(const LuConfig& cfg);

/// In-place sequential factorization (same FP order as the kernel).
void lu_sequential(const LuConfig& cfg, std::vector<std::vector<double>>& a);

void lu_make_inputs(const LuConfig& cfg, LuShared& shared);

void lu_build(lb::Cluster& cluster, const LuConfig& cfg,
              std::shared_ptr<LuShared> shared);

lb::ClusterConfig lu_cluster_config(const LuConfig& cfg, int slaves,
                                    const lb::LbConfig& lb);

}  // namespace nowlb::apps
