#include "apps/sor.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>

#include "data/dist_array.hpp"
#include "data/slice.hpp"
#include "loop/grain.hpp"
#include "msg/serialize.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace nowlb::apps {

using data::BlockMap;
using data::DistArray;
using data::SliceId;
using sim::Bytes;
using sim::Context;
using sim::Message;
using sim::Pid;
using sim::Task;
using sim::Time;

namespace {

// Application-level message tags (distinct from the lb runtime's 9000s).
constexpr sim::Tag kTagSweepStart = 8001;  // whole first column, rightward owner -> left rank
constexpr sim::Tag kTagGhost = 8002;       // per-strip boundary segment, leftward owner -> right rank
constexpr sim::Tag kTagCalib = 8003;       // broadcast strip size at startup

constexpr double kC1 = 0.493;
constexpr double kC2 = -0.972;

struct GhostHeader {
  std::int32_t sweep = 0;
  std::int32_t strip = 0;
  std::int32_t col = 0;
};

Bytes encode_ghost(const GhostHeader& h, const double* rows, int count) {
  msg::Writer w;
  w.put(h.sweep).put(h.strip).put(h.col);
  w.put_vec(std::vector<double>(rows, rows + count));
  return w.take();
}

}  // namespace

loop::LoopNestSpec sor_spec(const SorConfig& cfg) {
  loop::LoopNestSpec spec;
  spec.name = "SOR";
  spec.distributed_extent = cfg.n - 2;
  spec.inner_extent = cfg.n - 2;
  spec.outer_iters = cfg.sweeps;
  spec.loop_carried_dependences = true;       // b[j-1][i] crosses slices
  spec.communication_outside_loop = true;     // sweep-start column exchange
  spec.index_dependent_iteration_size = false;
  spec.data_dependent_iteration_size = false;
  const Time col_cost =
      static_cast<Time>(cfg.n - 2) * cfg.update_cost;
  spec.iteration_cost = [col_cost](int, SliceId) { return col_cost; };
  return spec;
}

double sor_seq_time_s(const SorConfig& cfg) {
  const double updates = static_cast<double>(cfg.n - 2) * (cfg.n - 2);
  return updates * sim::to_seconds(cfg.update_cost) * cfg.sweeps;
}

void sor_make_inputs(const SorConfig& cfg, SorShared& shared) {
  Rng rng(cfg.seed);
  const std::size_t n = static_cast<std::size_t>(cfg.n);
  shared.grid.assign(n, std::vector<double>(n));
  for (auto& col : shared.grid) {
    for (auto& v : col) v = rng.uniform(0.0, 1.0);
  }
  shared.final_owner.assign(n, -1);
}

void sor_sequential(const SorConfig& cfg,
                    std::vector<std::vector<double>>& grid) {
  const int n = cfg.n;
  for (int sweep = 0; sweep < cfg.sweeps; ++sweep) {
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        auto& col = grid[static_cast<std::size_t>(j)];
        col[i] = kC1 * (col[i - 1] + grid[static_cast<std::size_t>(j - 1)][i] +
                        col[i + 1] + grid[static_cast<std::size_t>(j + 1)][i]) +
                 kC2 * col[i];
      }
    }
  }
}

lb::ClusterConfig sor_cluster_config(const SorConfig& cfg, int slaves,
                                     const lb::LbConfig& lb) {
  lb::ClusterConfig cc;
  cc.slaves = slaves;
  cc.phases = cfg.sweeps;
  cc.termination = lb::Termination::kPhases;
  cc.lb = lb;
  cc.lb.movement = lb::Movement::kRestricted;  // loop-carried dependences
  cc.lb.min_units_per_slave = 1;  // an empty rank breaks the ghost chain
  cc.initial_counts = BlockMap::even(cfg.n - 2, slaves).counts();
  cc.use_master = cfg.use_lb;
  return cc;
}

void sor_build(lb::Cluster& cluster, const SorConfig& cfg,
               std::shared_ptr<SorShared> shared) {
  shared->units_by_rank.assign(cluster.slaves(), 0.0);
  shared->probe.assign(cluster.slaves(), "start");

  cluster.spawn([cfg, shared](Context& ctx, int rank,
                              const lb::Cluster& c) -> Task<> {
    const int n = cfg.n;
    const int R = c.slaves();
    const int interior = n - 2;  // columns/rows 1 .. n-2

    // ---- distributed data: owned columns (full height), per-column
    // marker = strips completed in the current sweep (§4.5). ----
    const auto block = BlockMap::even(interior, R).range(rank);
    DistArray<double> cols(static_cast<std::size_t>(n));
    cols.enable_ownership_checks(rank);
    for (SliceId b = block.begin; b < block.end; ++b) {
      const SliceId j = 1 + b;
      cols.add(j, shared->grid[static_cast<std::size_t>(j)]);
    }
    const std::vector<double> bnd_left = shared->grid[0];
    const std::vector<double> bnd_right =
        shared->grid[static_cast<std::size_t>(n - 1)];

    // Previous-sweep snapshot of the column right of our highest column.
    std::vector<double> right_ghost(static_cast<std::size_t>(n), 0.0);
    SliceId right_ghost_id = -1;

    // Snapshot of the highest column donated leftward: the donor's
    // remaining columns still read its this-sweep values as their left
    // boundary for strips below the donated marker; the receiver holds
    // the column at that marker and only re-sends segments beyond it.
    std::vector<double> left_ghost(static_cast<std::size_t>(n), 0.0);
    SliceId left_ghost_id = -1;
    int left_ghost_marker = 0;

    const bool has_left = rank > 0;
    const bool has_right = rank < R - 1;
    const Pid left_pid = has_left ? c.slave_pid(rank - 1) : sim::kAnyPid;
    const Pid right_pid = has_right ? c.slave_pid(rank + 1) : sim::kAnyPid;

    // ---- grain-size control (§4.4): rank 0 measures the cost of a few
    // pipelined-loop iterations (one row across its columns) at startup
    // and broadcasts the strip height. ----
    int bs = cfg.block_rows;
    if (bs == 0) {
      if (rank == 0) {
        const Time t0 = ctx.now();
        constexpr int kProbeRows = 3;
        co_await ctx.compute(static_cast<Time>(kProbeRows) *
                             cols.owned_count() * cfg.update_cost);
        const Time per_row = (ctx.now() - t0) / kProbeRows;
        bs = loop::block_size_for(
            loop::grain_target(ctx.world().config().host.quantum), per_row,
            interior);
        for (int r2 = 1; r2 < R; ++r2) {
          msg::Writer w;
          w.put<std::int32_t>(bs);
          co_await ctx.send(c.slave_pid(r2), kTagCalib, w.take());
        }
        shared->block_rows_used = bs;
      } else {
        Message m = co_await ctx.recv(kTagCalib, c.slave_pid(0));
        msg::Reader r(m.payload);
        bs = r.get<std::int32_t>();
      }
    } else if (rank == 0) {
      shared->block_rows_used = bs;
    }
    const int strips = (interior + bs - 1) / bs;

    const auto strip_rows = [n, bs](int s) {
      const int rb = 1 + s * bs;
      const int re = std::min(rb + bs, n - 1);
      return std::pair<int, int>(rb, re);
    };
    const auto min_marker = [&cols]() {
      int m = std::numeric_limits<int>::max();
      for (SliceId id : cols.owned_ids()) m = std::min(m, cols.marker(id));
      return m;
    };

    // ---- work movement (the compiler-generated gather/scatter, §4.5) ----
    lb::SlaveAgent::WorkOps ops;
    ops.remaining = [&cols, strips] {
      int r = 0;
      for (SliceId id : cols.owned_ids()) r += cols.marker(id) < strips;
      return r;
    };
    ops.pack = [&, rank](int count,
                         int peer) -> Task<std::pair<Bytes, int>> {
      // Keep at least one column: an empty rank breaks the pipeline chain.
      const int actual = std::max(0, std::min(count, cols.owned_count() - 1));
      auto owned = cols.owned_ids();
      std::vector<SliceId> ids;
      if (peer > rank) {
        ids.assign(owned.end() - actual, owned.end());
      } else {
        ids.assign(owned.begin(), owned.begin() + actual);
      }
      msg::Writer w;
      if (peer > rank && actual > 0) {
        // Donating our highest columns: snapshot the lowest donated column
        // as our new right ghost (its rows at strips >= its marker still
        // hold previous-sweep values, which is all we will read).
        right_ghost = cols.slice(ids.front());
        right_ghost_id = ids.front();
      }
      if (peer < rank && actual > 0) {
        // Donating our lowest (most-advanced) columns: keep the highest
        // donated column's values — our remaining columns' left boundary
        // for strips it has already covered.
        left_ghost = cols.slice(ids.back());
        left_ghost_id = ids.back();
        left_ghost_marker = cols.marker(ids.back());
      }
      Bytes cols_payload = cols.pack_and_remove(ids);
      const bool boundary = actual > 0;
      w.put<std::uint8_t>(boundary ? 1 : 0);
      if (boundary && peer < rank) {
        // Receiver attaches these columns at its right edge and needs
        // previous-sweep values of our (new) first column as its right
        // ghost / catch-up source.
        const SliceId bnd = cols.owned_ids().front();
        w.put<std::int32_t>(bnd);
        w.put_vec(cols.slice(bnd));
      } else if (boundary && peer > rank) {
        // Receiver attaches these columns at its left edge; for strips our
        // (new) highest column has already covered this sweep it needs that
        // column's values as left boundary — those segments went out as
        // ghosts for a *different* column (whichever was highest at the
        // time) and will never be re-sent, so ship a snapshot with its
        // marker. Strips beyond the marker flow as ordinary ghosts.
        const SliceId bnd = cols.owned_ids().back();
        w.put<std::int32_t>(bnd);
        w.put<std::int32_t>(cols.marker(bnd));
        w.put_vec(cols.slice(bnd));
      }
      w.put_bytes(cols_payload);
      co_return std::make_pair(w.take(), actual);
    };
    ops.unpack = [&, rank](const Bytes& payload, int peer) -> Task<int> {
      msg::Reader r(payload);
      // Non-empty transfers carry the donor's boundary-column snapshot;
      // clamped (empty) transfers carry nothing.
      const bool boundary = r.get<std::uint8_t>() != 0;
      if (boundary && peer > rank) {
        right_ghost_id = r.get<std::int32_t>();
        right_ghost = r.get_vec<double>();
      } else if (boundary && peer < rank) {
        left_ghost_id = r.get<std::int32_t>();
        left_ghost_marker = r.get<std::int32_t>();
        left_ghost = r.get_vec<double>();
      }
      const auto ids = cols.unpack_and_add(r.get_bytes());
      if (!ids.empty()) {
        NOWLB_LOG(Debug, "sor") << "rank " << rank << " integrated cols ["
                                << ids.front() << ".." << ids.back()
                                << "] marker " << cols.marker(ids.front())
                                << ".." << cols.marker(ids.back())
                                << " from peer " << peer;
      }
      co_return static_cast<int>(ids.size());
    };

    std::optional<lb::SlaveAgent> agent;
    if (cfg.use_lb) agent.emplace(c.make_agent(ctx, rank, std::move(ops)));

    // Ghost segments received for the current sweep but not (yet) needed:
    // work movement can change which column's segments we consume, and a
    // segment that looks irrelevant now can become our boundary after a
    // later transfer, so nothing from the current sweep is ever dropped.
    std::map<std::pair<int, SliceId>, std::vector<double>> ghost_stash;

    // Blocking receive of the left-boundary segment for (sweep, strip,
    // col), discarding prior-sweep ghosts and accepting interleaved
    // runtime messages — work movement can make the column local, in
    // which case nullopt is returned and the caller re-resolves.
    const auto recv_ghost =
        [&](int sweep, int strip,
            SliceId col) -> Task<std::optional<std::vector<double>>> {
      for (;;) {
        if (cols.owns(col)) co_return std::nullopt;
        if (const auto it = ghost_stash.find({strip, col});
            it != ghost_stash.end()) {
          auto seg = std::move(it->second);
          ghost_stash.erase(it);
          co_return seg;
        }
        shared->probe[rank] = "ghost sweep=" + std::to_string(sweep) +
                              " strip=" + std::to_string(strip) +
                              " col=" + std::to_string(col);
        // Pump *everything*: the awaited segment can be superseded by a
        // work transfer, whose matching instructions come from the master
        // — listening only to the left peer can deadlock with the needed
        // message already sitting in our own mailbox.
        Message m = co_await ctx.recv(sim::kAnyTag, sim::kAnyPid);
        shared->probe[rank] = "ghost-got tag=" + std::to_string(m.tag);
        if (m.tag == lb::kTagMove || m.tag == lb::kTagInstr) {
          NOWLB_CHECK(agent.has_value(), "runtime message without balancer");
          co_await agent->accept_runtime(std::move(m));
          // Work movement (either direction) may have invalidated the
          // expectation — e.g. we may just have donated the very columns
          // whose boundary we were waiting for. Re-resolve from scratch.
          co_return std::nullopt;
        }
        NOWLB_CHECK(m.tag == kTagGhost, "unexpected tag " << m.tag);
        NOWLB_CHECK(m.src == left_pid,
                    "ghost from pid " << m.src << ", not the left rank");
        msg::Reader r(m.payload);
        GhostHeader h;
        h.sweep = r.get<std::int32_t>();
        h.strip = r.get<std::int32_t>();
        h.col = r.get<std::int32_t>();
        auto seg = r.get_vec<double>();
        if (h.sweep == sweep && h.strip == strip && h.col == col) {
          co_return seg;
        }
        NOWLB_CHECK(h.sweep <= sweep, "ghost from future sweep " << h.sweep);
        if (h.sweep == sweep) {
          ghost_stash[{h.strip, h.col}] = std::move(seg);
        }
        // prior-sweep ghosts are superseded; drop
      }
    };

    // ------------------------------ sweeps ------------------------------
    for (int sweep = 0; sweep < cfg.sweeps; ++sweep) {
      for (SliceId id : cols.owned_ids()) cols.set_marker(id, 0);
      ghost_stash.clear();
      left_ghost_id = -1;
      left_ghost_marker = 0;
      if (agent) agent->begin_phase();

      // Communication outside the distributed loop: previous-sweep values
      // of each rank's first column go to the left neighbour.
      if (has_left) {
        msg::Writer w;
        const SliceId first = cols.owned_ids().front();
        w.put<std::int32_t>(sweep).put<std::int32_t>(first);
        w.put_vec(cols.slice(first));
        co_await ctx.send(left_pid, kTagSweepStart, w.take());
      }
      if (has_right) {
        const Time w0 = ctx.now();
        shared->probe[rank] = "sweepstart sweep=" + std::to_string(sweep);
        Message m = co_await ctx.recv(kTagSweepStart, right_pid);
        if (agent) agent->note_blocked(ctx.now() - w0);
        msg::Reader r(m.payload);
        const int sw = r.get<std::int32_t>();
        NOWLB_CHECK(sw == sweep, "sweep-start for sweep " << sw);
        right_ghost_id = r.get<std::int32_t>();
        right_ghost = r.get_vec<double>();
      }

      // Strip loop, driven by the minimum marker: freshly caught-up
      // columns rewind it (catch-up), columns ahead of it are skipped
      // (set-aside) — §4.5 falls out of the marker discipline.
      for (;;) {
        const int p = min_marker();
        if (p >= strips) {
          if (!agent) break;  // static run: the sweep simply ends
          // Sweep locally complete; run balance rounds until the master
          // declares the invocation done (we may receive more columns).
          shared->probe[rank] = "drain sweep=" + std::to_string(sweep);
          co_await agent->drain();
          shared->probe[rank] = "drained";
          if (agent->phase_done()) break;
          continue;
        }
        const auto [rb, re] = strip_rows(p);

        // Columns to process this strip: marker == p. Markers are
        // non-increasing left-to-right, so this is the suffix of owned ids.
        // The ghost pump can change ownership (work movement), so the set
        // is re-validated after every receive; a change in the minimum
        // marker restarts the strip loop entirely (rewind / skip-ahead).
        std::vector<SliceId> work;
        std::optional<std::vector<double>> lseg;
        bool restart_strip = false;
        for (;;) {
          if (min_marker() != p) {
            restart_strip = true;
            break;
          }
          work.clear();
          for (SliceId id : cols.owned_ids()) {
            if (cols.marker(id) == p) work.push_back(id);
          }
          NOWLB_CHECK(!work.empty());
          const SliceId firstw = work.front();
          if (firstw - 1 == 0 || cols.owns(firstw - 1)) {
            lseg.reset();
            break;  // left values are local
          }
          if (firstw - 1 == left_ghost_id && p < left_ghost_marker) {
            // Use the donated-column snapshot (already computed this sweep
            // through its marker).
            const auto [srb, sre] = strip_rows(p);
            lseg.emplace(left_ghost.begin() + srb, left_ghost.begin() + sre);
            break;
          }
          const Time w0 = ctx.now();
          lseg = co_await recv_ghost(sweep, p, firstw - 1);
          if (agent) agent->note_blocked(ctx.now() - w0);
          if (!lseg) continue;  // the column arrived via movement
          // Re-validate: movement during the wait may have changed the
          // work set or even the leftmost column the segment was for. A
          // fetched segment that is not used *now* goes into the stash —
          // a later rewind over the same strip will need it again.
          std::vector<SliceId> now_work;
          for (SliceId id : cols.owned_ids()) {
            if (cols.marker(id) == p) now_work.push_back(id);
          }
          const bool usable = min_marker() == p && !now_work.empty() &&
                              now_work.front() == firstw;
          if (!usable) {
            ghost_stash[{p, firstw - 1}] = std::move(*lseg);
            lseg.reset();
            if (min_marker() != p) {
              restart_strip = true;
              break;
            }
            continue;
          }
          work = std::move(now_work);
          break;
        }
        if (restart_strip) continue;

        co_await ctx.compute(static_cast<Time>(re - rb) *
                             static_cast<Time>(work.size()) *
                             cfg.update_cost);
        if (cfg.real_compute) {
          for (int i = rb; i < re; ++i) {
            for (SliceId j : work) {
              auto& col = cols.slice(j);
              const double left =
                  (j - 1 == 0) ? bnd_left[static_cast<std::size_t>(i)]
                  : cols.owns(j - 1)
                      ? cols.slice(j - 1)[static_cast<std::size_t>(i)]
                      : (*lseg)[static_cast<std::size_t>(i - rb)];
              double right;
              if (j + 1 == n - 1) {
                right = bnd_right[static_cast<std::size_t>(i)];
              } else if (cols.owns(j + 1)) {
                right = cols.slice(j + 1)[static_cast<std::size_t>(i)];
              } else {
                NOWLB_CHECK(right_ghost_id == j + 1,
                            "right ghost holds column "
                                << right_ghost_id << ", need " << j + 1);
                right = right_ghost[static_cast<std::size_t>(i)];
              }
              col[static_cast<std::size_t>(i)] =
                  kC1 * (col[static_cast<std::size_t>(i - 1)] + left +
                         col[static_cast<std::size_t>(i + 1)] + right) +
                  kC2 * col[static_cast<std::size_t>(i)];
            }
          }
        }
        for (SliceId j : work) cols.set_marker(j, p + 1);

        // Pipeline: our highest column's new strip values are the right
        // rank's left boundary. The highest owned column always has the
        // minimum marker, so it was processed this strip.
        if (has_right) {
          const SliceId hi = cols.owned_ids().back();
          NOWLB_CHECK(hi == work.back());
          NOWLB_LOG(Debug, "sor") << "rank " << rank << " sends ghost s" << sweep
                                  << " strip " << p << " col " << hi;
          co_await ctx.send(
              right_pid, kTagGhost,
              encode_ghost({sweep, p, hi},
                           cols.slice(hi).data() + rb, re - rb));
        }

        const double units =
            static_cast<double>(work.size()) * (re - rb) / interior;
        shared->units_by_rank[static_cast<std::size_t>(rank)] += units;
        if (agent) {
          agent->add_units(units);
          shared->probe[rank] = "hook strip=" + std::to_string(p);
          co_await agent->hook();
        }
      }
    }

    // Write final values (and ownership) back for verification.
    for (SliceId id : cols.owned_ids()) {
      shared->grid[static_cast<std::size_t>(id)] = cols.slice(id);
      shared->final_owner[static_cast<std::size_t>(id)] = rank;
    }
  });
}

}  // namespace nowlb::apps
