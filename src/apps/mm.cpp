#include "apps/mm.hpp"

#include <algorithm>

#include "data/dist_array.hpp"
#include "data/index_set.hpp"
#include "data/slice.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace nowlb::apps {

using data::BlockMap;
using data::DistArray;
using data::IndexSet;
using data::SliceId;
using sim::Context;
using sim::Task;
using sim::Time;

loop::LoopNestSpec mm_spec(const MmConfig& cfg) {
  loop::LoopNestSpec spec;
  spec.name = "MM";
  spec.distributed_extent = cfg.n;
  spec.inner_extent = cfg.n;  // rows of the output column
  spec.outer_iters = cfg.repeats;
  spec.loop_carried_dependences = false;
  spec.communication_outside_loop = false;
  spec.index_dependent_iteration_size = false;
  spec.data_dependent_iteration_size = false;
  const Time column_cost =
      static_cast<Time>(cfg.n) * static_cast<Time>(cfg.n) * cfg.mac_cost;
  spec.iteration_cost = [column_cost](int, SliceId) { return column_cost; };
  return spec;
}

double mm_seq_time_s(const MmConfig& cfg) {
  const double macs = static_cast<double>(cfg.n) * cfg.n * cfg.n;
  return macs * sim::to_seconds(cfg.mac_cost) * cfg.repeats;
}

void mm_make_inputs(const MmConfig& cfg, MmShared& shared) {
  Rng rng(cfg.seed);
  const std::size_t n = static_cast<std::size_t>(cfg.n);
  shared.a.resize(n * n);
  for (auto& v : shared.a) v = rng.uniform(-1.0, 1.0);
  shared.b.assign(n, {});
  for (auto& col : shared.b) {
    col.resize(n);
    for (auto& v : col) v = rng.uniform(-1.0, 1.0);
  }
  shared.c.assign(n, std::vector<double>(n, 0.0));
  shared.compute_count_per_column.assign(n, 0);
}

std::vector<std::vector<double>> mm_sequential(const MmConfig& cfg,
                                               const MmShared& shared) {
  const int n = cfg.n;
  std::vector<std::vector<double>> c(n, std::vector<double>(n, 0.0));
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int k = 0; k < n; ++k) {
        sum += shared.a[static_cast<std::size_t>(i) * n + k] *
               shared.b[j][static_cast<std::size_t>(k)];
      }
      c[j][static_cast<std::size_t>(i)] = sum;
    }
  }
  return c;
}

lb::ClusterConfig mm_cluster_config(const MmConfig& cfg, int slaves,
                                    const lb::LbConfig& lb) {
  lb::ClusterConfig cc;
  cc.slaves = slaves;
  cc.phases = cfg.repeats;
  cc.termination = lb::Termination::kPhases;
  cc.lb = lb;
  cc.lb.movement = lb::Movement::kUnrestricted;  // no carried dependences
  cc.initial_counts = BlockMap::even(cfg.n, slaves).counts();
  cc.use_master = cfg.use_lb;
  cc.unit_ids_begin = 0;  // work unit j = column j of B/C
  cc.unit_ids_end = cfg.n;
  return cc;
}

namespace {

// Compute one column of C (cost always; arithmetic when real_compute).
Task<> compute_column(Context& ctx, const MmConfig& cfg, MmShared& shared,
                      const std::vector<double>& b_col, SliceId j) {
  const Time cost =
      static_cast<Time>(cfg.n) * static_cast<Time>(cfg.n) * cfg.mac_cost;
  co_await ctx.compute(cost);
  ++shared.compute_count_per_column[static_cast<std::size_t>(j)];
  if (!cfg.real_compute) co_return;
  const int n = cfg.n;
  auto& out = shared.c[static_cast<std::size_t>(j)];
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int k = 0; k < n; ++k) {
      sum += shared.a[static_cast<std::size_t>(i) * n + k] *
             b_col[static_cast<std::size_t>(k)];
    }
    out[static_cast<std::size_t>(i)] = sum;
  }
}

}  // namespace

void mm_build(lb::Cluster& cluster, const MmConfig& cfg,
              std::shared_ptr<MmShared> shared) {
  shared->columns_computed.assign(cluster.slaves(), 0);

  cluster.spawn([cfg, shared](Context& ctx, int rank,
                              const lb::Cluster& c) -> Task<> {
    const int n = cfg.n;
    const auto block = BlockMap::even(n, c.slaves()).range(rank);

    // Local distributed data: this slave's columns of B. The compiler's
    // generated initialization distributes by block; at run time ownership
    // follows work movement through the index structure (§4.5).
    DistArray<double> local_b(static_cast<std::size_t>(n));
    local_b.enable_ownership_checks(rank);
    for (SliceId j = block.begin; j < block.end; ++j) {
      local_b.add(j, shared->b[static_cast<std::size_t>(j)]);
    }

    if (!cfg.use_lb) {
      // Static distribution (the paper's plain parallel baseline): no
      // master, no hooks, no movement.
      for (int phase = 0; phase < cfg.repeats; ++phase) {
        for (SliceId j : local_b.owned_ids()) {
          co_await compute_column(ctx, cfg, *shared, local_b.slice(j), j);
          ++shared->columns_computed[static_cast<std::size_t>(rank)];
        }
      }
      co_return;
    }

    // Per-phase work list: columns still to compute in this invocation.
    IndexSet todo;
    // Hoisted so the fault-recovery adopt op (which captures by reference)
    // knows the current invocation.
    int phase = 0;

    lb::SlaveAgent::WorkOps ops;
    ops.remaining = [&todo] { return todo.size(); };
    ops.pack = [&](int count, int) -> Task<std::pair<sim::Bytes, int>> {
      // Unrestricted movement: hand off the highest pending columns.
      const int actual = std::min(count, todo.size());
      const auto ids = todo.take_highest(actual);
      co_return std::make_pair(local_b.pack_and_remove(ids), actual);
    };
    ops.unpack = [&](const sim::Bytes& payload, int) -> Task<int> {
      const auto ids = local_b.unpack_and_add(payload);
      for (SliceId j : ids) todo.insert(j);
      co_return static_cast<int>(ids.size());
    };
    ops.inventory = [&] {
      const auto ids = local_b.owned_ids();
      return std::vector<std::int32_t>(ids.begin(), ids.end());
    };
    ops.adopt = [&](const std::vector<std::int32_t>& ids) -> Task<> {
      // Reconstruct orphaned columns from the replicated input B (a real
      // generated program would reload or recompute them the same way) and
      // redo whatever the dead rank had not finished this invocation:
      // compute_column's count increment is atomic with its output write,
      // so a column is either fully done (count == phase + 1) or must be
      // recomputed.
      for (const std::int32_t j : ids) {
        local_b.add(j, shared->b[static_cast<std::size_t>(j)]);
        if (shared->compute_count_per_column[static_cast<std::size_t>(j)] <
            phase + 1) {
          todo.insert(j);
        }
      }
      co_return;
    };

    lb::SlaveAgent agent = c.make_agent(ctx, rank, std::move(ops));

    for (phase = 0; phase < cfg.repeats; ++phase) {
      // New invocation: every owned column is pending again.
      for (SliceId j : local_b.owned_ids()) todo.insert(j);
      agent.begin_phase();
      for (;;) {
        while (!todo.empty()) {
          // Hook at the end of each distributed iteration: the distributed
          // loop is outermost (§4.2 rule 1).
          const SliceId j = todo.min();
          co_await compute_column(ctx, cfg, *shared, local_b.slice(j), j);
          todo.erase(j);
          ++shared->columns_computed[static_cast<std::size_t>(rank)];
          agent.add_units(1);
          co_await agent.hook();
        }
        co_await agent.drain();
        if (agent.phase_done()) break;
      }
    }
  });
}

}  // namespace nowlb::apps
