// Matrix multiplication (MM) — the paper's simplest application.
//
// C = A x B with the distributed loop over columns of C (owner-computes:
// the owner of B's column j computes C's column j; A is replicated).
// Table 1 row: no loop-carried dependences, no communication outside the
// loop, repeated execution (the benchmark multiplies `repeats` times).
// Movement is unrestricted (Fig. 1a).
#pragma once

#include <memory>
#include <vector>

#include "lb/cluster.hpp"
#include "loop/spec.hpp"
#include "sim/world.hpp"

namespace nowlb::apps {

struct MmConfig {
  int n = 500;            // square matrix dimension == work units
  int repeats = 1;        // distributed-loop invocations (phases)
  bool use_lb = true;     // false: static block distribution, no master
  bool real_compute = false;  // do the arithmetic (tests) or cost-only
  sim::Time mac_cost = 2'000;  // virtual ns per multiply-accumulate
  std::uint64_t seed = 42;     // input matrix generator
};

/// Shared observation state (host-side; the simulation is cooperative
/// single-threaded so plain shared access is safe).
struct MmShared {
  // Inputs (row-major A, column-major B), filled by make_inputs.
  std::vector<double> a;                  // n x n row-major
  std::vector<std::vector<double>> b;     // n columns
  // Output written by whichever slave owns each column (per last repeat).
  std::vector<std::vector<double>> c;     // n columns
  // Diagnostics.
  std::vector<int> columns_computed;          // per rank, across phases
  std::vector<int> compute_count_per_column;  // across phases; checks ==repeats
};

/// The loop-nest description a compiler front end would extract.
loop::LoopNestSpec mm_spec(const MmConfig& cfg);

/// Analytic sequential execution time (seconds of virtual time).
double mm_seq_time_s(const MmConfig& cfg);

/// Reference sequential multiply (same FP evaluation order as the
/// parallel kernel, so results must match bit-for-bit).
std::vector<std::vector<double>> mm_sequential(const MmConfig& cfg,
                                               const MmShared& shared);

/// Generate the input matrices into `shared`.
void mm_make_inputs(const MmConfig& cfg, MmShared& shared);

/// Spawn the MM slave programs into `cluster` (calls cluster.spawn).
/// `shared` must outlive the world run.
void mm_build(lb::Cluster& cluster, const MmConfig& cfg,
              std::shared_ptr<MmShared> shared);

/// Cluster configuration for MM on `slaves` slaves with LB config `lb`.
lb::ClusterConfig mm_cluster_config(const MmConfig& cfg, int slaves,
                                    const lb::LbConfig& lb);

}  // namespace nowlb::apps
