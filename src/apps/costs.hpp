// Cost-model calibration (DESIGN.md §5).
//
// Virtual-time constants are set so sequential execution times land at the
// paper's scale on a Sun 4/330:
//   MM  500x500        ~250 s  =>  ~2.0 us per multiply-accumulate
//   SOR 2000x2000 x20  ~350 s  =>  ~4.4 us per 5-point update
//   LU  n=500          ~120 s  =>  ~2.9 us per element update
// Kernels charge these costs to the simulated CPU; optionally they also
// perform the real arithmetic so results can be verified bit-for-bit
// against sequential execution (tests use small sizes with real data,
// benches use paper sizes in cost-only mode).
#pragma once

#include "sim/time.hpp"

namespace nowlb::apps {

inline constexpr sim::Time kMmMacCost = 2'000;       // 2.0 us per MAC
inline constexpr sim::Time kSorUpdateCost = 4'375;   // 4.375 us per update
inline constexpr sim::Time kLuUpdateCost = 2'900;    // 2.9 us per update

}  // namespace nowlb::apps
