// Critical-path analyzer over the causal round DAG (DESIGN.md §13).
//
// Walks backward from the last-completing span, at every step hopping to
// the latest-completing causal predecessor — the span whose completion
// actually released the current one. The resulting chain is the run's
// critical path: shrinking anything off it cannot shorten the run.
//
// top_edges() aggregates the path by (kind, rank) so `nowlb-inspect` can
// answer "what is the run waiting on" in one table: a path dominated by
// one rank's windows is imbalance, by report/instruction transit is
// interaction cost, by decision spans is a synchronous master on the
// critical path (the paper's Fig. 2a vs 2b distinction made measurable).
#pragma once

#include <cstddef>
#include <vector>

#include "obs/causal.hpp"

namespace nowlb::obs {

struct CriticalPath {
  /// Path spans in time order (earliest first).
  std::vector<CausalSpan> steps;
  /// Sum of the steps' durations.
  sim::Time length() const;
};

/// Extract the critical path from a causal graph. Empty when the graph
/// has no spans.
CriticalPath critical_path(const CausalGraph& g);

/// One aggregated critical-path contributor.
struct EdgeWeight {
  SpanKind kind = SpanKind::kWindow;
  int rank = -1;        // -1: master-side
  sim::Time total = 0;  // summed span time on the path
  int count = 0;        // path steps aggregated
  /// kWindow only: blocked share of `total`, in seconds.
  double blocked_s = 0;
};

/// Aggregate a path's steps by (kind, rank), heaviest first, top `k`.
std::vector<EdgeWeight> top_edges(const CriticalPath& path, std::size_t k);

}  // namespace nowlb::obs
