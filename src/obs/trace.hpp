// Structured trace bus: the flight recorder's event stream.
//
// Emitters (the sim engine, the reliable transport, the master/slave
// protocol) append typed events stamped with *simulated* time, host and
// lane. Appending is a synchronous in-memory push at zero virtual cost —
// attaching a bus never perturbs the simulation clock, which is the
// property the bit-identical-trace acceptance tests pin down.
//
// Lanes map onto Chrome trace_event identity: host -> pid, lane -> tid.
// Protocol agents use their sim pid as the lane; name_lane() attaches the
// human-readable name ("master", "slave3") the exporter emits as
// thread_name metadata, which is how rank is recovered in Perfetto.
//
// Event names, categories and arg keys must be string literals (or other
// static storage): events store the pointers, not copies, so the hot path
// never allocates for them.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace nowlb::obs {

/// One optional numeric event argument (key must be a string literal).
struct TraceArg {
  const char* key = nullptr;
  double value = 0;
};

struct TraceEvent {
  sim::Time t = 0;    // simulated time of the event (begin, for spans)
  sim::Time dur = 0;  // span duration (complete events only)
  int host = 0;       // Chrome pid
  int lane = 0;       // Chrome tid (protocol agents: their sim pid)
  enum class Phase : std::uint8_t { kInstant, kComplete } phase =
      Phase::kInstant;
  const char* cat = "";
  const char* name = "";
  TraceArg a0, a1, a2;
};

class TraceBus {
 public:
  /// Point event at simulated time `t`.
  void instant(sim::Time t, int host, int lane, const char* cat,
               const char* name, TraceArg a0 = {}, TraceArg a1 = {},
               TraceArg a2 = {}) {
    push({t, 0, host, lane, TraceEvent::Phase::kInstant, cat, name, a0, a1,
          a2});
  }

  /// Span covering [begin, end] of simulated time.
  void complete(sim::Time begin, sim::Time end, int host, int lane,
                const char* cat, const char* name, TraceArg a0 = {},
                TraceArg a1 = {}, TraceArg a2 = {}) {
    push({begin, end - begin, host, lane, TraceEvent::Phase::kComplete, cat,
          name, a0, a1, a2});
  }

  /// Name a (host, lane) pair for the exporter's thread_name metadata.
  /// Last writer wins; called once per process at spawn.
  void name_lane(int host, int lane, std::string name) {
    lanes_[{host, lane}] = std::move(name);
  }
  void name_host(int host, std::string name) {
    hosts_[host] = std::move(name);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::map<std::pair<int, int>, std::string>& lanes() const {
    return lanes_;
  }
  const std::map<int, std::string>& hosts() const { return hosts_; }

  /// Events discarded after the capacity cap was hit (flight-recorder
  /// bound: one runaway run must not exhaust memory).
  std::size_t dropped() const { return dropped_; }
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  /// Keep only every `keep_every`-th event of category `cat` (1 = keep
  /// all, 0 = drop all). Deterministic — a pure function of the event
  /// sequence, so sampled traces are as reproducible as full ones. Scale
  /// guardrail for large runs: the bulky categories (msg.*) can be
  /// decimated while the causal skeleton (cz/lb/proc) stays exact.
  /// `cat` must outlive the bus (string literals in practice).
  void set_sampling(const char* cat, std::uint64_t keep_every) {
    for (auto& s : sampling_) {
      if (std::strcmp(s.cat, cat) == 0) {
        s.keep_every = keep_every;
        return;
      }
    }
    sampling_.push_back({cat, keep_every, 0});
  }

  /// Events dropped by category sampling (distinct from the capacity cap).
  std::size_t sampled_out() const { return sampled_out_; }

  void clear() {
    events_.clear();
    lanes_.clear();
    hosts_.clear();
    dropped_ = 0;
    sampled_out_ = 0;
    for (auto& s : sampling_) s.seen = 0;
  }

 private:
  struct Sampling {
    const char* cat;
    std::uint64_t keep_every;
    std::uint64_t seen;
  };

  void push(TraceEvent e) {
    for (auto& s : sampling_) {
      if (std::strcmp(s.cat, e.cat) != 0) continue;
      const std::uint64_t n = s.seen++;
      if (s.keep_every == 0 || n % s.keep_every != 0) {
        ++sampled_out_;
        return;
      }
      break;
    }
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  std::vector<TraceEvent> events_;
  std::map<std::pair<int, int>, std::string> lanes_;
  std::map<int, std::string> hosts_;
  std::vector<Sampling> sampling_;
  std::size_t capacity_ = std::size_t{1} << 22;
  std::size_t dropped_ = 0;
  std::size_t sampled_out_ = 0;
};

}  // namespace nowlb::obs
