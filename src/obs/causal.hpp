// Causal round graph: reconstructed per-round DAG of one run (DESIGN.md
// §13).
//
// build_causal_graph() joins the trace bus's cz.* annotations (measurement
// windows, report/instruction timestamps, migration spans) with the
// decision ledger into, per wire round, a breakdown of where the time went
// — compute, blocked waits, report/instruction transport, master decision
// time, work migration — and a parallel-efficiency series (compute share
// of the round's rank-seconds). The span list is the substrate the
// critical-path analyzer (obs/critical_path.hpp) walks.
//
// The builder validates well-formedness as it goes: monotone window rounds
// per rank, non-negative span durations, every applied instruction backed
// by a report from the same rank (unless the rank was evicted — a killed
// rank's round subgraph simply terminates), and no events from a rank
// after its eviction. Violations land in CausalGraph::problems; a graph
// from a healthy run has none.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nowlb::obs {

class TraceBus;
class DecisionLedger;

/// What a causal span spends its time on.
enum class SpanKind : std::uint8_t {
  kWindow,         // slave measurement window (compute + blocked share)
  kReportTransit,  // status report: slave send -> master arrival
  kDecision,       // master: collection end -> instructions sent
  kInstrTransit,   // instructions: master send -> slave application
  kMigration,      // work movement: donor pack/send -> receiver unpack
};

const char* span_kind_name(SpanKind k);

/// One node of the causal DAG, placed in simulated time.
struct CausalSpan {
  SpanKind kind = SpanKind::kWindow;
  int rank = -1;  // owning slave rank; -1 for master-side spans
  int peer = -1;  // migration target rank (kMigration only)
  /// Wire round (kDecision: decision-ledger round — the numbering the
  /// master's lb.round/lb.decision events use).
  int round = 0;
  sim::Time begin = 0;
  sim::Time end = 0;
  /// Blocked share of a kWindow span, in seconds (waits on application
  /// communication and on the balancer, per the slave's accumulator).
  double blocked_s = 0;

  sim::Time dur() const { return end - begin; }
};

/// Where one wire round's time went, summed over the ranks that took part.
struct RoundBreakdown {
  int round = 0;           // wire round (slave-side numbering)
  int decision_round = 0;  // decision-ledger round carried, 0 = priming
  int gate = -1;           // obs::Gate of that decision, -1 = none seen
  int ranks = 0;           // ranks whose window closed this round
  sim::Time t_begin = 0;   // earliest window begin
  sim::Time t_end = 0;     // latest event of the round
  double compute_s = 0;    // window time minus blocked share
  double blocked_s = 0;    // blocked share of the windows
  double transport_s = 0;  // report + instruction transit
  double decision_s = 0;   // master decision span
  double migration_s = 0;  // work-movement spans ordered by this round
  long units_moved = 0;    // units the carried decision ordered moved
  /// compute / (ranks x round wall): the round's parallel efficiency.
  double efficiency = 0;
};

struct CausalGraph {
  int nranks = 0;                     // distinct slave ranks seen
  std::vector<RoundBreakdown> rounds;  // ascending by wire round
  std::vector<CausalSpan> spans;       // all spans, time-ordered by begin
  std::vector<int> evicted;            // ranks evicted (or killed) mid-run
  std::vector<std::string> problems;   // well-formedness violations

  bool well_formed() const { return problems.empty(); }

  /// Total compute seconds across every window span.
  double total_compute_s() const;
  /// Overall wall span covered by the graph, in seconds.
  double wall_s() const;
  /// Run-level parallel efficiency: compute / (nranks x wall).
  double efficiency() const;
};

/// Reconstruct the causal round DAG of one run from its flight-recorder
/// trace and decision ledger. Works on any trace with cz.* annotations
/// (emitted whenever a hub is attached); wire-level causal propagation
/// (LbConfig::causal) additionally pins migration rounds under faults.
CausalGraph build_causal_graph(const TraceBus& trace,
                               const DecisionLedger& ledger);

}  // namespace nowlb::obs
