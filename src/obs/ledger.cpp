#include "obs/ledger.hpp"

#include <cstdio>
#include <sstream>
#include <type_traits>

namespace nowlb::obs {

const char* gate_name(Gate g) {
  switch (g) {
    case Gate::kMove:
      return "move";
    case Gate::kBelowThreshold:
      return "below-threshold";
    case Gate::kNotProfitable:
      return "not-profitable";
    case Gate::kHold:
      return "hold";
    case Gate::kRecoveryFreeze:
      return "recovery-freeze";
    case Gate::kPhaseEnd:
      return "phase-end";
    case Gate::kFinalReports:
      return "final-reports";
  }
  return "?";
}

namespace {

std::string fmt(double v, const char* spec = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

template <class T>
std::string join(const std::vector<T>& v) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ' ';
    if constexpr (std::is_floating_point_v<T>) {
      os << fmt(v[i]);
    } else {
      os << v[i];
    }
  }
  os << ']';
  return os.str();
}

}  // namespace

std::string DecisionLedger::explain_line(const DecisionRecord& r) {
  std::ostringstream os;
  os << "round " << r.round << " t=" << fmt(sim::to_seconds(r.t), "%.6f")
     << "s gate=" << gate_name(r.gate);
  if (!r.reason.empty()) os << " (" << r.reason << ")";
  os << "\n  rates raw=" << join(r.raw_rates) << " filtered=" << join(r.rates)
     << " work=" << join(r.remaining) << " period=" << fmt(r.period_s) << "s";
  if (r.gate == Gate::kMove) {
    os << "\n  moves:";
    for (const Move& m : r.moves) {
      os << ' ' << m.from << "->" << m.to << " x" << m.count;
    }
    os << " target=" << join(r.target)
       << "\n  projected " << fmt(r.projected_current_s) << "s -> "
       << fmt(r.projected_new_s) << "s (improvement "
       << fmt(r.improvement * 100.0, "%.2f") << "%, move cost "
       << fmt(r.est_move_cost_s) << "s)";
  } else if (r.gate == Gate::kBelowThreshold || r.gate == Gate::kNotProfitable) {
    os << "\n  projected " << fmt(r.projected_current_s) << "s -> "
       << fmt(r.projected_new_s) << "s (improvement "
       << fmt(r.improvement * 100.0, "%.2f") << "%, move cost "
       << fmt(r.est_move_cost_s) << "s) -- cancelled";
  }
  return os.str();
}

std::string DecisionLedger::explain() const {
  std::ostringstream os;
  for (const DecisionRecord& r : records_) {
    os << explain_line(r) << '\n';
  }
  return os.str();
}

}  // namespace nowlb::obs
