#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nowlb::obs {

namespace {

/// Prometheus HELP lines escape backslash and newline.
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Prometheus label values escape backslash, double-quote and newline.
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-th observation (1-based, ceil — the Prometheus
  // convention), then walk the buckets to the one holding it.
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += counts_[i];
    if (static_cast<double>(cum) < rank) continue;
    if (i >= bounds_.size()) {
      // +Inf bucket: no upper bound to interpolate toward; clamp to the
      // highest finite bound (or fall back to mean for a bound-less
      // histogram).
      return bounds_.empty() ? sum_ / static_cast<double>(count_)
                             : bounds_.back();
    }
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    const auto in_bucket = static_cast<double>(counts_[i]);
    if (in_bucket <= 0) return hi;
    const double frac = (rank - static_cast<double>(prev)) / in_bucket;
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

MetricsRegistry::Entry& MetricsRegistry::get(const std::string& name,
                                             Kind kind,
                                             const std::string& help) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("metric '" + name +
                             "' re-registered as a different kind");
    }
    return it->second;
  }
  Entry e;
  e.kind = kind;
  e.help = help;
  return metrics_.emplace(name, std::move(e)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  Entry& e = get(name, Kind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  Entry& e = get(name, Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  Entry& e = get(name, Kind::kHistogram, help);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kCounter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kGauge
             ? it->second.gauge.get()
             : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = metrics_.find(name);
  return it != metrics_.end() && it->second.kind == Kind::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream os;
  for (const auto& [name, e] : metrics_) {
    if (!e.help.empty()) {
      os << "# HELP " << name << ' ' << escape_help(e.help) << '\n';
    }
    switch (e.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << ' ' << fmt_double(e.gauge->value()) << '\n';
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        const Histogram& h = *e.histogram;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cum += h.bucket_counts()[i];
          os << name << "_bucket{le=\""
             << escape_label(fmt_double(h.bounds()[i])) << "\"} " << cum
             << '\n';
        }
        cum += h.bucket_counts().back();
        os << name << "_bucket{le=\"+Inf\"} " << cum << '\n';
        os << name << "_sum " << fmt_double(h.sum()) << '\n';
        os << name << "_count " << h.count() << '\n';
        // Interpolated quantile estimates (histogram_quantile computed at
        // dump time, saving the PromQL round trip in offline analysis).
        if (h.count() > 0) {
          os << name << "_p50 " << fmt_double(h.quantile(0.50)) << '\n';
          os << name << "_p90 " << fmt_double(h.quantile(0.90)) << '\n';
          os << name << "_p99 " << fmt_double(h.quantile(0.99)) << '\n';
        }
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::json_snapshot() const {
  std::ostringstream c, g, h;
  bool fc = true, fg = true, fh = true;
  for (const auto& [name, e] : metrics_) {
    switch (e.kind) {
      case Kind::kCounter:
        c << (fc ? "" : ",") << "\"" << name << "\":" << e.counter->value();
        fc = false;
        break;
      case Kind::kGauge:
        g << (fg ? "" : ",") << "\"" << name
          << "\":" << fmt_double(e.gauge->value());
        fg = false;
        break;
      case Kind::kHistogram: {
        const Histogram& hist = *e.histogram;
        h << (fh ? "" : ",") << "\"" << name << "\":{\"buckets\":[";
        for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
          h << (i ? "," : "") << "[" << fmt_double(hist.bounds()[i]) << ","
            << hist.bucket_counts()[i] << "]";
        }
        h << "],\"inf\":" << hist.bucket_counts().back()
          << ",\"sum\":" << fmt_double(hist.sum())
          << ",\"count\":" << hist.count()
          << ",\"p50\":" << fmt_double(hist.quantile(0.50))
          << ",\"p90\":" << fmt_double(hist.quantile(0.90))
          << ",\"p99\":" << fmt_double(hist.quantile(0.99)) << "}";
        fh = false;
        break;
      }
    }
  }
  return "{\"counters\":{" + c.str() + "},\"gauges\":{" + g.str() +
         "},\"histograms\":{" + h.str() + "}}";
}

}  // namespace nowlb::obs
