// obs::attach — wire a flight-recorder hub to a simulation world.
//
// The sim layer never includes obs headers; it records through the
// abstract sim::TraceSink (sim/sink.hpp). This is the bridge: attach()
// installs a sink that forwards sim events into the hub's TraceBus and
// MetricsRegistry, and stores the hub as the world's opaque handle so the
// protocol layers (master/slave/transport) can keep reading it via
// World::obs().
#pragma once

namespace nowlb::sim {
class World;
}  // namespace nowlb::sim

namespace nowlb::obs {

struct Observability;

/// Attach `hub` to `w` (null detaches). Replaces any previous attachment.
/// The hub is not owned and must outlive the run. Pure observation: the
/// event schedule and trace_hash() are bit-identical either way.
void attach(sim::World& w, Observability* hub);

}  // namespace nowlb::obs
