#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <vector>

namespace nowlb::obs {

namespace {

void write_escaped(std::ostream& out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void write_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "0";  // JSON has no Inf/NaN
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

/// Microsecond timestamp: integer when the nanosecond count divides evenly.
void write_ts(std::ostream& out, sim::Time t) {
  if (t % sim::kMicrosecond == 0) {
    out << t / sim::kMicrosecond;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(t) / sim::kMicrosecond);
    out << buf;
  }
}

void write_args(std::ostream& out, const TraceEvent& e) {
  out << "\"args\":{";
  bool first = true;
  for (const TraceArg* a : {&e.a0, &e.a1, &e.a2}) {
    if (!a->key) continue;
    if (!first) out << ',';
    first = false;
    out << '"';
    write_escaped(out, a->key);
    out << "\":";
    write_number(out, a->value);
  }
  out << '}';
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceBus& bus) {
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  // Metadata first: process (host) and thread (lane) names.
  for (const auto& [host, name] : bus.hosts()) {
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << host
        << ",\"tid\":0,\"args\":{\"name\":\"";
    write_escaped(out, name.c_str());
    out << "\"}}";
  }
  for (const auto& [key, name] : bus.lanes()) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
        << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"";
    write_escaped(out, name.c_str());
    out << "\"}}";
  }

  // Stable sort by begin time: a single run's bus is already monotonic,
  // but a bus shared across runs (fig5 --trace sweeps) interleaves.
  const auto& events = bus.events();
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return events[a].t < events[b].t;
  });

  for (std::size_t idx : order) {
    const TraceEvent& e = events[idx];
    sep();
    out << "{\"name\":\"";
    write_escaped(out, e.name);
    out << "\",\"cat\":\"";
    write_escaped(out, e.cat);
    out << "\",\"ph\":\""
        << (e.phase == TraceEvent::Phase::kComplete ? 'X' : 'i')
        << "\",\"ts\":";
    write_ts(out, e.t);
    if (e.phase == TraceEvent::Phase::kComplete) {
      out << ",\"dur\":";
      write_ts(out, e.dur);
    } else {
      out << ",\"s\":\"t\"";  // instant scope: thread
    }
    out << ",\"pid\":" << e.host << ",\"tid\":" << e.lane << ',';
    write_args(out, e);
    out << '}';
  }

  out << "]}\n";
}

bool write_chrome_trace_file(const std::string& path, const TraceBus& bus) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f, bus);
  return static_cast<bool>(f);
}

}  // namespace nowlb::obs
