#include "obs/runfile.hpp"

#include <cstdio>
#include <cstring>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace nowlb::obs {

namespace {

bool kept_category(const char* cat) {
  return std::strcmp(cat, "cz") == 0 || std::strcmp(cat, "lb") == 0 ||
         std::strcmp(cat, "proc") == 0;
}

void put_double(std::ostream& os, double v) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
}

long decision_units(const DecisionRecord& r) {
  long units = 0;
  for (const Move& m : r.moves) units += m.count;
  return units;
}

/// Interns strings for the lifetime of a LoadedRun (TraceBus stores
/// pointers, not copies).
class Interner {
 public:
  explicit Interner(std::deque<std::string>& pool) : pool_(pool) {}

  const char* operator()(const std::string& s) {
    auto it = known_.find(s);
    if (it != known_.end()) return it->second;
    pool_.push_back(s);
    const char* p = pool_.back().c_str();
    known_.emplace(s, p);
    return p;
  }

 private:
  std::deque<std::string>& pool_;
  std::map<std::string, const char*> known_;
};

bool fail(std::string& error, int line_no, const std::string& what) {
  std::ostringstream os;
  os << "run file line " << line_no << ": " << what;
  error = os.str();
  return false;
}

}  // namespace

void write_runfile(std::ostream& os, const TraceBus& trace,
                   const DecisionLedger& ledger,
                   const std::map<std::string, std::string>& meta) {
  os << "nowlb-run 1\n";
  for (const auto& [key, value] : meta) {
    os << "meta " << key << "=" << value << "\n";
  }
  for (const auto& [host, name] : trace.hosts()) {
    os << "host " << host << " " << name << "\n";
  }
  for (const auto& [key, name] : trace.lanes()) {
    os << "lane " << key.first << " " << key.second << " " << name << "\n";
  }
  for (const DecisionRecord& r : ledger.records()) {
    os << "ledger " << r.round << " " << r.t << " "
       << static_cast<int>(r.gate) << " " << decision_units(r) << " ";
    put_double(os, r.improvement);
    os << " ";
    put_double(os, r.period_s);
    os << " " << r.reason << "\n";
  }
  std::size_t written = 0;
  for (const TraceEvent& e : trace.events()) {
    if (!kept_category(e.cat)) continue;
    os << "e " << (e.phase == TraceEvent::Phase::kComplete ? 'c' : 'i')
       << " " << e.t << " " << e.dur << " " << e.host << " " << e.lane
       << " " << e.cat << " " << e.name;
    for (const TraceArg* a : {&e.a0, &e.a1, &e.a2}) {
      if (a->key == nullptr) continue;
      os << " " << a->key << "=";
      put_double(os, a->value);
    }
    os << "\n";
    ++written;
  }
  os << "end events=" << written << " ledger=" << ledger.records().size()
     << "\n";
}

bool load_runfile(std::istream& is, LoadedRun& out, std::string& error) {
  Interner intern(out.pool);
  std::string line;
  int line_no = 0;

  if (!std::getline(is, line)) return fail(error, 1, "empty input");
  ++line_no;
  if (line != "nowlb-run 1") {
    return fail(error, line_no, "bad header (want \"nowlb-run 1\")");
  }

  std::size_t events = 0;
  std::size_t ledger_lines = 0;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (saw_end) return fail(error, line_no, "content after end trailer");
    std::istringstream ls(line);
    std::string directive;
    ls >> directive;
    if (directive == "meta") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      const std::size_t eq = rest.find('=');
      if (eq == std::string::npos || eq == 0) {
        return fail(error, line_no, "meta needs key=value");
      }
      out.meta[rest.substr(0, eq)] = rest.substr(eq + 1);
    } else if (directive == "host") {
      int host = 0;
      std::string name;
      if (!(ls >> host >> name)) {
        return fail(error, line_no, "malformed host line");
      }
      out.trace.name_host(host, name);
    } else if (directive == "lane") {
      int host = 0;
      int lane = 0;
      std::string name;
      if (!(ls >> host >> lane >> name)) {
        return fail(error, line_no, "malformed lane line");
      }
      out.trace.name_lane(host, lane, name);
    } else if (directive == "ledger") {
      DecisionRecord r;
      long long t = 0;
      int gate = 0;
      long units = 0;
      if (!(ls >> r.round >> t >> gate >> units >> r.improvement >>
            r.period_s)) {
        return fail(error, line_no, "malformed ledger line");
      }
      if (gate < 0 || gate > static_cast<int>(Gate::kFinalReports)) {
        return fail(error, line_no, "ledger gate out of range");
      }
      r.t = t;
      r.gate = static_cast<Gate>(gate);
      std::getline(ls, r.reason);
      if (!r.reason.empty() && r.reason.front() == ' ') r.reason.erase(0, 1);
      // Moves are serialized as their unit sum — enough for the analyzer's
      // per-round attribution, without the per-transfer detail.
      if (units > 0) r.moves.push_back({-1, -1, units});
      out.ledger.append(std::move(r));
      ++ledger_lines;
    } else if (directive == "e") {
      char phase = 0;
      long long t = 0;
      long long dur = 0;
      int host = 0;
      int lane = 0;
      std::string cat;
      std::string name;
      if (!(ls >> phase >> t >> dur >> host >> lane >> cat >> name) ||
          (phase != 'i' && phase != 'c')) {
        return fail(error, line_no, "malformed event line");
      }
      TraceArg args[3];
      int nargs = 0;
      std::string kv;
      while (ls >> kv) {
        if (nargs >= 3) return fail(error, line_no, "more than 3 args");
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
          return fail(error, line_no, "event arg needs key=value");
        }
        double value = 0;
        std::istringstream vs(kv.substr(eq + 1));
        if (!(vs >> value) || !vs.eof()) {
          return fail(error, line_no, "bad numeric arg value");
        }
        args[nargs++] = {intern(kv.substr(0, eq)), value};
      }
      const char* c = intern(cat);
      const char* n = intern(name);
      if (phase == 'c') {
        out.trace.complete(t, t + dur, host, lane, c, n, args[0], args[1],
                           args[2]);
      } else {
        out.trace.instant(t, host, lane, c, n, args[0], args[1], args[2]);
      }
      ++events;
    } else if (directive == "end") {
      std::string ev;
      std::string led;
      if (!(ls >> ev >> led)) {
        return fail(error, line_no, "malformed end trailer");
      }
      std::size_t want_ev = 0;
      std::size_t want_led = 0;
      if (std::sscanf(ev.c_str(), "events=%zu", &want_ev) != 1 ||
          std::sscanf(led.c_str(), "ledger=%zu", &want_led) != 1) {
        return fail(error, line_no, "malformed end trailer");
      }
      if (want_ev != events || want_led != ledger_lines) {
        std::ostringstream os;
        os << "count mismatch (file truncated?): have " << events
           << " events / " << ledger_lines << " ledger lines, trailer says "
           << want_ev << " / " << want_led;
        return fail(error, line_no, os.str());
      }
      saw_end = true;
    } else {
      return fail(error, line_no, "unknown directive \"" + directive + "\"");
    }
  }
  if (!saw_end) return fail(error, line_no, "missing end trailer");
  return true;
}

}  // namespace nowlb::obs
