#include "obs/attach.hpp"

#include <memory>
#include <string>

#include "obs/obs.hpp"
#include "sim/sink.hpp"
#include "sim/world.hpp"

namespace nowlb::obs {

namespace {

/// Forwards sim-side observation into the hub. Counters are resolved once
/// at attach time (the registry keeps them stable for its lifetime), same
/// as the network's old cached-pointer scheme.
class WorldSink final : public sim::TraceSink {
 public:
  explicit WorldSink(Observability& hub)
      : hub_(hub),
        m_sent_(&hub.metrics.counter("sim_messages_sent",
                                     "Messages posted to the network")),
        m_bytes_(&hub.metrics.counter("sim_payload_bytes",
                                      "Payload bytes posted to the network")),
        m_dropped_(&hub.metrics.counter(
            "sim_messages_dropped",
            "Messages lost in flight (fault injection)")),
        m_duplicated_(&hub.metrics.counter(
            "sim_messages_duplicated",
            "Extra copies delivered by duplication faults")) {}

  void instant(sim::Time t, int host, int lane, const char* cat,
               const char* name, Arg a0, Arg a1, Arg a2) override {
    hub_.trace.instant(t, host, lane, cat, name, {a0.key, a0.value},
                       {a1.key, a1.value}, {a2.key, a2.value});
  }

  void complete(sim::Time begin, sim::Time end, int host, int lane,
                const char* cat, const char* name, Arg a0, Arg a1,
                Arg a2) override {
    hub_.trace.complete(begin, end, host, lane, cat, name, {a0.key, a0.value},
                        {a1.key, a1.value}, {a2.key, a2.value});
  }

  void name_host(int host, const std::string& name) override {
    hub_.trace.name_host(host, name);
  }

  void name_lane(int host, int lane, const std::string& name) override {
    hub_.trace.name_lane(host, lane, name);
  }

  void net_count(NetCounter c, std::uint64_t delta) override {
    switch (c) {
      case NetCounter::kMessagesSent:
        m_sent_->inc(delta);
        break;
      case NetCounter::kPayloadBytes:
        m_bytes_->inc(delta);
        break;
      case NetCounter::kMessagesDropped:
        m_dropped_->inc(delta);
        break;
      case NetCounter::kMessagesDuplicated:
        m_duplicated_->inc(delta);
        break;
    }
  }

  void run_stats(double virtual_time_s,
                 std::uint64_t dispatched_events) override {
    hub_.metrics
        .gauge("sim_virtual_time_seconds", "Virtual clock at end of run")
        .set(virtual_time_s);
    hub_.metrics.gauge("sim_events_dispatched", "Engine events dispatched")
        .set(static_cast<double>(dispatched_events));
  }

 private:
  Observability& hub_;
  Counter* m_sent_;
  Counter* m_bytes_;
  Counter* m_dropped_;
  Counter* m_duplicated_;
};

}  // namespace

void attach(sim::World& w, Observability* hub) {
  w.set_obs_handle(hub);
  w.set_sink(hub ? std::make_unique<WorldSink>(*hub) : nullptr);
}

}  // namespace nowlb::obs
