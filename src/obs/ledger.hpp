// Decision ledger: one record per balancing round.
//
// The master publishes, for every report collection, the inputs it saw
// (raw and filtered rates, remaining work), the gate outcome (moved,
// cancelled below the improvement threshold, cancelled as unprofitable,
// frozen during fault recovery, ...) and the ordered moves. The ledger is
// the substrate for `nowlb-fuzz --explain` and `nowlb-trace`: a
// human-readable "why did / didn't it move" timeline for any seed, and
// the input to check::LedgerChecker's arithmetic cross-check.
//
// obs cannot depend on lb (it sits below it in the library stack), so the
// ledger carries its own Move type rather than lb::Transfer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nowlb::obs {

/// Why a round did or did not order moves.
enum class Gate : std::uint8_t {
  kMove,            // decision passed all gates; moves were ordered
  kBelowThreshold,  // projected improvement under the configured threshold
  kNotProfitable,   // improvement would not amortize the movement cost
  kHold,            // planner found no beneficial target (no-op decision)
  kRecoveryFreeze,  // movement frozen while fault recovery is pending
  kPhaseEnd,        // all work consumed; phase wind-down round
  kFinalReports,    // pipelined drain: final report collection, no decision
};

const char* gate_name(Gate g);

/// One ordered work movement (counts are work units, e.g. matrix rows).
struct Move {
  int from = 0;
  int to = 0;
  long count = 0;
};

/// Everything the master knew and decided in one balancing round.
struct DecisionRecord {
  std::uint64_t round = 0;  // 1-based, matches MasterStats::rounds
  sim::Time t = 0;          // simulated time the decision was made
  Gate gate = Gate::kHold;
  std::string reason;  // planner/master reason string ("rebalance", ...)

  // Inputs: per-rank, indexed by slave rank.
  std::vector<double> raw_rates;  // latest reported rates (units/s)
  std::vector<double> rates;      // trend-filtered rates the planner used
  std::vector<long> remaining;    // remaining work per rank before moves

  // Outputs.
  std::vector<long> target;  // planned assignment per rank after moves
  std::vector<Move> moves;   // ordered transfers (empty unless kMove)
  double improvement = 0;    // projected fractional improvement
  double projected_current_s = 0;
  double projected_new_s = 0;
  double est_move_cost_s = 0;
  double period_s = 0;  // balancing period in force this round
};

class DecisionLedger {
 public:
  void append(DecisionRecord r) { records_.push_back(std::move(r)); }

  const std::vector<DecisionRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Human-readable timeline of every round ("why did/didn't it move").
  std::string explain() const;

  /// One line for a single record (shared by explain() and the CLIs).
  static std::string explain_line(const DecisionRecord& r);

 private:
  std::vector<DecisionRecord> records_;
};

}  // namespace nowlb::obs
