// Run files: a versioned, line-based text capture of one run's flight
// recorder — the causal trace categories (cz/lb/proc) plus the decision
// ledger — so `nowlb-inspect` can analyze and diff runs after the fact.
//
// Format (one directive per line, space-separated fields):
//
//   nowlb-run 1
//   meta <key>=<value>
//   host <id> <name>
//   lane <host> <lane> <name>
//   ledger <round> <t> <gate> <units> <improvement> <period_s> <reason...>
//   e <i|c> <t> <dur> <host> <lane> <cat> <name> [<key>=<value>]...
//   end events=<N> ledger=<M>
//
// Times are simulated nanoseconds (integers); numeric values round-trip
// at full double precision. The trailer's counts make truncation
// detectable. Loading is strict: an unknown directive, a malformed field
// or a count mismatch fails the load with a diagnostic — `nowlb-inspect`
// turns that into a nonzero exit.
#pragma once

#include <deque>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/ledger.hpp"
#include "obs/trace.hpp"

namespace nowlb::obs {

/// A run loaded back from a run file. The trace stores `const char*`
/// category/name/key pointers; `pool` owns the interned strings and is
/// declared first so it outlives the bus.
struct LoadedRun {
  std::deque<std::string> pool;
  std::map<std::string, std::string> meta;
  TraceBus trace;
  DecisionLedger ledger;
};

/// Serialize the inspection-relevant slice of a run: trace events in the
/// cz/lb/proc categories (message-level noise is omitted), host/lane
/// names, and the full decision ledger.
void write_runfile(std::ostream& os, const TraceBus& trace,
                   const DecisionLedger& ledger,
                   const std::map<std::string, std::string>& meta);

/// Parse a run file. Returns false and sets `error` (with a line number)
/// on any malformation; `out` is partially filled in that case and must
/// not be used.
bool load_runfile(std::istream& is, LoadedRun& out, std::string& error);

}  // namespace nowlb::obs
