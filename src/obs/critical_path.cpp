#include "obs/critical_path.hpp"

#include <algorithm>
#include <map>

namespace nowlb::obs {

namespace {

using sim::Time;

/// Latest-ending span satisfying `pred` with end <= cutoff; null if none.
template <typename Pred>
const CausalSpan* latest_before(const std::vector<CausalSpan>& spans,
                                Time cutoff, Pred pred) {
  const CausalSpan* best = nullptr;
  for (const CausalSpan& s : spans) {
    if (s.end > cutoff || !pred(s)) continue;
    if (best == nullptr || s.end > best->end) best = &s;
  }
  return best;
}

/// The causal predecessor of `cur`: the span whose completion released it.
/// Uses the protocol's structure; falls back to the latest same-rank span
/// when the structural parent is missing (sampled out, rank died).
const CausalSpan* predecessor(const CausalGraph& g, const CausalSpan& cur) {
  const auto& spans = g.spans;
  switch (cur.kind) {
    case SpanKind::kInstrTransit: {
      // Instructions are sent from inside the master's decision span
      // (lb.round covers collection end -> all sends done), so the parent
      // decision *contains* the send rather than preceding it.
      const CausalSpan* best = nullptr;
      for (const CausalSpan& s : spans) {
        if (s.kind != SpanKind::kDecision || s.begin > cur.begin) continue;
        if (best == nullptr || s.begin > best->begin) best = &s;
      }
      if (best != nullptr) return best;
      return latest_before(spans, cur.begin, [&](const CausalSpan& s) {
        return s.kind == SpanKind::kReportTransit;
      });
    }
    case SpanKind::kDecision:
      // A decision starts when the last awaited report lands.
      return latest_before(spans, cur.begin, [](const CausalSpan& s) {
        return s.kind == SpanKind::kReportTransit;
      });
    case SpanKind::kReportTransit:
      // The report goes out the moment its measurement window closes.
      for (const CausalSpan& s : spans) {
        if (s.kind == SpanKind::kWindow && s.rank == cur.rank &&
            s.round == cur.round) {
          return &s;
        }
      }
      return nullptr;
    case SpanKind::kMigration:
      // Ordered by the instructions of the same wire round on the donor.
      for (const CausalSpan& s : spans) {
        if (s.kind == SpanKind::kInstrTransit && s.rank == cur.rank &&
            s.round == cur.round) {
          return &s;
        }
      }
      return latest_before(spans, cur.begin, [&](const CausalSpan& s) {
        return s.rank == cur.rank;
      });
    case SpanKind::kWindow:
      // A window opens when the previous report left — or, on a rank that
      // was refilled while drained, when work arrived (instructions or a
      // migration targeting it).
      return latest_before(spans, cur.begin, [&](const CausalSpan& s) {
        return (s.rank == cur.rank &&
                (s.kind == SpanKind::kWindow ||
                 s.kind == SpanKind::kInstrTransit)) ||
               (s.kind == SpanKind::kMigration && s.peer == cur.rank);
      });
  }
  return nullptr;
}

}  // namespace

Time CriticalPath::length() const {
  Time total = 0;
  for (const CausalSpan& s : steps) total += s.dur();
  return total;
}

CriticalPath critical_path(const CausalGraph& g) {
  CriticalPath path;
  if (g.spans.empty()) return path;
  const CausalSpan* cur = &g.spans.front();
  for (const CausalSpan& s : g.spans) {
    if (s.end > cur->end) cur = &s;
  }
  std::vector<const CausalSpan*> visited;
  while (cur != nullptr) {
    if (std::find(visited.begin(), visited.end(), cur) != visited.end()) {
      break;  // defensive: a malformed graph must not loop forever
    }
    visited.push_back(cur);
    path.steps.push_back(*cur);
    cur = predecessor(g, *cur);
  }
  std::reverse(path.steps.begin(), path.steps.end());
  return path;
}

std::vector<EdgeWeight> top_edges(const CriticalPath& path, std::size_t k) {
  std::map<std::pair<int, int>, EdgeWeight> agg;  // (kind, rank) ->
  for (const CausalSpan& s : path.steps) {
    EdgeWeight& w = agg[{static_cast<int>(s.kind), s.rank}];
    w.kind = s.kind;
    w.rank = s.rank;
    w.total += s.dur();
    w.count += 1;
    if (s.kind == SpanKind::kWindow) w.blocked_s += s.blocked_s;
  }
  std::vector<EdgeWeight> out;
  out.reserve(agg.size());
  for (const auto& [key, w] : agg) out.push_back(w);
  std::sort(out.begin(), out.end(), [](const EdgeWeight& a,
                                       const EdgeWeight& b) {
    if (a.total != b.total) return a.total > b.total;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.rank < b.rank;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace nowlb::obs
