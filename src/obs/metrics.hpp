// Metrics registry: counters, gauges and histograms over a run.
//
// The simulation engine is single-threaded, so the hot path is a plain
// integer increment — no locks, no atomics ("lock-cheap"). Registration
// (name lookup) allocates; emitters resolve their metrics once and cache
// the returned reference, which stays stable for the registry's lifetime.
//
// Two export formats: Prometheus text exposition (with HELP/label
// escaping) and a JSON snapshot. Both iterate metrics in name order, so
// two identical seeded runs produce byte-identical dumps.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nowlb::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double v) { v_ += v; }
  double value() const { return v_; }

 private:
  double v_ = 0;
};

/// Fixed-bound histogram (Prometheus semantics: cumulative buckets plus an
/// implicit +Inf bucket, with sum and count).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void observe(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];  // counts_[bounds_.size()] is the +Inf bucket
    sum_ += v;
    ++count_;
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; the last entry is +Inf.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  double sum() const { return sum_; }
  std::uint64_t count() const { return count_; }

  /// Interpolated quantile estimate, Prometheus histogram_quantile
  /// semantics: find the bucket the q-th observation falls in and
  /// interpolate linearly inside it (from the bucket's lower bound). An
  /// estimate landing in the +Inf bucket clamps to the highest finite
  /// bound. Returns 0 on an empty histogram; `q` is clamped to [0, 1].
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  double sum_ = 0;
  std::uint64_t count_ = 0;
};

class MetricsRegistry {
 public:
  /// Get-or-create. Re-registering an existing name returns the same
  /// metric (help text from the first registration wins); registering the
  /// same name as a different kind is a programming error and throws.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Lookup without creation; nullptr when absent (or a different kind).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Prometheus text exposition format (version 0.0.4).
  std::string prometheus_text() const;

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string json_snapshot() const;

  bool empty() const { return metrics_.empty(); }
  void clear() { metrics_.clear(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& get(const std::string& name, Kind kind, const std::string& help);

  std::map<std::string, Entry> metrics_;  // name-ordered: deterministic dumps
};

}  // namespace nowlb::obs
