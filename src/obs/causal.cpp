#include "obs/causal.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>

#include "obs/ledger.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace nowlb::obs {

namespace {

using sim::Time;
using sim::to_seconds;

/// Event arg lookup by key. Loaded runfiles intern their own strings, so
/// comparison must be by content, not pointer.
double arg(const TraceEvent& e, const char* key, double def = 0) {
  for (const TraceArg* a : {&e.a0, &e.a1, &e.a2}) {
    if (a->key != nullptr && std::strcmp(a->key, key) == 0) return a->value;
  }
  return def;
}

bool is(const TraceEvent& e, const char* cat, const char* name) {
  return std::strcmp(e.cat, cat) == 0 && std::strcmp(e.name, name) == 0;
}

struct Builder {
  Builder(const TraceBus& t, const DecisionLedger& l)
      : trace(t), ledger(l) {}

  const TraceBus& trace;
  const DecisionLedger& ledger;
  CausalGraph g;

  // Keyed (rank, round) -> event time; filled in one scan.
  std::map<std::pair<int, int>, Time> report_send, report_recv, instr_send,
      instr_apply;
  std::map<std::pair<int, int>, int> instr_decision;  // -> ledger round
  std::map<int, std::pair<Time, Time>> decision_span;  // ledger round
  std::map<int, std::pair<int, long>> decision_meta;   // -> (gate, units)
  std::map<int, Time> evict_time;                      // rank -> declared
  // Unmatched migration halves, per (from, to), in emission order.
  std::map<std::pair<int, int>, std::vector<const TraceEvent*>> move_sends;

  void problem(const std::string& what) { g.problems.push_back(what); }

  void scan();
  void windows_and_moves();
  void derived_spans();
  void breakdowns();
};

void Builder::scan() {
  std::map<int, int> last_window_round;  // per rank, monotonicity check
  int max_rank = -1;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == TraceEvent::Phase::kComplete && e.dur < 0) {
      std::ostringstream os;
      os << "negative span duration: " << e.cat << "/" << e.name << " at t="
         << e.t;
      problem(os.str());
    }
    if (is(e, "cz", "cz.window")) {
      const int rank = static_cast<int>(arg(e, "rank", -1));
      const int round = static_cast<int>(arg(e, "round"));
      max_rank = std::max(max_rank, rank);
      auto it = last_window_round.find(rank);
      if (it != last_window_round.end() && round <= it->second) {
        std::ostringstream os;
        os << "rank " << rank << " window rounds not monotone: round "
           << round << " after round " << it->second;
        problem(os.str());
      }
      last_window_round[rank] = round;
    } else if (is(e, "lb", "slave.report")) {
      const int rank = static_cast<int>(arg(e, "rank", -1));
      const int round = static_cast<int>(arg(e, "round"));
      max_rank = std::max(max_rank, rank);
      report_send[{rank, round}] = e.t;
    } else if (is(e, "cz", "cz.report_recv")) {
      report_recv[{static_cast<int>(arg(e, "rank", -1)),
                   static_cast<int>(arg(e, "round"))}] = e.t;
    } else if (is(e, "cz", "cz.instr_send")) {
      const auto key = std::make_pair(static_cast<int>(arg(e, "rank", -1)),
                                      static_cast<int>(arg(e, "round")));
      instr_send[key] = e.t;
      instr_decision[key] = static_cast<int>(arg(e, "decision"));
    } else if (is(e, "lb", "slave.instr")) {
      const int rank = static_cast<int>(arg(e, "rank", -1));
      max_rank = std::max(max_rank, rank);
      instr_apply[{rank, static_cast<int>(arg(e, "round"))}] = e.t;
    } else if (is(e, "lb", "lb.round")) {
      decision_span[static_cast<int>(arg(e, "round"))] = {e.t, e.t + e.dur};
    } else if (is(e, "lb", "lb.decision")) {
      decision_meta[static_cast<int>(arg(e, "round"))] = {
          static_cast<int>(arg(e, "gate", -1)),
          static_cast<long>(arg(e, "units"))};
    } else if (is(e, "lb", "lb.evict")) {
      const int rank = static_cast<int>(arg(e, "rank", -1));
      if (evict_time.find(rank) == evict_time.end()) evict_time[rank] = e.t;
    }
  }
  g.nranks = max_rank + 1;
  for (const auto& [rank, t] : evict_time) g.evicted.push_back(rank);
  // The decision ledger is authoritative for gate and ordered units — the
  // lb.decision trace events are a fallback for traces captured without a
  // ledger (or with the lb category sampled down).
  for (const DecisionRecord& r : ledger.records()) {
    long units = 0;
    for (const Move& m : r.moves) units += m.count;
    decision_meta[static_cast<int>(r.round)] = {static_cast<int>(r.gate),
                                                units};
  }
}

void Builder::windows_and_moves() {
  for (const TraceEvent& e : trace.events()) {
    if (is(e, "cz", "cz.window")) {
      CausalSpan s;
      s.kind = SpanKind::kWindow;
      s.rank = static_cast<int>(arg(e, "rank", -1));
      s.round = static_cast<int>(arg(e, "round"));
      s.begin = e.t;
      s.end = e.t + e.dur;
      s.blocked_s = arg(e, "blocked");
      g.spans.push_back(s);
    } else if (is(e, "cz", "cz.move_send")) {
      move_sends[{static_cast<int>(arg(e, "rank", -1)),
                  static_cast<int>(arg(e, "to", -1))}]
          .push_back(&e);
    } else if (is(e, "cz", "cz.move_recv")) {
      // Pair with the oldest unmatched send from that donor: per-peer
      // transfers are FIFO. The span covers donor pack/send through
      // receiver unpack.
      const int to = static_cast<int>(arg(e, "rank", -1));
      const int from = static_cast<int>(arg(e, "from", -1));
      CausalSpan s;
      s.kind = SpanKind::kMigration;
      s.rank = from;
      s.peer = to;
      s.round = static_cast<int>(arg(e, "round"));
      s.begin = e.t;
      s.end = e.t + e.dur;
      auto& q = move_sends[{from, to}];
      if (!q.empty()) {
        s.begin = q.front()->t;
        q.erase(q.begin());
      }
      g.spans.push_back(s);
    }
  }
  // Transfers whose receive never happened (dead receiver, dropped by an
  // eviction notice): keep the donor half so its cost is still attributed.
  for (auto& [key, sends] : move_sends) {
    for (const TraceEvent* e : sends) {
      CausalSpan s;
      s.kind = SpanKind::kMigration;
      s.rank = key.first;
      s.peer = key.second;
      s.round = static_cast<int>(arg(*e, "round"));
      s.begin = e->t;
      s.end = e->t + e->dur;
      g.spans.push_back(s);
    }
  }
}

void Builder::derived_spans() {
  for (const auto& [key, t_send] : report_send) {
    auto it = report_recv.find(key);
    if (it == report_recv.end()) continue;  // in flight at run end / lost
    CausalSpan s;
    s.kind = SpanKind::kReportTransit;
    s.rank = key.first;
    s.round = key.second;
    s.begin = t_send;
    s.end = it->second;
    g.spans.push_back(s);
  }
  for (const auto& [key, t_send] : instr_send) {
    auto it = instr_apply.find(key);
    if (it == instr_apply.end()) continue;  // rank died before applying
    CausalSpan s;
    s.kind = SpanKind::kInstrTransit;
    s.rank = key.first;
    s.round = key.second;
    s.begin = t_send;
    s.end = it->second;
    g.spans.push_back(s);
  }
  for (const auto& [round, span] : decision_span) {
    CausalSpan s;
    s.kind = SpanKind::kDecision;
    s.rank = -1;
    s.round = round;  // decision-ledger numbering
    s.begin = span.first;
    s.end = span.second;
    g.spans.push_back(s);
  }

  // Well-formedness: an applied instruction needs a report from the same
  // rank and round to answer — the protocol's request/response pairing —
  // except on a rank that was later evicted (its subgraph just ends) and
  // except a pipelined pre-paid application, whose report follows
  // immediately (still present in the trace, so the existence check is
  // order-insensitive and covers it).
  for (const auto& [key, t] : instr_apply) {
    if (report_send.find(key) != report_send.end()) continue;
    if (evict_time.find(key.first) != evict_time.end()) continue;
    std::ostringstream os;
    os << "instruction application round " << key.second << " on rank "
       << key.first << " has no matching report";
    problem(os.str());
  }
  // No slave-side events after the rank's eviction was declared: the
  // master only evicts ranks it believes dead, and a dead process emits
  // nothing. (Events from before the declaration are fine — eviction is
  // detected at a collection deadline, well after the crash.)
  for (const TraceEvent& e : trace.events()) {
    const bool slave_side = std::strcmp(e.cat, "cz") == 0 ||
                            (std::strcmp(e.cat, "lb") == 0 &&
                             std::strncmp(e.name, "slave.", 6) == 0);
    if (!slave_side) continue;
    const int rank = static_cast<int>(arg(e, "rank", -1));
    auto it = evict_time.find(rank);
    if (it != evict_time.end() && e.t > it->second) {
      std::ostringstream os;
      os << "evicted rank " << rank << " has event " << e.name << " at t="
         << e.t << " after its eviction at t=" << it->second;
      problem(os.str());
    }
  }

  std::stable_sort(
      g.spans.begin(), g.spans.end(),
      [](const CausalSpan& a, const CausalSpan& b) { return a.begin < b.begin; });
}

void Builder::breakdowns() {
  std::map<int, RoundBreakdown> by_round;
  auto touch = [&](int round) -> RoundBreakdown& {
    auto [it, inserted] = by_round.try_emplace(round);
    if (inserted) it->second.round = round;
    return it->second;
  };
  for (const CausalSpan& s : g.spans) {
    if (s.kind == SpanKind::kDecision) continue;  // joined via instr_send
    RoundBreakdown& r = touch(s.round);
    const double dur_s = to_seconds(s.dur());
    switch (s.kind) {
      case SpanKind::kWindow:
        ++r.ranks;
        r.compute_s += std::max(0.0, dur_s - s.blocked_s);
        r.blocked_s += s.blocked_s;
        if (r.t_begin == 0 || s.begin < r.t_begin) r.t_begin = s.begin;
        break;
      case SpanKind::kReportTransit:
      case SpanKind::kInstrTransit:
        r.transport_s += dur_s;
        break;
      case SpanKind::kMigration:
        r.migration_s += dur_s;
        break;
      case SpanKind::kDecision:
        break;
    }
    if (s.end > r.t_end) r.t_end = s.end;
  }
  // Join each wire round to the decision it carried (cz.instr_send's
  // decision arg), pulling in the master's decision time, gate and units.
  for (const auto& [key, d] : instr_decision) {
    if (d == 0) continue;  // pipelined priming: no decision yet
    RoundBreakdown& r = touch(key.second);
    r.decision_round = d;
    auto sp = decision_span.find(d);
    if (sp != decision_span.end()) {
      r.decision_s = to_seconds(sp->second.second - sp->second.first);
    }
    auto meta = decision_meta.find(d);
    if (meta != decision_meta.end()) {
      r.gate = meta->second.first;
      r.units_moved = meta->second.second;
    }
  }
  for (auto& [round, r] : by_round) {
    const double wall = to_seconds(r.t_end - r.t_begin);
    if (r.ranks > 0 && wall > 0) {
      r.efficiency = r.compute_s / (r.ranks * wall);
    }
    g.rounds.push_back(r);
  }
}

}  // namespace

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kWindow:
      return "window";
    case SpanKind::kReportTransit:
      return "report-transit";
    case SpanKind::kDecision:
      return "decision";
    case SpanKind::kInstrTransit:
      return "instr-transit";
    case SpanKind::kMigration:
      return "migration";
  }
  return "?";
}

double CausalGraph::total_compute_s() const {
  double total = 0;
  for (const CausalSpan& s : spans) {
    if (s.kind == SpanKind::kWindow) {
      total += std::max(0.0, sim::to_seconds(s.dur()) - s.blocked_s);
    }
  }
  return total;
}

double CausalGraph::wall_s() const {
  if (spans.empty()) return 0;
  sim::Time begin = spans.front().begin;
  sim::Time end = 0;
  for (const CausalSpan& s : spans) end = std::max(end, s.end);
  return sim::to_seconds(end - begin);
}

double CausalGraph::efficiency() const {
  const double wall = wall_s();
  if (nranks <= 0 || wall <= 0) return 0;
  return total_compute_s() / (nranks * wall);
}

CausalGraph build_causal_graph(const TraceBus& trace,
                               const DecisionLedger& ledger) {
  Builder b{trace, ledger};
  b.scan();
  b.windows_and_moves();
  b.derived_spans();
  b.breakdowns();
  return std::move(b.g);
}

}  // namespace nowlb::obs
