// Chrome trace_event JSON exporter for the trace bus.
//
// Emits the {"traceEvents":[...]} object form understood by Perfetto and
// chrome://tracing: "i" instants, "X" complete spans with dur, and "M"
// metadata records naming processes (hosts) and threads (lanes).
// Timestamps are simulated microseconds; events are stable-sorted by ts so
// a bus shared across several runs still exports a monotonic file.
#pragma once

#include <ostream>
#include <string>

#include "obs/trace.hpp"

namespace nowlb::obs {

/// Write the whole bus as Chrome trace_event JSON.
void write_chrome_trace(std::ostream& out, const TraceBus& bus);

/// Convenience: write to a file path. Returns false on I/O failure.
bool write_chrome_trace_file(const std::string& path, const TraceBus& bus);

}  // namespace nowlb::obs
