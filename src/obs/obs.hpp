// The observability hub: one object bundling the three flight-recorder
// parts — trace bus, metrics registry, decision ledger.
//
// Attach a hub to a World (obs::attach) and every instrumented layer
// below it (engine dispatch, network, transport, master/slave protocol)
// records into it. Attachment is always optional: a null hub costs one
// pointer test per emit site, and an attached hub never perturbs the
// simulation clock or RNG streams, so traces stay bit-identical.
#pragma once

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nowlb::obs {

struct Observability {
  TraceBus trace;
  MetricsRegistry metrics;
  DecisionLedger ledger;

  void clear() {
    trace.clear();
    metrics.clear();
    ledger.clear();
  }
};

}  // namespace nowlb::obs
