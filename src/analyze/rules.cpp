#include "analyze/rules.hpp"

#include <algorithm>
#include <cctype>
#include <iterator>

namespace nowlb::analyze {

namespace {

// clang-format off
const std::vector<Rule> kCatalog = {
    {"D001", kRuleWallclock,
     "virtual time only: use sim::Engine::now() / sim::Time"},
    {"D002", kRuleEntropy,
     "draw from an explicitly seeded nowlb::Rng (util/rng.hpp)"},
    {"D003", kRuleUnordered,
     "iteration order is unspecified: use std::map / sorted vector, or "
     "whitelist with a justification"},
    {"L001", kRuleLayer,
     "depend downward only (util < msg < sim < obs < data < lb < load/loop "
     "< apps < exp/check); move shared code down a layer"},
    {"L002", kRuleCycle,
     "break the include cycle with a forward declaration or an interface "
     "header"},
    {"P001", kRuleTagUnhandled,
     "wire the tag into a handler dispatch or delete it"},
    {"P002", kRuleTagNoRecv,
     "add a receive-side dispatch (recv/try_recv/==/case) or delete the tag"},
    {"W001", kRuleWireSymmetry,
     "make decode() read exactly the fields encode() writes, in the same "
     "order and with the same widths"},
    {"W002", kRuleWireSize,
     "make encoded_size() sum exactly one term per encoded field (see "
     "DESIGN.md §14 for the term grammar)"},
    {"W003", kRuleWireOnesided,
     "give the struct the missing half of the encode/decode pair, or drop "
     "it from the wire"},
    {"T001", kRuleTrailerMarker,
     "give every kTrailer* constant a distinct marker byte"},
    {"T002", kRuleTrailerCase,
     "every trailer an encoder appends needs a matching marker branch in "
     "the paired decode loop, and vice versa"},
    {"T003", kRuleTrailerOrder,
     "emit trailers in the same relative order in every encoder so decode "
     "loops can rely on one composition order"},
    {"F001", kRuleTagNoOrigin,
     "add a send site for the tag or delete the receive-side dispatch"},
    {"F002", kRuleTagAsym,
     "a tag sent inside an endpoint pair must be received inside the same "
     "pair; fix the missing half or NOLINT with the asymmetry's reason"},
    {"S001", kRuleNolint,
     "write // NOLINT(nowlb-<rule>: <reason>) — the reason is mandatory"},
    {"S002", kRuleNolintStale,
     "this suppression no longer suppresses any finding; delete it"},
};
// clang-format on

const Rule* rule(const char* name) {
  for (const auto& r : kCatalog)
    if (std::string(r.name) == name) return &r;
  return nullptr;
}

struct TokenBan {
  const char* token;
  const char* what;
  bool call_only;  // only flag when spelled as a call: `tok (`
};

// D001 — wall-clock and OS time sources. Simulated code must read
// Engine::now(); any of these makes a run depend on the host.
const TokenBan kWallclock[] = {
    {"system_clock", "std::chrono::system_clock", false},
    {"steady_clock", "std::chrono::steady_clock", false},
    {"high_resolution_clock", "std::chrono::high_resolution_clock", false},
    {"gettimeofday", "gettimeofday()", false},
    {"clock_gettime", "clock_gettime()", false},
    {"timespec_get", "timespec_get()", false},
    {"localtime", "localtime()", false},
    {"localtime_r", "localtime_r()", false},
    {"gmtime", "gmtime()", false},
    {"gmtime_r", "gmtime_r()", false},
    {"time", "time()", true},
    {"clock", "clock()", true},
};

// D002 — entropy sources and default-seeded engines. Everything stochastic
// must flow from an explicit seed through nowlb::Rng.
const TokenBan kEntropy[] = {
    {"random_device", "std::random_device", false},
    {"mt19937", "std::mt19937", false},
    {"mt19937_64", "std::mt19937_64", false},
    {"default_random_engine", "std::default_random_engine", false},
    {"minstd_rand", "std::minstd_rand", false},
    {"minstd_rand0", "std::minstd_rand0", false},
    {"ranlux24", "std::ranlux24", false},
    {"ranlux48", "std::ranlux48", false},
    {"knuth_b", "std::knuth_b", false},
    {"random_shuffle", "std::random_shuffle", false},
    {"rand", "rand()", true},
    {"srand", "srand()", true},
};

// D003 — unordered associative containers. Hash iteration order is
// unspecified and libstdc++-version dependent; on any output or decision
// path it silently breaks bit-reproducibility.
const char* const kUnordered[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

void scan_tokens(const ScannedFile& f, const Rule* r, const TokenBan* bans,
                 std::size_t n_bans, std::vector<Finding>& out) {
  std::map<std::string, int> occurrence;
  for (int li = 0; li < f.line_count(); ++li) {
    const std::string& line = f.code[li];
    for (std::size_t b = 0; b < n_bans; ++b) {
      const TokenBan& ban = bans[b];
      const bool hit = ban.call_only ? has_call(line, ban.token)
                                     : find_ident(line, ban.token) !=
                                           std::string::npos;
      if (!hit) continue;
      Finding fd;
      fd.rule = r;
      fd.rel_path = f.rel_path;
      fd.line = li + 1;
      fd.message = std::string(ban.what) + " on a simulation path";
      fd.key = std::string(ban.token) + "#" +
               std::to_string(++occurrence[ban.token]);
      out.push_back(std::move(fd));
    }
  }
}

}  // namespace

const std::vector<Rule>& rule_catalog() { return kCatalog; }

const Rule* rule_by_name(const std::string& name) {
  return rule(name.c_str());
}

RuleConfig default_config() {
  RuleConfig cfg;
  // D003 whitelist is intentionally empty: the one historical use
  // (sim/network.hpp link_busy_until_) was converted to std::map. New
  // entries need a comment here justifying why iteration order never
  // escapes — or an inline NOLINT with a reason.
  cfg.layer_of = {
      {"util", 0}, {"msg", 1},  {"sim", 2},  {"obs", 3},
      {"data", 4}, {"lb", 5},   {"load", 6}, {"loop", 6},
      {"apps", 7}, {"exp", 8},  {"check", 8}, {"analyze", 9},
      {"perf", 9},
  };
  // F002: the master/slave conversation of the generated protocol. A tag
  // one of these files sends must be received by one of them (self-loops
  // like slave->slave kTagMove count).
  cfg.endpoint_pairs = {{"lb/master.cpp", "lb/slave.cpp"}};
  return cfg;
}

void run_determinism_rules(const ScannedFile& f, const RuleConfig& cfg,
                           std::vector<Finding>& out) {
  scan_tokens(f, rule(kRuleWallclock), kWallclock, std::size(kWallclock),
              out);
  if (f.rel_path != cfg.entropy_home)
    scan_tokens(f, rule(kRuleEntropy), kEntropy, std::size(kEntropy), out);

  const bool whitelisted =
      std::find(cfg.unordered_whitelist.begin(),
                cfg.unordered_whitelist.end(),
                f.rel_path) != cfg.unordered_whitelist.end();
  if (!whitelisted) {
    const Rule* r = rule(kRuleUnordered);
    std::map<std::string, int> occurrence;
    for (int li = 0; li < f.line_count(); ++li) {
      for (const char* tok : kUnordered) {
        if (find_ident(f.code[li], tok) == std::string::npos) continue;
        Finding fd;
        fd.rule = r;
        fd.rel_path = f.rel_path;
        fd.line = li + 1;
        fd.message = std::string("std::") + tok + " outside the whitelist";
        fd.key = std::string(tok) + "#" + std::to_string(++occurrence[tok]);
        out.push_back(std::move(fd));
      }
    }
  }
}

}  // namespace nowlb::analyze
