// W-rules: per-struct wire symmetry.
//
//   W001 — encode() and decode() must perform the same ordered field
//          operations (kind, name, width), unconditional prefix and each
//          trailer group separately.
//   W002 — encoded_size() must account for every encoded field exactly
//          once, group by group.
//   W003 — a struct with only one half of the encode/decode pair is a
//          latent wire hazard.
//
// Opaque bodies (constructs outside the AST-lite grammar, DESIGN.md §14)
// are skipped: absence of findings there is explicitly not a proof.
#include <string>
#include <vector>

#include "analyze/proto_model.hpp"
#include "analyze/rules.hpp"

namespace nowlb::analyze {

namespace {

/// Trailing identifier of a token ("std::uint64_t" -> "uint64_t",
/// "s.inventory" -> "inventory") for name-based term matching.
std::string last_ident_of(const std::string& s) {
  auto ident = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  std::size_t end = s.size();
  while (end > 0 && !ident(s[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && ident(s[begin - 1])) --begin;
  return s.substr(begin, end - begin);
}

Finding make(const Rule* r, const MsgStruct& ms, int line, std::string key,
             std::string message) {
  Finding fd;
  fd.rule = r;
  fd.rel_path = ms.file;
  fd.line = line;
  fd.key = std::move(key);
  fd.message = std::move(message);
  return fd;
}

/// Do an encode-side op and a decode-side op perform the same wire
/// operation? Count ops match on width only (the decode side binds a
/// local, so the names legitimately differ).
bool ops_match(const WireOp& e, const WireOp& d) {
  if (e.kind != d.kind) return false;
  switch (e.kind) {
    case WireOp::Count:
      return e.width == 0 || d.width == 0 || e.width == d.width;
    case WireOp::Scalar:
      if (e.field != d.field) return false;
      return e.width == 0 || d.width == 0 || e.width == d.width;
    case WireOp::Vec:
      if (e.field != d.field) return false;
      return e.width == 0 || d.width == 0 || e.width == d.width;
    case WireOp::Bytes:
      return e.field == d.field;
    case WireOp::Struct:
    case WireOp::VecStruct:
      if (e.field != d.field) return false;
      return e.elem_struct.empty() || d.elem_struct.empty() ||
             e.elem_struct == d.elem_struct;
    case WireOp::Marker:
      return e.field == d.field;
  }
  return false;
}

/// Compare one encode group against one decode group positionally.
/// Returns true if a finding was emitted (callers stop at the first
/// mismatch per struct to avoid cascades from a single insertion).
bool compare_groups(const MsgStruct& ms, const Rule* w001,
                    const std::vector<WireOp>& enc,
                    const std::vector<WireOp>& dec, const std::string& what,
                    int enc_line, std::vector<Finding>& out) {
  const std::size_t n = std::min(enc.size(), dec.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ops_match(enc[i], dec[i])) continue;
    out.push_back(make(
        w001, ms, enc[i].line, ms.name + "#" + what + "#" + enc[i].field,
        ms.name + " " + what + " op " + std::to_string(i + 1) +
            ": encode writes " + describe_op(enc[i]) + " but decode reads " +
            describe_op(dec[i]) + " (decode at line " +
            std::to_string(dec[i].line) + ")"));
    return true;
  }
  if (enc.size() != dec.size()) {
    const bool enc_longer = enc.size() > dec.size();
    const WireOp& extra = enc_longer ? enc[n] : dec[n];
    out.push_back(make(
        w001, ms, extra.line, ms.name + "#" + what + "#" + extra.field,
        ms.name + " " + what + ": encode performs " +
            std::to_string(enc.size()) + " wire ops but decode performs " +
            std::to_string(dec.size()) + "; first unmatched is " +
            describe_op(extra) + " on the " +
            (enc_longer ? "encode" : "decode") + " side"));
    return true;
  }
  (void)enc_line;
  return false;
}

/// Strip the leading marker put from an encode trailer group: the decode
/// branch reads the marker in the loop header, so only the payload ops
/// are compared.
std::vector<WireOp> payload_of(const OpGroup& g) {
  std::vector<WireOp> ops = g.ops;
  if (!ops.empty() && ops.front().kind == WireOp::Marker)
    ops.erase(ops.begin());
  return ops;
}

void check_symmetry(const MsgStruct& ms, const Rule* w001,
                    std::vector<Finding>& out) {
  // Unconditional prefix.
  if (compare_groups(ms, w001, ms.encode_groups[0].ops,
                     ms.decode_groups[0].ops, "body",
                     ms.encode_groups[0].line, out))
    return;
  // Trailer groups, paired by marker. Unpaired markers are T002's
  // finding, not W001's.
  for (std::size_t gi = 1; gi < ms.encode_groups.size(); ++gi) {
    const OpGroup& eg = ms.encode_groups[gi];
    if (eg.marker.empty()) continue;
    for (std::size_t di = 1; di < ms.decode_groups.size(); ++di) {
      const OpGroup& dg = ms.decode_groups[di];
      if (dg.marker != eg.marker) continue;
      if (compare_groups(ms, w001, payload_of(eg), dg.ops,
                         "trailer " + eg.marker, eg.line, out))
        return;
      break;
    }
  }
}

std::string describe_term(const SizeTerm& t) {
  switch (t.kind) {
    case SizeTerm::Sizeof:
      return "sizeof(" + t.token + ")";
    case SizeTerm::VecBytes:
      return t.token + ".size() * sizeof(" + t.elem_type + ")";
    case SizeTerm::VecStructSize:
      return t.token + ".size() * " + t.elem_type + "::encoded_size()";
    case SizeTerm::StructSize:
      return t.token + ".encoded_size()";
    case SizeTerm::RawSize:
      return t.token + ".size()";
    case SizeTerm::Const:
      return "constant " + std::to_string(t.value);
  }
  return "?";
}

/// Greedy matcher: consume the size terms an op accounts for. Returns
/// false when the terms cannot cover the op.
bool consume_terms(const MsgStruct& ms, const WireOp& op,
                   const std::vector<SizeTerm>& terms,
                   std::vector<bool>& used) {
  auto take = [&](auto&& pred) {
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (!used[i] && pred(terms[i])) {
        used[i] = true;
        return true;
      }
    }
    return false;
  };
  auto take_sizeof_for = [&](const std::string& field, int width) {
    // Priority: sizeof(field) > sizeof(<its declared type>) > any
    // width-equal sizeof > a bare integer constant of that width.
    if (take([&](const SizeTerm& t) {
          return t.kind == SizeTerm::Sizeof && last_ident_of(t.token) == field;
        }))
      return true;
    const FieldDecl* fdcl = ms.field(field);
    if (fdcl && take([&](const SizeTerm& t) {
          return t.kind == SizeTerm::Sizeof && t.token == fdcl->type;
        }))
      return true;
    if (width > 0 && take([&](const SizeTerm& t) {
          return t.kind == SizeTerm::Sizeof && t.width == width;
        }))
      return true;
    return width > 0 && take([&](const SizeTerm& t) {
             return t.kind == SizeTerm::Const && t.value == width;
           });
  };

  switch (op.kind) {
    case WireOp::Scalar:
    case WireOp::Count:
      return take_sizeof_for(op.field, op.width);
    case WireOp::Vec:
      // uint64 count prefix + element payload.
      if (!take([&](const SizeTerm& t) {
            return t.kind == SizeTerm::Sizeof && t.width == 8;
          }))
        return false;
      return take([&](const SizeTerm& t) {
        return t.kind == SizeTerm::VecBytes &&
               last_ident_of(t.token) == op.field;
      });
    case WireOp::Bytes:
      if (!take([&](const SizeTerm& t) {
            return t.kind == SizeTerm::Sizeof && t.width == 8;
          }))
        return false;
      return take([&](const SizeTerm& t) {
        return t.kind == SizeTerm::RawSize &&
               last_ident_of(t.token) == op.field;
      });
    case WireOp::Struct:
      return take([&](const SizeTerm& t) {
        return t.kind == SizeTerm::StructSize &&
               last_ident_of(t.token) == op.field;
      });
    case WireOp::VecStruct:
      return take([&](const SizeTerm& t) {
        return t.kind == SizeTerm::VecStructSize &&
               last_ident_of(t.token) == op.field;
      });
    case WireOp::Marker:
      return take([&](const SizeTerm& t) {
               return t.kind == SizeTerm::Sizeof &&
                      last_ident_of(t.token) == op.field;
             }) ||
             take([&](const SizeTerm& t) {
               return t.kind == SizeTerm::Sizeof && t.width == 1;
             }) ||
             take([&](const SizeTerm& t) {
               return t.kind == SizeTerm::Const && t.value == 1;
             });
  }
  return false;
}

void check_size(const MsgStruct& ms, const Rule* w002,
                std::vector<Finding>& out) {
  // Pair encode groups with size groups by condition text ("" pairs with
  // the unconditional group). An encode group whose condition has no size
  // group at all is reported against the encoded_size definition.
  for (const OpGroup& eg : ms.encode_groups) {
    const SizeGroup* sg = nullptr;
    for (const auto& g : ms.size_groups)
      if (g.cond == eg.cond) {
        sg = &g;
        break;
      }
    if (!sg) {
      if (eg.ops.empty()) continue;
      out.push_back(make(
          w002, ms, ms.size_line, ms.name + "#group#" + eg.cond,
          ms.name + "::encoded_size() has no term group for the encode "
          "branch `if (" + eg.cond + ")` (encode at line " +
              std::to_string(eg.line) + ")"));
      continue;
    }
    std::vector<bool> used(sg->terms.size(), false);
    bool reported = false;
    for (const WireOp& op : eg.ops) {
      if (consume_terms(ms, op, sg->terms, used)) continue;
      out.push_back(make(
          w002, ms, ms.size_line, ms.name + "#omit#" + op.field,
          ms.name + "::encoded_size() omits " + describe_op(op) +
              " (encoded at line " + std::to_string(op.line) + ")"));
      reported = true;
      break;  // one finding per group: later misses are usually cascade
    }
    if (reported) continue;
    for (std::size_t i = 0; i < sg->terms.size(); ++i) {
      if (used[i]) continue;
      out.push_back(make(
          w002, ms, sg->terms[i].line, ms.name + "#extra#" + sg->terms[i].token,
          ms.name + "::encoded_size() counts " + describe_term(sg->terms[i]) +
              " which no encode op in the " +
              (eg.cond.empty() ? std::string("unconditional")
                               : "`if (" + eg.cond + ")`") +
              " group produces"));
      break;
    }
  }
}

}  // namespace

void run_wire_rules(const ProtoModel& model, std::vector<Finding>& out) {
  const Rule* w001 = rule_by_name(kRuleWireSymmetry);
  const Rule* w002 = rule_by_name(kRuleWireSize);
  const Rule* w003 = rule_by_name(kRuleWireOnesided);

  for (const MsgStruct& ms : model.structs) {
    if (ms.has_encode != ms.has_decode) {
      out.push_back(make(
          w003, ms, ms.line, ms.name,
          ms.name + " defines " +
              (ms.has_encode ? "encode() but no decode()"
                             : "decode() but no encode()") +
              " — one-sided wire contract"));
      continue;
    }
    if (!ms.has_encode) continue;  // size-only helper: nothing to compare
    if (!ms.encode_opaque && !ms.decode_opaque)
      check_symmetry(ms, w001, out);
    if (ms.has_size && !ms.encode_opaque && !ms.size_opaque)
      check_size(ms, w002, out);
  }
}

}  // namespace nowlb::analyze
