// Lossy C++ scanner for nowlb-lint.
//
// Rules never need a real parse: they match identifier tokens and #include
// directives. The scanner's job is to make that matching sound by blanking
// everything that is not code — comments, string literals, character
// literals, raw strings — so a rule keyword inside a docstring or a log
// message can never fire. Comment text is kept separately, per line, because
// that is where NOLINT suppressions live.
#pragma once

#include <string>
#include <vector>

namespace nowlb::analyze {

struct Include {
  int line = 0;            // 1-based
  std::string path;        // as written, e.g. "sim/engine.hpp" or "vector"
  bool angled = false;     // <...> vs "..."
};

struct ScannedFile {
  /// Path relative to the lint root, forward slashes: "sim/network.hpp".
  std::string rel_path;
  /// First path component — the module this file belongs to ("sim").
  std::string module;
  /// Source lines with comments and string/char literals blanked to spaces.
  /// Column positions are preserved, so token columns map back to the file.
  std::vector<std::string> code;
  /// Comment text per line (both // and /* */ bodies, concatenated).
  std::vector<std::string> comments;
  std::vector<Include> includes;

  int line_count() const { return static_cast<int>(code.size()); }
};

/// Scan one file's contents. `rel_path` is stored verbatim.
ScannedFile scan_source(std::string rel_path, const std::string& text);

/// Find the next word-bounded occurrence of `ident` in `haystack` at or
/// after `from`. Returns std::string::npos if absent. A match is rejected
/// when touching an identifier character ([A-Za-z0-9_]) on either side.
std::size_t find_ident(const std::string& haystack, const std::string& ident,
                       std::size_t from = 0);

/// True if `ident` occurs word-bounded and its next non-space character is
/// '(' — i.e. it is spelled as a call. Used for bare C functions like
/// time()/clock() whose names are too common to ban as plain identifiers.
bool has_call(const std::string& line, const std::string& ident);

}  // namespace nowlb::analyze
