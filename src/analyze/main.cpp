// nowlb-lint — repo-specific determinism, layering, and protocol linter.
//
//   nowlb-lint [--root=]src [--baseline=.nowlb-lint-baseline]
//              [--update-baseline] [--label=src] [--list-rules]
//
// Exit 0: clean (modulo baseline). Exit 1: fresh findings. Exit 2: usage.
#include <cstdio>
#include <exception>
#include <string>

#include "analyze/lint.hpp"

namespace {

void usage() {
  std::fputs(
      "usage: nowlb-lint [--root=]DIR [options]\n"
      "  --baseline=FILE     subtract the checked-in baseline\n"
      "  --update-baseline   rewrite FILE from the current findings\n"
      "  --label=NAME        path prefix in reports (default: the root)\n"
      "  --list-rules        print the rule catalog and exit\n",
      stderr);
}

void list_rules() {
  for (const auto& r : nowlb::analyze::rule_catalog())
    std::printf("%s  %-20s %s\n", r.code, r.name, r.hint);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nowlb::analyze;
  LintOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else if (arg == "--update-baseline") {
      opts.update_baseline = true;
    } else if (const char* v = value("--root=")) {
      opts.root = v;
    } else if (const char* b = value("--baseline=")) {
      opts.baseline_path = b;
    } else if (const char* l = value("--label=")) {
      opts.label = l;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && opts.root.empty()) {
      opts.root = arg;
    } else {
      std::fprintf(stderr, "nowlb-lint: unknown argument '%s'\n",
                   arg.c_str());
      usage();
      return 2;
    }
  }
  if (opts.root.empty()) {
    usage();
    return 2;
  }
  if (opts.label.empty()) opts.label = opts.root;
  // Strip a trailing slash so labels render as "src/foo.hpp".
  if (!opts.label.empty() && opts.label.back() == '/') opts.label.pop_back();

  try {
    const LintResult res = run_lint(opts);
    if (opts.update_baseline) {
      std::printf("nowlb-lint: baseline rewritten (%zu findings) in %s\n",
                  res.fresh.size() + res.baselined.size(),
                  opts.baseline_path.c_str());
      return 0;
    }
    std::fputs(format_findings(res.fresh, opts.label).c_str(), stdout);
    for (const auto& stale : res.stale_baseline)
      std::printf("stale baseline entry (fixed? remove it): %s\n",
                  stale.c_str());
    std::printf(
        "nowlb-lint: %d files, %zu fresh finding%s, %zu baselined, "
        "%zu stale baseline entr%s\n",
        res.files_scanned, res.fresh.size(),
        res.fresh.size() == 1 ? "" : "s", res.baselined.size(),
        res.stale_baseline.size(),
        res.stale_baseline.size() == 1 ? "y" : "ies");
    return res.clean() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nowlb-lint: %s\n", e.what());
    return 2;
  }
}
