// T-rules: marker-byte trailer composition.
//
//   T001 — every kTrailer* constant carries a distinct marker byte; a
//          collision makes one trailer undecodable.
//   T002 — trailer pairing per struct: every trailer an encoder appends
//          has a marker branch in the paired decode loop and vice versa;
//          the loop rejects unknown markers; conditional encode groups
//          lead with a marker so the decoder can detect them at all.
//   T003 — trailers are emitted in one consistent relative order across
//          all encoders, so a decode loop written against one composition
//          order keeps working for every message type.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analyze/proto_model.hpp"
#include "analyze/rules.hpp"

namespace nowlb::analyze {

namespace {

Finding make(const Rule* r, std::string file, int line, std::string key,
             std::string message) {
  Finding fd;
  fd.rule = r;
  fd.rel_path = std::move(file);
  fd.line = line;
  fd.key = std::move(key);
  fd.message = std::move(message);
  return fd;
}

/// Encode-side trailer markers of one struct, in emission order.
std::vector<const OpGroup*> encode_trailers(const MsgStruct& ms) {
  std::vector<const OpGroup*> out;
  for (std::size_t i = 1; i < ms.encode_groups.size(); ++i)
    if (!ms.encode_groups[i].marker.empty())
      out.push_back(&ms.encode_groups[i]);
  return out;
}

std::vector<const OpGroup*> decode_trailers(const MsgStruct& ms) {
  std::vector<const OpGroup*> out;
  for (std::size_t i = 1; i < ms.decode_groups.size(); ++i)
    if (!ms.decode_groups[i].marker.empty())
      out.push_back(&ms.decode_groups[i]);
  return out;
}

void check_t001(const ProtoModel& model, const Rule* t001,
                std::vector<Finding>& out) {
  std::map<long, const TrailerConst*> by_value;
  for (const TrailerConst& tc : model.trailers) {
    if (tc.value < 0) continue;  // non-literal initializer: can't compare
    const auto [it, fresh] = by_value.emplace(tc.value, &tc);
    if (fresh || it->second->name == tc.name) continue;
    out.push_back(make(
        t001, tc.file, tc.line, tc.name,
        "trailer marker " + tc.name + " = " + std::to_string(tc.value) +
            " collides with " + it->second->name + " (" + it->second->file +
            ":" + std::to_string(it->second->line) + ")"));
  }
}

void check_t002(const MsgStruct& ms, const Rule* t002,
                std::vector<Finding>& out) {
  const auto enc = encode_trailers(ms);
  const auto dec = decode_trailers(ms);

  // Conditional encode groups must lead with a marker byte — otherwise
  // the payload is invisible to a marker-dispatch decoder.
  for (std::size_t i = 1; i < ms.encode_groups.size(); ++i) {
    const OpGroup& g = ms.encode_groups[i];
    if (g.marker.empty() && !g.ops.empty()) {
      out.push_back(make(
          t002, ms.file, g.line, ms.name + "#nomarker#" + g.cond,
          ms.name + "::encode() branch `if (" + g.cond +
              ")` appends wire data without a leading kTrailer* marker "
              "byte — the decode loop cannot detect it"));
    }
  }

  if (!enc.empty() && !ms.decode_has_trailer_loop && !ms.decode_opaque) {
    out.push_back(make(
        t002, ms.file, ms.decode_line, ms.name + "#noloop",
        ms.name + "::decode() has no trailer loop, but encode() appends " +
            std::to_string(enc.size()) + " trailer(s) starting with " +
            enc.front()->marker));
    return;  // everything below would cascade
  }

  for (const OpGroup* eg : enc) {
    const bool matched =
        std::any_of(dec.begin(), dec.end(), [&](const OpGroup* dg) {
          return dg->marker == eg->marker;
        });
    if (!matched)
      out.push_back(make(
          t002, ms.file, eg->line, ms.name + "#enc#" + eg->marker,
          ms.name + "::encode() appends trailer " + eg->marker +
              " but decode() has no marker branch for it"));
  }
  for (const OpGroup* dg : dec) {
    const bool matched =
        std::any_of(enc.begin(), enc.end(), [&](const OpGroup* eg) {
          return eg->marker == dg->marker;
        });
    if (!matched && !ms.encode_opaque)
      out.push_back(make(
          t002, ms.file, dg->line, ms.name + "#dec#" + dg->marker,
          ms.name + "::decode() handles trailer " + dg->marker +
              " that encode() never appends"));
  }

  if (ms.decode_has_trailer_loop && !ms.decode_trailer_has_else)
    out.push_back(make(
        t002, ms.file, ms.decode_line, ms.name + "#noelse",
        ms.name + "::decode() trailer loop silently ignores unknown "
        "markers — add a rejecting else branch"));
}

void check_t003(const ProtoModel& model, const Rule* t003,
                std::vector<Finding>& out) {
  // Pairwise orientation of markers across every encoder: marker pair
  // (a, b) with a emitted before b in one struct and after it in another
  // is a composition-order conflict.
  struct Orientation {
    const MsgStruct* ms;
    int line;
  };
  std::map<std::pair<std::string, std::string>, Orientation> seen;
  for (const MsgStruct& ms : model.structs) {
    if (ms.encode_opaque) continue;
    const auto enc = encode_trailers(ms);
    for (std::size_t i = 0; i < enc.size(); ++i) {
      for (std::size_t j = i + 1; j < enc.size(); ++j) {
        std::string a = enc[i]->marker, b = enc[j]->marker;
        int line = enc[j]->line;
        const bool flipped = a > b;
        if (flipped) std::swap(a, b);
        // Key is the sorted pair; orientation is recorded by who is
        // first. A second struct disagreeing on that orientation fires.
        auto it = seen.find({a, b});
        if (it == seen.end()) {
          seen.emplace(std::make_pair(a, b),
                       Orientation{&ms, flipped ? -line : line});
          continue;
        }
        const bool prev_flipped = it->second.line < 0;
        if (prev_flipped != flipped) {
          out.push_back(make(
              t003, ms.file, line, ms.name + "#" + a + "#" + b,
              ms.name + "::encode() emits trailers " + enc[i]->marker +
                  " then " + enc[j]->marker + ", but " + it->second.ms->name +
                  "::encode() (" + it->second.ms->file + ":" +
                  std::to_string(std::abs(it->second.line)) +
                  ") uses the opposite order"));
        }
      }
    }
  }
}

}  // namespace

void run_trailer_rules(const ProtoModel& model, std::vector<Finding>& out) {
  const Rule* t001 = rule_by_name(kRuleTrailerMarker);
  const Rule* t002 = rule_by_name(kRuleTrailerCase);
  const Rule* t003 = rule_by_name(kRuleTrailerOrder);

  check_t001(model, t001, out);
  for (const MsgStruct& ms : model.structs) {
    if (!ms.has_encode || !ms.has_decode) continue;
    if (ms.encode_opaque) continue;
    check_t002(ms, t002, out);
  }
  check_t003(model, t003, out);
}

}  // namespace nowlb::analyze
