// Include-graph rules (L-family).
//
// Project includes are spelled root-relative ("sim/engine.hpp"), so the
// graph is exactly the set of quoted includes that resolve to a scanned
// file. Two checks run over it:
//
//   L001  an include may only point at a strictly lower layer, or stay
//         inside its own module (same-rank cross-module includes are
//         upward by definition: neither side outranks the other).
//   L002  the file-level graph must be acyclic, independent of layers —
//         a cycle means some header cannot be parsed standalone.
#pragma once

#include <vector>

#include "analyze/rules.hpp"

namespace nowlb::analyze {

void run_layering_rules(const std::vector<ScannedFile>& files,
                        const RuleConfig& cfg, std::vector<Finding>& out);

}  // namespace nowlb::analyze
