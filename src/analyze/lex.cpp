#include "analyze/lex.hpp"

#include <cctype>

namespace nowlb::analyze {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse a `#include` directive from a raw source line (before blanking —
/// the path sits inside quotes, which the blanking pass erases). Returns
/// false if the line is not an include.
bool parse_include(const std::string& line, Include& out) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '#') return false;
  ++i;
  skip_ws();
  if (line.compare(i, 7, "include") != 0) return false;
  i += 7;
  skip_ws();
  if (i >= line.size()) return false;
  const char open = line[i];
  const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
  if (!close) return false;
  const std::size_t end = line.find(close, i + 1);
  if (end == std::string::npos) return false;
  out.path = line.substr(i + 1, end - i - 1);
  out.angled = open == '<';
  return true;
}

}  // namespace

ScannedFile scan_source(std::string rel_path, const std::string& text) {
  ScannedFile f;
  f.rel_path = std::move(rel_path);
  const auto slash = f.rel_path.find('/');
  f.module = f.rel_path.substr(0, slash);  // whole name if no slash

  // Split into lines (tolerate missing trailing newline and CRLF).
  std::vector<std::string> raw;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      if (!cur.empty() && cur.back() == '\r') cur.pop_back();
      raw.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) raw.push_back(std::move(cur));

  f.code.resize(raw.size());
  f.comments.resize(raw.size());

  enum class St { Code, Line, Block, Str, Chr, Raw };
  St st = St::Code;
  std::string raw_delim;  // the )delim" closer for raw strings

  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& in = raw[li];
    std::string& code = f.code[li];
    std::string& com = f.comments[li];
    code.assign(in.size(), ' ');
    if (st == St::Code) {
      Include inc;
      if (parse_include(in, inc)) {
        inc.line = static_cast<int>(li) + 1;
        f.includes.push_back(inc);
      }
    }
    if (st == St::Line) st = St::Code;  // line comments end at EOL

    for (std::size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      switch (st) {
        case St::Code: {
          if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
            com.append(in, i + 2, std::string::npos);
            st = St::Line;
            i = in.size();  // rest of line consumed
          } else if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
            st = St::Block;
            ++i;
          } else if (c == '"') {
            // Raw string? Look back for R / uR / u8R / LR prefix ending here.
            bool is_raw = false;
            if (i > 0 && in[i - 1] == 'R' &&
                (i == 1 || !ident_char(in[i - 2]) || in[i - 2] == '8' ||
                 in[i - 2] == 'u' || in[i - 2] == 'U' || in[i - 2] == 'L')) {
              // Require the R itself to start an identifier-ish prefix, so
              // an identifier ending in R (fooR"x") is not misread. Good
              // enough for linting; the repo has no such identifiers.
              is_raw = true;
            }
            if (is_raw) {
              const std::size_t paren = in.find('(', i + 1);
              if (paren != std::string::npos) {
                // Built via assign/append (no substr temporary): GCC 12's
                // -O3 -Wrestrict misfires on operator+ / += chains here.
                raw_delim.assign(1, ')');
                raw_delim.append(in, i + 1, paren - i - 1);
                raw_delim.push_back('"');
                st = St::Raw;
                i = paren;  // delimiters + open paren blanked
              } else {
                st = St::Str;  // malformed; treat as ordinary string
              }
            } else {
              st = St::Str;
            }
          } else if (c == '\'' && (i == 0 || !ident_char(in[i - 1]))) {
            // Identifier-adjacent ' is a digit separator (1'000'000).
            st = St::Chr;
          } else {
            code[i] = c;
          }
          break;
        }
        case St::Str:
          if (c == '\\') ++i;
          else if (c == '"') st = St::Code;
          break;
        case St::Chr:
          if (c == '\\') ++i;
          else if (c == '\'') st = St::Code;
          break;
        case St::Block:
          if (c == '*' && i + 1 < in.size() && in[i + 1] == '/') {
            st = St::Code;
            ++i;
          } else {
            com.push_back(c);
          }
          break;
        case St::Raw:
          if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
            i += raw_delim.size() - 1;
            st = St::Code;
          }
          break;
        case St::Line:
          break;  // unreachable: handled above
      }
    }
    // Unterminated ordinary string/char at EOL: recover (likely a macro
    // continuation or our own misread; never let it swallow the file).
    if (st == St::Str || st == St::Chr) st = St::Code;
  }
  return f;
}

std::size_t find_ident(const std::string& haystack, const std::string& ident,
                       std::size_t from) {
  for (std::size_t pos = haystack.find(ident, from);
       pos != std::string::npos; pos = haystack.find(ident, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(haystack[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= haystack.size() || !ident_char(haystack[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

bool has_call(const std::string& line, const std::string& ident) {
  for (std::size_t pos = find_ident(line, ident); pos != std::string::npos;
       pos = find_ident(line, ident, pos + 1)) {
    std::size_t i = pos + ident.size();
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i < line.size() && line[i] == '(') {
      // Reject declarations/member access: `.time(`, `->time(`, `::time(`
      // still counts as a call only for `::` (std::time). A preceding
      // `.`/`->` means a member function of some app type, not libc.
      if (pos >= 1 && line[pos - 1] == '.') continue;
      if (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>') continue;
      return true;
    }
  }
  return false;
}

}  // namespace nowlb::analyze
