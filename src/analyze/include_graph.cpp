#include "analyze/include_graph.hpp"

#include <map>
#include <set>
#include <string>

namespace nowlb::analyze {

namespace {

const Rule* layer_rule() { return rule_by_name(kRuleLayer); }
const Rule* cycle_rule() { return rule_by_name(kRuleCycle); }

std::string module_of(const std::string& path) {
  return path.substr(0, path.find('/'));
}

}  // namespace

void run_layering_rules(const std::vector<ScannedFile>& files,
                        const RuleConfig& cfg, std::vector<Finding>& out) {
  std::map<std::string, const ScannedFile*> by_path;
  for (const auto& f : files) by_path[f.rel_path] = &f;

  // L001 — upward (or sideways cross-module) includes.
  for (const auto& f : files) {
    const auto src_rank = cfg.layer_of.find(f.module);
    for (const auto& inc : f.includes) {
      if (inc.angled || !by_path.count(inc.path)) continue;  // not ours
      const std::string dst_mod = module_of(inc.path);
      if (dst_mod == f.module) continue;
      const auto dst_rank = cfg.layer_of.find(dst_mod);
      if (src_rank == cfg.layer_of.end() || dst_rank == cfg.layer_of.end())
        continue;  // unranked module: out of the layering contract
      if (dst_rank->second < src_rank->second) continue;  // downward: fine
      Finding fd;
      fd.rule = layer_rule();
      fd.rel_path = f.rel_path;
      fd.line = inc.line;
      fd.message = "layering violation: " + f.module + " (layer " +
                   std::to_string(src_rank->second) + ") includes " +
                   dst_mod + " (layer " + std::to_string(dst_rank->second) +
                   "): \"" + inc.path + "\"";
      fd.key = "includes " + inc.path;
      out.push_back(std::move(fd));
    }
  }

  // L002 — cycles in the file-level graph, DFS with three colours. Each
  // cycle is reported once, anchored at the back-edge source, with the
  // full path in the message. Iteration over the sorted map keeps reports
  // deterministic.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;

  auto dfs = [&](auto&& self, const std::string& node) -> void {
    colour[node] = 1;
    stack.push_back(node);
    const ScannedFile* f = by_path.at(node);
    for (const auto& inc : f->includes) {
      if (inc.angled || !by_path.count(inc.path)) continue;
      const int c = colour[inc.path];
      if (c == 0) {
        self(self, inc.path);
      } else if (c == 1) {
        // Back edge: node -> inc.path closes a cycle along the stack.
        std::string cyc;
        bool in = false;
        for (const auto& s : stack) {
          if (s == inc.path) in = true;
          if (in) cyc += s + " -> ";
        }
        cyc += inc.path;
        if (reported.insert(cyc).second) {
          Finding fd;
          fd.rule = cycle_rule();
          fd.rel_path = node;
          fd.line = inc.line;
          fd.message = "include cycle: " + cyc;
          fd.key = "cycle " + cyc;
          out.push_back(std::move(fd));
        }
      }
    }
    stack.pop_back();
    colour[node] = 2;
  };

  for (const auto& [path, file] : by_path) {
    (void)file;
    if (colour[path] == 0) dfs(dfs, path);
  }
}

}  // namespace nowlb::analyze
