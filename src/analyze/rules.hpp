// Rule catalog for nowlb-lint.
//
// Six families, one contract each:
//   D (determinism)  — the simulator must be a pure function of its seeds.
//   L (layering)     — the include graph must respect the module order.
//   P (protocol)     — every wire tag must be handled somewhere.
//   W (wire)         — encode / decode / encoded_size must agree per struct.
//   T (trailer)      — marker-byte trailers compose symmetrically.
//   F (flow)         — tag send/recv sites must pair up across modules.
// Plus S (suppression hygiene): a NOLINT without a reason — or one that no
// longer suppresses anything — is itself a finding, so suppressions stay
// auditable.
//
// Findings are identified by (rule, file, key) where `key` is line-number
// independent: that triple is what the baseline file stores, so baselined
// findings survive unrelated edits to the same file.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analyze/lex.hpp"

namespace nowlb::analyze {

struct Rule {
  const char* code;  // "D001"
  const char* name;  // "nowlb-wallclock" — the NOLINT spelling
  const char* hint;  // one-line fix hint appended to every finding
};

/// The catalog, in report order. Stable: rule codes are part of the
/// baseline format.
const std::vector<Rule>& rule_catalog();

/// Lookup by NOLINT name ("nowlb-wallclock"). Null if unknown.
const Rule* rule_by_name(const std::string& name);

inline constexpr const char* kRuleWallclock = "nowlb-wallclock";
inline constexpr const char* kRuleEntropy = "nowlb-entropy";
inline constexpr const char* kRuleUnordered = "nowlb-unordered";
inline constexpr const char* kRuleLayer = "nowlb-layer";
inline constexpr const char* kRuleCycle = "nowlb-cycle";
inline constexpr const char* kRuleTagUnhandled = "nowlb-tag-unhandled";
inline constexpr const char* kRuleTagNoRecv = "nowlb-tag-norecv";
inline constexpr const char* kRuleWireSymmetry = "nowlb-wire-symmetry";
inline constexpr const char* kRuleWireSize = "nowlb-wire-size";
inline constexpr const char* kRuleWireOnesided = "nowlb-wire-onesided";
inline constexpr const char* kRuleTrailerMarker = "nowlb-trailer-marker";
inline constexpr const char* kRuleTrailerCase = "nowlb-trailer-case";
inline constexpr const char* kRuleTrailerOrder = "nowlb-trailer-order";
inline constexpr const char* kRuleTagNoOrigin = "nowlb-tag-norigin";
inline constexpr const char* kRuleTagAsym = "nowlb-tag-asym";
inline constexpr const char* kRuleNolint = "nowlb-nolint";
inline constexpr const char* kRuleNolintStale = "nowlb-nolint-stale";

struct Finding {
  const Rule* rule = nullptr;
  std::string rel_path;  // relative to the lint root
  int line = 0;
  std::string message;
  /// Line-independent fingerprint used for baseline matching. For token
  /// rules this is "<token>#<n>" (n-th occurrence in the file); for
  /// layering it names the offending include; for protocol rules the tag.
  std::string key;
};

struct RuleConfig {
  /// Files (root-relative) where unordered containers are allowed. Each
  /// entry must carry a justification in the config source — this is the
  /// "explicit whitelist" for D003.
  std::vector<std::string> unordered_whitelist;
  /// The one module allowed to touch raw entropy sources (D002 exemption).
  std::string entropy_home = "util/rng.hpp";
  /// Module -> layer rank. Includes may only point at strictly lower
  /// ranks, or stay within the module. Unlisted modules are not checked.
  std::map<std::string, int> layer_of;
  /// Endpoint pairs for F002: files (root-relative) forming a
  /// master <-> slave conversation. A tag sent from inside a pair must be
  /// received inside the same pair, and vice versa.
  std::vector<std::pair<std::string, std::string>> endpoint_pairs;
};

/// The repo's layering: util < msg < sim < obs < data < lb < load/loop <
/// apps < exp/check/analyze (see DESIGN.md §11).
RuleConfig default_config();

/// D-rules: scan one file for wall-clock, entropy, and unordered-container
/// tokens. Appends to `out`.
void run_determinism_rules(const ScannedFile& f, const RuleConfig& cfg,
                           std::vector<Finding>& out);

struct ProtoModel;  // analyze/proto_model.hpp

/// W-rules: per-struct encode/decode/encoded_size symmetry (W001-W003).
void run_wire_rules(const ProtoModel& model, std::vector<Finding>& out);

/// T-rules: kTrailer* marker uniqueness, trailer-case pairing, and
/// composition-order consistency (T001-T003).
void run_trailer_rules(const ProtoModel& model, std::vector<Finding>& out);

/// P+F-rules: cross-module tag-flow graph — unreferenced tags (P001),
/// tags never examined on the receive side (P002), tags received but
/// never sent (F001), and master/slave endpoint asymmetry (F002).
void run_flow_rules(const ProtoModel& model, const RuleConfig& cfg,
                    std::vector<Finding>& out);

}  // namespace nowlb::analyze
