#include "analyze/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <stdexcept>

#include "analyze/include_graph.hpp"
#include "analyze/proto_model.hpp"

namespace nowlb::analyze {

namespace fs = std::filesystem;

namespace {

bool source_extension(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// One parsed suppression comment.
struct Suppression {
  int line = 0;        // line the comment sits on
  bool next_line = false;
  std::string rule;    // "nowlb-unordered"
  bool has_reason = false;
  bool used = false;
};

/// Parse suppression groups — the NOLINT and NOLINTNEXTLINE forms — out
/// of a file's comment text. Malformed groups (unknown rule, or missing
/// reason) become S001 findings directly; the bare word without an open
/// paren suppresses nothing, so prose mentions are ignored.
std::vector<Suppression> parse_suppressions(const ScannedFile& f,
                                            std::vector<Finding>& out) {
  std::vector<Suppression> sups;
  const Rule* s001 = rule_by_name(kRuleNolint);
  for (int li = 0; li < f.line_count(); ++li) {
    const std::string& com = f.comments[li];
    for (std::size_t pos = com.find("NOLINT"); pos != std::string::npos;
         pos = com.find("NOLINT", pos + 6)) {
      bool next_line = com.compare(pos, 14, "NOLINTNEXTLINE") == 0;
      std::size_t open = pos + (next_line ? 14 : 6);
      auto bad = [&](const std::string& why) {
        Finding fd;
        fd.rule = s001;
        fd.rel_path = f.rel_path;
        fd.line = li + 1;
        fd.message = why;
        fd.key = "nolint#" + std::to_string(li + 1);
        out.push_back(std::move(fd));
      };
      if (open >= com.size() || com[open] != '(') continue;
      const std::size_t close = com.find(')', open);
      if (close == std::string::npos) {
        bad("unterminated NOLINT(");
        continue;
      }
      const std::string body = com.substr(open + 1, close - open - 1);
      const std::size_t colon = body.find(':');
      const std::string rule_part =
          colon == std::string::npos ? body : body.substr(0, colon);
      std::string reason =
          colon == std::string::npos ? "" : body.substr(colon + 1);
      const auto ns = reason.find_first_not_of(" \t");
      reason = ns == std::string::npos ? "" : reason.substr(ns);

      // Trim the rule name.
      std::string rule_name = rule_part;
      rule_name.erase(0, rule_name.find_first_not_of(" \t"));
      const auto re = rule_name.find_last_not_of(" \t");
      rule_name = re == std::string::npos ? "" : rule_name.substr(0, re + 1);

      if (rule_by_name(rule_name) == nullptr) {
        bad("NOLINT names unknown rule '" + rule_name + "'");
        continue;
      }
      if (reason.empty()) {
        bad("NOLINT(" + rule_name + ") has no reason");
        continue;
      }
      Suppression s;
      s.line = li + 1;
      s.next_line = next_line;
      s.rule = rule_name;
      s.has_reason = true;
      sups.push_back(s);
    }
  }
  return sups;
}

void sort_findings(std::vector<Finding>& v) {
  std::sort(v.begin(), v.end(), [](const Finding& a, const Finding& b) {
    if (a.rel_path != b.rel_path) return a.rel_path < b.rel_path;
    if (a.line != b.line) return a.line < b.line;
    if (std::string(a.rule->code) != b.rule->code)
      return std::string(a.rule->code) < b.rule->code;
    return a.key < b.key;
  });
}

std::string baseline_line(const Finding& f) {
  return std::string(f.rule->code) + "\t" + f.rel_path + "\t" + f.key;
}

}  // namespace

LintResult run_lint(const LintOptions& opts) {
  const fs::path root(opts.root);
  if (!fs::is_directory(root))
    throw std::runtime_error("lint root is not a directory: " + opts.root);

  // Deterministic file order: collect, sort, then scan.
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && source_extension(entry.path()))
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<ScannedFile> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    std::string rel = fs::relative(p, root).generic_string();
    files.push_back(scan_source(std::move(rel), slurp(p)));
  }

  std::vector<Finding> all;
  std::map<const ScannedFile*, std::vector<Suppression>> sups;
  for (const auto& f : files) {
    auto s = parse_suppressions(f, all);
    run_determinism_rules(f, opts.config, all);
    sups[&f] = std::move(s);
  }
  run_layering_rules(files, opts.config, all);

  // The wire-contract verifier: protocol model + W/T/P+F passes.
  const ProtoModel model = build_proto_model(files);
  run_wire_rules(model, all);
  run_trailer_rules(model, all);
  run_flow_rules(model, opts.config, all);

  // Apply inline suppressions: a finding dies if a matching-rule NOLINT
  // sits on its line, or a NOLINTNEXTLINE on the line above.
  std::map<std::string, const ScannedFile*> by_path;
  for (const auto& f : files) by_path[f.rel_path] = &f;
  auto apply = [&](std::vector<Finding>& in) {
    std::vector<Finding> kept;
    for (auto& fd : in) {
      bool suppressed = false;
      const auto it = by_path.find(fd.rel_path);
      if (it != by_path.end()) {
        for (auto& s : sups[it->second]) {
          if (s.rule != fd.rule->name) continue;
          const int target = s.next_line ? s.line + 1 : s.line;
          if (target == fd.line) {
            suppressed = true;
            s.used = true;
            break;
          }
        }
      }
      if (!suppressed) kept.push_back(std::move(fd));
    }
    return kept;
  };
  std::vector<Finding> kept = apply(all);

  // S002 — stale suppressions: a well-formed NOLINT that suppressed
  // nothing in this run. Emitted after the first application round so a
  // `NOLINT(nowlb-nolint-stale: reason)` can suppress its own finding
  // (one level; stale-rule suppressions are never themselves flagged).
  {
    const Rule* s002 = rule_by_name(kRuleNolintStale);
    std::vector<Finding> stale;
    for (const auto& f : files) {
      int n = 0;
      for (const auto& s : sups[&f]) {
        if (!s.has_reason) continue;  // malformed: already an S001
        if (s.rule == kRuleNolintStale) continue;
        ++n;
        if (s.used) continue;
        Finding fd;
        fd.rule = s002;
        fd.rel_path = f.rel_path;
        fd.line = s.line;
        fd.message = "NOLINT(" + s.rule + ") suppresses no finding";
        fd.key = s.rule + "#stale#" + std::to_string(n);
        stale.push_back(std::move(fd));
      }
    }
    std::vector<Finding> stale_kept = apply(stale);
    kept.insert(kept.end(), std::make_move_iterator(stale_kept.begin()),
                std::make_move_iterator(stale_kept.end()));
  }
  sort_findings(kept);

  LintResult res;
  res.files_scanned = static_cast<int>(files.size());

  if (opts.update_baseline && !opts.baseline_path.empty()) {
    std::ofstream out(opts.baseline_path, std::ios::trunc);
    if (!out)
      throw std::runtime_error("cannot write baseline " + opts.baseline_path);
    out << to_baseline(kept);
  }

  // Baseline: a multiset of (rule, file, key) lines; each entry absorbs
  // one matching finding.
  std::map<std::string, int> baseline;
  if (!opts.baseline_path.empty() && !opts.update_baseline) {
    std::ifstream in(opts.baseline_path);
    // A missing baseline file is an empty baseline (first run).
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      ++baseline[line];
    }
  }
  for (auto& fd : kept) {
    auto it = baseline.find(baseline_line(fd));
    if (it != baseline.end() && it->second > 0) {
      --it->second;
      res.baselined.push_back(std::move(fd));
    } else {
      res.fresh.push_back(std::move(fd));
    }
  }
  for (const auto& [line, count] : baseline)
    for (int i = 0; i < count; ++i) res.stale_baseline.push_back(line);
  return res;
}

std::string format_findings(const std::vector<Finding>& findings,
                            const std::string& label) {
  std::ostringstream out;
  for (const auto& f : findings) {
    out << (label.empty() ? f.rel_path : label + "/" + f.rel_path) << ":"
        << f.line << ": [" << f.rule->code << " " << f.rule->name << "] "
        << f.message << ". hint: " << f.rule->hint << "\n";
  }
  return out.str();
}

std::string to_baseline(std::vector<Finding> findings) {
  std::vector<std::string> lines;
  lines.reserve(findings.size());
  for (const auto& f : findings) lines.push_back(baseline_line(f));
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  out << "# nowlb-lint baseline — pre-existing findings, burned down over\n"
         "# time. One finding per line: <rule>\\t<file>\\t<key>. Regenerate\n"
         "# with: nowlb-lint --root=src --baseline=<this file> "
         "--update-baseline\n";
  for (const auto& l : lines) out << l << "\n";
  return out.str();
}

}  // namespace nowlb::analyze
