// AST-lite protocol model for nowlb-lint's wire-contract rules.
//
// The lexer (lex.hpp) blanks everything that is not code; this layer walks
// the blanked lines and reconstructs just enough structure to verify the
// wire protocol: message structs with their `encode(msg::Writer&)` /
// `static decode(msg::Reader&)` / `encoded_size()` triples, the ordered
// field-operation sequences inside each body (including vector loops,
// nested struct encode/decode and marker-byte trailer groups), the
// `kTrailer*` marker constants, and the cross-module send/recv sites of
// every `kTag*` constant.
//
// It is deliberately not a C++ parser. Bodies it cannot understand are
// marked opaque and excluded from symmetry checking rather than guessed
// at; the seeded-mutation smoke (scripts/lint_mutation_check.sh) proves
// the parts it does understand keep firing. DESIGN.md §14 records the
// exact subset of C++ the extractor accepts.
#pragma once

#include <string>
#include <vector>

#include "analyze/lex.hpp"

namespace nowlb::analyze {

/// One wire operation extracted from an encode or decode body.
struct WireOp {
  enum Kind {
    Scalar,     // w.put(field) / s.field = r.get<T>()
    Count,      // w.put<T>(x.size()) / local = r.get<T>() feeding a loop
    Vec,        // w.put_vec(field) / s.field = r.get_vec<T>()
    Bytes,      // w.put_bytes(field) / s.field = r.get_bytes()
    Struct,     // field.encode(w) / s.field = X::decode(r)
    VecStruct,  // for (e : field) e.encode(w) / loop of X::decode(r)
    Marker,     // w.put(kTrailerX) — encode side only
  };
  Kind kind = Scalar;
  std::string field;        // field or marker-constant name
  std::string type_token;   // explicit <T> where present, else decl type
  int width = 0;            // bytes; 0 = unknown
  std::string elem_struct;  // Struct/VecStruct: nested struct name
  int line = 0;             // 1-based, in the declaring file
};

/// A run of ops under one condition. `cond.empty()` is the unconditional
/// prefix; otherwise the `if (<cond>)` text ("ft", "causal"). On the
/// decode side trailer branches carry the marker constant instead.
struct OpGroup {
  std::string cond;
  std::string marker;  // decode trailer branch / encode leading marker
  std::vector<WireOp> ops;
  int line = 0;
};

/// One additive term of an encoded_size() expression, normalized:
/// `2 * sizeof(T)` becomes two Sizeof terms, `(a.size() + b.size()) *
/// sizeof(T)` becomes two VecBytes terms.
struct SizeTerm {
  enum Kind {
    Sizeof,         // sizeof(field-or-type-or-marker)
    VecBytes,       // field.size() * sizeof(T)
    VecStructSize,  // field.size() * X::encoded_size()
    StructSize,     // field.encoded_size()
    RawSize,        // field.size() alone (raw byte payload)
    Const,          // integer literal
  };
  Kind kind = Sizeof;
  std::string token;      // sizeof argument / vector field / struct field
  std::string elem_type;  // VecBytes element type token
  int width = 0;          // Sizeof: resolved byte width (0 = unknown)
  long value = 0;         // Const
  int line = 0;
};

struct SizeGroup {
  std::string cond;  // "" = unconditional
  std::vector<SizeTerm> terms;
  int line = 0;
};

/// A data member of a message struct.
struct FieldDecl {
  std::string name;
  std::string type;       // full declared type text, normalized spacing
  int width = 0;          // scalar byte width; 0 = unknown/aggregate
  bool is_vector = false;
  std::string elem;       // vector element type token
  int elem_width = 0;     // 0 when the element is a struct
  int line = 0;
};

/// A struct that participates in the wire contract: it defines at least
/// one of encode / decode / encoded_size.
struct MsgStruct {
  std::string name;
  std::string file;  // rel_path of the declaring file
  int line = 0;

  std::vector<FieldDecl> fields;

  bool has_encode = false, has_decode = false, has_size = false;
  int encode_line = 0, decode_line = 0, size_line = 0;
  /// A body the extractor could not fully parse; symmetry checks skip it.
  bool encode_opaque = false, decode_opaque = false, size_opaque = false;

  /// Encode groups in emission order: [0] unconditional, then one group
  /// per `if (...)` block. Decode groups: [0] the unconditional prefix,
  /// then one group per trailer-marker branch.
  std::vector<OpGroup> encode_groups;
  std::vector<OpGroup> decode_groups;
  bool decode_has_trailer_loop = false;
  /// The trailer loop ends in an `else` (unknown markers rejected).
  bool decode_trailer_has_else = false;

  std::vector<SizeGroup> size_groups;

  const FieldDecl* field(const std::string& n) const {
    for (const auto& f : fields)
      if (f.name == n) return &f;
    return nullptr;
  }
};

/// A `kTrailer*` marker-byte constant.
struct TrailerConst {
  std::string name;
  long value = -1;  // -1: initializer not a literal
  std::string file;
  int line = 0;
};

/// One reference to a kTag* constant, classified by wire direction.
struct TagSite {
  enum Kind {
    Send,   // send/post call, or `tag = kTagX` message construction
    Recv,   // recv*/try_recv/case/== or != comparison
    Other,  // any other mention (reliable-tag lists, fault windows, ...)
  };
  Kind kind = Other;
  std::string file;
  int line = 0;
};

struct TagDecl {
  std::string name;
  std::string file;  // declaring file
  int line = 0;
  std::vector<TagSite> sites;
};

struct ProtoModel {
  std::vector<MsgStruct> structs;    // in (file, line) order
  std::vector<TrailerConst> trailers;
  std::vector<TagDecl> tags;         // sorted by name
};

/// Extract the protocol model from the scanned tree. Pure function of the
/// blanked sources; never throws on weird code — it degrades to opaque.
ProtoModel build_proto_model(const std::vector<ScannedFile>& files);

/// Byte width of a scalar type token ("std::int32_t", "double", ...).
/// 0 when unknown (user-defined types).
int scalar_width(const std::string& type_token);

/// Human-readable op description for findings ("field 'round' (4 bytes)").
std::string describe_op(const WireOp& op);

}  // namespace nowlb::analyze
