// P+F-rules: the cross-module tag-flow graph.
//
// Every kTag* constant declared anywhere in the tree gets its use sites
// classified (proto_model.cpp) as send (send/post call, or `tag = kTagX`
// message construction), recv (recv*/comparison/case dispatch), or other
// (reliable-tag lists, fault windows, log text). The rules:
//
//   P001 — declared but never referenced: dead protocol surface.
//   P002 — referenced but never examined on the receive side.
//   F001 — examined on the receive side but with no send site anywhere:
//          the dispatch arm is unreachable.
//   F002 — endpoint asymmetry: a tag sent from inside a configured
//          master/slave pair must be received inside the same pair, and
//          vice versa. Self-loops (slave -> slave work movement) count.
#include <string>
#include <vector>

#include "analyze/proto_model.hpp"
#include "analyze/rules.hpp"

namespace nowlb::analyze {

namespace {

Finding make(const Rule* r, const TagDecl& t, int line, std::string key,
             std::string message) {
  Finding fd;
  fd.rule = r;
  fd.rel_path = t.file;
  fd.line = line;
  fd.key = std::move(key);
  fd.message = std::move(message);
  return fd;
}

int count_kind(const TagDecl& t, TagSite::Kind k) {
  int n = 0;
  for (const auto& s : t.sites)
    if (s.kind == k) ++n;
  return n;
}

}  // namespace

void run_flow_rules(const ProtoModel& model, const RuleConfig& cfg,
                    std::vector<Finding>& out) {
  const Rule* p001 = rule_by_name(kRuleTagUnhandled);
  const Rule* p002 = rule_by_name(kRuleTagNoRecv);
  const Rule* f001 = rule_by_name(kRuleTagNoOrigin);
  const Rule* f002 = rule_by_name(kRuleTagAsym);

  for (const TagDecl& t : model.tags) {
    const int sends = count_kind(t, TagSite::Send);
    const int recvs = count_kind(t, TagSite::Recv);

    if (t.sites.empty()) {
      out.push_back(make(p001, t, t.line, t.name,
                         "message tag " + t.name +
                             " is declared but never dispatched"));
      continue;
    }
    if (recvs == 0) {
      out.push_back(make(
          p002, t, t.line, t.name,
          "message tag " + t.name +
              " is sent but never examined on the receive side"));
      continue;
    }
    if (sends == 0) {
      // Anchor at the first recv site: that's the unreachable dispatch.
      const TagSite* first = nullptr;
      for (const auto& s : t.sites)
        if (s.kind == TagSite::Recv) {
          first = &s;
          break;
        }
      Finding fd;
      fd.rule = f001;
      fd.rel_path = first->file;
      fd.line = first->line;
      fd.key = t.name;
      fd.message = "message tag " + t.name + " is received (" + first->file +
                   ":" + std::to_string(first->line) +
                   ") but nothing ever sends it";
      out.push_back(std::move(fd));
      continue;
    }

    // F002: per endpoint pair, a within-pair send needs a within-pair
    // recv and vice versa.
    for (const auto& [a, b] : cfg.endpoint_pairs) {
      auto in_pair = [&](const TagSite& s) {
        return s.file == a || s.file == b;
      };
      int pair_sends = 0, pair_recvs = 0;
      const TagSite* anchor = nullptr;
      for (const auto& s : t.sites) {
        if (!in_pair(s)) continue;
        if (s.kind == TagSite::Send) {
          ++pair_sends;
          if (!anchor) anchor = &s;
        } else if (s.kind == TagSite::Recv) {
          ++pair_recvs;
          if (!anchor) anchor = &s;
        }
      }
      if (pair_sends == 0 && pair_recvs == 0) continue;  // not their tag
      if (pair_sends > 0 && pair_recvs == 0) {
        Finding fd;
        fd.rule = f002;
        fd.rel_path = anchor->file;
        fd.line = anchor->line;
        fd.key = t.name + "@" + a;
        fd.message = "tag " + t.name + " is sent inside the endpoint pair (" +
                     a + ", " + b + ") but never received there";
        out.push_back(std::move(fd));
      } else if (pair_recvs > 0 && pair_sends == 0) {
        Finding fd;
        fd.rule = f002;
        fd.rel_path = anchor->file;
        fd.line = anchor->line;
        fd.key = t.name + "@" + a;
        fd.message = "tag " + t.name +
                     " is received inside the endpoint pair (" + a + ", " + b +
                     ") but never sent there";
        out.push_back(std::move(fd));
      }
    }
  }
}

}  // namespace nowlb::analyze
