#include "analyze/proto_model.hpp"

#include <algorithm>
#include <cctype>

namespace nowlb::analyze {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// A file's blanked code flattened to one string, with an offset -> line
/// map so ops can be anchored back to source lines.
struct Flat {
  std::string text;
  std::vector<std::size_t> line_start;  // offset of line i (0-based)

  explicit Flat(const ScannedFile& f) {
    for (int li = 0; li < f.line_count(); ++li) {
      line_start.push_back(text.size());
      text += f.code[li];
      text += '\n';
    }
    line_start.push_back(text.size());
  }

  int line_of(std::size_t pos) const {
    const auto it =
        std::upper_bound(line_start.begin(), line_start.end(), pos);
    return static_cast<int>(it - line_start.begin());  // 1-based
  }
};

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Last position before `i` holding a non-space char, or npos.
std::size_t prev_nonspace(const std::string& s, std::size_t i) {
  while (i > 0) {
    --i;
    if (!std::isspace(static_cast<unsigned char>(s[i]))) return i;
  }
  return std::string::npos;
}

/// Position just past the bracket matching s[open] ('(' or '{').
/// npos if unbalanced. Blanked code has no brackets inside literals.
std::size_t match_bracket(const std::string& s, std::size_t open) {
  const char o = s[open];
  const char c = o == '(' ? ')' : (o == '{' ? '}' : (o == '<' ? '>' : '\0'));
  if (!c) return std::string::npos;
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == o) ++depth;
    else if (s[i] == c && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::string trim(std::string s) {
  const auto a = s.find_first_not_of(" \t\n");
  if (a == std::string::npos) return "";
  const auto b = s.find_last_not_of(" \t\n");
  return s.substr(a, b - a + 1);
}

/// Collapse whitespace runs to single spaces (normalizes multi-line
/// conditions and type texts for stable fingerprints).
std::string squeeze(const std::string& s) {
  std::string out;
  bool ws = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      ws = true;
    } else {
      if (ws && !out.empty()) out.push_back(' ');
      ws = false;
      out.push_back(c);
    }
  }
  return out;
}

/// The last identifier in `s` ("" if none): `ins.orders` -> "orders",
/// `static_cast<int>(x)` -> "x" style extraction happens at call sites.
std::string last_ident(const std::string& s) {
  std::size_t end = s.size();
  while (end > 0 && !ident_char(s[end - 1])) --end;
  std::size_t begin = end;
  while (begin > 0 && ident_char(s[begin - 1])) --begin;
  return s.substr(begin, end - begin);
}

/// First identifier at or after `i`; advances `i` past it.
std::string next_ident(const std::string& s, std::size_t& i) {
  while (i < s.size() && !ident_char(s[i])) ++i;
  const std::size_t b = i;
  while (i < s.size() && ident_char(s[i])) ++i;
  return s.substr(b, i - b);
}

bool is_trailer_name(const std::string& id) {
  return id.size() > 8 && id.compare(0, 8, "kTrailer") == 0;
}

bool is_tag_name(const std::string& id) {
  return id.size() > 4 && id.compare(0, 4, "kTag") == 0 &&
         std::isupper(static_cast<unsigned char>(id[4]));
}

/// Strip a leading static_cast<...>(...) / cast wrapper: returns the
/// innermost argument text.
std::string strip_cast(std::string arg) {
  arg = trim(arg);
  for (;;) {
    const std::size_t lt = arg.find('<');
    if (arg.compare(0, 11, "static_cast") == 0 && lt != std::string::npos) {
      const std::size_t close = match_bracket(arg, lt);
      if (close == std::string::npos) return arg;
      const std::size_t paren = arg.find('(', close - 1);
      if (paren == std::string::npos) return arg;
      const std::size_t pclose = match_bracket(arg, paren);
      if (pclose == std::string::npos) return arg;
      arg = trim(arg.substr(paren + 1, pclose - paren - 2));
      continue;
    }
    return arg;
  }
}

}  // namespace

int scalar_width(const std::string& type_token) {
  const std::string t = last_ident(type_token);  // strip std:: etc.
  if (t == "int8_t" || t == "uint8_t" || t == "char" || t == "bool")
    return 1;
  if (t == "int16_t" || t == "uint16_t") return 2;
  if (t == "int32_t" || t == "uint32_t" || t == "int" || t == "unsigned" ||
      t == "float" || t == "Tag" || t == "Pid")
    return 4;
  if (t == "int64_t" || t == "uint64_t" || t == "double" || t == "size_t" ||
      t == "Time")
    return 8;
  return 0;
}

std::string describe_op(const WireOp& op) {
  switch (op.kind) {
    case WireOp::Scalar: {
      std::string d = "field '" + op.field + "'";
      if (op.width) d += " (" + std::to_string(op.width) + " bytes)";
      return d;
    }
    case WireOp::Count:
      return "count of '" + op.field + "' (" + std::to_string(op.width) +
             " bytes)";
    case WireOp::Vec:
      return "vector '" + op.field + "'";
    case WireOp::Bytes:
      return "byte blob '" + op.field + "'";
    case WireOp::Struct:
      return "nested " + op.elem_struct + " '" + op.field + "'";
    case WireOp::VecStruct:
      return "vector of " + op.elem_struct + " '" + op.field + "'";
    case WireOp::Marker:
      return "trailer marker " + op.field;
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Encode-body parsing
// ---------------------------------------------------------------------------

/// Parse one `.put*` chain starting at the '.' in `pos`. Appends ops;
/// returns position past the chain, or npos on something unparseable.
std::size_t parse_put_chain(const Flat& flat, std::size_t pos,
                            const MsgStruct& ms, OpGroup& group) {
  const std::string& s = flat.text;
  while (pos < s.size() && s[pos] == '.') {
    std::size_t i = pos + 1;
    const std::string method = next_ident(s, i);
    std::string type_token;
    i = skip_ws(s, i);
    if (i < s.size() && s[i] == '<') {  // .put<T>(...)
      const std::size_t close = match_bracket(s, i);
      if (close == std::string::npos) return std::string::npos;
      type_token = squeeze(s.substr(i + 1, close - i - 2));
      i = skip_ws(s, close);
    }
    if (i >= s.size() || s[i] != '(') return std::string::npos;
    const std::size_t argend = match_bracket(s, i);
    if (argend == std::string::npos) return std::string::npos;
    const std::string arg = strip_cast(s.substr(i + 1, argend - i - 2));

    WireOp op;
    op.line = flat.line_of(pos);
    op.type_token = type_token;
    if (method == "put") {
      if (arg.find(".size") != std::string::npos) {
        op.kind = WireOp::Count;
        op.field = last_ident(arg.substr(0, arg.find(".size")));
        op.width = type_token.empty() ? 0 : scalar_width(type_token);
      } else {
        op.field = last_ident(arg);
        if (is_trailer_name(op.field)) {
          op.kind = WireOp::Marker;
          op.width = 1;
        } else {
          op.kind = WireOp::Scalar;
          if (!type_token.empty()) {
            op.width = scalar_width(type_token);
          } else if (const FieldDecl* f = ms.field(op.field)) {
            op.width = f->width;
            op.type_token = f->type;
          }
        }
      }
    } else if (method == "put_vec") {
      op.kind = WireOp::Vec;
      op.field = last_ident(arg);
      if (const FieldDecl* f = ms.field(op.field)) {
        op.type_token = f->elem;
        op.width = f->elem_width;
      }
    } else if (method == "put_bytes") {
      op.kind = WireOp::Bytes;
      op.field = last_ident(arg);
    } else if (method == "reserve") {
      pos = skip_ws(s, argend);
      continue;  // pre-sizing, not a wire op
    } else {
      return std::string::npos;  // unknown writer method
    }
    group.ops.push_back(op);
    pos = skip_ws(s, argend);
  }
  return pos;
}

/// Parse an encode body [begin, end). Returns false -> opaque.
bool parse_encode_body(const Flat& flat, std::size_t begin, std::size_t end,
                       const std::string& writer, MsgStruct& ms) {
  const std::string& s = flat.text;
  ms.encode_groups.clear();
  ms.encode_groups.push_back(OpGroup{});  // [0] unconditional
  ms.encode_groups[0].line = flat.line_of(begin);

  // Conditional extent: ops inside [cond_begin, cond_end) belong to the
  // group opened by the innermost `if`. Nested ifs are opaque.
  std::size_t cond_end = 0;
  std::size_t active_group = 0;

  std::size_t i = begin;
  while (i < end) {
    i = skip_ws(s, i);
    if (i >= end) break;
    if (i >= cond_end) active_group = 0;

    if (ident_char(s[i])) {
      std::size_t j = i;
      const std::string id = next_ident(s, j);
      if (id == "if") {
        if (active_group != 0) return false;  // nested conditional: opaque
        j = skip_ws(s, j);
        if (j >= end || s[j] != '(') return false;
        const std::size_t cclose = match_bracket(s, j);
        if (cclose == std::string::npos || cclose > end) return false;
        OpGroup g;
        g.cond = squeeze(trim(s.substr(j + 1, cclose - j - 2)));
        g.line = flat.line_of(i);
        std::size_t body = skip_ws(s, cclose);
        if (body < end && s[body] == '{') {
          cond_end = match_bracket(s, body);
          if (cond_end == std::string::npos || cond_end > end) return false;
          i = body + 1;
        } else {  // braceless single statement
          cond_end = s.find(';', body);
          if (cond_end == std::string::npos || cond_end > end) return false;
          ++cond_end;
          i = body;
        }
        ms.encode_groups.push_back(std::move(g));
        active_group = ms.encode_groups.size() - 1;
        continue;
      }
      if (id == "for") {
        // Range-for over a vector field whose body nests X::encode.
        j = skip_ws(s, j);
        if (j >= end || s[j] != '(') return false;
        const std::size_t hclose = match_bracket(s, j);
        if (hclose == std::string::npos || hclose > end) return false;
        const std::string header = s.substr(j + 1, hclose - j - 2);
        const std::size_t colon = header.find(':');
        if (colon == std::string::npos) return false;  // index loop: opaque
        const std::string range = last_ident(trim(header.substr(colon + 1)));
        std::size_t body = skip_ws(s, hclose);
        std::size_t body_end;
        if (body < end && s[body] == '{') {
          body_end = match_bracket(s, body);
          ++body;
        } else {
          body_end = s.find(';', body);
          if (body_end != std::string::npos) ++body_end;
        }
        if (body_end == std::string::npos || body_end > end) return false;
        const std::string body_text = s.substr(body, body_end - body);
        if (body_text.find(".encode(") == std::string::npos) return false;
        WireOp op;
        op.kind = WireOp::VecStruct;
        op.field = range;
        op.line = flat.line_of(i);
        if (const FieldDecl* f = ms.field(range)) op.elem_struct = f->elem;
        ms.encode_groups[active_group].ops.push_back(op);
        i = body_end;
        continue;
      }
      if (id == writer) {
        j = skip_ws(s, j);
        if (j < end && s[j] == '.') {
          // w.put(...)... chain, or field.encode(w) is handled below.
          const std::size_t after =
              parse_put_chain(flat, j, ms, ms.encode_groups[active_group]);
          if (after == std::string::npos) return false;
          i = after;
          // Expect statement end.
          i = skip_ws(s, i);
          if (i < end && s[i] == ';') ++i;
          continue;
        }
        return false;  // writer used in an unrecognized way
      }
      // Possibly `field.encode(w);` — nested single-struct encode.
      std::size_t k = skip_ws(s, j);
      if (k < end && s[k] == '.') {
        std::size_t m = k + 1;
        const std::string method = next_ident(s, m);
        m = skip_ws(s, m);
        if (method == "encode" && m < end && s[m] == '(') {
          const std::size_t aclose = match_bracket(s, m);
          if (aclose == std::string::npos || aclose > end) return false;
          WireOp op;
          op.kind = WireOp::Struct;
          op.field = id;
          op.line = flat.line_of(i);
          if (const FieldDecl* f = ms.field(id)) op.elem_struct = f->type;
          ms.encode_groups[active_group].ops.push_back(op);
          i = skip_ws(s, aclose);
          if (i < end && s[i] == ';') ++i;
          continue;
        }
      }
      // Any other statement mentioning the writer is opaque; statements
      // that never touch it (asserts, locals) are skipped to the ';'.
      std::size_t stmt_end = s.find(';', i);
      if (stmt_end == std::string::npos || stmt_end > end) return false;
      const std::string stmt = s.substr(i, stmt_end - i);
      std::size_t wp = stmt.find(writer);
      while (wp != std::string::npos) {
        const bool l = wp == 0 || !ident_char(stmt[wp - 1]);
        const bool r = wp + writer.size() >= stmt.size() ||
                       !ident_char(stmt[wp + writer.size()]);
        if (l && r) return false;
        wp = stmt.find(writer, wp + 1);
      }
      i = stmt_end + 1;
      continue;
    }
    if (s[i] == '}' || s[i] == '{' || s[i] == ';') {
      ++i;
      continue;
    }
    ++i;
  }
  // Promote a leading marker put to the group's marker label.
  for (auto& g : ms.encode_groups) {
    if (!g.ops.empty() && g.ops.front().kind == WireOp::Marker)
      g.marker = g.ops.front().field;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Decode-body parsing
// ---------------------------------------------------------------------------

/// Parse `<lhs> = <rhs>;` decode statements into ops. Returns:
///   1 parsed, 0 statement does not read the reader, -1 opaque.
int parse_decode_stmt(const Flat& flat, const std::string& stmt,
                      std::size_t stmt_pos, const std::string& reader,
                      const MsgStruct& ms, OpGroup& group) {
  const std::size_t eq = stmt.find('=');
  std::string lhs = eq == std::string::npos ? "" : trim(stmt.substr(0, eq));
  std::string rhs = trim(eq == std::string::npos ? stmt : stmt.substr(eq + 1));

  // Does the statement use the reader at all?
  const std::size_t rp = find_ident(stmt, reader);
  if (rp == std::string::npos) return 0;

  // push_back(X::decode(r)) inside loops is handled by the caller; here a
  // direct nested decode: `s.field = X::decode(r);`
  const std::size_t dc = rhs.find("::decode");
  WireOp op;
  op.line = flat.line_of(stmt_pos);
  if (dc != std::string::npos) {
    op.kind = WireOp::Struct;
    op.field = last_ident(lhs);
    op.elem_struct = last_ident(rhs.substr(0, dc));
    group.ops.push_back(op);
    return 1;
  }

  // r.get<T>() / r.get_vec<T>() / r.get_bytes() / r.get_string()
  std::size_t g = rhs.find(reader + ".get");
  if (g != std::string::npos &&
      (g == 0 || !ident_char(rhs[g - 1]))) {
    std::size_t i = g + reader.size() + 1;
    const std::string method = next_ident(rhs, i);
    std::string type_token;
    i = skip_ws(rhs, i);
    if (i < rhs.size() && rhs[i] == '<') {
      const std::size_t close = match_bracket(rhs, i);
      if (close == std::string::npos) return -1;
      type_token = squeeze(rhs.substr(i + 1, close - i - 2));
    }
    op.type_token = type_token;
    op.field = last_ident(lhs);
    if (method == "get") {
      // A local (no '.') read is a count/loop bound; a member read is a
      // scalar field.
      op.kind = lhs.find('.') == std::string::npos && !lhs.empty() &&
                        ms.field(op.field) == nullptr
                    ? WireOp::Count
                    : WireOp::Scalar;
      op.width = scalar_width(type_token);
    } else if (method == "get_vec") {
      op.kind = WireOp::Vec;
      op.width = scalar_width(type_token);
    } else if (method == "get_bytes" || method == "get_string") {
      op.kind = WireOp::Bytes;
    } else {
      return -1;
    }
    group.ops.push_back(op);
    return 1;
  }
  return -1;  // reader used in an unrecognized way
}

bool parse_decode_body(const Flat& flat, std::size_t begin, std::size_t end,
                       const std::string& reader, MsgStruct& ms) {
  const std::string& s = flat.text;
  ms.decode_groups.clear();
  ms.decode_groups.push_back(OpGroup{});
  ms.decode_groups[0].line = flat.line_of(begin);

  std::size_t i = begin;
  while (i < end) {
    i = skip_ws(s, i);
    if (i >= end) break;
    if (!ident_char(s[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    const std::string id = next_ident(s, j);

    if (id == "while") {
      j = skip_ws(s, j);
      if (j >= end || s[j] != '(') return false;
      const std::size_t cclose = match_bracket(s, j);
      if (cclose == std::string::npos || cclose > end) return false;
      const std::string cond = s.substr(j + 1, cclose - j - 2);
      std::size_t body = skip_ws(s, cclose);
      if (body >= end || s[body] != '{') return false;
      const std::size_t body_end = match_bracket(s, body);
      if (body_end == std::string::npos || body_end > end) return false;
      if (cond.find(".remaining") == std::string::npos) return false;
      // ---- the trailer loop ----
      ms.decode_has_trailer_loop = true;
      std::size_t k = body + 1;
      // Marker read: first statement, `<var> = r.get<...>();`
      std::size_t semi = s.find(';', k);
      if (semi == std::string::npos || semi > body_end) return false;
      const std::string mstmt = s.substr(k, semi - k);
      const std::size_t meq = mstmt.find('=');
      if (meq == std::string::npos ||
          mstmt.find(reader + ".get") == std::string::npos)
        return false;
      const std::string marker_var = last_ident(mstmt.substr(0, meq));
      k = semi + 1;
      // Branches: if/else if (marker == kTrailerX) { ... } [else { ... }]
      while (k < body_end) {
        k = skip_ws(s, k);
        if (k >= body_end) break;
        if (!ident_char(s[k])) break;  // '}' — end of the loop body
        std::size_t b = k;
        std::string kw = next_ident(s, b);
        if (kw == "else") {
          std::size_t b2 = skip_ws(s, b);
          std::size_t b3 = b2;
          const std::string kw2 = next_ident(s, b3);
          if (kw2 == "if") {
            kw = "if";
            b = b3;
          } else {
            // terminal else: unknown markers rejected
            ms.decode_trailer_has_else = true;
            if (b2 < body_end && s[b2] == '{') {
              const std::size_t e = match_bracket(s, b2);
              if (e == std::string::npos || e > body_end) return false;
              k = e;
            } else {
              const std::size_t e = s.find(';', b2);
              if (e == std::string::npos || e > body_end) return false;
              k = e + 1;
            }
            continue;
          }
        }
        if (kw != "if") return false;
        b = skip_ws(s, b);
        if (b >= body_end || s[b] != '(') return false;
        const std::size_t bc = match_bracket(s, b);
        if (bc == std::string::npos || bc > body_end) return false;
        const std::string bcond = s.substr(b + 1, bc - b - 2);
        if (find_ident(bcond, marker_var) == std::string::npos ||
            bcond.find("==") == std::string::npos)
          return false;
        OpGroup branch;
        branch.line = flat.line_of(k);
        // The marker constant is whatever kTrailer* (or other ident on the
        // == side) the condition names.
        std::size_t ci = 0;
        std::string marker;
        for (;;) {
          const std::string cid = next_ident(bcond, ci);
          if (cid.empty()) break;
          if (cid != marker_var) {
            marker = cid;
            break;
          }
        }
        branch.marker = marker;
        std::size_t bb = skip_ws(s, bc);
        std::size_t bb_end;
        if (bb < body_end && s[bb] == '{') {
          bb_end = match_bracket(s, bb);
          ++bb;
        } else {
          bb_end = s.find(';', bb);
          if (bb_end != std::string::npos) ++bb_end;
        }
        if (bb_end == std::string::npos || bb_end > body_end) return false;
        // Statements inside the branch.
        std::size_t p = bb;
        while (p < bb_end) {
          const std::size_t e = s.find(';', p);
          if (e == std::string::npos || e >= bb_end) break;
          const int rc = parse_decode_stmt(flat, s.substr(p, e - p), p,
                                           reader, ms, branch);
          if (rc < 0) return false;
          p = e + 1;
        }
        ms.decode_groups.push_back(std::move(branch));
        k = bb_end;
      }
      i = body_end;
      continue;
    }

    if (id == "for") {
      j = skip_ws(s, j);
      if (j >= end || s[j] != '(') return false;
      const std::size_t hclose = match_bracket(s, j);
      if (hclose == std::string::npos || hclose > end) return false;
      std::size_t body = skip_ws(s, hclose);
      std::size_t body_end;
      if (body < end && s[body] == '{') {
        body_end = match_bracket(s, body);
        ++body;
      } else {
        body_end = s.find(';', body);
        if (body_end != std::string::npos) ++body_end;
      }
      if (body_end == std::string::npos || body_end > end) return false;
      const std::string body_text = s.substr(body, body_end - body);
      const std::size_t dc = body_text.find("::decode");
      const std::size_t pb = body_text.find(".push_back");
      if (dc == std::string::npos || pb == std::string::npos) return false;
      WireOp op;
      op.kind = WireOp::VecStruct;
      op.field = last_ident(body_text.substr(0, pb));
      op.elem_struct = last_ident(body_text.substr(0, dc));
      op.line = flat.line_of(i);
      ms.decode_groups[0].ops.push_back(op);
      i = body_end;
      continue;
    }

    if (id == "return") {
      const std::size_t e = s.find(';', j);
      if (e == std::string::npos || e > end) return false;
      i = e + 1;
      continue;
    }

    // Ordinary statement: parse to ';'. Skip statements that never touch
    // the reader (locals, reserve(), checks); anything else must parse.
    std::size_t stmt_end = s.find(';', i);
    if (stmt_end == std::string::npos || stmt_end > end) return false;
    const int rc = parse_decode_stmt(flat, s.substr(i, stmt_end - i), i,
                                     reader, ms, ms.decode_groups[0]);
    if (rc < 0) return false;
    i = stmt_end + 1;
  }
  return true;
}

// ---------------------------------------------------------------------------
// encoded_size parsing
// ---------------------------------------------------------------------------

/// Parse one additive expression into normalized terms. Returns false on
/// constructs the grammar does not cover.
bool parse_size_expr(const Flat& flat, const std::string& expr,
                     std::size_t expr_pos, std::vector<SizeTerm>& out) {
  // Split on top-level '+'.
  std::vector<std::string> parts;
  int depth = 0;
  std::string cur;
  for (char c : expr) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == '+' && depth == 0) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);

  const int line = flat.line_of(expr_pos);
  for (std::string part : parts) {
    part = trim(part);
    if (part.empty()) return false;

    // Split on top-level '*'.
    std::vector<std::string> factors;
    depth = 0;
    cur.clear();
    for (char c : part) {
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == '*' && depth == 0) {
        factors.push_back(trim(cur));
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    factors.push_back(trim(cur));

    long multiplier = 1;
    std::vector<std::string> sized;  // size-bearing factors
    for (const auto& f : factors) {
      if (!f.empty() &&
          std::all_of(f.begin(), f.end(), [](char c) {
            return std::isdigit(static_cast<unsigned char>(c));
          })) {
        multiplier *= std::stol(f);
      } else {
        sized.push_back(f);
      }
    }

    auto push = [&](SizeTerm t) {
      t.line = line;
      for (long m = 0; m < multiplier; ++m) out.push_back(t);
    };

    if (sized.empty()) {
      SizeTerm t;
      t.kind = SizeTerm::Const;
      t.value = multiplier;
      multiplier = 1;
      push(t);
      continue;
    }
    if (sized.size() == 1) {
      const std::string& f = sized[0];
      if (f.compare(0, 7, "sizeof(") == 0 || f.compare(0, 7, "sizeof ") == 0) {
        const std::size_t open = f.find('(');
        if (open == std::string::npos) return false;
        SizeTerm t;
        t.kind = SizeTerm::Sizeof;
        t.token = squeeze(trim(f.substr(open + 1, f.rfind(')') - open - 1)));
        t.width = scalar_width(t.token);
        push(t);
        continue;
      }
      if (f.find(".encoded_size") != std::string::npos) {
        SizeTerm t;
        t.kind = SizeTerm::StructSize;
        t.token = last_ident(f.substr(0, f.find(".encoded_size")));
        push(t);
        continue;
      }
      if (f.find(".size") != std::string::npos &&
          f.find("::") == std::string::npos) {
        SizeTerm t;
        t.kind = SizeTerm::RawSize;
        t.token = last_ident(f.substr(0, f.find(".size")));
        push(t);
        continue;
      }
      return false;
    }
    if (sized.size() == 2) {
      // <size-expr> * sizeof(T)  |  <size-expr> * X::encoded_size()
      std::string size_part, unit_part;
      for (const auto& f : sized) {
        if (f.find("sizeof") == 0 ||
            f.find("::encoded_size") != std::string::npos)
          unit_part = f;
        else
          size_part = f;
      }
      if (unit_part.empty() || size_part.empty()) return false;
      // size_part: `f.size()` or `(a.size() + b.size())`
      std::vector<std::string> vecs;
      std::string sp = trim(size_part);
      if (!sp.empty() && sp.front() == '(' && sp.back() == ')')
        sp = sp.substr(1, sp.size() - 2);
      std::size_t start = 0;
      depth = 0;
      for (std::size_t k = 0; k <= sp.size(); ++k) {
        if (k == sp.size() || (sp[k] == '+' && depth == 0)) {
          vecs.push_back(trim(sp.substr(start, k - start)));
          start = k + 1;
        } else if (sp[k] == '(') {
          ++depth;
        } else if (sp[k] == ')') {
          --depth;
        }
      }
      for (const auto& v : vecs) {
        const std::size_t sz = v.find(".size");
        if (sz == std::string::npos) return false;
        SizeTerm t;
        t.token = last_ident(v.substr(0, sz));
        if (unit_part.find("::encoded_size") != std::string::npos) {
          t.kind = SizeTerm::VecStructSize;
          t.elem_type =
              last_ident(unit_part.substr(0, unit_part.find("::encoded_size")));
        } else {
          t.kind = SizeTerm::VecBytes;
          const std::size_t open = unit_part.find('(');
          if (open == std::string::npos) return false;
          t.elem_type = squeeze(trim(
              unit_part.substr(open + 1, unit_part.rfind(')') - open - 1)));
          t.width = scalar_width(t.elem_type);
        }
        push(t);
      }
      continue;
    }
    return false;
  }
  return true;
}

bool parse_size_body(const Flat& flat, std::size_t begin, std::size_t end,
                     MsgStruct& ms) {
  const std::string& s = flat.text;
  ms.size_groups.clear();
  ms.size_groups.push_back(SizeGroup{});
  ms.size_groups[0].line = flat.line_of(begin);

  std::size_t i = begin;
  while (i < end) {
    i = skip_ws(s, i);
    if (i >= end) break;
    if (!ident_char(s[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    const std::string id = next_ident(s, j);

    if (id == "if") {
      j = skip_ws(s, j);
      if (j >= end || s[j] != '(') return false;
      const std::size_t cclose = match_bracket(s, j);
      if (cclose == std::string::npos || cclose > end) return false;
      SizeGroup g;
      g.cond = squeeze(trim(s.substr(j + 1, cclose - j - 2)));
      g.line = flat.line_of(i);
      std::size_t body = skip_ws(s, cclose);
      std::size_t body_end;
      if (body < end && s[body] == '{') {
        body_end = match_bracket(s, body);
        ++body;
      } else {
        body_end = s.find(';', body);
        if (body_end != std::string::npos) ++body_end;
      }
      if (body_end == std::string::npos || body_end > end) return false;
      // Statements inside: `n += EXPR;`
      std::size_t p = body;
      while (p < body_end) {
        p = skip_ws(s, p);
        const std::size_t e = s.find(';', p);
        if (e == std::string::npos || e >= body_end) break;
        const std::string stmt = s.substr(p, e - p);
        const std::size_t pe = stmt.find("+=");
        if (pe == std::string::npos) return false;
        if (!parse_size_expr(flat, trim(stmt.substr(pe + 2)), p, g.terms))
          return false;
        p = e + 1;
      }
      ms.size_groups.push_back(std::move(g));
      i = body_end;
      continue;
    }

    // `std::size_t n = EXPR;` / `return EXPR;` / `n += EXPR;`
    std::size_t stmt_end = s.find(';', i);
    if (stmt_end == std::string::npos || stmt_end > end) return false;
    std::string stmt = s.substr(i, stmt_end - i);
    std::string expr;
    if (id == "return") {
      expr = trim(stmt.substr(stmt.find("return") + 6));
      if (expr.empty() || expr == last_ident(expr)) {
        // `return n;` — the accumulator: nothing to parse.
        i = stmt_end + 1;
        continue;
      }
    } else {
      const std::size_t pe = stmt.find("+=");
      const std::size_t eq =
          pe != std::string::npos ? std::string::npos : stmt.find('=');
      if (pe != std::string::npos) {
        expr = trim(stmt.substr(pe + 2));
      } else if (eq != std::string::npos) {
        expr = trim(stmt.substr(eq + 1));
      } else {
        return false;
      }
    }
    if (!parse_size_expr(flat, expr, i, ms.size_groups[0].terms))
      return false;
    i = stmt_end + 1;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Struct and member discovery
// ---------------------------------------------------------------------------

/// Parse field declarations at depth 0 of the struct body.
void parse_fields(const Flat& flat, std::size_t begin, std::size_t end,
                  MsgStruct& ms) {
  const std::string& s = flat.text;
  std::size_t i = begin;
  std::string stmt;
  std::size_t stmt_pos = begin;
  bool discard = false;
  while (i < end) {
    const char c = s[i];
    if (c == '{') {
      const std::size_t close = match_bracket(s, i);
      if (close == std::string::npos || close > end) return;
      i = close;
      stmt.clear();  // member function / nested type: not a field
      discard = false;
      stmt_pos = i;
      continue;
    }
    if (c == ';') {
      const std::string t = trim(stmt);
      stmt.clear();
      const std::size_t pos = stmt_pos;
      stmt_pos = i + 1;
      const bool skip = discard;
      discard = false;
      ++i;
      if (skip || t.empty()) continue;
      if (t.find('(') != std::string::npos) continue;  // fn decl
      if (t.compare(0, 6, "using ") == 0 || t.compare(0, 7, "static ") == 0 ||
          t.compare(0, 7, "friend ") == 0 ||
          t.compare(0, 8, "typedef ") == 0 ||
          find_ident(t, "constexpr") != std::string::npos)
        continue;
      std::string decl = t;
      const std::size_t eq = decl.find('=');
      if (eq != std::string::npos) decl = trim(decl.substr(0, eq));
      if (decl.empty()) continue;
      FieldDecl fd;
      fd.name = last_ident(decl);
      if (fd.name.empty() || fd.name == decl) continue;  // no type part
      fd.type = squeeze(trim(decl.substr(0, decl.rfind(fd.name))));
      while (!fd.type.empty() &&
             (fd.type.back() == '&' || fd.type.back() == '*' ||
              fd.type.back() == ' '))
        fd.type.pop_back();
      if (fd.type.empty()) continue;
      fd.line = flat.line_of(pos);
      const std::size_t vec = fd.type.find("vector");
      if (vec != std::string::npos) {
        fd.is_vector = true;
        const std::size_t lt = fd.type.find('<', vec);
        const std::size_t gt = fd.type.rfind('>');
        if (lt != std::string::npos && gt != std::string::npos && gt > lt)
          fd.elem = squeeze(trim(fd.type.substr(lt + 1, gt - lt - 1)));
        fd.elem_width = scalar_width(fd.elem);
      } else {
        fd.width = scalar_width(fd.type);
        if (fd.type == "Bytes" || fd.type == "sim::Bytes" ||
            fd.type == "nowlb::Bytes" || fd.type == "std::string")
          fd.width = 0;
      }
      ms.fields.push_back(std::move(fd));
      continue;
    }
    stmt.push_back(c);
    ++i;
  }
}

/// Find a member function by name within [begin, end). `param_must` is a
/// token the parameter list must contain ("" = none). On success fills
/// (def_line, param_name, body_begin, body_end) and returns true.
bool find_member_fn(const Flat& flat, std::size_t begin, std::size_t end,
                    const std::string& name, const std::string& param_must,
                    int& def_line, std::string& param_name,
                    std::size_t& body_begin, std::size_t& body_end) {
  const std::string& s = flat.text;
  for (std::size_t pos = find_ident(s, name, begin);
       pos != std::string::npos && pos < end;
       pos = find_ident(s, name, pos + 1)) {
    // Reject member access / qualified calls: `.name(`, `->name(`, `::name(`.
    const std::size_t pv = prev_nonspace(s, pos);
    if (pv != std::string::npos &&
        (s[pv] == '.' || s[pv] == ':' ||
         (s[pv] == '>' && pv > 0 && s[pv - 1] == '-')))
      continue;
    std::size_t i = skip_ws(s, pos + name.size());
    if (i >= end || s[i] != '(') continue;
    const std::size_t pclose = match_bracket(s, i);
    if (pclose == std::string::npos || pclose > end) continue;
    const std::string params = s.substr(i + 1, pclose - i - 2);
    if (!param_must.empty() &&
        params.find(param_must) == std::string::npos)
      continue;
    // Skip qualifiers to '{' (definition) or ';' (declaration / call).
    std::size_t k = pclose;
    while (k < end && s[k] != '{' && s[k] != ';') ++k;
    if (k >= end || s[k] != '{') continue;
    const std::size_t close = match_bracket(s, k);
    if (close == std::string::npos || close > end) continue;
    def_line = flat.line_of(pos);
    param_name = last_ident(params);
    body_begin = k + 1;
    body_end = close - 1;
    return true;
  }
  return false;
}

void scan_structs(const ScannedFile& f, const Flat& flat, ProtoModel& model) {
  const std::string& s = flat.text;
  for (std::size_t pos = find_ident(s, "struct"); pos != std::string::npos;
       pos = find_ident(s, "struct", pos + 1)) {
    std::size_t i = pos + 6;
    const std::string name = next_ident(s, i);
    if (name.empty()) continue;
    // Find '{' before any ';' (else: forward declaration).
    std::size_t k = i;
    while (k < s.size() && s[k] != '{' && s[k] != ';') ++k;
    if (k >= s.size() || s[k] != '{') continue;
    const std::size_t close = match_bracket(s, k);
    if (close == std::string::npos) continue;
    const std::size_t body_begin = k + 1, body_end = close - 1;

    MsgStruct ms;
    ms.name = name;
    ms.file = f.rel_path;
    ms.line = flat.line_of(pos);
    parse_fields(flat, body_begin, body_end, ms);

    int line = 0;
    std::string param;
    std::size_t fb = 0, fe = 0;
    if (find_member_fn(flat, body_begin, body_end, "encode", "Writer", line,
                       param, fb, fe)) {
      ms.has_encode = true;
      ms.encode_line = line;
      ms.encode_opaque = !parse_encode_body(flat, fb, fe, param, ms);
    }
    if (find_member_fn(flat, body_begin, body_end, "decode", "Reader", line,
                       param, fb, fe)) {
      ms.has_decode = true;
      ms.decode_line = line;
      ms.decode_opaque = !parse_decode_body(flat, fb, fe, param, ms);
    }
    if (find_member_fn(flat, body_begin, body_end, "encoded_size", "", line,
                       param, fb, fe)) {
      ms.has_size = true;
      ms.size_line = line;
      ms.size_opaque = !parse_size_body(flat, fb, fe, ms);
    }
    if (ms.has_encode || ms.has_decode || ms.has_size)
      model.structs.push_back(std::move(ms));
  }
}

// ---------------------------------------------------------------------------
// Trailer constants and tag flow
// ---------------------------------------------------------------------------

void scan_trailer_consts(const ScannedFile& f, ProtoModel& model) {
  for (int li = 0; li < f.line_count(); ++li) {
    const std::string& line = f.code[li];
    if (find_ident(line, "constexpr") == std::string::npos) continue;
    std::size_t i = 0;
    for (;;) {
      const std::string id = next_ident(line, i);
      if (id.empty()) break;
      if (!is_trailer_name(id)) continue;
      TrailerConst tc;
      tc.name = id;
      tc.file = f.rel_path;
      tc.line = li + 1;
      const std::size_t eq = line.find('=', i);
      if (eq != std::string::npos) {
        std::size_t v = skip_ws(line, eq + 1);
        long val = 0;
        bool any = false;
        while (v < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[v]))) {
          val = val * 10 + (line[v] - '0');
          ++v;
          any = true;
        }
        if (any) tc.value = val;
      }
      model.trailers.push_back(std::move(tc));
    }
  }
}

/// All kTag* identifiers on a line.
void extract_tags(const std::string& line, std::vector<std::string>& ids) {
  std::size_t i = 0;
  for (;;) {
    const std::string id = next_ident(line, i);
    if (id.empty()) break;
    if (is_tag_name(id)) ids.push_back(id);
  }
}

/// Classify one line's wire direction for tag-flow purposes.
TagSite::Kind classify_tag_line(const std::string& line) {
  // Receive side: a recv-family call, a comparison, or a switch case.
  if (line.find("recv") != std::string::npos ||
      line.find("==") != std::string::npos ||
      line.find("!=") != std::string::npos ||
      find_ident(line, "case") != std::string::npos)
    return TagSite::Recv;
  // Send side: a send/post call, or message construction `tag = kTagX`.
  if (find_ident(line, "send") != std::string::npos ||
      find_ident(line, "post") != std::string::npos)
    return TagSite::Send;
  const std::size_t tp = find_ident(line, "tag");
  if (tp != std::string::npos) {
    const std::size_t after = line.find_first_not_of(" \t", tp + 3);
    if (after != std::string::npos && line[after] == '=' &&
        (after + 1 >= line.size() || line[after + 1] != '='))
      return TagSite::Send;
  }
  return TagSite::Other;
}

void scan_tags(const std::vector<ScannedFile>& files, ProtoModel& model) {
  std::vector<TagDecl>& tags = model.tags;
  auto find_tag = [&](const std::string& name) -> TagDecl* {
    for (auto& t : tags)
      if (t.name == name) return &t;
    return nullptr;
  };

  // Pass 1: declarations — `constexpr ... Tag kTagX = ...`.
  for (const auto& f : files) {
    for (int li = 0; li < f.line_count(); ++li) {
      const std::string& line = f.code[li];
      if (find_ident(line, "constexpr") == std::string::npos) continue;
      if (find_ident(line, "Tag") == std::string::npos) continue;
      std::vector<std::string> ids;
      extract_tags(line, ids);
      for (const auto& id : ids) {
        if (find_tag(id)) continue;
        TagDecl t;
        t.name = id;
        t.file = f.rel_path;
        t.line = li + 1;
        tags.push_back(std::move(t));
      }
    }
  }

  // Pass 2: classified use sites. Physical lines are joined into
  // paren-balanced logical statements first, so a tag on the continuation
  // line of a multi-line `ctx.send(...)` call still classifies as a send.
  // A line ending in '{' terminates the join (a lambda or function body
  // is starting — its statements classify on their own), as does an
  // 8-line window: both keep a multi-hundred-line lambda argument from
  // collapsing into one statement.
  for (const auto& f : files) {
    int li = 0;
    while (li < f.line_count()) {
      const int stmt_begin = li;
      std::string stmt = f.code[li];
      int depth = 0;
      auto count = [&depth](const std::string& line) {
        for (char c : line) {
          if (c == '(') ++depth;
          if (c == ')') --depth;
        }
      };
      auto opens_block = [](const std::string& line) {
        const auto last = line.find_last_not_of(" \t");
        return last != std::string::npos && line[last] == '{';
      };
      count(stmt);
      while (depth > 0 && li + 1 < f.line_count() &&
             li - stmt_begin < 8 && !opens_block(f.code[li])) {
        ++li;
        stmt += ' ';
        stmt += f.code[li];
        count(f.code[li]);
      }
      const int stmt_end = li;
      ++li;

      std::vector<std::string> ids;
      extract_tags(stmt, ids);
      if (ids.empty()) continue;
      const TagSite::Kind kind = classify_tag_line(stmt);
      // Anchor each tag at the physical line that names it.
      for (int pl = stmt_begin; pl <= stmt_end; ++pl) {
        std::vector<std::string> line_ids;
        extract_tags(f.code[pl], line_ids);
        for (const auto& id : line_ids) {
          TagDecl* t = find_tag(id);
          if (!t) continue;
          if (t->file == f.rel_path && t->line == pl + 1) continue;  // decl
          TagSite site;
          site.file = f.rel_path;
          site.line = pl + 1;
          site.kind = kind;
          t->sites.push_back(site);
        }
      }
    }
  }
  std::sort(tags.begin(), tags.end(),
            [](const TagDecl& a, const TagDecl& b) { return a.name < b.name; });
}

}  // namespace

ProtoModel build_proto_model(const std::vector<ScannedFile>& files) {
  ProtoModel model;
  for (const auto& f : files) {
    const Flat flat(f);
    scan_structs(f, flat, model);
    scan_trailer_consts(f, model);
  }
  scan_tags(files, model);
  return model;
}

}  // namespace nowlb::analyze
