// nowlb-lint driver: walk a source root, run every rule family, apply
// inline NOLINT suppressions and the checked-in baseline, and render the
// result. Library API so tests can run the linter in-process.
#pragma once

#include <string>
#include <vector>

#include "analyze/rules.hpp"

namespace nowlb::analyze {

struct LintOptions {
  /// Directory to lint (e.g. "src" or an absolute path).
  std::string root;
  /// Prefix prepended to relative paths in reports ("src" makes findings
  /// read `src/sim/x.hpp:12`). Defaults to `root` as given.
  std::string label;
  /// Baseline file; empty disables baselining.
  std::string baseline_path;
  /// Rewrite the baseline to the current findings instead of reporting.
  bool update_baseline = false;
  RuleConfig config = default_config();
};

struct LintResult {
  std::vector<Finding> fresh;      // findings not covered by the baseline
  std::vector<Finding> baselined;  // matched a baseline entry
  /// Baseline entries that no longer match anything — candidates for
  /// removal (reported, but not an error).
  std::vector<std::string> stale_baseline;
  int files_scanned = 0;

  bool clean() const { return fresh.empty(); }
};

/// Scan, lint, and baseline-filter `opts.root`. Throws std::runtime_error
/// on unreadable roots or baseline files.
LintResult run_lint(const LintOptions& opts);

/// Render findings the way the CLI prints them (one line per finding,
/// `<label>/<file>:<line>: [<code> <name>] <message>. hint: <hint>`).
std::string format_findings(const std::vector<Finding>& findings,
                            const std::string& label);

/// Serialize findings in baseline format (sorted, line-independent).
std::string to_baseline(std::vector<Finding> findings);

}  // namespace nowlb::analyze
