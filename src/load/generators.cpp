#include "load/generators.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace nowlb::load {

using sim::Context;
using sim::ProcessBody;
using sim::Task;
using sim::Time;

namespace {
constexpr Time kBurstChunk = 100 * sim::kMillisecond;
}  // namespace

ProcessBody constant() {
  return [](Context& ctx) -> Task<> {
    for (;;) co_await ctx.compute(sim::kSecond);
  };
}

ProcessBody oscillating(Time period, Time duration, Time initial_delay) {
  NOWLB_CHECK(duration > 0 && duration < period);
  return [=](Context& ctx) -> Task<> {
    co_await ctx.sleep(initial_delay);
    for (;;) {
      // Busy phase: request CPU in chunks so the wall-clock "on" window is
      // tracked even when sharing the CPU stretches each chunk.
      const Time busy_until = ctx.now() + duration;
      while (ctx.now() < busy_until) {
        co_await ctx.compute(std::min(kBurstChunk, busy_until - ctx.now()));
      }
      const Time idle = period - duration;
      co_await ctx.sleep(idle);
    }
  };
}

ProcessBody ramp(Time ramp_time) {
  NOWLB_CHECK(ramp_time > 0);
  return [=](Context& ctx) -> Task<> {
    const Time start = ctx.now();
    for (;;) {
      const Time elapsed = ctx.now() - start;
      const double share =
          std::min(1.0, static_cast<double>(elapsed) /
                            static_cast<double>(ramp_time));
      const Time on = static_cast<Time>(share * kBurstChunk);
      const Time off = kBurstChunk - on;
      if (on > 0) co_await ctx.compute(on);
      if (off > 0) co_await ctx.sleep(off);
    }
  };
}

ProcessBody random_bursts(Time min_on, Time max_on, Time min_off,
                          Time max_off) {
  NOWLB_CHECK(min_on <= max_on && min_off <= max_off);
  return [=](Context& ctx) -> Task<> {
    for (;;) {
      const Time on = min_on + static_cast<Time>(ctx.rng().next_double() *
                                                 (max_on - min_on));
      const Time off = min_off + static_cast<Time>(ctx.rng().next_double() *
                                                   (max_off - min_off));
      const Time busy_until = ctx.now() + on;
      while (ctx.now() < busy_until) {
        co_await ctx.compute(std::min(kBurstChunk, busy_until - ctx.now()));
      }
      co_await ctx.sleep(off);
    }
  };
}

}  // namespace nowlb::load
