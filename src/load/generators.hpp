// Competing-load generators: the "other users" of a non-dedicated
// workstation network (§5).
//
// Each generator is a process body spawned (non-essential) on a slave's
// host; it steals CPU quanta from the slave through the host scheduler,
// exactly like a competing UNIX task. The paper evaluates a constant
// competing load (Figs. 7-8) and an oscillating one with a 20 s period and
// 10 s duration (Fig. 9).
#pragma once

#include "sim/world.hpp"

namespace nowlb::load {

/// CPU-bound forever: halves the slave's effective rate.
sim::ProcessBody constant();

/// On for `duration`, off for `period - duration`, repeating.
/// Fig. 9 uses period = 20 s, duration = 10 s.
sim::ProcessBody oscillating(sim::Time period, sim::Time duration,
                             sim::Time initial_delay = 0);

/// CPU share ramps linearly from 0 to 100 % over `ramp_time`, then stays.
/// Modelled as duty-cycled 100 ms bursts.
sim::ProcessBody ramp(sim::Time ramp_time);

/// Random on/off bursts: on for U(min_on, max_on), off for
/// U(min_off, max_off) — background users coming and going.
sim::ProcessBody random_bursts(sim::Time min_on, sim::Time max_on,
                               sim::Time min_off, sim::Time max_off);

}  // namespace nowlb::load
