// Streaming statistics over repeated measurements.
//
// The paper reports "the average of at least 3 measurements" with vertical
// bars showing the range; Accumulator provides exactly those summaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace nowlb {

/// Welford-style streaming accumulator: count / mean / min / max / stddev.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Half-width of the min..max range bar the paper draws.
  double range_halfwidth() const { return n_ ? (max_ - min_) / 2.0 : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A named time series of (t, value) samples — used for Fig. 9 style traces.
struct Series {
  std::vector<double> t;
  std::vector<double> v;
  void add(double time, double value) {
    t.push_back(time);
    v.push_back(value);
  }
  std::size_t size() const { return t.size(); }
};

}  // namespace nowlb
