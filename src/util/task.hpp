// Coroutine task type.
//
// Task<T> is a lazily-started C++20 coroutine with symmetric transfer: a
// simulated process is an ordinary coroutine returning Task<>, suspended
// on primitive awaitables (compute / sleep / recv) and resumed by the
// engine at the right virtual time; helper coroutines (typed sends,
// collectives, application phases) compose without stack growth or manual
// callbacks. The type itself is pure coroutine machinery with no
// simulator dependency, which is why it lives in util: msg-layer
// templates return Task without pulling in the sim layer (sim/task.hpp
// re-exports it as sim::Task).
//
// Lifetime: Task owns the coroutine frame and destroys it in its destructor.
// Destroying an outer frame destroys the inner Task objects held in it, so
// tearing down a world mid-computation (e.g. infinite load generators)
// reclaims whole coroutine stacks without running them to completion.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace nowlb {

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

template <typename T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

/// Lazily-started coroutine; owns its frame. Await it to run it to
/// completion (with symmetric transfer back to the awaiter), or call
/// start() once to kick off a root task driven by external resumptions.
template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool done() const { return !h_ || h_.done(); }

  /// Begin executing a root task. The frame stays alive (owned by this
  /// Task) after completion; poll done() or wrap the body to observe it.
  void start() { h_.resume(); }

  /// Rethrow any exception captured by a completed root task.
  void rethrow_if_error() {
    if (h_ && h_.promise().error) std::rethrow_exception(h_.promise().error);
  }

  // Awaiter interface (await a Task to run it as a child).
  bool await_ready() const noexcept { return !h_ || h_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() {
    auto& p = h_.promise();
    if (p.error) std::rethrow_exception(p.error);
    if constexpr (!std::is_void_v<T>) return std::move(*p.value);
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace nowlb
