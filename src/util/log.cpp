#include "util/log.hpp"

#include <cstdio>
#include <cstring>
#include <map>

namespace nowlb {

LogLevel Log::level_ = LogLevel::Warn;
std::ostream* Log::sink_ = &std::cerr;
std::mutex Log::mu_;
double (*Log::clock_fn_)(void*) = nullptr;
void* Log::clock_owner_ = nullptr;

namespace {
// Function-local static: safe against static-init-order issues from
// emitters in other translation units.
std::map<std::string, LogLevel>& component_levels() {
  static std::map<std::string, LogLevel> levels;
  return levels;
}
}  // namespace

void Log::set_level(const std::string& component, LogLevel l) {
  component_levels()[component] = l;
}

void Log::clear_component_levels() { component_levels().clear(); }

bool Log::enabled(LogLevel l, const char* component) {
  if (l >= level_) return true;  // global level admits it; skip the map
  const auto& levels = component_levels();
  if (levels.empty()) return false;
  const auto it = levels.find(component);
  return it != levels.end() && l >= it->second;
}

void Log::set_time_source(double (*now_seconds)(void*), void* owner) {
  clock_fn_ = now_seconds;
  clock_owner_ = owner;
}

void Log::clear_time_source(void* owner) {
  if (clock_owner_ != owner) return;
  clock_fn_ = nullptr;
  clock_owner_ = nullptr;
}

const char* Log::level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void Log::write(LogLevel l, const std::string& component,
                const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (clock_fn_) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[t=%.6fs] ", clock_fn_(clock_owner_));
    (*sink_) << buf;
  }
  (*sink_) << '[' << level_name(l) << "] [" << component << "] " << message
           << '\n';
}

}  // namespace nowlb
