#include "util/log.hpp"

namespace nowlb {

LogLevel Log::level_ = LogLevel::Warn;
std::ostream* Log::sink_ = &std::cerr;
std::mutex Log::mu_;

const char* Log::level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void Log::write(LogLevel l, const std::string& component,
                const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  (*sink_) << '[' << level_name(l) << "] [" << component << "] " << message
           << '\n';
}

}  // namespace nowlb
