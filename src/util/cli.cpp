#include "util/cli.hpp"

#include <cstdlib>

namespace nowlb {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "true";  // bare --flag is boolean; values use --name=value
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long long Cli::get_int(const std::string& name, long long fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::atoll(it->second.c_str());
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::atof(it->second.c_str());
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace nowlb
