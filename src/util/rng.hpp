// Deterministic random number generation.
//
// Every stochastic element of an experiment (random-walk loads, jittered
// message overheads) draws from an explicitly seeded Rng so runs are exactly
// reproducible; nothing in the library touches std::random_device.
#pragma once

#include <cstdint>
#include <limits>

namespace nowlb {

/// xoshiro256** with a splitmix64 seeder — small, fast, well distributed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Derive an independent child stream (for per-process RNGs).
  Rng fork() { return Rng(next_u64()); }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace nowlb
