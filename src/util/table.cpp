#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace nowlb {

Table& Table::header(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& s) {
  NOWLB_CHECK(!cells_.empty(), "cell() before row()");
  cells_.back().push_back(s);
  return *this;
}

Table& Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return cell(os.str());
}

Table& Table::cell(long long v) { return cell(std::to_string(v)); }

Table& Table::cell_pm(double mean, double halfwidth, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << mean << " ±"
     << std::setprecision(precision) << halfwidth;
  return cell(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : cells_)
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], r[c].size());
    }

  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << std::right
         << r[c];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit_row(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  }
  for (const auto& r : cells_) emit_row(r);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : cells_) emit(r);
  return os.str();
}

std::string ascii_chart(const std::vector<double>& t,
                        const std::vector<double>& v, int width, int height,
                        const std::string& label) {
  if (t.empty() || v.empty() || t.size() != v.size()) return "(empty series)\n";
  const double t0 = t.front(), t1 = t.back();
  double vmin = *std::min_element(v.begin(), v.end());
  double vmax = *std::max_element(v.begin(), v.end());
  if (vmax - vmin < 1e-12) vmax = vmin + 1.0;

  // Sample-and-hold resample into `width` columns.
  std::vector<double> col(static_cast<std::size_t>(width), vmin);
  std::size_t j = 0;
  for (int c = 0; c < width; ++c) {
    const double tc =
        t0 + (t1 - t0) * (static_cast<double>(c) / std::max(1, width - 1));
    while (j + 1 < t.size() && t[j + 1] <= tc) ++j;
    col[static_cast<std::size_t>(c)] = v[j];
  }

  std::ostringstream os;
  if (!label.empty()) os << label << '\n';
  for (int r = height - 1; r >= 0; --r) {
    const double lo = vmin + (vmax - vmin) * r / height;
    const double hi = vmin + (vmax - vmin) * (r + 1) / height;
    os << std::setw(10) << std::fixed << std::setprecision(2) << hi << " |";
    for (int c = 0; c < width; ++c) {
      const double x = col[static_cast<std::size_t>(c)];
      os << ((x >= lo && (x < hi || r == height - 1)) ? '*'
             : (x >= hi)                              ? '.'
                                                      : ' ');
    }
    os << '\n';
  }
  os << std::setw(10) << ' ' << " +" << std::string(width, '-') << '\n';
  os << std::setw(12) << ' ' << "t=" << std::setprecision(1) << t0 << "s .. "
     << t1 << "s\n";
  return os.str();
}

}  // namespace nowlb
