// Aligned-text table and CSV emitters for bench output.
//
// Every bench binary prints the rows the paper's tables/figures report; the
// Table type keeps that output uniform and machine-greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nowlb {

/// Column-aligned table with a title, header row, and string cells.
/// Numeric helpers format with fixed precision so rows line up.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> names);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& s);
  Table& cell(const char* s) { return cell(std::string(s)); }
  Table& cell(double v, int precision = 2);
  Table& cell(long long v);
  Table& cell(int v) { return cell(static_cast<long long>(v)); }
  Table& cell(std::size_t v) { return cell(static_cast<long long>(v)); }

  /// mean ± half-range, the paper's error-bar convention.
  Table& cell_pm(double mean, double halfwidth, int precision = 2);

  void print(std::ostream& os) const;
  std::string to_csv() const;

  std::size_t rows() const { return cells_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// ASCII sparkline chart of a series (for Fig. 9-style traces in terminal).
/// Renders `height` rows of `width` columns, resampling the series.
std::string ascii_chart(const std::vector<double>& t,
                        const std::vector<double>& v, int width = 72,
                        int height = 12, const std::string& label = "");

}  // namespace nowlb
