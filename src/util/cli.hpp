// Tiny command-line flag parser for bench and example binaries.
//
// Accepts `--name=value`; bare `--flag` is boolean true; everything else is
// positional.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace nowlb {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace nowlb
