// The repo-wide raw byte buffer: message payloads, serialized archives.
//
// Lives in util so the serialization layer (msg/) and the simulator (sim/)
// can share one definition without either including the other.
#pragma once

#include <cstddef>
#include <vector>

namespace nowlb {

using Bytes = std::vector<std::byte>;

}  // namespace nowlb
