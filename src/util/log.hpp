// Minimal leveled logger.
//
// Experiments run thousands of simulated seconds; logging defaults to Warn so
// benches stay quiet, and tests can raise verbosity per component:
//
//   Log::set_level(LogLevel::Warn);            // global floor
//   Log::set_level("transport", LogLevel::Debug);  // one component verbose
//
// When a simulation is running, the owning World installs a time source and
// every line gains a `[t=12.345678s]` simulated-time prefix, so fault-sweep
// logs line up with trace timelines.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace nowlb {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global logging configuration (process-wide).
class Log {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel l) { level_ = l; }

  /// Per-component override: `set_level("transport", Debug)` makes that
  /// component verbose regardless of the global level. Pass an empty map
  /// away with clear_component_levels().
  static void set_level(const std::string& component, LogLevel l);
  static void clear_component_levels();

  /// Should a line at level `l` from `component` be emitted? Checks the
  /// component override first, then the global level.
  static bool enabled(LogLevel l, const char* component);

  static void set_sink(std::ostream* os) { sink_ = os; }

  /// Simulated-time source for the `[t=...s]` prefix. `owner` identifies
  /// the installer (a World); clear_time_source is a no-op for any other
  /// owner, so nested worlds cannot steal each other's clock.
  static void set_time_source(double (*now_seconds)(void*), void* owner);
  static void clear_time_source(void* owner);
  static bool has_time_source() { return clock_fn_ != nullptr; }

  /// Emit one line: `[t=...s] [level] [component] message`. Thread-safe.
  static void write(LogLevel l, const std::string& component,
                    const std::string& message);

  static const char* level_name(LogLevel l);

 private:
  static LogLevel level_;
  static std::ostream* sink_;
  static std::mutex mu_;
  static double (*clock_fn_)(void*);
  static void* clock_owner_;
};

namespace detail {
struct LogLine {
  LogLevel level;
  const char* component;
  std::ostringstream os;
  LogLine(LogLevel l, const char* c) : level(l), component(c) {}
  ~LogLine() { Log::write(level, component, os.str()); }
};
}  // namespace detail

}  // namespace nowlb

/// NOWLB_LOG(Info, "lb") << "moved " << n << " units";
#define NOWLB_LOG(lvl, component)                                       \
  if (!::nowlb::Log::enabled(::nowlb::LogLevel::lvl, component)) {      \
  } else                                                                \
    ::nowlb::detail::LogLine(::nowlb::LogLevel::lvl, component).os
