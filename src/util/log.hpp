// Minimal leveled logger.
//
// Experiments run thousands of simulated seconds; logging defaults to Warn so
// benches stay quiet, and tests can raise verbosity per component.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace nowlb {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global logging configuration (process-wide).
class Log {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel l) { level_ = l; }
  static void set_sink(std::ostream* os) { sink_ = os; }

  /// Emit one line: `[level] [component] message`. Thread-safe.
  static void write(LogLevel l, const std::string& component,
                    const std::string& message);

  static const char* level_name(LogLevel l);

 private:
  static LogLevel level_;
  static std::ostream* sink_;
  static std::mutex mu_;
};

namespace detail {
struct LogLine {
  LogLevel level;
  const char* component;
  std::ostringstream os;
  LogLine(LogLevel l, const char* c) : level(l), component(c) {}
  ~LogLine() { Log::write(level, component, os.str()); }
};
}  // namespace detail

}  // namespace nowlb

/// NOWLB_LOG(Info, "lb") << "moved " << n << " units";
#define NOWLB_LOG(lvl, component)                               \
  if (::nowlb::LogLevel::lvl < ::nowlb::Log::level()) {         \
  } else                                                        \
    ::nowlb::detail::LogLine(::nowlb::LogLevel::lvl, component).os
