// Lightweight runtime-checked assertions that stay on in release builds.
//
// The simulator and load balancer are full of protocol invariants (work
// conservation, ownership consistency, event ordering) whose violation must
// abort an experiment loudly rather than corrupt results silently.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nowlb {

/// Thrown when a NOWLB_CHECK invariant fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace nowlb

/// Always-on invariant check. `NOWLB_CHECK(cond)` or
/// `NOWLB_CHECK(cond, "context " << value)`.
#define NOWLB_CHECK(cond, ...)                                           \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream nowlb_check_os;                                 \
      nowlb_check_os << "" __VA_ARGS__;                                  \
      ::nowlb::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                    nowlb_check_os.str());               \
    }                                                                    \
  } while (false)
