// Reliable transport for the load-balancing protocol (DESIGN.md §9).
//
// Wraps the runtime's report/instruction/move traffic in a per-(peer, tag)
// sequenced channel: every message carries a sequence number, the receiver
// acknowledges each one, and the sender retransmits on a timeout with
// exponential backoff until acked or out of retries. The receiver delivers
// in order, suppresses duplicates (lossy-network dups and retransmit
// replays look identical) and holds reordered arrivals until the gap
// closes — so the protocol layer above sees exactly the classic perfect
// network semantics, on top of a lossy one.
//
// One Transport is owned per protocol agent (the master and each slave
// agent). It installs itself as the mailbox tap of its process, consuming
// acks and enveloped reliable-tag messages; everything else passes
// through untouched. Disabled (the default), it installs nothing and
// send() degrades to a plain ctx.send — zero behavioural footprint.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "lb/config.hpp"
#include "lb/hooks.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"
#include "sim/task.hpp"

namespace nowlb::obs {
class TraceBus;
class Counter;
}  // namespace nowlb::obs

namespace nowlb::lb {

struct TransportStats {
  std::uint64_t sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t dups_suppressed = 0;
  std::uint64_t held_reordered = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t swallowed_from_dead = 0;
};

class Transport {
 public:
  /// Installs the mailbox tap (when enabled). `reliable_tags` is the set
  /// of tags to envelope/ack; `check` may be null.
  Transport(sim::Context& ctx, TransportConfig cfg,
            std::vector<sim::Tag> reliable_tags, RuntimeHooks* check);
  ~Transport();
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Reliable send: envelopes, posts, and arms a retransmit timer. With
  /// the transport disabled this is exactly ctx.send. Sends towards a
  /// blackholed peer are silently discarded.
  sim::Task<> send(sim::Pid dst, sim::Tag tag, sim::Bytes payload);

  /// Declare a peer dead: cancel every retransmit towards it, drop its
  /// held reordered messages, and swallow all its future arrivals.
  void blackhole(sim::Pid pid);
  bool blackholed(sim::Pid pid) const { return dead_.count(pid) > 0; }

  /// Block until every pending send is acked (or its retries exhausted).
  /// Call before an agent exits: destroying the transport cancels the
  /// retransmit timers, so an unacked-but-dropped final message would
  /// otherwise be lost forever and strand its receiver.
  sim::Task<> drain();
  bool has_pending() const;

  const TransportStats& stats() const { return stats_; }

 private:
  /// A per-direction channel is identified by (peer pid, message tag).
  struct Key {
    sim::Pid peer;
    sim::Tag tag;
    auto operator<=>(const Key&) const = default;
  };
  struct Pending {
    /// Application payload only; the envelope (seq prefix + length) is
    /// rebuilt byte-identically on retransmit, so the retained state is
    /// one buffer instead of a full message copy.
    sim::Bytes payload;
    int attempts = 0;
    sim::Engine::EventId timer;
  };

  bool on_message(sim::Message& m);  // the tap; true = consumed
  void post_raw(sim::Message m);     // network post, no CPU charge
  /// Frame a reliable message: seq-prefixed envelope around the payload.
  sim::Message make_envelope(sim::Pid dst, sim::Tag tag, std::uint32_t seq,
                             const sim::Bytes& payload) const;
  void send_ack(sim::Pid dst, sim::Tag tag, std::uint32_t seq);
  void arm_timer(Key k, std::uint32_t seq);
  void on_timeout(Key k, std::uint32_t seq);
  /// Hand a stripped message to the application via an engine event:
  /// the resumed coroutine may destroy this transport, so the event
  /// captures only the mailbox (owned by the process, which outlives us).
  void deliver_async(sim::Message m, std::uint32_t seq);
  void cancel_all_timers();
  bool reliable(sim::Tag tag) const;

  sim::Context& ctx_;
  TransportConfig cfg_;
  std::vector<sim::Tag> tags_;
  RuntimeHooks* check_;

  // ---- flight recorder (cached from the world's hub; null when off or
  // when the transport is disabled) ----
  obs::TraceBus* trace_ = nullptr;
  obs::Counter* m_sent_ = nullptr;
  obs::Counter* m_retransmits_ = nullptr;
  obs::Counter* m_acks_ = nullptr;
  obs::Counter* m_dups_ = nullptr;
  obs::Counter* m_held_ = nullptr;
  obs::Counter* m_gave_up_ = nullptr;
  obs::Counter* m_swallowed_ = nullptr;
  /// Expires in the destructor so the process kill hook, which cannot be
  /// deregistered, becomes a no-op once the transport is gone.
  std::shared_ptr<bool> alive_;

  std::map<Key, std::uint32_t> next_send_seq_;
  std::map<Key, std::map<std::uint32_t, Pending>> pending_;
  std::map<Key, std::uint32_t> next_recv_seq_;
  std::map<Key, std::map<std::uint32_t, sim::Message>> held_;
  std::set<sim::Pid> dead_;
  TransportStats stats_;
};

}  // namespace nowlb::lb
