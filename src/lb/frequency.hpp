// Load-balancing frequency selection (§4.3, Fig. 4).
//
// The target period between balancings is the largest of three lower
// bounds, so that (a) master interaction overhead stays negligible,
// (b) the system does not try to track load changes faster than work can
// usefully be moved, and (c) OS quantum context-switching effects average
// out of the measurements. Costs are measured continuously at run time;
// as work units shrink (LU) the rate rises and the same period maps to
// more units, automatically reducing the relative balancing overhead
// (§4.7).
#pragma once

#include <algorithm>

#include "lb/config.hpp"
#include "sim/time.hpp"

namespace nowlb::lb {

class FrequencyController {
 public:
  explicit FrequencyController(const LbConfig& cfg)
      : cfg_(cfg),
        interaction_cost_(cfg.initial_interaction_cost),
        move_event_cost_(cfg.initial_move_cost) {}

  /// Record a measured master-interaction cost (slave blocked time).
  void observe_interaction(Time cost) {
    interaction_cost_ = ewma(interaction_cost_, cost);
  }

  /// Record the measured cost of one work-movement event.
  void observe_move_event(Time cost) {
    move_event_cost_ = ewma(move_event_cost_, cost);
  }

  Time interaction_cost() const { return interaction_cost_; }
  Time move_event_cost() const { return move_event_cost_; }

  /// The target period between load balancings: the highest lower bound of
  /// Fig. 4 — max(interaction x 20, movement x 0.1, quantum x 5, 500 ms).
  Time period() const {
    const auto scaled = [](double m, Time t) {
      return static_cast<Time>(m * static_cast<double>(t));
    };
    Time p = cfg_.min_period;
    p = std::max(p, scaled(cfg_.interaction_multiple, interaction_cost_));
    p = std::max(p, scaled(cfg_.movement_multiple, move_event_cost_));
    p = std::max(p, scaled(cfg_.quanta_multiple, cfg_.quantum));
    return p;
  }

  /// Work units a slave with predicted `rate` (units/s) should complete
  /// before its next balance round (at least one unit so hooks make
  /// progress).
  double units_for_period(double rate) const {
    return std::max(1.0, rate * sim::to_seconds(period()));
  }

 private:
  static Time ewma(Time old_value, Time sample) {
    // 0.5 smoothing keeps estimates responsive but stable.
    return (old_value + sample) / 2;
  }

  LbConfig cfg_;
  Time interaction_cost_;
  Time move_event_cost_;
};

}  // namespace nowlb::lb
