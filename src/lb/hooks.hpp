// Runtime hook interface: the lb layer's view of an attached observer.
//
// The master, slaves and transport report every protocol event through
// this abstract base; src/check's InvariantSet implements it (and more).
// Keeping the interface in the lb layer lets the runtime stay free of
// upward includes into check/ — the layering contract (DESIGN.md §11) —
// while check/ still receives every event it used to.
//
// Every hook is a no-op by default and fires synchronously at zero
// virtual cost, so a hooked run dispatches the exact same event sequence
// as a bare one.
#pragma once

#include <cstdint>
#include <vector>

#include "lb/plan.hpp"
#include "lb/protocol.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"

namespace nowlb::lb {

class RuntimeHooks {
 public:
  virtual ~RuntimeHooks() = default;

  // ---- master-side hookpoints (lb/master.cpp) ----
  /// One full collection: reports[r] is valid where mask[r] is set.
  virtual void on_master_reports(sim::Time /*t*/, int /*round*/,
                                 const std::vector<StatusReport>&,
                                 const std::vector<bool>& /*mask*/) {}
  /// The per-round balancing decision over the remaining distribution.
  virtual void on_master_decision(sim::Time /*t*/, const Decision&,
                                  const std::vector<int>& /*remaining*/) {}
  /// Instructions handed to one rank (observed at send time).
  virtual void on_master_instructions(sim::Time /*t*/, int /*rank*/,
                                      const Instructions&) {}

  // ---- slave-side hookpoints (lb/slave.cpp) ----
  virtual void on_slave_report(sim::Time /*t*/, int /*rank*/,
                               const StatusReport&) {}
  /// Instructions applied by a slave (normal, polled, or pre-paid path).
  virtual void on_slave_instructions(sim::Time /*t*/, int /*rank*/,
                                     const Instructions&) {}
  /// A transfer's send half completed: `actual` units packed of the
  /// `ordered` target and put on the wire towards `to_rank`.
  virtual void on_units_packed(sim::Time /*t*/, int /*from_rank*/,
                               int /*to_rank*/, int /*ordered*/,
                               int /*actual*/) {}
  /// A transfer's receive half completed: `actual` units integrated.
  virtual void on_units_unpacked(sim::Time /*t*/, int /*rank*/,
                                 int /*from_rank*/, int /*ordered*/,
                                 int /*actual*/) {}

  // ---- fault-tolerance hookpoints (lb/master.cpp, lb/transport.cpp) ----
  /// Master evicted `rank` (pid) after a missed-report heartbeat deadline.
  virtual void on_rank_evicted(sim::Time /*t*/, int /*rank*/,
                               sim::Pid /*pid*/) {}
  /// Master assigned orphaned unit ids from an evicted rank to `rank`.
  virtual void on_orphans_assigned(sim::Time /*t*/, int /*rank*/,
                                   const std::vector<int>& /*ids*/) {}
  /// Slave `rank` reconstructed and integrated adopted unit ids.
  virtual void on_adopted(sim::Time /*t*/, int /*rank*/,
                          const std::vector<int>& /*ids*/) {}
  /// Reliable transport delivered (src, tag, seq) to dst's application.
  virtual void on_transport_deliver(sim::Time /*t*/, sim::Pid /*src*/,
                                    sim::Pid /*dst*/, int /*tag*/,
                                    std::uint32_t /*seq*/) {}
  /// Sender exhausted retransmit attempts for a message towards dst.
  virtual void on_transport_gave_up(sim::Time /*t*/, sim::Pid /*src*/,
                                    sim::Pid /*dst*/, int /*tag*/) {}
};

}  // namespace nowlb::lb
