// Cluster: wires one master + N slaves (one workstation each) into a World,
// handling pid bookkeeping, master spawning, and competing-load attachment.
//
// Usage:
//   lb::Cluster cluster(world, ccfg);
//   cluster.spawn([&](sim::Context& ctx, int rank, const lb::Cluster& c)
//                     -> sim::Task<> { ... });
//   cluster.add_load(0, constant_load());   // optional competing tasks
//   world.run();
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "lb/config.hpp"
#include "lb/master.hpp"
#include "lb/slave.hpp"
#include "sim/world.hpp"

namespace nowlb::lb {

struct ClusterConfig {
  int slaves = 4;
  int phases = 1;
  Termination termination = Termination::kPhases;
  LbConfig lb;
  std::vector<int> initial_counts;  // per-rank work units
  double first_window_fraction = 0.05;
  /// Global work-unit id range for fault recovery (see MasterConfig).
  int unit_ids_begin = 0;
  int unit_ids_end = -1;
  /// False: spawn no master (static distribution, zero balancing overhead
  /// — the paper's plain "parallel execution" baseline).
  bool use_master = true;
};

class Cluster {
 public:
  /// Body of slave `rank`; runs as the slave process.
  using SlaveBody =
      std::function<sim::Task<>(sim::Context&, int rank, const Cluster&)>;

  Cluster(sim::World& world, ClusterConfig cfg);

  /// Spawn the slaves and the master. Call exactly once.
  void spawn(SlaveBody body);

  /// Attach a competing load process to slave `rank`'s host. The body is a
  /// plain process body; it is spawned non-essential.
  void add_load(int rank, sim::ProcessBody load_body);

  /// Pids of the competing loads attached to `rank` (for the efficiency
  /// metric's competing-CPU term).
  const std::vector<sim::Pid>& loads(int rank) const {
    return load_pids_.at(rank);
  }
  bool has_master() const { return cfg_.use_master; }

  int slaves() const { return cfg_.slaves; }
  const std::vector<sim::Pid>& slave_pids() const { return slave_pids_; }
  sim::Pid slave_pid(int rank) const { return slave_pids_.at(rank); }
  sim::Host& slave_host(int rank) { return *slave_hosts_.at(rank); }
  sim::Pid master_pid() const { return master_pid_; }
  const MasterStats& stats() const { return *stats_; }
  const ClusterConfig& config() const { return cfg_; }

  /// Build a configured SlaveAgent for `rank` (inside its process body).
  SlaveAgent make_agent(sim::Context& ctx, int rank,
                        SlaveAgent::WorkOps ops) const;

 private:
  sim::World& world_;
  ClusterConfig cfg_;
  std::vector<sim::Host*> slave_hosts_;
  sim::Host* master_host_ = nullptr;
  std::vector<sim::Pid> slave_pids_;
  std::vector<std::vector<sim::Pid>> load_pids_;
  sim::Pid master_pid_ = sim::kAnyPid;
  std::shared_ptr<MasterStats> stats_;
  bool spawned_ = false;
};

}  // namespace nowlb::lb
