// Proportional work allocation (§3.2).
//
// Given filtered per-slave rates and the total remaining work, compute an
// integer distribution proportional to each slave's contribution to the
// aggregate rate: w_i = W * r_i / sum(r). Integerized by largest remainder
// so that sum(w) == W exactly (work conservation).
#pragma once

#include <vector>

namespace nowlb::lb {

/// Largest-remainder proportional split of `total` units by `rates`.
/// Slaves with rate <= 0 receive no work unless every rate is <= 0, in
/// which case the split is even (no information — keep current behaviour
/// sane rather than starving everyone).
std::vector<int> proportional_allocation(const std::vector<double>& rates,
                                         int total);

/// Projected completion time of `work` at `rates` (max over slaves of
/// work_i / rate_i); slaves with non-positive rate and positive work make
/// the projection infinite.
double projected_time(const std::vector<int>& work,
                      const std::vector<double>& rates);

}  // namespace nowlb::lb
