// Trend-adaptive rate filter (§3.2).
//
// "New rate information for each slave is filtered by averaging it with
// older rate information, with relative weights set according to trends
// observed in the rates." A steady sequence of same-direction changes means
// the rate really is moving (competing task started/stopped), so the filter
// weights new data more; isolated spikes are damped to prevent oscillation.
#pragma once

#include <cmath>

namespace nowlb::lb {

class TrendFilter {
 public:
  TrendFilter(double alpha, double fast_alpha, int trend_len)
      : alpha_(alpha), fast_alpha_(fast_alpha), trend_len_(trend_len) {}

  /// Default-constructed filter uses the paper-calibrated weights.
  TrendFilter() : TrendFilter(0.3, 0.75, 3) {}

  /// Feed a raw rate sample; returns the filtered (adjusted) rate.
  double update(double raw) {
    if (!initialized_) {
      initialized_ = true;
      filtered_ = raw;
      return filtered_;
    }
    const int direction = raw > filtered_ ? 1 : (raw < filtered_ ? -1 : 0);
    if (direction != 0 && direction == last_direction_) {
      ++run_length_;
    } else {
      run_length_ = 1;
    }
    last_direction_ = direction;

    const double a = (run_length_ >= trend_len_) ? fast_alpha_ : alpha_;
    filtered_ += a * (raw - filtered_);
    return filtered_;
  }

  double value() const { return filtered_; }
  bool initialized() const { return initialized_; }
  /// Length of the current run of same-direction changes.
  int trend_run() const { return run_length_; }

  void reset() {
    initialized_ = false;
    filtered_ = 0;
    last_direction_ = 0;
    run_length_ = 0;
  }

  /// Override the filter state (used when the controller adjusts an idle
  /// slave's estimate from outside the measurement stream).
  void force(double v) {
    initialized_ = true;
    filtered_ = v;
    last_direction_ = 0;
    run_length_ = 0;
  }

 private:
  double alpha_;
  double fast_alpha_;
  int trend_len_;
  bool initialized_ = false;
  double filtered_ = 0;
  int last_direction_ = 0;
  int run_length_ = 0;
};

}  // namespace nowlb::lb
