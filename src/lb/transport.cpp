#include "lb/transport.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "lb/protocol.hpp"
#include "msg/serialize.hpp"
#include "obs/obs.hpp"
#include "sim/world.hpp"
#include "util/log.hpp"

namespace nowlb::lb {

Transport::Transport(sim::Context& ctx, TransportConfig cfg,
                     std::vector<sim::Tag> reliable_tags,
                     RuntimeHooks* check)
    : ctx_(ctx),
      cfg_(cfg),
      tags_(std::move(reliable_tags)),
      check_(check),
      alive_(std::make_shared<bool>(true)) {
  if (!cfg_.enabled) return;
  if (obs::Observability* o = ctx_.world().obs()) {
    trace_ = &o->trace;
    auto& m = o->metrics;
    m_sent_ = &m.counter("transport_sent", "Reliable messages sent");
    m_retransmits_ =
        &m.counter("transport_retransmits", "Timeout retransmissions");
    m_acks_ = &m.counter("transport_acks_sent", "Acknowledgements sent");
    m_dups_ = &m.counter("transport_dups_suppressed",
                         "Duplicate deliveries suppressed");
    m_held_ = &m.counter("transport_held_reordered",
                         "Out-of-order arrivals held for the gap to close");
    m_gave_up_ =
        &m.counter("transport_gave_up", "Messages abandoned after max retries");
    m_swallowed_ = &m.counter("transport_swallowed_from_dead",
                              "Arrivals swallowed from blackholed peers");
  }
  ctx_.process().mailbox().set_tap(
      [this](sim::Message& m) { return on_message(m); });
  // A crashed host stops transmitting: cancel every retransmit timer the
  // instant the process is killed. The weak_ptr guards the normal-exit
  // case where the transport is destroyed while the process lives on.
  ctx_.process().add_kill_hook(
      [this, alive = std::weak_ptr<bool>(alive_)] {
        if (!alive.expired()) cancel_all_timers();
      });
}

Transport::~Transport() {
  cancel_all_timers();
  if (cfg_.enabled && !ctx_.process().mailbox().closed()) {
    ctx_.process().mailbox().set_tap(nullptr);
  }
}

bool Transport::reliable(sim::Tag tag) const {
  return std::find(tags_.begin(), tags_.end(), tag) != tags_.end();
}

sim::Task<> Transport::send(sim::Pid dst, sim::Tag tag, sim::Bytes payload) {
  if (!cfg_.enabled) {
    co_await ctx_.send(dst, tag, std::move(payload));
    co_return;
  }
  if (blackholed(dst)) co_return;
  const Key k{dst, tag};
  const std::uint32_t seq = next_send_seq_[k]++;
  sim::Message m = make_envelope(dst, tag, seq, payload);
  // Charge the sender's software overhead like a plain send, then post
  // the envelope and keep only the payload for retransmission.
  co_await ctx_.compute(ctx_.world().config().msg.send_overhead);
  Pending& p = pending_[k][seq];
  p.payload = std::move(payload);
  ++stats_.sent;
  if (m_sent_ != nullptr) m_sent_->inc();
  post_raw(std::move(m));
  arm_timer(k, seq);
}

sim::Message Transport::make_envelope(sim::Pid dst, sim::Tag tag,
                                      std::uint32_t seq,
                                      const sim::Bytes& payload) const {
  msg::Writer w;
  w.reserve(sizeof(seq) + sizeof(std::uint64_t) + payload.size());
  w.put(seq);
  w.put_bytes(payload);
  sim::Message m;
  m.src = ctx_.pid();
  m.dst = dst;
  m.tag = tag;
  m.payload = w.take();
  return m;
}

void Transport::post_raw(sim::Message m) {
  sim::World& w = ctx_.world();
  sim::Process& target = w.process(m.dst);
  w.network().post(std::move(m), ctx_.process().host().id(), target,
                   target.host().id());
}

void Transport::send_ack(sim::Pid dst, sim::Tag tag, std::uint32_t seq) {
  msg::Writer w;
  w.put(static_cast<std::int32_t>(tag)).put(seq);
  sim::Message ack;
  ack.src = ctx_.pid();
  ack.dst = dst;
  ack.tag = kTagAck;
  ack.payload = w.take();
  ++stats_.acks_sent;
  if (m_acks_ != nullptr) m_acks_->inc();
  if (trace_ != nullptr) {
    trace_->instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "tx", "tx.ack",
                    {"tag", static_cast<double>(tag)},
                    {"seq", static_cast<double>(seq)},
                    {"dst", static_cast<double>(dst)});
  }
  // Acks are NIC-level: no software overhead, fired straight from the
  // delivery event. They ride the same lossy network as everything else;
  // a lost ack is covered by the peer's retransmit.
  post_raw(std::move(ack));
}

void Transport::arm_timer(Key k, std::uint32_t seq) {
  auto it = pending_.find(k);
  if (it == pending_.end()) return;
  auto jt = it->second.find(seq);
  if (jt == it->second.end()) return;
  const double scale = std::pow(cfg_.backoff, jt->second.attempts);
  const sim::Time delay =
      static_cast<sim::Time>(static_cast<double>(cfg_.rto) * scale);
  jt->second.timer = ctx_.world().engine().schedule_after(
      delay, [this, k, seq] { on_timeout(k, seq); });
}

void Transport::on_timeout(Key k, std::uint32_t seq) {
  auto it = pending_.find(k);
  if (it == pending_.end()) return;
  auto jt = it->second.find(seq);
  if (jt == it->second.end()) return;
  if (blackholed(k.peer)) {
    it->second.erase(jt);
    return;
  }
  Pending& p = jt->second;
  if (p.attempts >= cfg_.max_retries) {
    ++stats_.gave_up;
    if (m_gave_up_ != nullptr) m_gave_up_->inc();
    if (trace_ != nullptr) {
      trace_->instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "tx",
                      "tx.gave_up", {"tag", static_cast<double>(k.tag)},
                      {"seq", static_cast<double>(seq)},
                      {"peer", static_cast<double>(k.peer)});
    }
    NOWLB_LOG(Debug, "lb.transport")
        << "pid " << ctx_.pid() << " gave up on tag " << k.tag << " seq "
        << seq << " -> pid " << k.peer;
    if (check_) {
      check_->on_transport_gave_up(ctx_.now(), ctx_.pid(), k.peer, k.tag);
    }
    it->second.erase(jt);
    return;
  }
  ++p.attempts;
  ++stats_.retransmits;
  if (m_retransmits_ != nullptr) m_retransmits_->inc();
  if (trace_ != nullptr) {
    trace_->instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "tx",
                    "tx.retransmit", {"tag", static_cast<double>(k.tag)},
                    {"seq", static_cast<double>(seq)},
                    {"attempt", static_cast<double>(p.attempts)});
  }
  post_raw(make_envelope(k.peer, k.tag, seq, p.payload));
  arm_timer(k, seq);
}

bool Transport::on_message(sim::Message& m) {
  if (m.tag == kTagAck) {
    msg::Reader r(m.payload);
    const sim::Tag tag = r.get<std::int32_t>();
    const auto seq = r.get<std::uint32_t>();
    const Key k{m.src, tag};
    auto it = pending_.find(k);
    if (it != pending_.end()) {
      auto jt = it->second.find(seq);
      if (jt != it->second.end()) {
        ctx_.world().engine().cancel(jt->second.timer);
        it->second.erase(jt);
      }
    }
    return true;  // acks never reach the application
  }
  if (!reliable(m.tag)) return false;
  if (blackholed(m.src)) {
    ++stats_.swallowed_from_dead;
    if (m_swallowed_ != nullptr) m_swallowed_->inc();
    return true;
  }
  msg::Reader r(m.payload);
  const auto seq = r.get<std::uint32_t>();
  sim::Bytes payload = r.get_bytes();
  // Ack every arrival, duplicates included: the first ack may have been
  // lost and the peer is still retransmitting.
  send_ack(m.src, m.tag, seq);
  const Key k{m.src, m.tag};
  std::uint32_t& expect = next_recv_seq_[k];
  if (seq < expect) {
    ++stats_.dups_suppressed;
    if (m_dups_ != nullptr) m_dups_->inc();
    return true;
  }
  sim::Message stripped;
  stripped.src = m.src;
  stripped.dst = m.dst;
  stripped.tag = m.tag;
  stripped.payload = std::move(payload);
  if (seq > expect) {
    // Gap: hold until the missing predecessors arrive (retransmission).
    if (held_[k].emplace(seq, std::move(stripped)).second) {
      ++stats_.held_reordered;
      if (m_held_ != nullptr) m_held_->inc();
    } else {
      ++stats_.dups_suppressed;
      if (m_dups_ != nullptr) m_dups_->inc();
    }
    return true;
  }
  deliver_async(std::move(stripped), seq);
  ++expect;
  auto ht = held_.find(k);
  if (ht != held_.end()) {
    auto& gaps = ht->second;
    for (auto g = gaps.find(expect); g != gaps.end();
         g = gaps.find(expect)) {
      deliver_async(std::move(g->second), expect);
      gaps.erase(g);
      ++expect;
    }
  }
  return true;
}

void Transport::deliver_async(sim::Message m, std::uint32_t seq) {
  sim::Mailbox* mb = &ctx_.process().mailbox();
  RuntimeHooks* check = check_;
  const sim::Pid src = m.src;
  const sim::Pid dst = m.dst;
  const int tag = m.tag;
  const sim::Time t = ctx_.now();
  ctx_.world().engine().schedule_at(
      t, [mb, check, src, dst, tag, seq, t, msg = std::move(m)]() mutable {
        if (check) check->on_transport_deliver(t, src, dst, tag, seq);
        mb->deliver(std::move(msg));
      });
}

bool Transport::has_pending() const {
  for (const auto& [k, seqs] : pending_) {
    if (!seqs.empty()) return true;
  }
  return false;
}

sim::Task<> Transport::drain() {
  if (!cfg_.enabled) co_return;
  // Acks are consumed by the tap, not this coroutine, so polling suffices;
  // the retransmit timers keep firing while we sleep. Bounded: every
  // pending entry is erased on ack, blackhole, or retry exhaustion.
  const sim::Time t0 = ctx_.now();
  const bool waited = has_pending();
  while (has_pending()) co_await ctx_.sleep(cfg_.rto / 2);
  if (waited && trace_ != nullptr) {
    trace_->complete(t0, ctx_.now(), ctx_.host_id(), ctx_.pid(), "tx",
                     "tx.drain");
  }
}

void Transport::cancel_all_timers() {
  sim::Engine& eng = ctx_.world().engine();
  for (auto& [k, seqs] : pending_) {
    for (auto& [seq, p] : seqs) eng.cancel(p.timer);
  }
  pending_.clear();
}

void Transport::blackhole(sim::Pid pid) {
  if (!dead_.insert(pid).second) return;
  if (trace_ != nullptr) {
    trace_->instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "tx",
                    "tx.blackhole", {"peer", static_cast<double>(pid)});
  }
  sim::Engine& eng = ctx_.world().engine();
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first.peer == pid) {
      for (auto& [seq, p] : it->second) eng.cancel(p.timer);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->first.peer == pid) {
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace nowlb::lb
