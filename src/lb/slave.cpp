#include "lb/slave.hpp"

#include <algorithm>

#include "lb/hooks.hpp"
#include "msg/channel.hpp"
#include "obs/obs.hpp"
#include "sim/world.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace nowlb::lb {

using sim::Task;
using sim::Time;
using sim::to_seconds;

SlaveAgent::SlaveAgent(sim::Context& ctx, sim::Pid master, int rank,
                       std::vector<sim::Pid> slave_pids, const LbConfig& lb,
                       WorkOps ops, double first_window_units)
    : ctx_(ctx),
      master_(master),
      rank_(rank),
      slave_pids_(std::move(slave_pids)),
      lb_(lb),
      ops_(std::move(ops)),
      until_next_(std::max(1.0, first_window_units)) {
  NOWLB_CHECK(ops_.remaining && ops_.pack && ops_.unpack,
              "WorkOps must be fully populated");
  if (lb_.fault_tolerance()) {
    NOWLB_CHECK(ops_.inventory && ops_.adopt,
                "fault tolerance needs WorkOps inventory + adopt");
  }
  transport_ = std::make_unique<Transport>(
      ctx_, lb_.transport,
      std::vector<sim::Tag>{kTagReport, kTagInstr, kTagMove}, lb_.check);
  if (obs::Observability* o = ctx_.world().obs()) trace_ = &o->trace;
}

void SlaveAgent::begin_phase() {
  phase_done_ = false;
  units_since_ = 0;
  app_blocked_accum_ = 0;
  window_start_ = ctx_.now();
}

Task<> SlaveAgent::send_report() {
  NOWLB_CHECK(!awaiting_instr_, "report already outstanding");
  ++round_;
  const Time t0 = ctx_.now();
  StatusReport rep;
  rep.round = round_;
  rep.units_done = units_since_;
  rep.elapsed_s = to_seconds(
      std::max<Time>(0, t0 - window_start_ - app_blocked_accum_));
  const Time window_blocked = app_blocked_accum_;
  app_blocked_accum_ = 0;
  // Count queued incoming transfers (at their ordered size) so in-flight
  // units are never under-counted: the reported total can only overstate,
  // so the master can never end a phase while work is still moving.
  // Blocking here to take actual delivery would put the donor's round lag
  // on this slave's critical path.
  rep.remaining = ops_.remaining() + pending_units();
  rep.lb_blocked_s = to_seconds(last_overhead_);
  rep.move_time_s = to_seconds(move_time_accum_);
  rep.moved_units = moved_units_accum_;
  rep.done = final_ ? 1 : 0;
  if (lb_.fault_tolerance()) {
    rep.ft = 1;
    rep.inventory = ops_.inventory();
  }
  if (lb_.causal) {
    rep.causal = 1;
    rep.ctx_round = last_applied_round_;
  }
  move_time_accum_ = 0;
  moved_units_accum_ = 0;
  NOWLB_LOG(Debug, "lb") << "rank " << rank_ << " report r" << round_
                         << " units=" << rep.units_done << " elapsed="
                         << rep.elapsed_s << " blocked="
                         << to_seconds(window_blocked) << " remaining="
                         << rep.remaining;
  if (trace_ != nullptr) {
    trace_->instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                    "slave.report", {"rank", static_cast<double>(rank_)},
                    {"round", static_cast<double>(round_)},
                    {"remaining", static_cast<double>(rep.remaining)});
    // The measurement window this report closes: compute time is the span
    // minus the blocked share. Emitted from locally-known state, so it
    // needs no wire change and holds under the bit-identical goldens.
    trace_->complete(window_start_, t0, ctx_.host_id(), ctx_.pid(), "cz",
                     "cz.window", {"rank", static_cast<double>(rank_)},
                     {"round", static_cast<double>(round_)},
                     {"blocked", to_seconds(window_blocked)});
  }
  if (lb_.check != nullptr) {
    lb_.check->on_slave_report(ctx_.now(), rank_, rep);
  }
  co_await transport_->send(master_, kTagReport,
                            msg::encode(rep, rep.encoded_size()));

  awaiting_instr_ = true;
  units_since_ = 0;
  window_start_ = ctx_.now();
  overhead_accum_ = ctx_.now() - t0;  // send cost; instr handling adds later

  if (prepaid_round_ == round_) {
    // The matching (pre-sent) instructions were already applied by a
    // wildcard receive; this round is complete.
    prepaid_round_ = 0;
    awaiting_instr_ = false;
  }
}

Task<> SlaveAgent::handle_instr(const Instructions& ins) {
  NOWLB_CHECK(awaiting_instr_, "instructions with no outstanding report");
  NOWLB_CHECK(ins.round == round_, "slave rank " << rank_ << " got round "
                                                 << ins.round << ", expected "
                                                 << round_);
  awaiting_instr_ = false;
  co_await apply_instr_body(ins);
}

Task<> SlaveAgent::apply_instr_body(const Instructions& ins) {
  applying_round_ = ins.round;
  last_applied_round_ = ins.round;
  if (trace_ != nullptr) {
    trace_->instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                    "slave.instr", {"rank", static_cast<double>(rank_)},
                    {"round", static_cast<double>(ins.round)},
                    {"phase_done", ins.phase_done ? 1.0 : 0.0});
  }
  if (lb_.check != nullptr) {
    lb_.check->on_slave_instructions(ctx_.now(), rank_, ins);
  }
  if (ins.ft && (!ins.evicted.empty() || !ins.adopt.empty())) {
    co_await handle_ft(ins);
  }
  if (!ins.orders.empty()) {
    co_await apply_moves(ins.orders);
  }
  phase_done_ = ins.phase_done != 0;
  until_next_ = ins.units_until_next;
  last_overhead_ = overhead_accum_;
  // A phase_done can be the last thing this agent ever applies: if the app
  // body exits its phase loop and destroys us, unacked sends (the final
  // report the master is collecting, a move a peer waits on) would lose
  // their retransmit timers. Settle them while still alive; acks are
  // consumed by the peer's tap, so this cannot deadlock cross-slave.
  if (phase_done_) co_await transport_->drain();
}

Task<> SlaveAgent::handle_ft(const Instructions& ins) {
  for (const std::int32_t dead_rank : ins.evicted) {
    NOWLB_CHECK(dead_rank != rank_, "rank " << rank_ << " told of its own "
                                            << "eviction");
    const sim::Pid dead = pid_of(dead_rank);
    transport_->blackhole(dead);
    // Drop in-flight moves involving the dead peer: ordered receives will
    // never arrive, and a stale message from it must not be integrated
    // (the master reassigns those units from the census).
    std::erase_if(pending_recvs_, [&](const PendingRecv& p) {
      return p.order.peer_rank == dead_rank;
    });
    std::erase_if(stashed_moves_,
                  [&](const sim::Message& m) { return m.src == dead; });
    NOWLB_LOG(Info, "lb") << "rank " << rank_ << " notified: rank "
                          << dead_rank << " evicted";
  }
  if (!ins.evicted.empty()) {
    // Settle surviving in-flight moves so the census carried by the next
    // report counts every unit exactly once, nowhere twice, none in
    // flight.
    co_await drain_pending();
  }
  if (!ins.adopt.empty()) {
    const sim::Time t0 = ctx_.now();
    if (trace_ != nullptr) {
      trace_->instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                      "slave.adopt",
                      {"units", static_cast<double>(ins.adopt.size())});
    }
    co_await ops_.adopt(ins.adopt);
    if (lb_.check != nullptr) {
      std::vector<int> ids(ins.adopt.begin(), ins.adopt.end());
      lb_.check->on_adopted(ctx_.now(), rank_, ids);
    }
    move_time_accum_ += ctx_.now() - t0;
    NOWLB_LOG(Info, "lb") << "rank " << rank_ << " adopted "
                          << ins.adopt.size() << " orphaned units";
  }
}

Task<> SlaveAgent::hook() {
  // Opportunistically integrate moved work that has already arrived.
  if (!pending_recvs_.empty()) co_await poll_pending();

  if (awaiting_instr_) {
    if (held_instr_) {
      co_await handle_instr(co_await recv_instr());
    } else if (lb_.pipelined) {
      // Pipelined: poll; keep computing if instructions haven't arrived.
      if (auto m = ctx_.try_recv(kTagInstr, master_)) {
        const Time t0 = ctx_.now();
        co_await ctx_.compute(ctx_.world().config().msg.recv_overhead);
        overhead_accum_ += ctx_.now() - t0;
        co_await handle_instr(msg::decode<Instructions>(m->payload));
      }
    } else {
      // Synchronous: the full master round trip is on the critical path.
      const Time t0 = ctx_.now();
      Instructions ins = co_await recv_instr();
      overhead_accum_ += ctx_.now() - t0;
      co_await handle_instr(ins);
    }
  }
  if (!awaiting_instr_ && balance_due()) {
    co_await send_report();
    if (!lb_.pipelined) {
      const Time t0 = ctx_.now();
      Instructions ins = co_await recv_instr();
      overhead_accum_ += ctx_.now() - t0;
      co_await handle_instr(ins);
    }
  }
}

Task<Instructions> SlaveAgent::recv_instr() {
  if (held_instr_) {
    Instructions ins = std::move(*held_instr_);
    held_instr_.reset();
    co_return ins;
  }
  co_return co_await msg::recv<Instructions>(ctx_, kTagInstr, master_);
}

Task<> SlaveAgent::drain() {
  // The phase can end inside hook() (a synchronous balance on the phase's
  // last unit gets phase_done as its reply); a report sent past that point
  // would never be answered.
  if (phase_done_) co_return;
  // Out of local work. Incoming transfers are the most likely source of
  // more; block on those first.
  if (!pending_recvs_.empty()) {
    const std::size_t before = pending_recvs_.size();
    co_await recv_one_pending();
    const bool stalled = lb_.fault_tolerance() &&
                         pending_recvs_.size() == before && !phase_done_;
    if (!stalled) co_return;
    // The bounded fault-tolerant wait timed out: nothing arrived at all, so
    // the donor may be dead and the master mid-collection, waiting for us.
    // Fall through to a report (`remaining` counts the pending orders) so
    // the master sees this rank alive and can evict the real crash — the
    // eviction notice then rides the answering instructions.
  }
  if (!awaiting_instr_) {
    co_await send_report();
    // send_report may have consumed a held early instruction already.
    if (!awaiting_instr_) co_return;
  }
  // The wait here is idleness caused by imbalance, not interaction
  // overhead or computation — excluded from both measurements.
  const Time w0 = ctx_.now();
  Instructions ins = co_await recv_instr();
  note_blocked_span(w0);
  co_await handle_instr(ins);
}

Task<> SlaveAgent::finalize() {
  // Settle the outstanding instruction: in done-flag mode the master
  // answers every non-final report, and its orders may have peers blocked
  // on transfers from us.
  if (awaiting_instr_) {
    Instructions ins = co_await recv_instr();
    co_await handle_instr(ins);
  }
  co_await drain_pending();
  NOWLB_CHECK(prepaid_round_ == 0, "pre-paid round pending at finalize");
  NOWLB_CHECK(ops_.remaining() == 0,
              "finalize with " << ops_.remaining() << " active units");
  final_ = true;
  co_await send_report();
  awaiting_instr_ = false;  // the master never answers a final report
  // Retransmit the final report until acked: returning tears the transport
  // down, and a dropped done-flag would leave the master collecting forever.
  co_await transport_->drain();
}

void SlaveAgent::note_blocked_span(sim::Time w0) {
  const Time now = ctx_.now();
  app_blocked_accum_ += now - w0;
  if (trace_ != nullptr && now > w0) {
    trace_->complete(w0, now, ctx_.host_id(), ctx_.pid(), "cz", "cz.blocked",
                     {"rank", static_cast<double>(rank_)},
                     {"round", static_cast<double>(round_)});
  }
}

Task<> SlaveAgent::integrate_move(const MoveOrder& order, std::int32_t round,
                                  sim::Message m) {
  const Time t0 = ctx_.now();
  if (lb_.causal) {
    // Strip the causal envelope; the wire-carried round is authoritative
    // (it survives reordering and out-of-band stashing).
    const MoveContext mc = unwrap_move(m.payload);
    NOWLB_CHECK(pid_of(mc.from_rank) == m.src,
                "kTagMove envelope rank does not match sender");
    round = mc.round;
  }
  co_await ctx_.compute(ctx_.world().config().msg.recv_overhead);
  const int actual = co_await ops_.unpack(m.payload, order.peer_rank);
  if (lb_.check != nullptr) {
    lb_.check->on_units_unpacked(ctx_.now(), rank_, order.peer_rank,
                                 order.count, actual);
  }
  moved_units_accum_ += actual;
  units_received_ += actual;
  move_time_accum_ += ctx_.now() - t0;
  if (trace_ != nullptr) {
    trace_->instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                    "slave.move_recv",
                    {"from", static_cast<double>(order.peer_rank)},
                    {"units", static_cast<double>(actual)});
    trace_->complete(t0, ctx_.now(), ctx_.host_id(), ctx_.pid(), "cz",
                     "cz.move_recv", {"rank", static_cast<double>(rank_)},
                     {"from", static_cast<double>(order.peer_rank)},
                     {"round", static_cast<double>(round)});
  }
  NOWLB_LOG(Debug, "lb") << "rank " << rank_ << " received " << actual
                         << " units from rank " << order.peer_rank;
}

std::optional<sim::Message> SlaveAgent::take_stashed(sim::Pid src) {
  for (std::size_t i = 0; i < stashed_moves_.size(); ++i) {
    if (stashed_moves_[i].src == src) {
      sim::Message m = std::move(stashed_moves_[i]);
      stashed_moves_.erase(stashed_moves_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      return m;
    }
  }
  return std::nullopt;
}

bool SlaveAgent::first_for_peer(std::size_t index) const {
  for (std::size_t j = 0; j < index; ++j) {
    if (pending_recvs_[j].order.peer_rank ==
        pending_recvs_[index].order.peer_rank) {
      return false;
    }
  }
  return true;
}

Task<> SlaveAgent::accept_move(sim::Message m) {
  NOWLB_CHECK(m.tag == kTagMove, "accept_move on tag " << m.tag);
  for (std::size_t i = 0; i < pending_recvs_.size(); ++i) {
    if (pid_of(pending_recvs_[i].order.peer_rank) == m.src &&
        first_for_peer(i)) {
      const PendingRecv p = pending_recvs_[i];
      pending_recvs_.erase(pending_recvs_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      co_await integrate_move(p.order, p.round, std::move(m));
      co_return;
    }
  }
  // Order not yet known (our instructions are still in flight); hold the
  // message until they arrive.
  stashed_moves_.push_back(std::move(m));
}

Task<> SlaveAgent::accept_runtime(sim::Message m) {
  if (m.tag == kTagMove) {
    co_await accept_move(std::move(m));
    co_return;
  }
  NOWLB_CHECK(m.tag == kTagInstr, "accept_runtime on tag " << m.tag);
  Instructions ins = msg::decode<Instructions>(m.payload);
  if (!awaiting_instr_) {
    // A pipelined master pre-sends instructions; a wildcard receive can
    // pick one up before the matching report went out. Apply it now — its
    // orders may be exactly what unblocks this slave (and peers waiting on
    // our transfers) — and let the upcoming report complete the round.
    NOWLB_CHECK(ins.round == round_ + 1,
                "early instructions for round " << ins.round << ", at round "
                                                << round_);
    NOWLB_CHECK(!ins.phase_done, "pre-sent instructions cannot end a phase");
    NOWLB_CHECK(prepaid_round_ == 0, "two pre-paid instruction rounds");
    prepaid_round_ = ins.round;
    co_await apply_instr_body(ins);
    co_return;
  }
  co_await handle_instr(ins);
}

Task<> SlaveAgent::recv_one_pending() {
  NOWLB_CHECK(!pending_recvs_.empty());
  if (lb_.fault_tolerance()) {
    // Under a heartbeat regime a blocking move receive must stay
    // interruptible: the sender may have crashed, and the order that would
    // never be satisfied is erased by the eviction notice riding the next
    // instructions. Block on any runtime message and dispatch — a move
    // integrates (for whichever order it matches), an instruction applies.
    // The wait is bounded: if nothing at all arrives (a dead donor sends
    // nothing, and the master sends nothing mid-collection because it is
    // waiting for *us*), give up and let drain() fall through to a report
    // so the master can tell a blocked-but-live rank from a crashed one.
    const std::size_t before = pending_recvs_.size();
    if (auto stashed =
            take_stashed(pid_of(pending_recvs_.front().order.peer_rank))) {
      const PendingRecv p = pending_recvs_.front();
      pending_recvs_.erase(pending_recvs_.begin());
      co_await integrate_move(p.order, p.round, std::move(*stashed));
      co_return;
    }
    const Time deadline = ctx_.now() + lb_.heartbeat_timeout / 4;
    while (pending_recvs_.size() == before) {
      const Time w0 = ctx_.now();
      // The deadline applies even when a phase_done is already held: a
      // pre-sent phase_done can race a crash, leaving this rank waiting on
      // a settling move whose donor is dead (the master, mid final
      // collection, is in turn waiting for our final report).
      std::optional<sim::Message> m =
          co_await ctx_.recv_until(sim::kAnyTag, sim::kAnyPid, deadline);
      note_blocked_span(w0);
      if (!m) co_return;  // timed out; drain() falls through to a report
      if (m->tag == kTagInstr && !awaiting_instr_) {
        Instructions ins = msg::decode<Instructions>(m->payload);
        if (ins.phase_done) {
          // The master ended the phase off our previous report while an
          // empty settling transfer was still heading our way; this
          // phase_done answers the report we have not sent yet. Hold it
          // for recv_instr() and keep waiting for the move.
          NOWLB_CHECK(!held_instr_, "two held phase_done instructions");
          held_instr_ = std::move(ins);
          continue;
        }
      }
      co_await accept_runtime(std::move(*m));
    }
    co_return;
  }
  const PendingRecv p = pending_recvs_.front();
  pending_recvs_.erase(pending_recvs_.begin());
  if (auto stashed = take_stashed(pid_of(p.order.peer_rank))) {
    co_await integrate_move(p.order, p.round, std::move(*stashed));
    co_return;
  }
  // recv_raw completes at message arrival; the wait until then is round
  // skew / sender lag — neither movement cost nor compute time, so it is
  // excluded from both the move-cost measurement and the rate window.
  const Time w0 = ctx_.now();
  sim::Message m = co_await ctx_.recv_raw(kTagMove, pid_of(p.order.peer_rank));
  note_blocked_span(w0);
  co_await integrate_move(p.order, p.round, std::move(m));
}

Task<> SlaveAgent::drain_pending() {
  while (!pending_recvs_.empty()) co_await recv_one_pending();
}

Task<> SlaveAgent::poll_pending() {
  // Integrate queued transfers whose messages have arrived. Per-peer FIFO
  // order is preserved: we only attempt the first queued order of each
  // peer per poll (earlier messages match earlier orders).
  std::size_t i = 0;
  while (i < pending_recvs_.size()) {
    if (!first_for_peer(i)) {
      ++i;
      continue;
    }
    const PendingRecv p = pending_recvs_[i];
    auto m = take_stashed(pid_of(p.order.peer_rank));
    if (!m) m = ctx_.try_recv(kTagMove, pid_of(p.order.peer_rank));
    if (!m) {
      ++i;
      continue;
    }
    pending_recvs_.erase(pending_recvs_.begin() +
                         static_cast<std::ptrdiff_t>(i));
    co_await integrate_move(p.order, p.round, std::move(*m));
    // Restart the scan: the erase may have made another order for the
    // same peer the first one.
    i = 0;
  }
}

Task<> SlaveAgent::apply_moves(const std::vector<MoveOrder>& orders) {
  int send_total = 0;
  for (const auto& o : orders) {
    if (o.is_send) {
      send_total += o.count;
    } else {
      pending_recvs_.push_back({o, applying_round_});
    }
  }
  if (send_total > 0) {
    // If this rank cannot cover its ordered sends from what it holds, it is
    // an intermediate in a restricted-mode chain (Fig. 1b): take delivery
    // of the incoming side first, then forward.
    if (send_total > ops_.remaining() && !pending_recvs_.empty()) {
      co_await drain_pending();
    }
    for (const auto& o : orders) {
      if (!o.is_send) continue;
      const Time t0 = ctx_.now();
      const int want = std::min(o.count, ops_.remaining());
      auto [payload, actual] = co_await ops_.pack(want, o.peer_rank);
      NOWLB_CHECK(actual <= o.count);
      if (lb_.check != nullptr) {
        lb_.check->on_units_packed(ctx_.now(), rank_, o.peer_rank, o.count,
                                   actual);
      }
      moved_units_accum_ += actual;
      units_sent_ += actual;
      if (trace_ != nullptr) {
        trace_->instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                        "slave.move_send",
                        {"to", static_cast<double>(o.peer_rank)},
                        {"units", static_cast<double>(actual)});
      }
      NOWLB_LOG(Debug, "lb") << "rank " << rank_ << " sends " << actual
                             << " units to rank " << o.peer_rank;
      // Under causal propagation, wrap the payload with the ordering round
      // so the receiver attributes the migration even after reordering.
      sim::Bytes out = lb_.causal
                           ? wrap_move({applying_round_, rank_}, payload)
                           : std::move(payload);
      co_await transport_->send(pid_of(o.peer_rank), kTagMove,
                                std::move(out));
      move_time_accum_ += ctx_.now() - t0;
      if (trace_ != nullptr) {
        trace_->complete(t0, ctx_.now(), ctx_.host_id(), ctx_.pid(), "cz",
                         "cz.move_send", {"rank", static_cast<double>(rank_)},
                         {"to", static_cast<double>(o.peer_rank)},
                         {"round", static_cast<double>(applying_round_)});
      }
    }
  }
  // Pick up whatever incoming transfers have already arrived.
  co_await poll_pending();
}

}  // namespace nowlb::lb
