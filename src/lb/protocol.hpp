// Master <-> slave wire protocol (§3.2, §3.3).
//
// Each balancing round, every slave sends one StatusReport and receives one
// Instructions message. In pipelined mode (Fig. 2b) the instructions a slave
// receives at round r were computed from round r-1's reports; in synchronous
// mode (Fig. 2a) from round r's.
#pragma once

#include <cstdint>
#include <vector>

#include "msg/serialize.hpp"
#include "sim/message.hpp"

namespace nowlb::lb {

// Message tags used by the load-balancing runtime.
inline constexpr sim::Tag kTagReport = 9001;  // slave -> master status
inline constexpr sim::Tag kTagInstr = 9002;   // master -> slave instructions
inline constexpr sim::Tag kTagMove = 9003;    // slave -> slave work movement
inline constexpr sim::Tag kTagAck = 9004;     // transport acknowledgement

// Optional trailers ride behind the classic fixed fields, each introduced
// by a one-byte marker; decode loops until the payload is exhausted. The
// fault-tolerance marker value doubles as its legacy presence flag (the ft
// trailer has always started with the byte 1), so old payloads parse
// unchanged. With every trailer disabled the wire bytes are bit-identical
// to the classic format.
inline constexpr std::uint8_t kTrailerFt = 1;      // fault-tolerance census
inline constexpr std::uint8_t kTrailerCausal = 2;  // causal round context

/// Slave performance since the last information exchange, measured in the
/// application-specific unit of "work units per second" — iterations of the
/// distributed loop — so heterogeneous or loaded processors need no
/// explicit weighting (§3.2).
struct StatusReport {
  std::int32_t round = 0;
  /// Work units completed since the previous report.
  double units_done = 0;
  /// Wall-clock seconds since the previous report (the whole window,
  /// including communication — competing load shows up here).
  double elapsed_s = 0;
  /// Active work units still held locally.
  std::int32_t remaining = 0;
  /// Seconds spent blocked in the previous balance round (interaction cost).
  double lb_blocked_s = 0;
  /// Seconds spent packing/sending/receiving/unpacking moved work since the
  /// previous report, and the units involved (movement cost measurement).
  double move_time_s = 0;
  std::int32_t moved_units = 0;
  /// Final report: this slave has finished its whole computation and will
  /// not participate in further rounds (done-flag termination mode).
  std::uint8_t done = 0;

  // ---- fault-tolerance trailer (absent from the classic wire format) ----
  /// Trailer present. Set by slaves running under a heartbeat regime.
  std::uint8_t ft = 0;
  /// Census: the unit ids this slave holds after applying the previous
  /// round's instructions. The master reconstructs orphaned work from the
  /// survivors' inventories after an eviction (DESIGN.md §9).
  std::vector<std::int32_t> inventory;

  // ---- causal trailer (LbConfig::causal; absent when off) ----
  /// Trailer present.
  std::uint8_t causal = 0;
  /// Wire round of the last Instructions this slave applied before sending
  /// this report (0 = none yet): the report's causal parent edge.
  std::int32_t ctx_round = 0;

  /// Exact wire size; pass to msg::encode(v, size_hint) on hot paths.
  std::size_t encoded_size() const {
    std::size_t n = sizeof(round) + sizeof(units_done) + sizeof(elapsed_s) +
                    sizeof(remaining) + sizeof(lb_blocked_s) +
                    sizeof(move_time_s) + sizeof(moved_units) + sizeof(done);
    if (ft) {
      n += sizeof(kTrailerFt) + sizeof(std::uint64_t) +
           inventory.size() * sizeof(std::int32_t);
    }
    if (causal) n += sizeof(kTrailerCausal) + sizeof(ctx_round);
    return n;
  }

  void encode(msg::Writer& w) const {
    w.put(round).put(units_done).put(elapsed_s).put(remaining)
        .put(lb_blocked_s).put(move_time_s).put(moved_units).put(done);
    if (ft) {
      w.put(kTrailerFt);
      w.put_vec(inventory);
    }
    if (causal) {
      w.put(kTrailerCausal);
      w.put(ctx_round);
    }
  }
  static StatusReport decode(msg::Reader& r) {
    StatusReport s;
    s.round = r.get<std::int32_t>();
    s.units_done = r.get<double>();
    s.elapsed_s = r.get<double>();
    s.remaining = r.get<std::int32_t>();
    s.lb_blocked_s = r.get<double>();
    s.move_time_s = r.get<double>();
    s.moved_units = r.get<std::int32_t>();
    s.done = r.get<std::uint8_t>();
    while (r.remaining() > 0) {
      const auto marker = r.get<std::uint8_t>();
      if (marker == kTrailerFt) {
        s.ft = 1;
        s.inventory = r.get_vec<std::int32_t>();
      } else if (marker == kTrailerCausal) {
        s.causal = 1;
        s.ctx_round = r.get<std::int32_t>();
      } else {
        NOWLB_CHECK(false, "StatusReport: unknown trailer marker");
      }
    }
    return s;
  }
};

/// One work transfer order: this slave sends `count` units to `peer_rank`,
/// or expects up to `count` units from it. Counts are targets computed from
/// (possibly one round old) reports; the sender ships min(count, on hand)
/// and always ships a message so the receiver's blocking receive completes.
struct MoveOrder {
  std::int32_t peer_rank = 0;
  std::int32_t count = 0;
  std::uint8_t is_send = 0;

  static constexpr std::size_t encoded_size() {
    return sizeof(peer_rank) + sizeof(count) + sizeof(is_send);
  }

  void encode(msg::Writer& w) const { w.put(peer_rank).put(count).put(is_send); }
  static MoveOrder decode(msg::Reader& r) {
    MoveOrder m;
    m.peer_rank = r.get<std::int32_t>();
    m.count = r.get<std::int32_t>();
    m.is_send = r.get<std::uint8_t>();
    return m;
  }
};

/// Master instructions for one slave for one round.
struct Instructions {
  std::int32_t round = 0;
  /// The current distributed-loop invocation has completed globally.
  std::uint8_t phase_done = 0;
  /// Work units to complete before the next balance round (frequency
  /// control, §4.3 — converted from the target period via this slave's
  /// predicted rate).
  double units_until_next = 0;
  std::vector<MoveOrder> orders;

  // ---- fault-tolerance trailer (absent from the classic wire format) ----
  /// Trailer present.
  std::uint8_t ft = 0;
  /// Ranks evicted since the previous instructions. Recipients must stop
  /// expecting traffic from them and settle in-flight survivor moves.
  std::vector<std::int32_t> evicted;
  /// Orphaned unit ids this slave must reconstruct and take over.
  std::vector<std::int32_t> adopt;

  // ---- causal trailer (LbConfig::causal; absent when off) ----
  /// Trailer present.
  std::uint8_t causal = 0;
  /// Decision-ledger round whose plan these instructions carry (0 = none:
  /// pipelined priming or a pure phase_done notification).
  std::int32_t decision_round = 0;

  /// Exact wire size; pass to msg::encode(v, size_hint) on hot paths.
  std::size_t encoded_size() const {
    std::size_t n = sizeof(round) + sizeof(phase_done) +
                    sizeof(units_until_next) + sizeof(std::uint32_t) +
                    orders.size() * MoveOrder::encoded_size();
    if (ft) {
      n += sizeof(kTrailerFt) + 2 * sizeof(std::uint64_t) +
           (evicted.size() + adopt.size()) * sizeof(std::int32_t);
    }
    if (causal) n += sizeof(kTrailerCausal) + sizeof(decision_round);
    return n;
  }

  void encode(msg::Writer& w) const {
    w.put(round).put(phase_done).put(units_until_next);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(orders.size()));
    for (const auto& o : orders) o.encode(w);
    if (ft) {
      w.put(kTrailerFt);
      w.put_vec(evicted);
      w.put_vec(adopt);
    }
    if (causal) {
      w.put(kTrailerCausal);
      w.put(decision_round);
    }
  }
  static Instructions decode(msg::Reader& r) {
    Instructions ins;
    ins.round = r.get<std::int32_t>();
    ins.phase_done = r.get<std::uint8_t>();
    ins.units_until_next = r.get<double>();
    const auto n = r.get<std::uint32_t>();
    ins.orders.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      ins.orders.push_back(MoveOrder::decode(r));
    while (r.remaining() > 0) {
      const auto marker = r.get<std::uint8_t>();
      if (marker == kTrailerFt) {
        ins.ft = 1;
        ins.evicted = r.get_vec<std::int32_t>();
        ins.adopt = r.get_vec<std::int32_t>();
      } else if (marker == kTrailerCausal) {
        ins.causal = 1;
        ins.decision_round = r.get<std::int32_t>();
      } else {
        NOWLB_CHECK(false, "Instructions: unknown trailer marker");
      }
    }
    return ins;
  }
};

/// Causal context prefixed to every kTagMove payload when LbConfig::causal
/// is on: the wire round whose instructions ordered the transfer and the
/// sending rank. Lets the analyzer attribute a migration to its decision
/// even when the message is stashed out-of-band or reordered by faults.
/// Off the wire entirely (raw application payload) when causal is off.
struct MoveContext {
  std::int32_t round = 0;
  std::int32_t from_rank = -1;
};

inline sim::Bytes wrap_move(const MoveContext& mc, const sim::Bytes& payload) {
  msg::Writer w;
  w.reserve(sizeof(mc.round) + sizeof(mc.from_rank) + sizeof(std::uint64_t) +
            payload.size());
  w.put(mc.round).put(mc.from_rank).put_bytes(payload);
  return w.take();
}

/// Inverse of wrap_move: returns the context and replaces `payload` with
/// the inner application payload.
inline MoveContext unwrap_move(sim::Bytes& payload) {
  msg::Reader r(payload);
  MoveContext mc;
  mc.round = r.get<std::int32_t>();
  mc.from_rank = r.get<std::int32_t>();
  sim::Bytes inner = r.get_bytes();
  NOWLB_CHECK(r.done(), "kTagMove causal envelope: trailing bytes");
  payload = std::move(inner);
  return mc;
}

}  // namespace nowlb::lb
