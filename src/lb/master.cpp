#include "lb/master.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

#include "check/invariant.hpp"
#include "msg/channel.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace nowlb::lb {

using sim::Task;
using sim::Time;
using sim::to_seconds;

Master::Master(sim::Context& ctx, MasterConfig cfg)
    : ctx_(ctx),
      cfg_(std::move(cfg)),
      nslaves_(static_cast<int>(cfg_.slaves.size())),
      freq_(cfg_.lb),
      move_cost_per_unit_s_(to_seconds(cfg_.lb.initial_move_cost)),
      stats_(cfg_.stats ? *cfg_.stats : local_stats_) {
  NOWLB_CHECK(nslaves_ > 0, "master needs at least one slave");
  NOWLB_CHECK(cfg_.initial_counts.size() == cfg_.slaves.size(),
              "initial_counts size mismatch");
  filters_.assign(nslaves_, TrendFilter(cfg_.lb.filter_alpha,
                                        cfg_.lb.filter_fast_alpha,
                                        cfg_.lb.filter_trend_len));
  rates_.assign(nslaves_, 0.0);
  raw_rates_.assign(nslaves_, 0.0);
  measured_.assign(nslaves_, false);
}

int Master::rank_of(sim::Pid pid) const {
  for (int r = 0; r < nslaves_; ++r) {
    if (cfg_.slaves[r] == pid) return r;
  }
  NOWLB_CHECK(false, "report from unknown pid " << pid);
  return -1;
}

double Master::initial_window_units(int rank) const {
  return std::max(1.0, cfg_.first_window_fraction *
                           static_cast<double>(cfg_.initial_counts[rank]));
}

Task<> Master::run() {
  if (cfg_.termination == Termination::kDoneFlags) {
    co_await run_done_flags();
    co_return;
  }
  for (int phase = 0; phase < cfg_.phases; ++phase) {
    co_await run_phase();
  }
}

Task<> Master::run_phase() {
  const std::vector<bool> all(nslaves_, true);

  if (cfg_.lb.pipelined) {
    // Prime the pipeline: the instructions consumed at each slave's first
    // balance of this phase carry no movement (no rate data yet).
    ++round_;
    for (int r = 0; r < nslaves_; ++r) {
      Instructions ins;
      ins.round = round_;
      ins.units_until_next = rates_[r] > 0
                                 ? freq_.units_for_period(rates_[r])
                                 : initial_window_units(r);
      if (cfg_.lb.check != nullptr) {
        cfg_.lb.check->on_master_instructions(ctx_.now(), r, ins);
      }
      co_await msg::send(ctx_, cfg_.slaves[r], kTagInstr, ins);
    }
  }

  for (;;) {
    const int report_round = cfg_.lb.pipelined ? round_ : round_ + 1;
    if (!cfg_.lb.pipelined) ++round_;
    auto reports = co_await collect_reports(report_round, all);
    ++stats_.rounds;
    process_measurements(reports, all);

    std::vector<int> remaining(nslaves_);
    for (int r = 0; r < nslaves_; ++r) remaining[r] = reports[r].remaining;
    const int total = std::accumulate(remaining.begin(), remaining.end(), 0);

    if (total == 0) {
      // Phase complete. Pipelined: the phase_done message is labelled for
      // the next round (slaves do one final balance); synchronous: for this
      // round (slaves are waiting for it now).
      if (cfg_.lb.pipelined) ++round_;
      Decision none;
      none.target = remaining;
      co_await send_instructions(round_, /*phase_done=*/true, none, rates_,
                                 all);
      if (cfg_.lb.pipelined) {
        // Consume the final reports so rounds stay aligned across phases.
        auto finals = co_await collect_reports(round_, all);
        process_measurements(finals, all);
        ++stats_.rounds;
      }
      co_return;
    }

    const Decision d = make_decision(remaining);
    if (cfg_.lb.pipelined) ++round_;
    co_await send_instructions(round_, /*phase_done=*/false, d, rates_, all);
  }
}

Task<> Master::run_done_flags() {
  // Reply-style rounds: instructions answer the current round's reports.
  // Slaves poll for them (LbConfig.pipelined should be true), so the reply
  // latency stays off their critical path while the data stays fresh.
  std::vector<bool> active(nslaves_, true);
  int n_active = nslaves_;

  while (n_active > 0) {
    ++round_;
    auto reports = co_await collect_reports(round_, active);
    ++stats_.rounds;
    process_measurements(reports, active);

    std::vector<int> remaining(nslaves_, 0);
    for (int r = 0; r < nslaves_; ++r) {
      if (!active[r]) continue;
      remaining[r] = reports[r].remaining;
      if (reports[r].done) {
        active[r] = false;
        --n_active;
        rates_[r] = 0;  // no longer a movement target
        NOWLB_CHECK(reports[r].remaining == 0,
                    "rank " << r << " finished with work remaining");
      }
    }
    if (n_active == 0) co_return;

    const Decision d = make_decision(remaining);
    co_await send_instructions(round_, /*phase_done=*/false, d, rates_,
                               active);
  }
}

Decision Master::make_decision(const std::vector<int>& remaining) {
  Decision d = decide(cfg_.lb, remaining, rates_, move_cost_per_unit_s_,
                      to_seconds(freq_.period()));
  if (d.move) {
    ++stats_.moves_ordered;
    stats_.units_moved += units_moved(d.transfers);
  } else if (std::string_view(d.reason) == "below improvement threshold") {
    ++stats_.cancelled_threshold;
  } else if (std::string_view(d.reason) == "movement not profitable") {
    ++stats_.cancelled_profit;
  }
  stats_.last_period_s = to_seconds(freq_.period());

  if (cfg_.lb.trace) {
    auto& rec = ctx_.recorder();
    const Time now = ctx_.now();
    for (int r = 0; r < nslaves_; ++r) {
      const std::string suffix = "." + std::to_string(r);
      rec.record("lb.raw_rate" + suffix, now, raw_rates_[r]);
      rec.record("lb.adj_rate" + suffix, now, rates_[r]);
      rec.record("lb.work" + suffix, now, static_cast<double>(d.target[r]));
    }
    rec.record("lb.period_s", now, stats_.last_period_s);
  }
  if (cfg_.lb.check != nullptr) {
    cfg_.lb.check->on_master_decision(ctx_.now(), d, remaining);
  }
  return d;
}

Task<std::vector<StatusReport>> Master::collect_reports(
    int round, const std::vector<bool>& expected) {
  std::vector<StatusReport> reports(nslaves_);
  std::vector<bool> seen(nslaves_, false);
  int want = 0;
  for (int r = 0; r < nslaves_; ++r) want += expected[r] ? 1 : 0;
  int have = 0;

  // First take any reports stashed by the previous collection (an idle
  // slave may run one round ahead of slower slaves).
  std::vector<std::pair<sim::Pid, StatusReport>> still_early;
  for (auto& [src, rep] : stashed_) {
    if (rep.round == round) {
      const int rank = rank_of(src);
      NOWLB_CHECK(!seen[rank], "duplicate stashed report from rank " << rank);
      NOWLB_CHECK(expected[rank], "stashed report from unexpected rank "
                                      << rank);
      seen[rank] = true;
      reports[rank] = rep;
      ++have;
    } else {
      still_early.emplace_back(src, rep);
    }
  }
  stashed_ = std::move(still_early);

  while (have < want) {
    auto [src, rep] =
        co_await msg::recv_from_any<StatusReport>(ctx_, kTagReport);
    const int rank = rank_of(src);
    NOWLB_CHECK(expected[rank], "report from unexpected rank " << rank);
    if (rep.round == round + 1) {
      stashed_.emplace_back(src, rep);
      continue;
    }
    NOWLB_CHECK(rep.round == round, "rank " << rank << " reported round "
                                            << rep.round << ", expected "
                                            << round);
    NOWLB_CHECK(!seen[rank], "duplicate report from rank " << rank);
    seen[rank] = true;
    reports[rank] = rep;
    ++have;
  }
  if (cfg_.lb.check != nullptr) {
    cfg_.lb.check->on_master_reports(ctx_.now(), round, reports, expected);
  }
  co_return reports;
}

void Master::process_measurements(const std::vector<StatusReport>& reports,
                                  const std::vector<bool>& mask) {
  // Interaction cost: the *least*-blocked slave reflects the pure cost of
  // exchanging information with the master; larger values are round skew
  // (waiting for stragglers), which is load imbalance, not overhead.
  Time min_blocked = std::numeric_limits<Time>::max();
  for (int r = 0; r < nslaves_; ++r) {
    if (!mask[r]) continue;
    const auto& rep = reports[r];
    // Rate update. Windows that measured nothing (an idle slave spinning
    // balance rounds, or a degenerate sub-millisecond window) carry no
    // information about the slave's capacity — keep the previous estimate.
    const bool informative =
        rep.elapsed_s > 1e-4 && !(rep.units_done == 0 && rep.remaining == 0);
    if (informative) {
      raw_rates_[r] = rep.units_done / rep.elapsed_s;
      rates_[r] = cfg_.lb.filtering ? filters_[r].update(raw_rates_[r])
                                    : raw_rates_[r];
      measured_[r] = true;
    }
    if (rep.lb_blocked_s > 0) {
      min_blocked =
          std::min(min_blocked, sim::from_seconds(rep.lb_blocked_s));
    }
    if (rep.moved_units > 0) {
      const double per_unit = rep.move_time_s / rep.moved_units;
      move_cost_per_unit_s_ = 0.5 * (move_cost_per_unit_s_ + per_unit);
      freq_.observe_move_event(sim::from_seconds(rep.move_time_s));
    }
  }
  if (min_blocked != std::numeric_limits<Time>::max()) {
    freq_.observe_interaction(min_blocked);
  }

  // An idle slave's window measures nothing about its capacity, yet its
  // stale (possibly noisy-low) estimate decides whether it gets work again
  // — a starvation lock-in. Let unmeasured or idle slaves' estimates drift
  // toward the mean of the measured ones (never downward: idleness is no
  // evidence of slowness).
  double sum = 0;
  int cnt = 0;
  for (int r = 0; r < nslaves_; ++r) {
    if (mask[r] && measured_[r] && rates_[r] > 0) {
      sum += rates_[r];
      ++cnt;
    }
  }
  if (cnt > 0) {
    const double prior = sum / cnt;
    for (int r = 0; r < nslaves_; ++r) {
      if (!mask[r]) continue;
      if (!measured_[r]) {
        rates_[r] = prior;
        filters_[r].force(prior);
      } else if (reports[r].units_done == 0 && reports[r].remaining == 0 &&
                 rates_[r] < prior) {
        rates_[r] += 0.3 * (prior - rates_[r]);
        filters_[r].force(rates_[r]);
      }
    }
  }
}

Task<> Master::send_instructions(int round, bool phase_done,
                                 const Decision& decision,
                                 const std::vector<double>& rates,
                                 const std::vector<bool>& recipients) {
  // Group transfers into per-rank send/receive orders.
  std::vector<std::vector<MoveOrder>> orders(nslaves_);
  for (const Transfer& t : decision.transfers) {
    orders[t.from_rank].push_back(
        {t.to_rank, t.count, /*is_send=*/std::uint8_t{1}});
    orders[t.to_rank].push_back(
        {t.from_rank, t.count, /*is_send=*/std::uint8_t{0}});
  }
  for (int r = 0; r < nslaves_; ++r) {
    if (!recipients[r]) {
      NOWLB_CHECK(orders[r].empty(),
                  "movement ordered for inactive rank " << r);
      continue;
    }
    Instructions ins;
    ins.round = round;
    ins.phase_done = phase_done ? 1 : 0;
    ins.units_until_next = rates[r] > 0 ? freq_.units_for_period(rates[r])
                                        : initial_window_units(r);
    ins.orders = std::move(orders[r]);
    if (cfg_.lb.check != nullptr) {
      cfg_.lb.check->on_master_instructions(ctx_.now(), r, ins);
    }
    co_await msg::send(ctx_, cfg_.slaves[r], kTagInstr, ins);
  }
}

}  // namespace nowlb::lb
