#include "lb/master.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

#include "lb/hooks.hpp"
#include "msg/channel.hpp"
#include "obs/obs.hpp"
#include "sim/world.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace nowlb::lb {

using sim::Task;
using sim::Time;
using sim::to_seconds;

Master::Master(sim::Context& ctx, MasterConfig cfg)
    : ctx_(ctx),
      cfg_(std::move(cfg)),
      nslaves_(static_cast<int>(cfg_.slaves.size())),
      freq_(cfg_.lb),
      move_cost_per_unit_s_(to_seconds(cfg_.lb.initial_move_cost)),
      stats_(cfg_.stats ? *cfg_.stats : local_stats_) {
  NOWLB_CHECK(nslaves_ > 0, "master needs at least one slave");
  NOWLB_CHECK(cfg_.initial_counts.size() == cfg_.slaves.size(),
              "initial_counts size mismatch");
  filters_.assign(nslaves_, TrendFilter(cfg_.lb.filter_alpha,
                                        cfg_.lb.filter_fast_alpha,
                                        cfg_.lb.filter_trend_len));
  rates_.assign(nslaves_, 0.0);
  raw_rates_.assign(nslaves_, 0.0);
  measured_.assign(nslaves_, false);
  active_.assign(nslaves_, true);
  collected_.assign(nslaves_, false);
  adopt_orders_.assign(nslaves_, {});
  unit_ids_begin_ = cfg_.unit_ids_begin;
  unit_ids_end_ =
      cfg_.unit_ids_end >= 0
          ? cfg_.unit_ids_end
          : unit_ids_begin_ + std::accumulate(cfg_.initial_counts.begin(),
                                              cfg_.initial_counts.end(), 0);
  if (ft()) {
    NOWLB_CHECK(cfg_.lb.transport.enabled,
                "fault tolerance requires the reliable transport");
    NOWLB_CHECK(cfg_.termination == Termination::kPhases,
                "fault tolerance requires phase-counting termination");
  }
  transport_ = std::make_unique<Transport>(
      ctx_, cfg_.lb.transport,
      std::vector<sim::Tag>{kTagReport, kTagInstr, kTagMove}, cfg_.lb.check);
  obs_ = ctx_.world().obs();
  if (obs_ != nullptr) {
    auto& m = obs_->metrics;
    m_rounds_ = &m.counter("lb_rounds", "Balancing rounds completed");
    m_moves_ordered_ =
        &m.counter("lb_moves_ordered", "Rounds where movement was ordered");
    m_units_moved_ =
        &m.counter("lb_units_moved", "Work units in ordered transfers");
    m_cancel_thresh_ = &m.counter(
        "lb_cancelled_threshold", "Rounds gated by the improvement threshold");
    m_cancel_profit_ = &m.counter("lb_cancelled_profit",
                                  "Rounds cancelled by profitability");
    m_evictions_ = &m.counter("lb_evictions", "Ranks declared dead");
    m_orphans_ = &m.counter("lb_orphans_reassigned",
                            "Orphaned units handed to survivors");
    m_period_ = &m.gauge("lb_period_seconds", "Current balancing period");
    m_round_hist_ = &m.histogram(
        "lb_round_seconds",
        {0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0},
        "Master-side round latency (reports collected to instructions sent)");
  }
}

int Master::rank_of(sim::Pid pid) const {
  for (int r = 0; r < nslaves_; ++r) {
    if (cfg_.slaves[r] == pid) return r;
  }
  NOWLB_CHECK(false, "report from unknown pid " << pid);
  return -1;
}

double Master::initial_window_units(int rank) const {
  return std::max(1.0, cfg_.first_window_fraction *
                           static_cast<double>(cfg_.initial_counts[rank]));
}

Task<> Master::run() {
  if (cfg_.termination == Termination::kDoneFlags) {
    co_await run_done_flags();
  } else {
    for (int phase = 0; phase < cfg_.phases; ++phase) {
      co_await run_phase();
    }
  }
  // Linger until the final instructions are acked: returning destroys the
  // transport and its retransmit timers, and a still-dropped phase_done
  // would strand its slave forever.
  co_await transport_->drain();
}

Task<> Master::run_phase() {
  if (cfg_.lb.pipelined) {
    // Prime the pipeline: the instructions consumed at each slave's first
    // balance of this phase carry no movement (no rate data yet).
    ++round_;
    for (int r = 0; r < nslaves_; ++r) {
      if (!active_[r]) continue;
      Instructions ins;
      ins.round = round_;
      ins.units_until_next = rates_[r] > 0
                                 ? freq_.units_for_period(rates_[r])
                                 : initial_window_units(r);
      attach_ft(ins, r);
      if (cfg_.lb.check != nullptr) {
        cfg_.lb.check->on_master_instructions(ctx_.now(), r, ins);
      }
      co_await send_instr(r, std::move(ins), /*decision_round=*/0);
    }
    if (ft() && ft_sync_pending_) {
      ft_sync_round_ = round_;
      ft_sync_pending_ = false;
      newly_evicted_.clear();
    }
  }

  for (;;) {
    const int report_round = cfg_.lb.pipelined ? round_ : round_ + 1;
    if (!cfg_.lb.pipelined) ++round_;
    auto reports = co_await collect_reports(report_round, active_);
    const Time round_t0 = ctx_.now();
    ++stats_.rounds;
    process_measurements(reports, collected_);
    if (ft()) reconcile_census(reports, report_round);

    std::vector<int> remaining(nslaves_, 0);
    for (int r = 0; r < nslaves_; ++r) {
      if (collected_[r]) remaining[r] = reports[r].remaining;
    }
    const int total = std::accumulate(remaining.begin(), remaining.end(), 0);

    if (total == 0 && !recovery_pending_) {
      // Phase complete. Pipelined: the phase_done message is labelled for
      // the next round (slaves do one final balance); synchronous: for this
      // round (slaves are waiting for it now).
      if (cfg_.lb.pipelined) ++round_;
      Decision none;
      none.target = remaining;
      publish_round(obs::Gate::kPhaseEnd, "no work remaining", remaining,
                    &none);
      co_await send_instructions(round_, /*phase_done=*/true, none, rates_,
                                 active_);
      note_round_span(round_t0);
      if (cfg_.lb.pipelined) {
        // Consume the final reports so rounds stay aligned across phases.
        auto finals = co_await collect_reports(round_, active_);
        process_measurements(finals, collected_);
        ++stats_.rounds;
        std::vector<int> fin(nslaves_, 0);
        for (int r = 0; r < nslaves_; ++r) {
          if (collected_[r]) fin[r] = finals[r].remaining;
        }
        publish_round(obs::Gate::kFinalReports, "final reports consumed",
                      fin, nullptr);
      }
      co_return;
    }

    Decision d;
    if (recovery_pending_) {
      // Freeze ordinary movement while an eviction is being recovered:
      // in-flight transfers would blur the inventory census that recovery
      // is built on.
      d.target = remaining;
      d.reason = "movement frozen during fault recovery";
      publish_round(obs::Gate::kRecoveryFreeze, d.reason, remaining, &d);
      if (cfg_.lb.check != nullptr) {
        cfg_.lb.check->on_master_decision(ctx_.now(), d, remaining);
      }
    } else {
      d = make_decision(remaining);
    }
    if (cfg_.lb.pipelined) ++round_;
    co_await send_instructions(round_, /*phase_done=*/false, d, rates_,
                               active_);
    note_round_span(round_t0);
  }
}

Task<> Master::run_done_flags() {
  // Reply-style rounds: instructions answer the current round's reports.
  // Slaves poll for them (LbConfig.pipelined should be true), so the reply
  // latency stays off their critical path while the data stays fresh.
  std::vector<bool> active(nslaves_, true);
  int n_active = nslaves_;

  while (n_active > 0) {
    ++round_;
    auto reports = co_await collect_reports(round_, active);
    const Time round_t0 = ctx_.now();
    ++stats_.rounds;
    process_measurements(reports, active);

    std::vector<int> remaining(nslaves_, 0);
    for (int r = 0; r < nslaves_; ++r) {
      if (!active[r]) continue;
      remaining[r] = reports[r].remaining;
      if (reports[r].done) {
        active[r] = false;
        --n_active;
        rates_[r] = 0;  // no longer a movement target
        NOWLB_CHECK(reports[r].remaining == 0,
                    "rank " << r << " finished with work remaining");
      }
    }
    if (n_active == 0) {
      publish_round(obs::Gate::kPhaseEnd, "all slaves done", remaining,
                    nullptr);
      co_return;
    }

    const Decision d = make_decision(remaining);
    co_await send_instructions(round_, /*phase_done=*/false, d, rates_,
                               active);
    note_round_span(round_t0);
  }
}

Decision Master::make_decision(const std::vector<int>& remaining) {
  Decision d = decide(cfg_.lb, remaining, rates_, move_cost_per_unit_s_,
                      to_seconds(freq_.period()));
  obs::Gate gate = obs::Gate::kHold;
  if (d.move) {
    ++stats_.moves_ordered;
    stats_.units_moved += units_moved(d.transfers);
    if (m_moves_ordered_ != nullptr) {
      m_moves_ordered_->inc();
      m_units_moved_->inc(static_cast<std::uint64_t>(units_moved(d.transfers)));
    }
    gate = obs::Gate::kMove;
  } else if (std::string_view(d.reason) == "below improvement threshold") {
    ++stats_.cancelled_threshold;
    if (m_cancel_thresh_ != nullptr) m_cancel_thresh_->inc();
    gate = obs::Gate::kBelowThreshold;
  } else if (std::string_view(d.reason) == "movement not profitable") {
    ++stats_.cancelled_profit;
    if (m_cancel_profit_ != nullptr) m_cancel_profit_->inc();
    gate = obs::Gate::kNotProfitable;
  }
  stats_.last_period_s = to_seconds(freq_.period());
  publish_round(gate, d.reason, remaining, &d);
  if (cfg_.lb.check != nullptr) {
    cfg_.lb.check->on_master_decision(ctx_.now(), d, remaining);
  }
  return d;
}

void Master::publish_round(obs::Gate gate, const char* reason,
                           const std::vector<int>& remaining,
                           const Decision* d) {
  if (obs_ == nullptr) return;
  m_rounds_->inc();
  m_period_->set(to_seconds(freq_.period()));

  obs::DecisionRecord rec;
  rec.round = static_cast<std::uint64_t>(stats_.rounds);
  rec.t = ctx_.now();
  rec.gate = gate;
  rec.reason = reason;
  rec.raw_rates = raw_rates_;
  rec.rates = rates_;
  rec.remaining.assign(remaining.begin(), remaining.end());
  rec.period_s = to_seconds(freq_.period());
  if (d != nullptr) {
    rec.target.assign(d->target.begin(), d->target.end());
    rec.moves.reserve(d->transfers.size());
    for (const Transfer& t : d->transfers) {
      rec.moves.push_back({t.from_rank, t.to_rank, t.count});
    }
    rec.improvement = d->improvement;
    rec.projected_current_s = d->projected_current_s;
    rec.projected_new_s = d->projected_new_s;
    rec.est_move_cost_s = d->est_move_cost_s;
  } else {
    rec.target = rec.remaining;
  }
  int units = 0;
  for (const obs::Move& m : rec.moves) units += static_cast<int>(m.count);
  obs_->trace.instant(
      ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb", "lb.decision",
      {"round", static_cast<double>(rec.round)},
      {"gate", static_cast<double>(static_cast<int>(gate))},
      {"units", static_cast<double>(units)});
  obs_->ledger.append(std::move(rec));
}

void Master::note_round_span(sim::Time t0) {
  if (obs_ == nullptr) return;
  m_round_hist_->observe(to_seconds(ctx_.now() - t0));
  obs_->trace.complete(t0, ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                       "lb.round",
                       {"round", static_cast<double>(stats_.rounds)});
}

Task<std::vector<StatusReport>> Master::collect_reports(
    int round, const std::vector<bool>& expected) {
  std::vector<StatusReport> reports(nslaves_);
  std::vector<bool> seen(nslaves_, false);
  int want = 0;
  for (int r = 0; r < nslaves_; ++r) want += expected[r] ? 1 : 0;
  int have = 0;
  const Time deadline = ctx_.now() + cfg_.lb.heartbeat_timeout;

  // First take any reports stashed by the previous collection (an idle
  // slave may run one round ahead of slower slaves).
  std::vector<std::pair<sim::Pid, StatusReport>> still_early;
  for (auto& [src, rep] : stashed_) {
    if (rep.round == round) {
      const int rank = rank_of(src);
      NOWLB_CHECK(!seen[rank], "duplicate stashed report from rank " << rank);
      NOWLB_CHECK(expected[rank], "stashed report from unexpected rank "
                                      << rank);
      seen[rank] = true;
      reports[rank] = rep;
      ++have;
    } else {
      still_early.emplace_back(src, rep);
    }
  }
  stashed_ = std::move(still_early);

  while (have < want) {
    sim::Pid src;
    StatusReport rep;
    if (ft()) {
      auto m = co_await ctx_.recv_until(kTagReport, sim::kAnyPid, deadline);
      if (!m) {
        // Heartbeat deadline passed with reports outstanding: every silent
        // rank is presumed crashed. Evict them all and return the partial
        // collection; recovery proceeds from the survivors' census.
        for (int r = 0; r < nslaves_; ++r) {
          if (expected[r] && !seen[r]) evict(r);
        }
        break;
      }
      src = m->src;
      rep = msg::decode<StatusReport>(m->payload);
      if (!active_[rank_of(src)]) {
        // A rank evicted in an earlier round is still talking: the
        // transport blackhole should have swallowed this. Note it (a
        // symptom of a false eviction) and drop the report.
        NOWLB_LOG(Warn, "lb") << "report from evicted rank " << rank_of(src);
        continue;
      }
    } else {
      auto [s, r] =
          co_await msg::recv_from_any<StatusReport>(ctx_, kTagReport);
      src = s;
      rep = r;
    }
    const int rank = rank_of(src);
    NOWLB_CHECK(expected[rank], "report from unexpected rank " << rank);
    if (obs_ != nullptr) {
      // Receive-side half of the slave->master transport edge, stamped at
      // true arrival time (a stashed early report is not re-stamped when
      // the next collection consumes it).
      obs_->trace.instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "cz",
                          "cz.report_recv",
                          {"rank", static_cast<double>(rank)},
                          {"round", static_cast<double>(rep.round)},
                          {"ctx", static_cast<double>(rep.ctx_round)});
    }
    if (rep.round == round + 1) {
      stashed_.emplace_back(src, rep);
      continue;
    }
    NOWLB_CHECK(rep.round == round, "rank " << rank << " reported round "
                                            << rep.round << ", expected "
                                            << round);
    NOWLB_CHECK(!seen[rank], "duplicate report from rank " << rank);
    seen[rank] = true;
    reports[rank] = rep;
    ++have;
  }
  collected_ = seen;
  if (obs_ != nullptr) {
    for (int r = 0; r < nslaves_; ++r) {
      if (!seen[r]) continue;
      obs_->trace.instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                          "lb.report", {"rank", static_cast<double>(r)},
                          {"round", static_cast<double>(round)},
                          {"remaining",
                           static_cast<double>(reports[r].remaining)});
    }
  }
  if (cfg_.lb.check != nullptr) {
    cfg_.lb.check->on_master_reports(ctx_.now(), round, reports, seen);
  }
  co_return reports;
}

void Master::process_measurements(const std::vector<StatusReport>& reports,
                                  const std::vector<bool>& mask) {
  // Interaction cost: the *least*-blocked slave reflects the pure cost of
  // exchanging information with the master; larger values are round skew
  // (waiting for stragglers), which is load imbalance, not overhead.
  Time min_blocked = std::numeric_limits<Time>::max();
  for (int r = 0; r < nslaves_; ++r) {
    if (!mask[r]) continue;
    const auto& rep = reports[r];
    // Rate update. Uninformative windows keep the previous estimate (see
    // informative_window).
    if (informative_window(rep)) {
      raw_rates_[r] = rep.units_done / rep.elapsed_s;
      rates_[r] = cfg_.lb.filtering ? filters_[r].update(raw_rates_[r])
                                    : raw_rates_[r];
      measured_[r] = true;
      if (obs_ != nullptr) {
        obs_->trace.instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                            "lb.filter", {"rank", static_cast<double>(r)},
                            {"raw", raw_rates_[r]}, {"filtered", rates_[r]});
      }
    }
    if (rep.lb_blocked_s > 0) {
      min_blocked =
          std::min(min_blocked, sim::from_seconds(rep.lb_blocked_s));
    }
    if (rep.moved_units > 0) {
      const double per_unit = rep.move_time_s / rep.moved_units;
      move_cost_per_unit_s_ = 0.5 * (move_cost_per_unit_s_ + per_unit);
      freq_.observe_move_event(sim::from_seconds(rep.move_time_s));
    }
  }
  if (min_blocked != std::numeric_limits<Time>::max()) {
    freq_.observe_interaction(min_blocked);
  }

  // An idle slave's window measures nothing about its capacity, yet its
  // stale (possibly noisy-low) estimate decides whether it gets work again
  // — a starvation lock-in. Let unmeasured or idle slaves' estimates drift
  // toward the mean of the measured ones (never downward: idleness is no
  // evidence of slowness).
  double sum = 0;
  int cnt = 0;
  for (int r = 0; r < nslaves_; ++r) {
    if (mask[r] && measured_[r] && rates_[r] > 0) {
      sum += rates_[r];
      ++cnt;
    }
  }
  if (cnt > 0) {
    const double prior = sum / cnt;
    for (int r = 0; r < nslaves_; ++r) {
      if (!mask[r]) continue;
      if (!measured_[r]) {
        rates_[r] = prior;
        filters_[r].force(prior);
      } else if (reports[r].units_done == 0 && reports[r].remaining == 0 &&
                 rates_[r] < prior) {
        rates_[r] += 0.3 * (prior - rates_[r]);
        filters_[r].force(rates_[r]);
      }
    }
  }
}

Task<> Master::send_instructions(int round, bool phase_done,
                                 const Decision& decision,
                                 const std::vector<double>& rates,
                                 const std::vector<bool>& recipients) {
  // Group transfers into per-rank send/receive orders.
  std::vector<std::vector<MoveOrder>> orders(nslaves_);
  for (const Transfer& t : decision.transfers) {
    orders[t.from_rank].push_back(
        {t.to_rank, t.count, /*is_send=*/std::uint8_t{1}});
    orders[t.to_rank].push_back(
        {t.from_rank, t.count, /*is_send=*/std::uint8_t{0}});
  }
  for (int r = 0; r < nslaves_; ++r) {
    if (!recipients[r]) {
      NOWLB_CHECK(orders[r].empty(),
                  "movement ordered for inactive rank " << r);
      continue;
    }
    Instructions ins;
    ins.round = round;
    ins.phase_done = phase_done ? 1 : 0;
    ins.units_until_next = rates[r] > 0 ? freq_.units_for_period(rates[r])
                                        : initial_window_units(r);
    ins.orders = std::move(orders[r]);
    attach_ft(ins, r);
    if (cfg_.lb.check != nullptr) {
      cfg_.lb.check->on_master_instructions(ctx_.now(), r, ins);
    }
    co_await send_instr(r, std::move(ins), /*decision_round=*/stats_.rounds);
  }
  if (ft() && ft_sync_pending_) {
    ft_sync_round_ = round;
    ft_sync_pending_ = false;
    newly_evicted_.clear();
  }
}

Task<> Master::send_instr(int rank, Instructions ins, int decision_round) {
  if (cfg_.lb.causal) {
    ins.causal = 1;
    ins.decision_round = decision_round;
  }
  if (obs_ != nullptr) {
    // Send-side half of the master->slave transport edge; `decision` maps
    // the wire round onto the ledger round without any wire bytes.
    obs_->trace.instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "cz",
                        "cz.instr_send", {"rank", static_cast<double>(rank)},
                        {"round", static_cast<double>(ins.round)},
                        {"decision", static_cast<double>(decision_round)});
  }
  co_await transport_->send(cfg_.slaves[rank], kTagInstr,
                            msg::encode(ins, ins.encoded_size()));
}

void Master::attach_ft(Instructions& ins, int rank) {
  if (!ft()) return;
  ins.ft = 1;
  ins.evicted.assign(newly_evicted_.begin(), newly_evicted_.end());
  if (!adopt_orders_[rank].empty()) {
    ins.adopt = std::move(adopt_orders_[rank]);
    adopt_orders_[rank].clear();
  }
}

void Master::evict(int rank) {
  NOWLB_CHECK(active_[rank], "evicting rank " << rank << " twice");
  NOWLB_LOG(Warn, "lb") << "master evicts rank " << rank
                        << " (report overdue at t="
                        << to_seconds(ctx_.now()) << "s)";
  active_[rank] = false;
  rates_[rank] = 0;
  raw_rates_[rank] = 0;
  measured_[rank] = false;
  newly_evicted_.push_back(rank);
  adopt_orders_[rank].clear();  // undeliverable; orphans get recomputed
  recovery_pending_ = true;
  ft_sync_pending_ = true;
  ++stats_.evictions;
  if (obs_ != nullptr) {
    m_evictions_->inc();
    obs_->trace.instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                        "lb.evict", {"rank", static_cast<double>(rank)});
  }
  transport_->blackhole(cfg_.slaves[rank]);
  // Forget any early report the dead rank stashed before crashing.
  std::erase_if(stashed_, [&](const auto& e) {
    return e.first == cfg_.slaves[rank];
  });
  if (cfg_.lb.check != nullptr) {
    cfg_.lb.check->on_rank_evicted(ctx_.now(), rank, cfg_.slaves[rank]);
  }
}

void Master::reconcile_census(const std::vector<StatusReport>& reports,
                              int census_round) {
  if (!recovery_pending_) return;
  // The census is only trustworthy once every survivor has applied the
  // latest FT state — eviction notices (drop in-flight traffic from the
  // dead, settle survivor-to-survivor moves) and adopt orders: their
  // reports of the round after the instructions that carried it.
  if (ft_sync_pending_) return;
  if (ft_sync_round_ < 0 || census_round <= ft_sync_round_) return;
  std::vector<bool> held(
      static_cast<std::size_t>(unit_ids_end_ - unit_ids_begin_), false);
  for (int r = 0; r < nslaves_; ++r) {
    if (!active_[r]) continue;
    if (!collected_[r]) return;  // partial view: wait for a full round
    NOWLB_CHECK(reports[r].ft, "census round report without FT trailer");
    for (std::int32_t id : reports[r].inventory) {
      const auto idx = static_cast<std::size_t>(id - unit_ids_begin_);
      NOWLB_CHECK(idx < held.size(), "inventory id " << id << " out of range");
      NOWLB_CHECK(!held[idx], "unit " << id << " owned by two ranks");
      held[idx] = true;
    }
  }
  std::vector<std::int32_t> orphans;
  for (std::size_t i = 0; i < held.size(); ++i) {
    if (!held[i]) {
      orphans.push_back(static_cast<std::int32_t>(i) + unit_ids_begin_);
    }
  }
  if (orphans.empty()) {
    // Coverage complete: every unit in the range has a live owner.
    NOWLB_LOG(Info, "lb") << "fault recovery complete at round "
                          << census_round;
    recovery_pending_ = false;
    return;
  }
  // Partition the orphans over the survivors, proportional to their
  // filtered rates (even split when no rate information survives).
  std::vector<int> survivors;
  double rate_sum = 0;
  for (int r = 0; r < nslaves_; ++r) {
    if (active_[r]) {
      survivors.push_back(r);
      rate_sum += std::max(0.0, rates_[r]);
    }
  }
  NOWLB_CHECK(!survivors.empty(), "no surviving slaves to adopt work");
  std::vector<double> weight(survivors.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    weight[i] = rate_sum > 0 ? std::max(0.0, rates_[survivors[i]]) / rate_sum
                             : 1.0 / static_cast<double>(survivors.size());
  }
  // Contiguous proportional split (largest-remainder not needed: adopters
  // re-balance through the ordinary mechanism once recovery completes).
  std::vector<double> cum(survivors.size());
  double acc = 0;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    acc += weight[i];
    cum[i] = acc;
  }
  std::vector<std::vector<std::int32_t>> assigned(survivors.size());
  const double n = static_cast<double>(orphans.size());
  std::size_t s = 0;
  for (std::size_t i = 0; i < orphans.size(); ++i) {
    const double frac = (static_cast<double>(i) + 0.5) / n;
    while (s + 1 < survivors.size() && frac > cum[s] / acc) ++s;
    assigned[s].push_back(orphans[i]);
  }
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    if (assigned[i].empty()) continue;
    const int r = survivors[i];
    NOWLB_LOG(Info, "lb") << "rank " << r << " adopts " << assigned[i].size()
                          << " orphaned units";
    stats_.orphans_reassigned += static_cast<int>(assigned[i].size());
    if (obs_ != nullptr) {
      m_orphans_->inc(assigned[i].size());
      obs_->trace.instant(ctx_.now(), ctx_.host_id(), ctx_.pid(), "lb",
                          "lb.adopt", {"rank", static_cast<double>(r)},
                          {"units", static_cast<double>(assigned[i].size())});
    }
    if (cfg_.lb.check != nullptr) {
      cfg_.lb.check->on_orphans_assigned(ctx_.now(), r, assigned[i]);
    }
    adopt_orders_[r] = std::move(assigned[i]);
  }
  ft_sync_pending_ = true;  // census stale until the adopt orders land
}

}  // namespace nowlb::lb
