// SlaveAgent: the load-balancing runtime embedded in each slave process.
//
// The compiler-generated slave code drives it (§4.2, §4.5): the kernel
// reports completed work units via add_units() and calls hook() at every
// load-balancing hook. When a balance is due the agent sends a status
// report; in pipelined mode (Fig. 2b) the slave *keeps computing* and picks
// the master's instructions up at a later hook, so the master interaction
// never blocks computation; in synchronous mode (Fig. 2a) hook() blocks for
// the instructions. drain() is called when local work is exhausted: it
// blocks until instructions arrive (possibly delivering new work from a
// peer, possibly declaring the phase complete).
//
// Work movement is delegated to application-specific WorkOps — the
// gather/scatter (and pipeline catch-up) code a parallelizing compiler
// generates for the application's data layout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "lb/config.hpp"
#include "lb/protocol.hpp"
#include "lb/transport.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace nowlb::obs {
class TraceBus;
}  // namespace nowlb::obs

namespace nowlb::lb {

class SlaveAgent {
 public:
  /// Application-specific work-movement operations. pack/unpack are
  /// coroutines so they can charge CPU for gather/scatter and for pipeline
  /// catch-up computation on moved slices (§4.5).
  struct WorkOps {
    /// Active work units currently held.
    std::function<int()> remaining;
    /// Choose up to `count` units to hand to `peer_rank`, remove them from
    /// the local set, and serialize them. Returns (payload, actual units).
    std::function<sim::Task<std::pair<sim::Bytes, int>>(int count,
                                                        int peer_rank)>
        pack;
    /// Integrate a received movement payload; returns units received.
    std::function<sim::Task<int>(const sim::Bytes& payload, int peer_rank)>
        unpack;
    /// Global ids of the work units this rank currently owns — the
    /// inventory census fault recovery is built on. Required (with adopt)
    /// only under a heartbeat regime.
    std::function<std::vector<std::int32_t>()> inventory;
    /// Reconstruct orphaned units (from replicated / recomputable state)
    /// and take ownership of them (fault recovery adopt order).
    std::function<sim::Task<>(const std::vector<std::int32_t>& ids)> adopt;
  };

  SlaveAgent(sim::Context& ctx, sim::Pid master, int rank,
             std::vector<sim::Pid> slave_pids, const LbConfig& lb,
             WorkOps ops, double first_window_units);

  int rank() const { return rank_; }

  /// Start a new distributed-loop invocation: reset the measurement window.
  void begin_phase();

  /// Report `units` of work completed (called from the compute loop).
  void add_units(double units) { units_since_ += units; }

  /// Report time spent blocked on *application* communication (pipeline
  /// ghost receives, broadcast waits). Excluded from the rate window:
  /// otherwise the pipeline's lock-step masks per-slave speed differences
  /// — every rank would measure the slowest rank's rate and the balancer
  /// would never see the imbalance.
  void note_blocked(sim::Time d) { app_blocked_accum_ += d; }

  /// The per-hook check: cheap when nothing is pending. Sends a report
  /// when one is due; applies instructions when they have arrived.
  sim::Task<> hook();

  /// Out of local work: block until instructions arrive. Afterwards either
  /// remaining() > 0 (work was received), or another report/instruction
  /// round is needed, or phase_done() is set.
  sim::Task<> drain();

  /// True once the master declared the current phase complete.
  bool phase_done() const { return phase_done_; }

  /// Done-flag termination (Termination::kDoneFlags): settle any
  /// outstanding instructions (peers may depend on our ordered transfers),
  /// then send a final done-flagged report and stop participating.
  sim::Task<> finalize();

  /// Accept a kTagMove message the *application* received out-of-band
  /// (pipelined apps block on peer data receives with a wildcard tag, and
  /// a work transfer can arrive — or even supersede the awaited data).
  /// Integrates it immediately if its order is already known, otherwise
  /// holds it until the order arrives with the next instructions.
  sim::Task<> accept_move(sim::Message m);

  /// Dispatch any load-balancing runtime message (kTagMove or kTagInstr)
  /// that application code picked up during a wildcard receive.
  sim::Task<> accept_runtime(sim::Message m);

  int rounds_completed() const { return round_; }
  int units_sent() const { return units_sent_; }
  int units_received() const { return units_received_; }

 private:
  /// One ordered incoming transfer, tagged with the wire round of the
  /// instructions that ordered it (causal attribution of the migration).
  struct PendingRecv {
    MoveOrder order;
    std::int32_t round = 0;
  };

  bool balance_due() const { return units_since_ >= until_next_; }
  sim::Task<> send_report();
  sim::Task<> handle_instr(const Instructions& ins);
  sim::Task<> apply_instr_body(const Instructions& ins);
  /// Apply the fault-tolerance trailer: blackhole evicted peers, drop
  /// undeliverable in-flight moves, settle survivor moves (so the next
  /// report's census is in-flight-free), adopt orphaned units.
  sim::Task<> handle_ft(const Instructions& ins);
  /// Execute the send half of the orders; queue the receive half.
  sim::Task<> apply_moves(const std::vector<MoveOrder>& orders);
  /// Charge overhead, unpack, and account one arrived transfer. `round` is
  /// the wire round whose instructions ordered it (cz.move_recv span).
  sim::Task<> integrate_move(const MoveOrder& order, std::int32_t round,
                             sim::Message m);
  /// Pop a stashed out-of-band move from `src`, if any.
  std::optional<sim::Message> take_stashed(sim::Pid src);
  /// True if `order` is the first queued receive for its peer (per-peer
  /// FIFO: earlier messages match earlier orders).
  bool first_for_peer(std::size_t index) const;
  /// Account a runtime wait that started at `w0` and ended now: add it to
  /// the blocked accumulator and emit the cz.blocked span (blocked-wait
  /// attribution in the causal DAG).
  void note_blocked_span(sim::Time w0);
  /// Blocking receive of one queued incoming transfer.
  sim::Task<> recv_one_pending();
  /// Next instruction message: a held early phase_done if one exists (see
  /// recv_one_pending's fault-tolerant wildcard loop), else a mailbox recv.
  sim::Task<Instructions> recv_instr();
  /// Blocking receive of every queued incoming transfer (pre-report sync).
  sim::Task<> drain_pending();
  /// Non-blocking: integrate any queued transfers whose message arrived.
  sim::Task<> poll_pending();
  /// Ordered (upper-bound) unit count of queued incoming transfers.
  int pending_units() const {
    int n = 0;
    for (const auto& p : pending_recvs_) n += p.order.count;
    return n;
  }
  sim::Pid pid_of(int rank) const { return slave_pids_.at(rank); }

  sim::Context& ctx_;
  sim::Pid master_;
  int rank_;
  std::vector<sim::Pid> slave_pids_;
  LbConfig lb_;
  WorkOps ops_;
  std::unique_ptr<Transport> transport_;
  obs::TraceBus* trace_ = nullptr;  // flight recorder, null when detached

  int round_ = 0;              // round of the last report sent
  bool awaiting_instr_ = false;
  /// Ordered incoming transfers not yet received. Receiving is
  /// opportunistic (polled at hooks) so computation overlaps with work
  /// movement; all entries are force-drained before the next report so
  /// reported `remaining` counts every unit exactly once.
  std::vector<PendingRecv> pending_recvs_;
  /// Out-of-band move messages accepted before their order was known.
  std::vector<sim::Message> stashed_moves_;
  /// A phase_done picked up by the fault-tolerant wildcard receive before
  /// the report it answers was sent; replayed by recv_instr().
  std::optional<Instructions> held_instr_;
  /// Round of a pipelined (pre-sent) instruction that a wildcard receive
  /// picked up and applied before its matching report went out; that
  /// report then completes the round with nothing left to wait for.
  int prepaid_round_ = 0;
  /// Wire round of the instructions currently being applied (tags move
  /// orders and cz.move_* spans with their ordering round).
  std::int32_t applying_round_ = 0;
  /// Wire round of the last applied instructions: the next report's
  /// causal-trailer parent (StatusReport::ctx_round).
  std::int32_t last_applied_round_ = 0;
  double units_since_ = 0;
  double until_next_;
  sim::Time window_start_ = 0;
  sim::Time app_blocked_accum_ = 0;  // application waits inside the window
  sim::Time overhead_accum_ = 0;  // report/instr processing time (not waits)
  sim::Time last_overhead_ = 0;
  sim::Time move_time_accum_ = 0;
  int moved_units_accum_ = 0;
  bool phase_done_ = false;
  bool final_ = false;
  int units_sent_ = 0;
  int units_received_ = 0;
};

}  // namespace nowlb::lb
