#include "lb/plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "lb/allocate.hpp"
#include "util/check.hpp"

namespace nowlb::lb {

std::vector<Transfer> plan_unrestricted(const std::vector<int>& current,
                                        const std::vector<int>& target) {
  NOWLB_CHECK(current.size() == target.size());
  NOWLB_CHECK(std::accumulate(current.begin(), current.end(), 0) ==
                  std::accumulate(target.begin(), target.end(), 0),
              "current and target must partition the same work");

  // (surplus, rank) donors and (deficit, rank) receivers, largest first.
  std::vector<std::pair<int, int>> donors, receivers;
  for (std::size_t i = 0; i < current.size(); ++i) {
    const int d = current[i] - target[i];
    if (d > 0) donors.emplace_back(d, static_cast<int>(i));
    if (d < 0) receivers.emplace_back(-d, static_cast<int>(i));
  }
  auto by_size = [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  std::sort(donors.begin(), donors.end(), by_size);
  std::sort(receivers.begin(), receivers.end(), by_size);

  std::vector<Transfer> out;
  std::size_t di = 0, ri = 0;
  while (di < donors.size() && ri < receivers.size()) {
    const int n = std::min(donors[di].first, receivers[ri].first);
    out.push_back({donors[di].second, receivers[ri].second, n});
    donors[di].first -= n;
    receivers[ri].first -= n;
    if (donors[di].first == 0) ++di;
    if (receivers[ri].first == 0) ++ri;
  }
  NOWLB_CHECK(di == donors.size() && ri == receivers.size(),
              "unmatched surplus/deficit");
  return out;
}

std::vector<Transfer> plan_restricted(const std::vector<int>& current,
                                      const std::vector<int>& target) {
  NOWLB_CHECK(current.size() == target.size());
  NOWLB_CHECK(std::accumulate(current.begin(), current.end(), 0) ==
                  std::accumulate(target.begin(), target.end(), 0),
              "current and target must partition the same work");
  // Boundary j sits between ranks j-1 and j. With block distributions the
  // prefix sums are the boundary positions; the flow across boundary j is
  // the difference of old and new prefixes.
  std::vector<Transfer> out;
  int old_prefix = 0, new_prefix = 0;
  for (std::size_t j = 1; j < current.size(); ++j) {
    old_prefix += current[j - 1];
    new_prefix += target[j - 1];
    const int flow = old_prefix - new_prefix;
    if (flow > 0) {
      // Boundary moves left: rank j-1 shrinks from the right; units cross
      // from rank j-1 to rank j... no: old boundary > new boundary means
      // rank j-1 now ends earlier, so its highest slices go right to rank j.
      out.push_back({static_cast<int>(j - 1), static_cast<int>(j), flow});
    } else if (flow < 0) {
      // Boundary moves right: rank j's lowest slices go left to rank j-1.
      out.push_back({static_cast<int>(j), static_cast<int>(j - 1), -flow});
    }
  }
  return out;
}

int units_moved(const std::vector<Transfer>& transfers) {
  int n = 0;
  for (const auto& t : transfers) n += t.count;
  return n;
}

Decision decide(const LbConfig& cfg, const std::vector<int>& current,
                const std::vector<double>& rates,
                double move_cost_per_unit_s, double lag_s) {
  Decision d;
  d.target = current;
  const int total = std::accumulate(current.begin(), current.end(), 0);
  if (total == 0) {
    d.reason = "no work remaining";
    return d;
  }

  std::vector<int> target = proportional_allocation(rates, total);
  if (cfg.min_units_per_slave > 0 &&
      total >= cfg.min_units_per_slave * static_cast<int>(target.size())) {
    // Raise starved ranks to the floor, taking from the largest holder.
    for (std::size_t i = 0; i < target.size(); ++i) {
      while (target[i] < cfg.min_units_per_slave) {
        const auto donor = std::max_element(target.begin(), target.end());
        NOWLB_CHECK(*donor > cfg.min_units_per_slave);
        --*donor;
        ++target[i];
      }
    }
  }
  d.projected_current_s = projected_time(current, rates);
  d.projected_new_s = projected_time(target, rates);

  const bool cur_inf = std::isinf(d.projected_current_s);
  const bool new_inf = std::isinf(d.projected_new_s);
  if (cur_inf && new_inf) {
    d.reason = "no slave can make progress";
    return d;
  }
  d.improvement =
      cur_inf ? 1.0
              : (d.projected_current_s - d.projected_new_s) /
                    d.projected_current_s;

  // Refinement 2 (§3.2): don't move unless the projected reduction in
  // execution time is at least the threshold (10 %).
  if (d.improvement < cfg.improvement_threshold) {
    d.reason = "below improvement threshold";
    return d;
  }

  auto transfers = cfg.movement == Movement::kRestricted
                       ? plan_restricted(current, target)
                       : plan_unrestricted(current, target);
  // Transfers proceed in parallel across slave pairs; the movement cost on
  // the critical path is the busiest rank's involvement, not the total.
  std::vector<int> involvement(current.size(), 0);
  for (const auto& t : transfers) {
    involvement[t.from_rank] += t.count;
    involvement[t.to_rank] += t.count;
  }
  const int busiest =
      transfers.empty()
          ? 0
          : *std::max_element(involvement.begin(), involvement.end());
  d.est_move_cost_s = busiest * move_cost_per_unit_s;

  // Refinement 3 (§3.2): profitability determination — cancel the movement
  // if its estimated cost exceeds the projected benefit, or if the phase
  // will finish before the moved work can land (endgame guard).
  if (cfg.profitability_check && !cur_inf) {
    if (d.projected_current_s < lag_s) {
      d.reason = "movement not profitable";
      return d;
    }
    const double benefit = d.projected_current_s - d.projected_new_s;
    if (d.est_move_cost_s > benefit) {
      d.reason = "movement not profitable";
      return d;
    }
  }

  d.move = true;
  d.target = target;
  d.transfers = std::move(transfers);
  d.reason = "rebalance";
  return d;
}

}  // namespace nowlb::lb
