// Movement planning: turn (current, target) distributions into transfer
// instructions, gated by the 10 % improvement threshold and the
// profitability determination phase (§3.2).
#pragma once

#include <vector>

#include "lb/config.hpp"

namespace nowlb::lb {

/// A planned work transfer of `count` units from one rank to another.
struct Transfer {
  int from_rank = 0;
  int to_rank = 0;
  int count = 0;
  friend bool operator==(const Transfer&, const Transfer&) = default;
};

/// Direct any-to-any transfers (Fig. 1a): greedily match the largest
/// surplus with the largest deficit. Transfer count is minimal (total
/// surplus) and no rank both sends and receives.
std::vector<Transfer> plan_unrestricted(const std::vector<int>& current,
                                        const std::vector<int>& target);

/// Adjacent-only transfers preserving a block distribution (Fig. 1b):
/// computed from prefix-sum boundary shifts, so intermediate ranks forward
/// work along the chain within a single round.
std::vector<Transfer> plan_restricted(const std::vector<int>& current,
                                      const std::vector<int>& target);

int units_moved(const std::vector<Transfer>& transfers);

/// Full per-round balancing decision.
struct Decision {
  bool move = false;
  std::vector<int> target;          // equals current when !move
  std::vector<Transfer> transfers;  // empty when !move
  double projected_current_s = 0;   // completion time of current distribution
  double projected_new_s = 0;       // completion time of proportional target
  double improvement = 0;           // relative reduction
  double est_move_cost_s = 0;
  const char* reason = "";          // why movement was (not) ordered
};

/// Decide whether and how to redistribute: proportional allocation, the
/// >= threshold improvement gate, and (optionally) the profitability check
/// comparing estimated movement cost against the projected benefit.
/// `lag_s` is the expected delay until moved work lands (about one
/// balancing period with pipelined instructions): when the remaining work
/// completes sooner than that, movement cannot pay off in this invocation
/// and only churns the distribution.
Decision decide(const LbConfig& cfg, const std::vector<int>& current,
                const std::vector<double>& rates,
                double move_cost_per_unit_s, double lag_s = 0.0);

}  // namespace nowlb::lb
