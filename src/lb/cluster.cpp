#include "lb/cluster.hpp"

#include <string>

#include "util/check.hpp"

namespace nowlb::lb {

Cluster::Cluster(sim::World& world, ClusterConfig cfg)
    : world_(world), cfg_(std::move(cfg)), stats_(std::make_shared<MasterStats>()) {
  NOWLB_CHECK(cfg_.slaves > 0);
  NOWLB_CHECK(static_cast<int>(cfg_.initial_counts.size()) == cfg_.slaves,
              "initial_counts must have one entry per slave");
  for (int r = 0; r < cfg_.slaves; ++r) {
    slave_hosts_.push_back(&world_.add_host());
  }
  load_pids_.resize(cfg_.slaves);
  if (cfg_.use_master) master_host_ = &world_.add_host();
}

void Cluster::spawn(SlaveBody body) {
  NOWLB_CHECK(!spawned_, "Cluster::spawn called twice");
  spawned_ = true;

  for (int r = 0; r < cfg_.slaves; ++r) {
    slave_pids_.push_back(world_.spawn(
        *slave_hosts_[r], "slave" + std::to_string(r),
        [this, body, r](sim::Context& ctx) -> sim::Task<> {
          co_await body(ctx, r, *this);
        }));
  }

  if (!cfg_.use_master) return;
  master_pid_ = world_.spawn(
      *master_host_, "master", [this](sim::Context& ctx) -> sim::Task<> {
        MasterConfig mc;
        mc.slaves = slave_pids_;
        mc.initial_counts = cfg_.initial_counts;
        mc.phases = cfg_.phases;
        mc.termination = cfg_.termination;
        mc.lb = cfg_.lb;
        mc.first_window_fraction = cfg_.first_window_fraction;
        mc.unit_ids_begin = cfg_.unit_ids_begin;
        mc.unit_ids_end = cfg_.unit_ids_end;
        mc.stats = stats_;
        Master master(ctx, mc);
        co_await master.run();
      });
}

void Cluster::add_load(int rank, sim::ProcessBody load_body) {
  load_pids_.at(rank).push_back(
      world_.spawn(*slave_hosts_.at(rank), "load" + std::to_string(rank),
                   std::move(load_body), /*essential=*/false));
}

SlaveAgent Cluster::make_agent(sim::Context& ctx, int rank,
                               SlaveAgent::WorkOps ops) const {
  NOWLB_CHECK(spawned_, "make_agent before spawn");
  const double first_window =
      std::max(1.0, cfg_.first_window_fraction *
                        static_cast<double>(cfg_.initial_counts[rank]));
  return SlaveAgent(ctx, master_pid_, rank, slave_pids_, cfg_.lb,
                    std::move(ops), first_window);
}

}  // namespace nowlb::lb
