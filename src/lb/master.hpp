// The central load balancer (the "master", §3.1-3.3).
//
// Runs as its own simulated process. Each round it collects one status
// report per slave, filters the measured rates, computes a proportional
// redistribution, gates it by the improvement threshold and profitability,
// plans transfers (direct or adjacent-only), selects the next balancing
// period, and sends per-slave instructions. In pipelined mode instructions
// are issued one round ahead so slave blocking time is just the local
// send/receive cost.
//
// The master's control loop mirrors the slaves' phase structure (§4.1):
// MasterConfig.phases is the number of distributed-loop invocations the
// generated program performs, so master and slaves execute the same number
// of balancing phases and terminate together.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lb/config.hpp"
#include "lb/filter.hpp"
#include "lb/frequency.hpp"
#include "lb/plan.hpp"
#include "lb/protocol.hpp"
#include "lb/transport.hpp"
#include "obs/ledger.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace nowlb::obs {
struct Observability;
class Counter;
class Gauge;
class Histogram;
}  // namespace nowlb::obs

namespace nowlb::lb {

/// Aggregate counters, readable after the run for experiments/tests.
struct MasterStats {
  int rounds = 0;
  int moves_ordered = 0;        // rounds where movement was ordered
  int units_moved = 0;          // total units in ordered transfers
  int cancelled_threshold = 0;  // rounds gated by the 10 % threshold
  int cancelled_profit = 0;     // rounds cancelled by profitability
  double last_period_s = 0;
  int evictions = 0;            // ranks declared dead (fault tolerance)
  int orphans_reassigned = 0;   // orphaned units handed to survivors
};

/// True when a status report's measurement window says something about the
/// slave's capacity. Windows that measured nothing — an idle slave spinning
/// balance rounds, or a degenerate sub-millisecond window (including the
/// zeroed placeholder of a rank whose report never arrived) — must not
/// update the rate estimate, and in particular must never divide by the
/// ~zero elapsed time.
inline bool informative_window(const StatusReport& rep) {
  return rep.elapsed_s > 1e-4 && !(rep.units_done == 0 && rep.remaining == 0);
}

/// How the run ends.
enum class Termination {
  /// The master mirrors the generated program's loop structure: it runs
  /// `phases` distributed-loop invocations, detecting the end of each from
  /// all-zero remaining reports (MM repeats, SOR sweeps).
  kPhases,
  /// Free-running: slaves balance purely on hook counters (invocations
  /// synchronize among themselves, e.g. LU's pivot broadcast) and send a
  /// final done-flagged report when their whole computation ends. In this
  /// mode the master replies to each round's reports directly (slaves poll,
  /// so the reply is still off the critical path).
  kDoneFlags,
};

struct MasterConfig {
  std::vector<sim::Pid> slaves;     // slave pids in rank order
  std::vector<int> initial_counts;  // initial work distribution per rank
  int phases = 1;                   // distributed-loop invocations
  Termination termination = Termination::kPhases;
  LbConfig lb;
  /// Fraction of the initial assignment to complete before the first
  /// balance of each phase (no rate information exists yet). Small, so
  /// rate information is established early in a phase.
  double first_window_fraction = 0.05;
  /// Half-open range of global work-unit ids, used by fault recovery to
  /// compute orphaned units from the survivors' inventory census. The
  /// default (end = -1) means [0, sum(initial_counts)).
  int unit_ids_begin = 0;
  int unit_ids_end = -1;
  std::shared_ptr<MasterStats> stats;  // optional
};

class Master {
 public:
  Master(sim::Context& ctx, MasterConfig cfg);

  /// The master process body: run all phases to completion.
  sim::Task<> run();

 private:
  sim::Task<> run_phase();
  sim::Task<> run_done_flags();
  /// Collect one report from every rank with expected[rank] set. Under a
  /// heartbeat regime a rank whose report is more than heartbeat_timeout
  /// late is evicted and the collection returns partial; `collected_`
  /// holds the ranks actually heard from.
  sim::Task<std::vector<StatusReport>> collect_reports(
      int round, const std::vector<bool>& expected);
  sim::Task<> send_instructions(int round, bool phase_done,
                                const Decision& decision,
                                const std::vector<double>& rates,
                                const std::vector<bool>& recipients);
  void process_measurements(const std::vector<StatusReport>& reports,
                            const std::vector<bool>& mask);
  /// Declare a rank dead: stop expecting traffic, zero its rate, queue the
  /// eviction notice for the next instructions, start recovery.
  void evict(int rank);
  /// Reconcile the survivors' inventory census against the global unit-id
  /// range; assign any orphaned units to survivors (adopt orders attached
  /// to the next instructions). Clears recovery_pending_ once coverage is
  /// complete and nothing is left to assign.
  void reconcile_census(const std::vector<StatusReport>& reports,
                        int census_round);
  /// Attach the fault-tolerance trailer (eviction notices, adopt orders).
  void attach_ft(Instructions& ins, int rank);
  /// Reliable (or plain, when the transport is disabled) instruction send.
  /// `decision_round` is the decision-ledger round the instructions carry
  /// (0 = pipelined priming / no decision); it feeds the causal trailer
  /// and the cz.instr_send trace annotation.
  sim::Task<> send_instr(int rank, Instructions ins, int decision_round);
  bool ft() const { return cfg_.lb.fault_tolerance(); }
  /// Gate + plan movement for the current remaining distribution, updating
  /// stats and the decision ledger.
  Decision make_decision(const std::vector<int>& remaining);
  /// Publish one decision-ledger record (and the lb.decision trace
  /// instant) for the round just counted in stats_.rounds. Exactly one
  /// record is published per report collection, so the ledger explains
  /// every balancing round, including phase wind-down and frozen ones.
  void publish_round(obs::Gate gate, const char* reason,
                     const std::vector<int>& remaining, const Decision* d);
  /// Histogram + span for the master-side round latency (end of report
  /// collection to instructions sent).
  void note_round_span(sim::Time t0);
  double initial_window_units(int rank) const;
  int rank_of(sim::Pid pid) const;

  sim::Context& ctx_;
  MasterConfig cfg_;
  /// Reports that arrived one round early (an idle slave can start round
  /// r+1 while slower slaves are still in round r); keyed implicitly by
  /// arrival order, bounded by one per slave.
  std::vector<std::pair<sim::Pid, StatusReport>> stashed_;
  int nslaves_;
  int round_ = 0;
  std::vector<TrendFilter> filters_;
  std::vector<double> rates_;      // filtered rate per rank (units/s)
  std::vector<double> raw_rates_;  // last raw rate per rank
  std::vector<bool> measured_;     // rank has produced an informative window
  FrequencyController freq_;
  double move_cost_per_unit_s_;
  MasterStats local_stats_;
  MasterStats& stats_;

  // ---- flight recorder (src/obs; null when no hub is attached) ----
  obs::Observability* obs_ = nullptr;
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_moves_ordered_ = nullptr;
  obs::Counter* m_units_moved_ = nullptr;
  obs::Counter* m_cancel_thresh_ = nullptr;
  obs::Counter* m_cancel_profit_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_orphans_ = nullptr;
  obs::Gauge* m_period_ = nullptr;
  obs::Histogram* m_round_hist_ = nullptr;

  // ---- fault tolerance (DESIGN.md §9) ----
  std::unique_ptr<Transport> transport_;
  std::vector<bool> active_;      // rank not evicted
  std::vector<bool> collected_;   // ranks heard from in the last collection
  std::vector<int> newly_evicted_;  // evictions not yet announced
  /// Census synchronization barrier. Eviction notices and adopt orders
  /// take effect when slaves apply the instructions carrying them, and the
  /// protocol guarantees a slave applies instructions r before reporting
  /// r+1 — so after instructions round `ft_sync_round_` carried FT state,
  /// the first inventory census that reflects it is the reports of round
  /// ft_sync_round_ + 1. Reconciling against an earlier census would
  /// re-assign orphans that are already adopted (double adoption).
  int ft_sync_round_ = -1;
  bool ft_sync_pending_ = false;  // FT state queued, not yet on the wire
  bool recovery_pending_ = false;
  std::vector<std::vector<std::int32_t>> adopt_orders_;  // per rank, queued
  int unit_ids_begin_ = 0;
  int unit_ids_end_ = 0;
};

}  // namespace nowlb::lb
