// The central load balancer (the "master", §3.1-3.3).
//
// Runs as its own simulated process. Each round it collects one status
// report per slave, filters the measured rates, computes a proportional
// redistribution, gates it by the improvement threshold and profitability,
// plans transfers (direct or adjacent-only), selects the next balancing
// period, and sends per-slave instructions. In pipelined mode instructions
// are issued one round ahead so slave blocking time is just the local
// send/receive cost.
//
// The master's control loop mirrors the slaves' phase structure (§4.1):
// MasterConfig.phases is the number of distributed-loop invocations the
// generated program performs, so master and slaves execute the same number
// of balancing phases and terminate together.
#pragma once

#include <memory>
#include <vector>

#include "lb/config.hpp"
#include "lb/filter.hpp"
#include "lb/frequency.hpp"
#include "lb/plan.hpp"
#include "lb/protocol.hpp"
#include "sim/context.hpp"
#include "sim/task.hpp"

namespace nowlb::lb {

/// Aggregate counters, readable after the run for experiments/tests.
struct MasterStats {
  int rounds = 0;
  int moves_ordered = 0;        // rounds where movement was ordered
  int units_moved = 0;          // total units in ordered transfers
  int cancelled_threshold = 0;  // rounds gated by the 10 % threshold
  int cancelled_profit = 0;     // rounds cancelled by profitability
  double last_period_s = 0;
};

/// How the run ends.
enum class Termination {
  /// The master mirrors the generated program's loop structure: it runs
  /// `phases` distributed-loop invocations, detecting the end of each from
  /// all-zero remaining reports (MM repeats, SOR sweeps).
  kPhases,
  /// Free-running: slaves balance purely on hook counters (invocations
  /// synchronize among themselves, e.g. LU's pivot broadcast) and send a
  /// final done-flagged report when their whole computation ends. In this
  /// mode the master replies to each round's reports directly (slaves poll,
  /// so the reply is still off the critical path).
  kDoneFlags,
};

struct MasterConfig {
  std::vector<sim::Pid> slaves;     // slave pids in rank order
  std::vector<int> initial_counts;  // initial work distribution per rank
  int phases = 1;                   // distributed-loop invocations
  Termination termination = Termination::kPhases;
  LbConfig lb;
  /// Fraction of the initial assignment to complete before the first
  /// balance of each phase (no rate information exists yet). Small, so
  /// rate information is established early in a phase.
  double first_window_fraction = 0.05;
  std::shared_ptr<MasterStats> stats;  // optional
};

class Master {
 public:
  Master(sim::Context& ctx, MasterConfig cfg);

  /// The master process body: run all phases to completion.
  sim::Task<> run();

 private:
  sim::Task<> run_phase();
  sim::Task<> run_done_flags();
  /// Collect one report from every rank with expected[rank] set.
  sim::Task<std::vector<StatusReport>> collect_reports(
      int round, const std::vector<bool>& expected);
  sim::Task<> send_instructions(int round, bool phase_done,
                                const Decision& decision,
                                const std::vector<double>& rates,
                                const std::vector<bool>& recipients);
  void process_measurements(const std::vector<StatusReport>& reports,
                            const std::vector<bool>& mask);
  /// Gate + plan movement for the current remaining distribution, updating
  /// stats and the trace.
  Decision make_decision(const std::vector<int>& remaining);
  double initial_window_units(int rank) const;
  int rank_of(sim::Pid pid) const;

  sim::Context& ctx_;
  MasterConfig cfg_;
  /// Reports that arrived one round early (an idle slave can start round
  /// r+1 while slower slaves are still in round r); keyed implicitly by
  /// arrival order, bounded by one per slave.
  std::vector<std::pair<sim::Pid, StatusReport>> stashed_;
  int nslaves_;
  int round_ = 0;
  std::vector<TrendFilter> filters_;
  std::vector<double> rates_;      // filtered rate per rank (units/s)
  std::vector<double> raw_rates_;  // last raw rate per rank
  std::vector<bool> measured_;     // rank has produced an informative window
  FrequencyController freq_;
  double move_cost_per_unit_s_;
  MasterStats local_stats_;
  MasterStats& stats_;
};

}  // namespace nowlb::lb
