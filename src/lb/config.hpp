// Load balancer configuration.
//
// Defaults follow the paper: 10 % projected-improvement gate, pipelined
// master interactions, period >= max(20 x interaction cost,
// 0.1 x work-movement cost, 5 x scheduling quantum, 500 ms) — Fig. 4.
#pragma once

#include "sim/time.hpp"

namespace nowlb::lb {

class RuntimeHooks;

using sim::Time;

enum class Movement {
  /// Work may move directly between any pair of slaves (Fig. 1a) —
  /// applications without loop-carried dependences.
  kUnrestricted,
  /// Work moves only between logically adjacent slaves, preserving a block
  /// distribution (Fig. 1b) — applications with loop-carried dependences.
  kRestricted,
};

/// Reliable-delivery layer for the master/slave protocol (DESIGN.md §9).
/// Off by default: the classic runtime assumes a perfect network and its
/// wire format and timing must stay bit-identical.
struct TransportConfig {
  bool enabled = false;
  /// Initial retransmission timeout; should comfortably exceed one
  /// round-trip (wire latency + transmit + ack) under load.
  Time rto = 20 * sim::kMillisecond;
  /// Timeout multiplier per successive retransmission of one message.
  double backoff = 2.0;
  /// Retransmissions before giving a message up for lost (the peer is
  /// presumed dead; the failure detector is responsible for acting on it).
  int max_retries = 8;
};

struct LbConfig {
  /// Pipelined master interactions (Fig. 2b): instructions received at a
  /// balancing point are based on the previous point's status. Synchronous
  /// (Fig. 2a) puts the full master round-trip on the critical path.
  bool pipelined = true;

  Movement movement = Movement::kUnrestricted;

  /// Minimum projected reduction in completion time to move work (§3.2).
  double improvement_threshold = 0.10;

  /// Floor on any slave's target assignment (work units). Pipelined
  /// applications set this to 1: an empty rank would break the neighbour
  /// ghost-exchange chain of the block distribution.
  int min_units_per_slave = 0;

  /// Enable the profitability determination phase: cancel movements whose
  /// estimated cost exceeds the projected benefit (§3.2).
  bool profitability_check = true;

  /// Enable trend-adaptive filtering of rate reports; when false the raw
  /// rate is used directly (ablation).
  bool filtering = true;
  /// Weight of new rate data when the trend is not established.
  double filter_alpha = 0.3;
  /// Weight of new rate data once `filter_trend_len` consecutive samples
  /// moved in the same direction (rates really are changing).
  double filter_fast_alpha = 0.75;
  int filter_trend_len = 3;

  // ---- load-balancing frequency selection (§4.3 / Fig. 4) ----
  /// Hard floor on the balancing period.
  Time min_period = 500 * sim::kMillisecond;
  /// Period must be at least this many scheduling quanta.
  double quanta_multiple = 5.0;
  /// Period must be at least this multiple of the master interaction cost.
  double interaction_multiple = 20.0;
  /// Period must be at least this multiple of the cost of moving work.
  double movement_multiple = 0.1;

  /// Starting estimates, refined by measurement at run time. The movement
  /// estimate starts optimistic: a pessimistic start would cancel every
  /// early movement on profitability grounds and the real cost would never
  /// be measured (it is only measured when work actually moves).
  Time initial_interaction_cost = 2 * sim::kMillisecond;
  Time initial_move_cost = 2 * sim::kMillisecond;

  /// OS scheduling quantum of the slave hosts (compile/startup-time known).
  Time quantum = 100 * sim::kMillisecond;

  /// Reliable transport wrapped around report/instruction/move traffic.
  TransportConfig transport;

  /// Causal span-context propagation (DESIGN.md §13): piggyback round ids
  /// on report/instruction trailers and wrap kTagMove payloads with the
  /// ordering round, so obs/causal.cpp can join each migration to the
  /// decision that ordered it even under faults. Off by default: the wire
  /// bytes (and hence timing and trace hashes) stay bit-identical to the
  /// classic format. The cz.* trace annotations do NOT depend on this flag
  /// — they are emitted from locally-known state whenever a flight
  /// recorder is attached.
  bool causal = false;

  /// Failure-detection deadline: if a slave's status report is more than
  /// this late at a collection point, the master declares the rank dead,
  /// evicts it and reassigns its outstanding work to the survivors. Zero
  /// disables fault tolerance (a missing report blocks forever, as in the
  /// paper's perfect-network model). Requires transport.enabled and
  /// phase-counting termination.
  Time heartbeat_timeout = 0;
  bool fault_tolerance() const { return heartbeat_timeout > 0; }

  /// Optional runtime event hooks (lb/hooks.hpp); src/check's
  /// InvariantSet implements them. Master and slaves report every
  /// protocol event to it; null disables all reporting. Not owned; must
  /// outlive the run.
  RuntimeHooks* check = nullptr;
};

}  // namespace nowlb::lb
