#include "lb/allocate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace nowlb::lb {

std::vector<int> proportional_allocation(const std::vector<double>& rates,
                                         int total) {
  NOWLB_CHECK(!rates.empty());
  NOWLB_CHECK(total >= 0);
  const std::size_t n = rates.size();

  double aggregate = 0;
  for (double r : rates) aggregate += std::max(0.0, r);

  std::vector<int> out(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders(n);

  if (aggregate <= 0) {
    // No usable rate information: fall back to an even split.
    const int base = total / static_cast<int>(n);
    int extra = total % static_cast<int>(n);
    for (std::size_t i = 0; i < n; ++i)
      out[i] = base + (static_cast<int>(i) < extra ? 1 : 0);
    return out;
  }

  int assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double share =
        std::max(0.0, rates[i]) / aggregate * static_cast<double>(total);
    out[i] = static_cast<int>(std::floor(share));
    assigned += out[i];
    remainders[i] = {share - std::floor(share), i};
  }
  // Hand out the leftover units to the largest remainders; ties go to the
  // lower index for determinism.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  int leftover = total - assigned;
  // The shares are floating-point quotients: once total is large enough
  // that an ulp of a share exceeds 1, a share can land just above its
  // exact integer value and the floors then oversubscribe the total.
  // Reclaim from the smallest remainders (never below zero).
  for (std::size_t i = n; leftover < 0 && i-- > 0;) {
    const std::size_t rank = remainders[i].second;
    if (out[rank] > 0) {
      --out[rank];
      ++leftover;
    }
  }
  for (int i = 0; i < leftover; ++i) {
    // Wrap around defensively: accumulated downward error on a huge total
    // can leave more leftover units than ranks.
    out[remainders[static_cast<std::size_t>(i) % n].second] += 1;
  }
  NOWLB_CHECK(std::accumulate(out.begin(), out.end(), 0) == total,
              "allocation lost work units");
  return out;
}

double projected_time(const std::vector<int>& work,
                      const std::vector<double>& rates) {
  NOWLB_CHECK(work.size() == rates.size());
  double t = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (work[i] == 0) continue;
    if (rates[i] <= 0) return std::numeric_limits<double>::infinity();
    t = std::max(t, static_cast<double>(work[i]) / rates[i]);
  }
  return t;
}

}  // namespace nowlb::lb
