// Simulated workstation CPU with a round-robin, quantum-based scheduler.
//
// This models the property the paper's load balancer actually contends
// with: multiple processes (the slave plus competing tasks) time-share one
// CPU in quantum-sized slices, so measured computation rates oscillate on
// the quantum timescale and degrade in proportion to the competing load.
// Per-process CPU accounting stands in for getrusage().
#pragma once

#include <deque>
#include <vector>

#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nowlb::sim {

class Process;

class Host {
 public:
  Host(Engine& eng, int id, HostConfig cfg);

  int id() const { return id_; }

  /// Enqueue a CPU demand for `p` (resume_point must be set). The process
  /// is resumed once it has accumulated `demand` of CPU time.
  void submit(Process& p, Time demand);

  /// Forget a killed process: drop it from the run queue and its pending
  /// demand. If it is mid-slice the slice completes (the crash takes CPU
  /// effect at the next scheduler boundary) but it is never resumed.
  void remove(Process& p);

  /// CPU consumed by `p`, including the in-flight portion of the current
  /// slice — the simulator's getrusage().
  Time cpu_used(const Process& p) const;

  /// Number of processes currently runnable (incl. running).
  std::size_t load() const { return runq_.size() + (running_ ? 1 : 0); }

  std::uint64_t context_switches() const { return switches_; }

 private:
  void dispatch();
  void on_slice_end();

  Engine& eng_;
  int id_;
  HostConfig cfg_;
  std::deque<Process*> runq_;
  Process* running_ = nullptr;
  Process* last_ran_ = nullptr;
  Time slice_len_ = 0;
  Time slice_work_begin_ = 0;  // when the current slice starts burning CPU
  std::uint64_t switches_ = 0;
};

}  // namespace nowlb::sim
