// A simulated process: a coroutine bound to a host, with a mailbox and
// CPU accounting.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/mailbox.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nowlb::sim {

class Host;
class World;
class Context;

class Process {
 public:
  Process(World& world, Host& host, Pid pid, std::string name, bool essential);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Pid pid() const { return pid_; }
  const std::string& name() const { return name_; }
  Host& host() { return host_; }
  const Host& host() const { return host_; }
  Mailbox& mailbox() { return mailbox_; }
  Context& ctx() { return *ctx_; }
  World& world() { return world_; }

  bool essential() const { return essential_; }
  bool finished() const { return finished_; }
  /// True after World::kill: the coroutine is never resumed again, the
  /// mailbox discards arrivals, and the scheduler forgets the process.
  bool killed() const { return killed_; }
  std::exception_ptr error() const { return error_; }

  /// Invoked synchronously when the process is killed (runtime layers
  /// cancel their timers here — a crashed host stops transmitting).
  void add_kill_hook(std::function<void()> hook) {
    kill_hooks_.push_back(std::move(hook));
  }

  /// CPU time consumed so far, excluding any in-flight slice (Host adds
  /// the in-flight portion; use World::cpu_used for the full figure).
  Time cpu_accounted() const { return cpu_used_; }

  /// Begin executing the process body (called by the World's start event).
  void start();

  /// Resume the coroutine at its stored suspension point.
  void resume();

  // --- scheduling state, manipulated by Host ---
  Time remaining_demand = 0;
  Time cpu_used_ = 0;
  std::coroutine_handle<> resume_point;

 private:
  friend class World;

  /// Root wrapper: runs the body, captures errors, signals completion.
  Task<> wrap(Task<> body);

  /// The body factory is stored for the process lifetime: a lambda
  /// coroutine references its closure, which lives inside this function
  /// object, so it must outlive the coroutine frame (CP.51).
  std::function<Task<>(Context&)> body_;

  World& world_;
  Host& host_;
  Pid pid_;
  std::string name_;
  bool essential_;
  Mailbox mailbox_;
  std::unique_ptr<Context> ctx_;
  Task<> root_;
  bool finished_ = false;
  bool killed_ = false;
  std::vector<std::function<void()>> kill_hooks_;
  std::exception_ptr error_;
};

}  // namespace nowlb::sim
