#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "sim/process.hpp"

namespace nowlb::sim {

void Network::post(Message m, int src_host, Process& dst, int dst_host) {
  ++messages_;
  bytes_ += m.payload.size();

  Time arrival;
  if (src_host == dst_host) {
    arrival = eng_.now() + cfg_.local_latency;
  } else {
    const double tx_seconds =
        static_cast<double>(m.wire_size(cfg_.header_bytes)) /
        cfg_.bandwidth_bps;
    const Time tx = from_seconds(tx_seconds);
    Time& busy = link_busy_until_[src_host];
    const Time start = std::max(eng_.now(), busy);
    busy = start + tx;
    arrival = busy + cfg_.latency;
  }

  Process* target = &dst;
  eng_.schedule_at(arrival, [target, msg = std::move(m)]() mutable {
    target->mailbox().push(std::move(msg));
  });
}

}  // namespace nowlb::sim
