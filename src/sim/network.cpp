#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/process.hpp"

namespace nowlb::sim {

void Network::set_obs(obs::TraceBus* trace, obs::MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics) {
    m_sent_ = &metrics->counter("sim_messages_sent",
                                "Messages posted to the network");
    m_bytes_ = &metrics->counter("sim_payload_bytes",
                                 "Payload bytes posted to the network");
    m_dropped_ = &metrics->counter(
        "sim_messages_dropped", "Messages lost in flight (fault injection)");
    m_duplicated_ = &metrics->counter(
        "sim_messages_duplicated",
        "Extra copies delivered by duplication faults");
  } else {
    m_sent_ = m_bytes_ = m_dropped_ = m_duplicated_ = nullptr;
  }
}

bool Network::fault_eligible(const Message& m, int src_host,
                             int dst_host) const {
  if (!cfg_.faulty() || src_host == dst_host) return false;
  if (cfg_.fault_tag_lo > cfg_.fault_tag_hi) return true;  // empty = all
  return m.tag >= cfg_.fault_tag_lo && m.tag <= cfg_.fault_tag_hi;
}

void Network::post(Message m, int src_host, Process& dst, int dst_host) {
  ++messages_;
  bytes_ += m.payload.size();
  if (m_sent_) {
    m_sent_->inc();
    m_bytes_->inc(m.payload.size());
  }
  if (trace_) {
    trace_->instant(eng_.now(), src_host, m.src, "msg", "msg.send",
                    {"tag", static_cast<double>(m.tag)},
                    {"dst", static_cast<double>(m.dst)},
                    {"bytes", static_cast<double>(m.payload.size())});
  }

  Time arrival;
  if (src_host == dst_host) {
    arrival = eng_.now() + cfg_.local_latency;
  } else {
    const double tx_seconds =
        static_cast<double>(m.wire_size(cfg_.header_bytes)) /
        cfg_.bandwidth_bps;
    const Time tx = from_seconds(tx_seconds);
    Time& busy = link_busy_until_[src_host];
    const Time start = std::max(eng_.now(), busy);
    busy = start + tx;
    arrival = busy + cfg_.latency;
  }

  // Fault injection. Draw order is fixed (drop, dup, delay) so a run is a
  // pure function of (config, fault_seed). A dropped message has already
  // paid for its link occupancy above: it was transmitted, then lost.
  bool duplicate = false;
  if (fault_eligible(m, src_host, dst_host)) {
    const bool drop = fault_rng_.next_double() < cfg_.drop_prob;
    duplicate = fault_rng_.next_double() < cfg_.dup_prob;
    if (cfg_.max_extra_delay > 0) {
      arrival += static_cast<Time>(
          fault_rng_.next_double() *
          static_cast<double>(cfg_.max_extra_delay));
    }
    if (drop) {
      ++dropped_;
      if (m_dropped_) m_dropped_->inc();
      if (trace_) {
        trace_->instant(arrival, dst_host, m.dst, "msg", "msg.drop",
                        {"tag", static_cast<double>(m.tag)},
                        {"src", static_cast<double>(m.src)});
      }
      return;
    }
  }

  Process* target = &dst;
  if (duplicate) {
    ++duplicated_;
    if (m_duplicated_) m_duplicated_->inc();
    if (trace_) {
      trace_->instant(arrival + cfg_.latency, dst_host, m.dst, "msg",
                      "msg.dup", {"tag", static_cast<double>(m.tag)},
                      {"src", static_cast<double>(m.src)});
    }
    // The copy trails the original by one wire latency (a NIC-level
    // retransmit artefact); it does not occupy the link again.
    eng_.schedule_at(arrival + cfg_.latency, [target, msg = m]() mutable {
      target->mailbox().push(std::move(msg));
    });
  }
  if (trace_) {
    trace_->instant(arrival, dst_host, m.dst, "msg", "msg.deliver",
                    {"tag", static_cast<double>(m.tag)},
                    {"src", static_cast<double>(m.src)},
                    {"bytes", static_cast<double>(m.payload.size())});
  }
  eng_.schedule_at(arrival, [target, msg = std::move(m)]() mutable {
    target->mailbox().push(std::move(msg));
  });
}

}  // namespace nowlb::sim
