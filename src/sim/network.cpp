#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "sim/process.hpp"

namespace nowlb::sim {

bool Network::fault_eligible(const Message& m, int src_host,
                             int dst_host) const {
  if (!cfg_.faulty() || src_host == dst_host) return false;
  if (cfg_.fault_tag_lo > cfg_.fault_tag_hi) return true;  // empty = all
  return m.tag >= cfg_.fault_tag_lo && m.tag <= cfg_.fault_tag_hi;
}

void Network::post(Message m, int src_host, Process& dst, int dst_host) {
  ++messages_;
  bytes_ += m.payload.size();
  if (sink_) {
    sink_->net_count(TraceSink::NetCounter::kMessagesSent, 1);
    sink_->net_count(TraceSink::NetCounter::kPayloadBytes, m.payload.size());
    sink_->instant(eng_.now(), src_host, m.src, "msg", "msg.send",
                   {"tag", static_cast<double>(m.tag)},
                   {"dst", static_cast<double>(m.dst)},
                   {"bytes", static_cast<double>(m.payload.size())});
  }

  Time arrival;
  if (src_host == dst_host) {
    arrival = eng_.now() + cfg_.local_latency;
  } else {
    const double tx_seconds =
        static_cast<double>(m.wire_size(cfg_.header_bytes)) /
        cfg_.bandwidth_bps;
    const Time tx = from_seconds(tx_seconds);
    Time& busy = link_busy_until_[src_host];
    const Time start = std::max(eng_.now(), busy);
    busy = start + tx;
    arrival = busy + cfg_.latency;
  }

  // Fault injection. Draw order is fixed (drop, dup, delay) so a run is a
  // pure function of (config, fault_seed). A dropped message has already
  // paid for its link occupancy above: it was transmitted, then lost.
  bool duplicate = false;
  if (fault_eligible(m, src_host, dst_host)) {
    const bool drop = fault_rng_.next_double() < cfg_.drop_prob;
    duplicate = fault_rng_.next_double() < cfg_.dup_prob;
    if (cfg_.max_extra_delay > 0) {
      arrival += static_cast<Time>(
          fault_rng_.next_double() *
          static_cast<double>(cfg_.max_extra_delay));
    }
    if (drop) {
      ++dropped_;
      if (sink_) {
        sink_->net_count(TraceSink::NetCounter::kMessagesDropped, 1);
        sink_->instant(arrival, dst_host, m.dst, "msg", "msg.drop",
                       {"tag", static_cast<double>(m.tag)},
                       {"src", static_cast<double>(m.src)});
      }
      return;
    }
  }

  Process* target = &dst;
  if (duplicate) {
    ++duplicated_;
    if (sink_) {
      sink_->net_count(TraceSink::NetCounter::kMessagesDuplicated, 1);
      sink_->instant(arrival + cfg_.latency, dst_host, m.dst, "msg",
                     "msg.dup", {"tag", static_cast<double>(m.tag)},
                     {"src", static_cast<double>(m.src)});
    }
    // The copy trails the original by one wire latency (a NIC-level
    // retransmit artefact); it does not occupy the link again.
    eng_.schedule_at(arrival + cfg_.latency, [target, msg = m]() mutable {
      target->mailbox().push(std::move(msg));
    });
  }
  if (sink_) {
    sink_->instant(arrival, dst_host, m.dst, "msg", "msg.deliver",
                   {"tag", static_cast<double>(m.tag)},
                   {"src", static_cast<double>(m.src)},
                   {"bytes", static_cast<double>(m.payload.size())});
  }
  eng_.schedule_at(arrival, [target, msg = std::move(m)]() mutable {
    target->mailbox().push(std::move(msg));
  });
}

}  // namespace nowlb::sim
