#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "sim/process.hpp"

namespace nowlb::sim {

bool Network::fault_eligible(const Message& m, int src_host,
                             int dst_host) const {
  if (!cfg_.faulty() || src_host == dst_host) return false;
  if (cfg_.fault_tag_lo > cfg_.fault_tag_hi) return true;  // empty = all
  return m.tag >= cfg_.fault_tag_lo && m.tag <= cfg_.fault_tag_hi;
}

void Network::post(Message m, int src_host, Process& dst, int dst_host) {
  ++messages_;
  bytes_ += m.payload.size();

  Time arrival;
  if (src_host == dst_host) {
    arrival = eng_.now() + cfg_.local_latency;
  } else {
    const double tx_seconds =
        static_cast<double>(m.wire_size(cfg_.header_bytes)) /
        cfg_.bandwidth_bps;
    const Time tx = from_seconds(tx_seconds);
    Time& busy = link_busy_until_[src_host];
    const Time start = std::max(eng_.now(), busy);
    busy = start + tx;
    arrival = busy + cfg_.latency;
  }

  // Fault injection. Draw order is fixed (drop, dup, delay) so a run is a
  // pure function of (config, fault_seed). A dropped message has already
  // paid for its link occupancy above: it was transmitted, then lost.
  bool duplicate = false;
  if (fault_eligible(m, src_host, dst_host)) {
    const bool drop = fault_rng_.next_double() < cfg_.drop_prob;
    duplicate = fault_rng_.next_double() < cfg_.dup_prob;
    if (cfg_.max_extra_delay > 0) {
      arrival += static_cast<Time>(
          fault_rng_.next_double() *
          static_cast<double>(cfg_.max_extra_delay));
    }
    if (drop) {
      ++dropped_;
      return;
    }
  }

  Process* target = &dst;
  if (duplicate) {
    ++duplicated_;
    // The copy trails the original by one wire latency (a NIC-level
    // retransmit artefact); it does not occupy the link again.
    eng_.schedule_at(arrival + cfg_.latency, [target, msg = m]() mutable {
      target->mailbox().push(std::move(msg));
    });
  }
  eng_.schedule_at(arrival, [target, msg = std::move(m)]() mutable {
    target->mailbox().push(std::move(msg));
  });
}

}  // namespace nowlb::sim
