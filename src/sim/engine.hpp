// Discrete-event engine: a cancellable priority queue of timestamped
// callbacks plus the virtual clock.
//
// Ties are broken by insertion sequence number, so simulations are fully
// deterministic for a given sequence of schedule calls.
//
// Storage layout: the heap holds small POD entries (time, seq, slot index)
// while callbacks live in a recycled slot arena. Cancellation flags the
// slot; a generation counter makes stale EventIds (fired or recycled
// events) harmless. This keeps schedule/cancel churn allocation-free once
// the arena has warmed up — the engine.timer_churn benchmark tracks it.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace nowlb::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancelling a scheduled event. Copyable; any copy
  /// cancels, and cancelling a fired or already-cancelled event is a no-op.
  struct EventId {
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    std::uint64_t seq = 0;
    std::uint32_t slot = kNoSlot;
    std::uint32_t gen = 0;
  };

  Time now() const { return now_; }

  EventId schedule_at(Time t, Callback cb);
  EventId schedule_after(Time dt, Callback cb) {
    return schedule_at(now_ + dt, cb);
  }

  /// Cancel a pending event. Safe to call after the event has fired.
  void cancel(EventId& id);

  /// Run until the queue drains, stop() is called, or an error is noted.
  void run();

  /// Run until virtual time `t` (events at exactly t are executed).
  void run_until(Time t);

  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Record a fatal error; the run loop exits and run() rethrows it.
  void fail(std::exception_ptr e) {
    if (!error_) error_ = e;
    stopped_ = true;
  }

  std::size_t pending_events() const { return live_events_; }
  std::uint64_t dispatched_events() const { return dispatched_; }

  /// Rolling hash over the (time, sequence) pair of every dispatched event.
  /// Two runs of the same seeded simulation must produce identical hashes;
  /// any divergence is a determinism bug (or a perturbing observer).
  std::uint64_t trace_hash() const { return trace_hash_; }

 private:
  /// Heap entry: POD, cheap to sift. The callback lives in slots_[slot].
  struct Ev {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;   // bumped on recycle; stale EventIds mismatch
    bool cancelled = false;  // flagged by cancel(); entry skipped at pop
  };

  bool step();  // dispatch one event; false if queue empty

  /// Destroy the slot's callback and return it to the free list. Called at
  /// pop time (fired or cancelled alike), so callback destruction order
  /// matches the old one-owner-per-heap-entry layout.
  void recycle(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.cb = nullptr;
    ++s.gen;
    s.cancelled = false;
    free_slots_.push_back(slot);
  }

  std::priority_queue<Ev, std::vector<Ev>, Later> q_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ull;  // FNV offset basis
  std::size_t live_events_ = 0;
  bool stopped_ = false;
  std::exception_ptr error_;
};

}  // namespace nowlb::sim
