// sim::Task — re-export of the coroutine task type.
//
// The implementation lives in util/task.hpp (pure coroutine machinery,
// no simulator dependency); simulation code keeps spelling it sim::Task.
#pragma once

#include "util/task.hpp"

namespace nowlb::sim {

using nowlb::Task;

}  // namespace nowlb::sim
