#include "sim/mailbox.hpp"

#include <utility>

#include "util/check.hpp"

namespace nowlb::sim {

void Mailbox::push(Message m) {
  if (closed_) {
    ++discarded_;
    return;
  }
  if (tap_ && tap_(m)) return;
  deliver(std::move(m));
}

void Mailbox::deliver(Message m) {
  if (closed_) {
    ++discarded_;
    return;
  }
  if (waiting_ && matches(m, want_tag_, want_src_)) {
    waiting_ = false;
    auto handler = std::move(handler_);
    handler_ = nullptr;
    handler(std::move(m));
    return;
  }
  q_.push_back(std::move(m));
}

std::optional<Message> Mailbox::try_pop(Tag tag, Pid src) {
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (matches(*it, tag, src)) {
      Message m = std::move(*it);
      q_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

void Mailbox::set_pending(Tag tag, Pid src,
                          std::function<void(Message)> handler) {
  NOWLB_CHECK(!waiting_, "process already has a pending receive");
  waiting_ = true;
  want_tag_ = tag;
  want_src_ = src;
  handler_ = std::move(handler);
}

void Mailbox::cancel_pending() {
  waiting_ = false;
  handler_ = nullptr;
}

void Mailbox::set_tap(Tap tap) {
  tap_ = std::move(tap);
  if (!tap_ || q_.empty()) return;
  // Re-filter what already arrived: a message the tap would have consumed
  // (a transport envelope delivered before the transport existed) must not
  // stay visible in its raw form.
  std::deque<Message> old;
  old.swap(q_);
  for (auto& m : old) push(std::move(m));
}

void Mailbox::close() {
  closed_ = true;
  discarded_ += q_.size();
  q_.clear();
  cancel_pending();
  tap_ = nullptr;
}

}  // namespace nowlb::sim
