#include "sim/mailbox.hpp"

#include <utility>

#include "util/check.hpp"

namespace nowlb::sim {

void Mailbox::push(Message m) {
  if (waiting_ && matches(m, want_tag_, want_src_)) {
    waiting_ = false;
    auto handler = std::move(handler_);
    handler_ = nullptr;
    handler(std::move(m));
    return;
  }
  q_.push_back(std::move(m));
}

std::optional<Message> Mailbox::try_pop(Tag tag, Pid src) {
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (matches(*it, tag, src)) {
      Message m = std::move(*it);
      q_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

void Mailbox::set_pending(Tag tag, Pid src,
                          std::function<void(Message)> handler) {
  NOWLB_CHECK(!waiting_, "process already has a pending receive");
  waiting_ = true;
  want_tag_ = tag;
  want_src_ = src;
  handler_ = std::move(handler);
}

}  // namespace nowlb::sim
