#include "sim/engine.hpp"

#include "util/check.hpp"

namespace nowlb::sim {

Engine::EventId Engine::schedule_at(Time t, Callback cb) {
  NOWLB_CHECK(t >= now_, "event scheduled in the past: t=" << t
                                                           << " now=" << now_);
  auto alive = std::make_shared<bool>(true);
  EventId id{seq_, alive};
  q_.push(Ev{t, seq_, std::move(cb), std::move(alive)});
  ++seq_;
  ++live_events_;
  return id;
}

void Engine::cancel(EventId& id) {
  if (auto alive = id.alive.lock()) {
    if (*alive) {
      *alive = false;
      --live_events_;
    }
  }
  id.alive.reset();
}

bool Engine::step() {
  while (!q_.empty()) {
    // priority_queue::top is const; move out via const_cast is the standard
    // idiom-free workaround — copy the small fields and move the callback
    // by re-popping instead. We accept one callback copy avoidance via
    // const_cast, which is safe because we pop immediately.
    Ev ev = std::move(const_cast<Ev&>(q_.top()));
    q_.pop();
    if (!*ev.alive) continue;  // cancelled
    --live_events_;
    NOWLB_CHECK(ev.t >= now_, "event queue time went backwards");
    now_ = ev.t;
    ++dispatched_;
    trace_hash_ = (trace_hash_ ^ static_cast<std::uint64_t>(ev.t)) *
                  0x100000001b3ull;
    trace_hash_ = (trace_hash_ ^ ev.seq) * 0x100000001b3ull;
    ev.cb();
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_) {
    if (!step()) break;
  }
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Engine::run_until(Time t) {
  stopped_ = false;
  while (!stopped_ && !q_.empty()) {
    // Peek next live event time.
    if (!*q_.top().alive) {
      q_.pop();
      continue;
    }
    if (q_.top().t > t) break;
    step();
  }
  if (now_ < t && !stopped_) now_ = t;
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace nowlb::sim
