#include "sim/engine.hpp"

#include <utility>

#include "util/check.hpp"

namespace nowlb::sim {

Engine::EventId Engine::schedule_at(Time t, Callback cb) {
  NOWLB_CHECK(t >= now_, "event scheduled in the past: t=" << t
                                                           << " now=" << now_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].cb = std::move(cb);
  EventId id{seq_, slot, slots_[slot].gen};
  q_.push(Ev{t, seq_, slot});
  ++seq_;
  ++live_events_;
  return id;
}

void Engine::cancel(EventId& id) {
  if (id.slot != EventId::kNoSlot && id.slot < slots_.size()) {
    Slot& s = slots_[id.slot];
    if (s.gen == id.gen && !s.cancelled) {
      // The callback stays alive until the heap entry pops; only the flag
      // is set here, preserving destruction-order semantics.
      s.cancelled = true;
      --live_events_;
    }
  }
  id.slot = EventId::kNoSlot;
}

bool Engine::step() {
  while (!q_.empty()) {
    const Ev ev = q_.top();
    q_.pop();
    if (slots_[ev.slot].cancelled) {
      recycle(ev.slot);
      continue;
    }
    --live_events_;
    NOWLB_CHECK(ev.t >= now_, "event queue time went backwards");
    now_ = ev.t;
    ++dispatched_;
    trace_hash_ = (trace_hash_ ^ static_cast<std::uint64_t>(ev.t)) *
                  0x100000001b3ull;
    trace_hash_ = (trace_hash_ ^ ev.seq) * 0x100000001b3ull;
    // Move the callback out and recycle before invoking: the callback may
    // schedule new events (reusing this slot) or cancel others.
    Callback cb = std::move(slots_[ev.slot].cb);
    recycle(ev.slot);
    cb();
    return true;
  }
  return false;
}

void Engine::run() {
  stopped_ = false;
  while (!stopped_) {
    if (!step()) break;
  }
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Engine::run_until(Time t) {
  stopped_ = false;
  while (!stopped_ && !q_.empty()) {
    // Peek next live event time.
    const Ev& top = q_.top();
    if (slots_[top.slot].cancelled) {
      recycle(top.slot);
      q_.pop();
      continue;
    }
    if (top.t > t) break;
    step();
  }
  if (now_ < t && !stopped_) now_ = t;
  if (error_) {
    auto e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace nowlb::sim
