// Named time-series recorder for experiment traces (e.g. Fig. 9's raw
// rate / filtered rate / work assignment curves).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace nowlb::sim {

class Recorder {
 public:
  /// Append (t, v) to the series named `name` (created on first use).
  void record(const std::string& name, Time t, double v) {
    series_[name].add(to_seconds(t), v);
  }

  /// Returns nullptr if the series does not exist.
  const Series* find(const std::string& name) const {
    const auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [k, _] : series_) out.push_back(k);
    return out;
  }

  void clear() { series_.clear(); }

 private:
  std::map<std::string, Series> series_;
};

}  // namespace nowlb::sim
