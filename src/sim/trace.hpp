// Named time-series recorder for experiment traces (e.g. Fig. 9's raw
// rate / filtered rate / work assignment curves).
//
// names() returns series in FIRST-RECORDED order — the order the
// experiment emitted them — not alphabetically. Plot scripts rely on this
// to keep column order stable across runs.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace nowlb::sim {

class Recorder {
 public:
  /// Append (t, v) to the series named `name` (created on first use).
  void record(const std::string& name, Time t, double v) {
    find_or_create(name).add(to_seconds(t), v);
  }

  /// Returns nullptr if the series does not exist.
  const Series* find(const std::string& name) const {
    for (const auto& [k, s] : series_) {
      if (k == name) return &s;
    }
    return nullptr;
  }

  /// Series names in insertion (first-recorded) order.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [k, _] : series_) out.push_back(k);
    return out;
  }

  void clear() { series_.clear(); }

 private:
  Series& find_or_create(const std::string& name) {
    for (auto& [k, s] : series_) {
      if (k == name) return s;
    }
    series_.emplace_back(name, Series{});
    return series_.back().second;
  }

  // Insertion-ordered; experiments record a handful of series, so the
  // linear name lookup is cheaper than a side index would be.
  std::vector<std::pair<std::string, Series>> series_;
};

}  // namespace nowlb::sim
