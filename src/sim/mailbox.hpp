// Per-process message queue with tag/source-selective receive.
//
// A process has a single logical thread, so at most one receive is pending
// at a time; the mailbox either satisfies it from the queue or parks the
// continuation until a matching message is delivered.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "sim/message.hpp"

namespace nowlb::sim {

class Mailbox {
 public:
  /// Deliver a message. If it matches the pending receive, the pending
  /// handler is invoked immediately (the caller is an engine event).
  void push(Message m);

  /// Pop the oldest message matching (tag, src); kAnyTag/kAnyPid wildcard.
  std::optional<Message> try_pop(Tag tag, Pid src);

  /// Park a receive. Precondition: no receive already pending.
  void set_pending(Tag tag, Pid src, std::function<void(Message)> handler);

  bool has_pending() const { return waiting_; }
  std::size_t queued() const { return q_.size(); }

 private:
  static bool matches(const Message& m, Tag tag, Pid src) {
    return (tag == kAnyTag || m.tag == tag) && (src == kAnyPid || m.src == src);
  }

  std::deque<Message> q_;
  bool waiting_ = false;
  Tag want_tag_ = kAnyTag;
  Pid want_src_ = kAnyPid;
  std::function<void(Message)> handler_;
};

}  // namespace nowlb::sim
