// Per-process message queue with tag/source-selective receive.
//
// A process has a single logical thread, so at most one receive is pending
// at a time; the mailbox either satisfies it from the queue or parks the
// continuation until a matching message is delivered.
//
// Two extension points support the fault-tolerant runtime (DESIGN.md §9):
// a *tap* — a filter that sees every pushed message before it becomes
// visible and may consume it (reliable-transport envelope processing) —
// and *close*, which models a crashed process: arrivals are counted and
// discarded and any parked receive is forgotten.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "sim/message.hpp"

namespace nowlb::sim {

class Mailbox {
 public:
  /// Message filter: return true to consume (the message is not queued).
  /// May rewrite the message in place before returning false.
  using Tap = std::function<bool(Message&)>;

  /// Deliver a message. Runs the tap first; if it passes, behaves like
  /// deliver(). Discards (counting) when the mailbox is closed.
  void push(Message m);

  /// Deliver bypassing the tap: satisfy the pending receive or queue.
  void deliver(Message m);

  /// Pop the oldest message matching (tag, src); kAnyTag/kAnyPid wildcard.
  std::optional<Message> try_pop(Tag tag, Pid src);

  /// Park a receive. Precondition: no receive already pending.
  void set_pending(Tag tag, Pid src, std::function<void(Message)> handler);

  /// Forget the parked receive, if any (receive timeout, crashed owner).
  void cancel_pending();

  /// Install (or clear, with nullptr) the tap. Messages already queued are
  /// re-filtered through the new tap, preserving their order: a transport
  /// installed after messages arrived must still see their envelopes.
  void set_tap(Tap tap);

  /// Crash the owner: drop the queue and pending receive, discard (and
  /// count) everything delivered from now on.
  void close();
  bool closed() const { return closed_; }
  std::uint64_t discarded() const { return discarded_; }

  bool has_pending() const { return waiting_; }
  std::size_t queued() const { return q_.size(); }

 private:
  static bool matches(const Message& m, Tag tag, Pid src) {
    return (tag == kAnyTag || m.tag == tag) && (src == kAnyPid || m.src == src);
  }

  std::deque<Message> q_;
  bool waiting_ = false;
  bool closed_ = false;
  Tag want_tag_ = kAnyTag;
  Pid want_src_ = kAnyPid;
  std::function<void(Message)> handler_;
  Tap tap_;
  std::uint64_t discarded_ = 0;
};

}  // namespace nowlb::sim
