// Messages exchanged between simulated processes.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace nowlb::sim {

/// Process identifier, unique within a World.
using Pid = int;
inline constexpr Pid kAnyPid = -1;

/// Message tag (like an MPI tag); selects which recv matches.
using Tag = int;
inline constexpr Tag kAnyTag = -1;

using Bytes = nowlb::Bytes;

struct Message {
  Pid src = kAnyPid;
  Pid dst = kAnyPid;
  Tag tag = 0;
  Bytes payload;

  /// Wire size used for transmission-time modelling (payload + header).
  std::size_t wire_size(std::size_t header_bytes) const {
    return payload.size() + header_bytes;
  }
};

}  // namespace nowlb::sim
