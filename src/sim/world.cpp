#include "sim/world.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace nowlb::sim {

namespace {
double world_now_seconds(void* w) {
  return to_seconds(static_cast<World*>(w)->now());
}
}  // namespace

// ---------------------------------------------------------------- Process

Process::Process(World& world, Host& host, Pid pid, std::string name,
                 bool essential)
    : world_(world),
      host_(host),
      pid_(pid),
      name_(std::move(name)),
      essential_(essential) {}

Process::~Process() = default;

void Process::start() { root_.start(); }

void Process::resume() {
  NOWLB_CHECK(resume_point, "resume with no stored suspension point");
  auto h = resume_point;
  resume_point = nullptr;
  h.resume();
}

Task<> Process::wrap(Task<> body) {
  try {
    co_await std::move(body);
  } catch (...) {
    error_ = std::current_exception();
  }
  finished_ = true;
  world_.on_process_done(*this);
}

// ---------------------------------------------------------------- Context

Context::Context(World& world, Process& process)
    : world_(world),
      process_(process),
      rng_(world.fork_rng()) {}

Pid Context::pid() const { return process_.pid(); }
int Context::host_id() const { return process_.host().id(); }
Time Context::now() const { return world_.now(); }
Recorder& Context::recorder() { return world_.recorder(); }

SleepAwaiter Context::sleep(Time dt) {
  return SleepAwaiter{process_, world_.engine(), dt};
}

Task<> Context::send(Pid dst, Tag tag, Bytes payload) {
  co_await compute(world_.config().msg.send_overhead);
  Message m;
  m.src = process_.pid();
  m.dst = dst;
  m.tag = tag;
  m.payload = std::move(payload);
  Process& target = world_.process(dst);
  world_.network().post(std::move(m), process_.host().id(), target,
                        target.host().id());
}

Task<Message> Context::recv(Tag tag, Pid src) {
  Message m = co_await recv_raw(tag, src);
  co_await compute(world_.config().msg.recv_overhead);
  co_return m;
}

Task<std::optional<Message>> Context::recv_until(Tag tag, Pid src,
                                                Time deadline) {
  std::optional<Message> m = co_await RecvTimeoutAwaiter{
      process_, world_.engine(), tag, src, deadline, std::nullopt, {}};
  if (m) co_await compute(world_.config().msg.recv_overhead);
  co_return m;
}

// ------------------------------------------------------------------ World

World::World(WorldConfig cfg)
    : cfg_(cfg), network_(engine_, cfg.net), rng_(cfg.seed) {
  // First world in wins the log clock; nested worlds leave it alone.
  if (!Log::has_time_source()) {
    Log::set_time_source(&world_now_seconds, this);
    owns_log_clock_ = true;
  }
}

World::~World() {
  if (owns_log_clock_) Log::clear_time_source(this);
}

void World::set_sink(std::unique_ptr<TraceSink> sink) {
  sink_ = std::move(sink);
  network_.set_sink(sink_.get());
  if (sink_) {
    for (const auto& h : hosts_) {
      sink_->name_host(h->id(), "host" + std::to_string(h->id()));
    }
    for (const auto& p : processes_) {
      sink_->name_lane(p->host().id(), p->pid(), p->name());
    }
  }
}

Host& World::add_host() {
  hosts_.push_back(
      std::make_unique<Host>(engine_, static_cast<int>(hosts_.size()),
                             cfg_.host));
  if (sink_) {
    sink_->name_host(hosts_.back()->id(),
                     "host" + std::to_string(hosts_.back()->id()));
  }
  return *hosts_.back();
}

Pid World::spawn(Host& host, std::string name, ProcessBody body,
                 bool essential) {
  const Pid pid = static_cast<Pid>(processes_.size());
  auto proc =
      std::make_unique<Process>(*this, host, pid, std::move(name), essential);
  proc->ctx_ = std::make_unique<Context>(*this, *proc);
  // Keep the body callable alive for the process lifetime: the coroutine
  // frame references the closure stored inside it.
  proc->body_ = std::move(body);
  proc->root_ = proc->wrap(proc->body_(*proc->ctx_));
  if (essential) ++essential_outstanding_;
  Process* raw = proc.get();
  processes_.push_back(std::move(proc));
  engine_.schedule_at(engine_.now(), [raw] { raw->start(); });
  for (WorldObserver* o : observers_) o->on_spawn(engine_.now(), *raw);
  if (sink_) {
    sink_->name_lane(host.id(), pid, raw->name());
    sink_->instant(engine_.now(), host.id(), pid, "proc", "proc.spawn",
                   {"essential", essential ? 1.0 : 0.0});
  }
  return pid;
}

Time World::cpu_used(Pid pid) const {
  const Process& p = *processes_.at(pid);
  return p.host().cpu_used(p);
}

void World::on_process_done(Process& p) {
  for (WorldObserver* o : observers_) o->on_process_done(engine_.now(), p);
  if (sink_) {
    sink_->instant(engine_.now(), p.host().id(), p.pid(), "proc",
                   "proc.done", {"error", p.error() ? 1.0 : 0.0});
  }
  if (p.error()) {
    NOWLB_LOG(Error, "sim") << "process " << p.name() << " failed";
    engine_.fail(p.error());
    return;
  }
  NOWLB_LOG(Debug, "sim") << "process " << p.name() << " finished at t="
                          << to_seconds(engine_.now()) << "s";
  if (p.essential()) {
    NOWLB_CHECK(essential_outstanding_ > 0);
    if (--essential_outstanding_ == 0) engine_.stop();
  }
}

void World::kill(Pid pid) {
  Process& p = *processes_.at(pid);
  if (p.killed_ || p.finished_) return;
  p.killed_ = true;
  if (sink_) {
    sink_->instant(engine_.now(), p.host_.id(), pid, "proc", "proc.kill");
  }
  NOWLB_LOG(Info, "sim") << "process " << p.name() << " killed at t="
                         << to_seconds(engine_.now()) << "s";
  // Hooks run first so runtime layers (transports) stop transmitting
  // before the mailbox closes.
  for (auto& hook : p.kill_hooks_) hook();
  p.kill_hooks_.clear();
  p.mailbox_.close();
  p.host_.remove(p);
  p.finished_ = true;
  for (WorldObserver* o : observers_) o->on_process_done(engine_.now(), p);
  if (p.essential_) {
    NOWLB_CHECK(essential_outstanding_ > 0);
    if (--essential_outstanding_ == 0) engine_.stop();
  }
}

void World::run() {
  engine_.run();
  if (sink_) {
    sink_->run_stats(to_seconds(engine_.now()),
                     engine_.dispatched_events());
  }
}

void World::run_until(Time t) { engine_.run_until(t); }

}  // namespace nowlb::sim
