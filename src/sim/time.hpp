// Virtual time for the discrete-event simulator.
//
// Integer nanoseconds keep event ordering exact and runs bit-reproducible;
// doubles appear only at the API edges (reports, configuration).
#pragma once

#include <cstdint>

namespace nowlb::sim {

/// Virtual time / duration in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Convert seconds (double) to Time, rounding to nearest nanosecond.
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

/// Convert Time to seconds.
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace nowlb::sim
