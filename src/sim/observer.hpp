// WorldObserver: passive taps on simulation lifecycle events.
//
// Observers are called synchronously at zero virtual cost, so attaching one
// never perturbs timing — the property the runtime invariant layer
// (src/check) depends on: a run with checkers enabled must dispatch the
// exact same event sequence as one without.
#pragma once

#include <string>

#include "sim/time.hpp"

namespace nowlb::sim {

class Process;

class WorldObserver {
 public:
  virtual ~WorldObserver() = default;

  /// A process was created (fires from World::spawn, before it runs).
  virtual void on_spawn(Time /*t*/, const Process& /*p*/) {}

  /// A process body completed (success or failure).
  virtual void on_process_done(Time /*t*/, const Process& /*p*/) {}
};

}  // namespace nowlb::sim
