// Context: the API surface a simulated process programs against.
//
// Inside a process body (a Task<> coroutine) the context provides the
// primitive operations of the simulated machine:
//
//   co_await ctx.compute(cpu);          // burn CPU under the host scheduler
//   co_await ctx.sleep(dt);             // wall-clock delay, no CPU
//   co_await ctx.send(dst, tag, bytes); // message send (charges sw overhead)
//   Message m = co_await ctx.recv(tag); // blocking selective receive
//
// Typed/serialized variants live in msg/; this layer moves raw bytes.
#pragma once

#include <coroutine>
#include <optional>

#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/message.hpp"
#include "sim/process.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace nowlb::sim {

class World;
class Recorder;

/// Suspends a process until it has accumulated `demand` CPU time on its
/// host, competing with other runnable processes for quantum slices.
struct ComputeAwaiter {
  Process& p;
  Time demand;
  bool await_ready() const noexcept { return demand <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    p.resume_point = h;
    p.host().submit(p, demand);
  }
  void await_resume() const noexcept {}
};

/// Suspends a process for `dt` of virtual wall time without consuming CPU.
/// The wakeup is routed through the process so a killed sleeper is never
/// resumed (its frame outlives it, suspended, until world teardown).
struct SleepAwaiter {
  Process& p;
  Engine& eng;
  Time dt;
  bool await_ready() const noexcept { return dt <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    p.resume_point = h;
    Process* pp = &p;
    eng.schedule_after(dt, [pp] {
      if (!pp->killed()) pp->resume();
    });
  }
  void await_resume() const noexcept {}
};

/// Suspends until a message matching (tag, src) is available.
struct RecvAwaiter {
  Process& p;
  Tag tag;
  Pid src;
  std::optional<Message> msg;
  bool await_ready() {
    msg = p.mailbox().try_pop(tag, src);
    return msg.has_value();
  }
  void await_suspend(std::coroutine_handle<> h) {
    p.mailbox().set_pending(tag, src, [this, h](Message m) {
      msg = std::move(m);
      h.resume();
    });
  }
  Message await_resume() { return std::move(*msg); }
};

/// Suspends until a matching message arrives or `deadline` passes,
/// whichever is first; resumes with nullopt on timeout. The failure
/// detector's primitive (Master heartbeat deadline, DESIGN.md §9).
struct RecvTimeoutAwaiter {
  Process& p;
  Engine& eng;
  Tag tag;
  Pid src;
  Time deadline;
  std::optional<Message> msg;
  Engine::EventId timer;
  bool await_ready() {
    msg = p.mailbox().try_pop(tag, src);
    return msg.has_value() || eng.now() >= deadline;
  }
  void await_suspend(std::coroutine_handle<> h) {
    p.mailbox().set_pending(tag, src, [this, h](Message m) {
      eng.cancel(timer);
      msg = std::move(m);
      h.resume();
    });
    Process* pp = &p;
    timer = eng.schedule_at(deadline, [this, pp, h] {
      pp->mailbox().cancel_pending();
      if (!pp->killed()) h.resume();
    });
  }
  std::optional<Message> await_resume() { return std::move(msg); }
};

class Context {
 public:
  Context(World& world, Process& process);

  Pid pid() const;
  int host_id() const;
  Time now() const;
  World& world() { return world_; }
  Process& process() { return process_; }
  Rng& rng() { return rng_; }
  Recorder& recorder();

  /// Consume `cpu` of CPU time (sliced by the host scheduler).
  ComputeAwaiter compute(Time cpu) { return ComputeAwaiter{process_, cpu}; }

  /// Wait `dt` of wall time without using CPU.
  SleepAwaiter sleep(Time dt);

  /// Send a message; charges the sender's software overhead as CPU, then
  /// hands the message to the network. Completes when the message is on
  /// the wire (asynchronous send).
  Task<> send(Pid dst, Tag tag, Bytes payload);

  /// Blocking selective receive; charges receive overhead as CPU.
  Task<Message> recv(Tag tag = kAnyTag, Pid src = kAnyPid);

  /// Selective receive with an absolute deadline: resumes with nullopt
  /// if no matching message arrives by `deadline`. Charges receive
  /// overhead only when a message is delivered.
  Task<std::optional<Message>> recv_until(Tag tag, Pid src, Time deadline);

  /// Receive without charging software overhead (protocol internals).
  RecvAwaiter recv_raw(Tag tag = kAnyTag, Pid src = kAnyPid) {
    return RecvAwaiter{process_, tag, src, std::nullopt};
  }

  /// Non-blocking probe: pop a matching message if one is queued.
  std::optional<Message> try_recv(Tag tag = kAnyTag, Pid src = kAnyPid) {
    return process_.mailbox().try_pop(tag, src);
  }

 private:
  World& world_;
  Process& process_;
  Rng rng_;
};

}  // namespace nowlb::sim
