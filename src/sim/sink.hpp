// TraceSink: the sim layer's outbound observation interface.
//
// sim never includes obs headers (layering rule L001: sim sits below obs).
// Instead, everything the simulator wants to record — trace events, network
// counters, end-of-run stats — goes through this abstract sink. The obs
// layer implements it (obs::attach wires a World to an Observability hub);
// tests can implement it directly to capture events without the hub.
//
// Implementations must be pure observation: no virtual-time cost, no RNG
// draws, no engine interaction. The bit-identical-trace acceptance tests
// pin that property down.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace nowlb::sim {

/// One optional numeric event argument (key must be a string literal or
/// other static storage; sinks keep the pointer, not a copy). Namespace
/// scope (not nested) so it is complete where the sink's default
/// arguments need it.
struct SinkArg {
  const char* key = nullptr;
  double value = 0;
};

class TraceSink {
 public:
  using Arg = SinkArg;

  /// Monotonic counters the network maintains per run.
  enum class NetCounter : std::uint8_t {
    kMessagesSent,
    kPayloadBytes,
    kMessagesDropped,
    kMessagesDuplicated,
  };

  virtual ~TraceSink() = default;

  /// Point event at simulated time `t` on (host, lane).
  virtual void instant(Time t, int host, int lane, const char* cat,
                       const char* name, Arg a0 = {}, Arg a1 = {},
                       Arg a2 = {}) = 0;

  /// Span covering [begin, end] of simulated time on (host, lane).
  virtual void complete(Time begin, Time end, int host, int lane,
                        const char* cat, const char* name, Arg a0 = {},
                        Arg a1 = {}, Arg a2 = {}) = 0;

  /// Human-readable names for the exporter (host -> pid, lane -> tid).
  virtual void name_host(int host, const std::string& name) = 0;
  virtual void name_lane(int host, int lane, const std::string& name) = 0;

  /// Bump a network counter by `delta`.
  virtual void net_count(NetCounter c, std::uint64_t delta) = 0;

  /// End-of-run stats: final virtual clock and engine dispatch count.
  virtual void run_stats(double virtual_time_s,
                         std::uint64_t dispatched_events) = 0;
};

}  // namespace nowlb::sim
