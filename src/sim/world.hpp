// World: owns the engine, hosts, network and processes of one simulation.
//
// Typical use:
//   sim::World w;
//   auto& h0 = w.add_host();
//   sim::Pid a = w.spawn(h0, "worker", [](sim::Context& ctx) -> sim::Task<> {
//     co_await ctx.compute(sim::kSecond);
//   });
//   w.run();   // runs until all essential processes finish
//
// Non-essential processes (load generators) may run forever; the run loop
// stops once every essential process has completed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/context.hpp"
#include "sim/engine.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"
#include "sim/observer.hpp"
#include "sim/process.hpp"
#include "sim/sink.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace nowlb::obs {
struct Observability;
}  // namespace nowlb::obs

namespace nowlb::sim {

/// Factory for a process body; invoked once when the process starts.
using ProcessBody = std::function<Task<>(Context&)>;

class World {
 public:
  explicit World(WorldConfig cfg = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const WorldConfig& config() const { return cfg_; }
  Engine& engine() { return engine_; }
  Network& network() { return network_; }
  Recorder& recorder() { return recorder_; }
  Time now() const { return engine_.now(); }

  /// Attach a trace sink (owned; replaced on re-attach, null detaches).
  /// The world forwards it to the network and stamps process lifecycle
  /// events through it. Attaching is pure observation — the event schedule
  /// and trace_hash() are bit-identical either way. Use obs::attach() to
  /// wire up a full flight-recorder hub; sim itself never sees obs types.
  void set_sink(std::unique_ptr<TraceSink> sink);
  TraceSink* sink() const { return sink_.get(); }

  /// Opaque handle to the attached flight-recorder hub. The world stores
  /// it for protocol layers (master/slave/transport read it via obs());
  /// sim code never dereferences it — all sim-side recording goes through
  /// the TraceSink.
  void set_obs_handle(obs::Observability* o) { obs_ = o; }
  obs::Observability* obs() const { return obs_; }

  /// Create a new host (workstation). Hosts are identified by index.
  Host& add_host();
  Host& host(int id) { return *hosts_.at(id); }
  std::size_t host_count() const { return hosts_.size(); }

  /// Spawn a process on `host`; it starts at the current virtual time.
  /// Essential processes gate run(); non-essential ones (competing loads)
  /// are abandoned when the run stops.
  Pid spawn(Host& host, std::string name, ProcessBody body,
            bool essential = true);

  Process& process(Pid pid) { return *processes_.at(pid); }
  const Process& process(Pid pid) const { return *processes_.at(pid); }
  std::size_t process_count() const { return processes_.size(); }

  /// CPU time consumed by a process so far (getrusage equivalent).
  Time cpu_used(Pid pid) const;

  /// Crash-fault injection: the process is never resumed again, its
  /// mailbox closes (future arrivals are discarded), the scheduler
  /// forgets it, and its kill hooks run so runtime layers cancel their
  /// timers. Idempotent. A killed essential process counts as finished
  /// so the run loop can still terminate.
  void kill(Pid pid);

  /// Run until every essential process has finished (or a process failed,
  /// in which case the error is rethrown here).
  void run();

  /// Run until virtual time `t`.
  void run_until(Time t);

  /// Fresh RNG stream derived from the world seed.
  Rng fork_rng() { return rng_.fork(); }

  /// Attach a passive observer (not owned; must outlive the world). Called
  /// synchronously at zero virtual cost, so observers never perturb timing.
  void add_observer(WorldObserver* o) { observers_.push_back(o); }

  /// Essential processes that have not finished yet. Nonzero after a
  /// bounded run means the simulation failed to terminate in time.
  std::size_t essential_remaining() const { return essential_outstanding_; }

  // Internal: called by Process when its body completes.
  void on_process_done(Process& p);

 private:
  WorldConfig cfg_;
  Engine engine_;
  Network network_;
  Recorder recorder_;
  std::unique_ptr<TraceSink> sink_;
  obs::Observability* obs_ = nullptr;  // opaque; never dereferenced by sim
  bool owns_log_clock_ = false;
  Rng rng_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<WorldObserver*> observers_;
  std::size_t essential_outstanding_ = 0;
};

}  // namespace nowlb::sim
