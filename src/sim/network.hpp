// Crossbar network model (Nectar-style).
//
// Each host has one outgoing link; messages from that host serialize on the
// link at the configured bandwidth, then arrive after the wire latency.
// Local (same-host) messages bypass the link. Delivery pushes into the
// destination mailbox, waking any matching pending receive.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace nowlb::sim {

class Process;

class Network {
 public:
  Network(Engine& eng, NetConfig cfg) : eng_(eng), cfg_(cfg) {}

  /// Enqueue `m` for delivery from src_host to dst (on dst_host) starting
  /// at the current virtual time.
  void post(Message m, int src_host, Process& dst, int dst_host);

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t payload_bytes_sent() const { return bytes_; }

 private:
  Engine& eng_;
  NetConfig cfg_;
  std::unordered_map<int, Time> link_busy_until_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace nowlb::sim
