// Crossbar network model (Nectar-style).
//
// Each host has one outgoing link; messages from that host serialize on the
// link at the configured bandwidth, then arrive after the wire latency.
// Local (same-host) messages bypass the link. Delivery pushes into the
// destination mailbox, waking any matching pending receive.
//
// With NetConfig fault injection enabled the network becomes lossy for the
// configured tag range: messages may be dropped after transmission,
// delivered twice, or delayed (reordered). The fault stream draws from a
// private seeded Rng that is consumed only when faults are on, so a
// fault-free run dispatches the exact same event sequence as before.
#pragma once

#include <cstdint>
#include <map>

#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"
#include "sim/sink.hpp"
#include "util/rng.hpp"

namespace nowlb::sim {

class Process;

class Network {
 public:
  Network(Engine& eng, NetConfig cfg)
      : eng_(eng), cfg_(cfg), fault_rng_(cfg.fault_seed) {}

  /// Attach a trace sink (may be null; must outlive the run). Emits
  /// msg.send/deliver/drop/dup instants and sim_* counters through it. Pure
  /// observation: no clock or RNG effect, traces stay bit-identical.
  void set_sink(TraceSink* sink) { sink_ = sink; }

  /// Enqueue `m` for delivery from src_host to dst (on dst_host) starting
  /// at the current virtual time.
  void post(Message m, int src_host, Process& dst, int dst_host);

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t payload_bytes_sent() const { return bytes_; }
  /// Messages transmitted but lost before delivery (fault injection).
  std::uint64_t messages_dropped() const { return dropped_; }
  /// Extra copies delivered by duplication faults.
  std::uint64_t messages_duplicated() const { return duplicated_; }

 private:
  bool fault_eligible(const Message& m, int src_host, int dst_host) const;

  Engine& eng_;
  NetConfig cfg_;
  Rng fault_rng_;
  TraceSink* sink_ = nullptr;
  // Keyed lookups only (never iterated), but an ordered map keeps the
  // container off nowlb-lint's D003 unordered ban with nothing to justify:
  // host counts are small enough that the tree vs. hash cost is noise.
  std::map<int, Time> link_busy_until_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
};

}  // namespace nowlb::sim
