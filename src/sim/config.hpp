// Simulation configuration: host scheduler, network, and messaging costs.
//
// Defaults are calibrated to the paper's testbed — Sun 4/330 workstations
// running a 100 ms-quantum UNIX scheduler on the Nectar network (100 MB/s
// links, ~100 µs latency) — see DESIGN.md §5.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace nowlb::sim {

struct HostConfig {
  /// Round-robin scheduling quantum (paper infers 100 ms: the automatic
  /// strip-mine block of 150 ms is "1.5 times the scheduling quantum").
  Time quantum = 100 * kMillisecond;
  /// Cost of a context switch between processes, charged to neither process
  /// (pure lost time, degrades efficiency under multiprogramming).
  Time context_switch = 50 * kMicrosecond;
};

struct NetConfig {
  /// Link bandwidth in bytes/second (Nectar: 100 Mbyte/s fibre links).
  double bandwidth_bps = 100e6;
  /// One-way wire latency between distinct hosts.
  Time latency = 100 * kMicrosecond;
  /// Delivery delay between processes on the same host (loopback).
  Time local_latency = 10 * kMicrosecond;
  /// Per-message protocol header bytes (affects transmission time).
  std::size_t header_bytes = 64;

  // ---- fault injection (DESIGN.md §9), all off by default ----
  // Faults apply only to cross-host messages whose tag falls inside
  // [fault_tag_lo, fault_tag_hi]; local (same-host) delivery is a reliable
  // kernel queue. A dropped message still occupies the sender's link (it
  // was transmitted, then lost); a duplicated one arrives twice.
  /// Probability a message is lost after transmission.
  double drop_prob = 0.0;
  /// Probability a second copy of a message is delivered.
  double dup_prob = 0.0;
  /// Extra delivery delay, uniform in [0, max_extra_delay] per message —
  /// reorders messages that left on different links.
  Time max_extra_delay = 0;
  /// Seed for the network's private fault stream (drawn from only when a
  /// fault mode is enabled, so fault-free runs are bit-identical).
  std::uint64_t fault_seed = 0x5eed;
  /// Inclusive tag range eligible for faults; empty (lo > hi) means all.
  int fault_tag_lo = 0;
  int fault_tag_hi = -1;

  bool faulty() const {
    return drop_prob > 0 || dup_prob > 0 || max_extra_delay > 0;
  }
};

struct MsgConfig {
  /// Sender-side software overhead per message (charged as CPU).
  Time send_overhead = 200 * kMicrosecond;
  /// Receiver-side software overhead per message (charged as CPU).
  Time recv_overhead = 150 * kMicrosecond;
};

struct WorldConfig {
  HostConfig host;
  NetConfig net;
  MsgConfig msg;
  std::uint64_t seed = 1994;
};

}  // namespace nowlb::sim
