#include "sim/host.hpp"

#include <algorithm>

#include "sim/process.hpp"
#include "util/check.hpp"

namespace nowlb::sim {

Host::Host(Engine& eng, int id, HostConfig cfg)
    : eng_(eng), id_(id), cfg_(cfg) {}

void Host::submit(Process& p, Time demand) {
  NOWLB_CHECK(demand > 0, "zero demand should not reach the scheduler");
  NOWLB_CHECK(p.remaining_demand == 0,
              "process " << p.name() << " already has outstanding demand");
  p.remaining_demand = demand;
  runq_.push_back(&p);
  dispatch();
}

void Host::remove(Process& p) {
  for (auto it = runq_.begin(); it != runq_.end(); ++it) {
    if (*it == &p) {
      runq_.erase(it);
      break;
    }
  }
  p.remaining_demand = 0;
}

void Host::dispatch() {
  if (running_ != nullptr || runq_.empty()) return;
  running_ = runq_.front();
  runq_.pop_front();
  slice_len_ = std::min(cfg_.quantum, running_->remaining_demand);
  Time overhead = 0;
  if (last_ran_ != running_ && last_ran_ != nullptr) {
    overhead = cfg_.context_switch;
    ++switches_;
  }
  last_ran_ = running_;
  slice_work_begin_ = eng_.now() + overhead;
  eng_.schedule_at(slice_work_begin_ + slice_len_, [this] { on_slice_end(); });
}

void Host::on_slice_end() {
  Process* p = running_;
  NOWLB_CHECK(p != nullptr, "slice end with no running process");
  p->cpu_used_ += slice_len_;
  p->remaining_demand -= slice_len_;
  running_ = nullptr;

  if (p->killed()) {
    // Crashed mid-slice: the burned CPU is accounted, the continuation is
    // abandoned.
    p->remaining_demand = 0;
    dispatch();
    return;
  }
  if (p->remaining_demand > 0) {
    runq_.push_back(p);
    dispatch();
    return;
  }
  // Demand satisfied: start the next queued process first so that any new
  // demand the resumed process issues queues fairly behind it.
  dispatch();
  p->resume();
}

Time Host::cpu_used(const Process& p) const {
  Time t = p.cpu_accounted();
  if (running_ == &p) {
    const Time in_flight =
        std::clamp<Time>(eng_.now() - slice_work_begin_, 0, slice_len_);
    t += in_flight;
  }
  return t;
}

}  // namespace nowlb::sim
