// Load-balancing hook placement (§4.2, Fig. 3).
//
// Hooks are conditional calls to the balancing code. The compiler inserts
// them at the deepest loop level whose per-execution body cost keeps the
// hook overhead below a small fraction (1 %) of the work between hooks:
// frequent enough to be responsive, cheap enough to be negligible.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nowlb::loop {

/// One candidate hook level in the loop nest, outermost first.
/// `body_cost` is the estimated cost of one execution of this level's body
/// (i.e. the work done between consecutive hook executions at this level).
struct HookLevel {
  std::string label;        // e.g. "outer", "strip", "iteration"
  sim::Time body_cost = 0;  // estimated from the spec's cost model
};

/// Cost of executing one (disabled) hook: a counter check plus the
/// amortized balancing work. Paper-era estimate; configurable.
inline constexpr sim::Time kDefaultHookOverhead = 20 * sim::kMicrosecond;

/// Pick the index of the deepest level (largest index) whose hook overhead
/// is below `max_fraction` of that level's body cost. Falls back to the
/// outermost level if even it is too fine (degenerate nests).
int place_hook(const std::vector<HookLevel>& levels,
               sim::Time hook_overhead = kDefaultHookOverhead,
               double max_fraction = 0.01);

}  // namespace nowlb::loop
