#include "loop/spec.hpp"

namespace nowlb::loop {

AppProperties analyze(const LoopNestSpec& spec) {
  AppProperties p;
  p.name = spec.name;
  p.loop_carried_dependences = spec.loop_carried_dependences;
  p.communication_outside_loop = spec.communication_outside_loop;
  p.repeated_execution = spec.outer_iters > 1;
  p.index_dependent_iteration_size = spec.index_dependent_iteration_size;
  p.data_dependent_iteration_size = spec.data_dependent_iteration_size;

  // Varying loop bounds: compare the distributed range across outer
  // iterations (compile-time analysis of the bound expressions; here the
  // bounds function is the expression).
  p.varying_loop_bounds = false;
  if (spec.bounds && spec.outer_iters > 1) {
    const auto first = spec.bounds(0);
    for (int k = 1; k < spec.outer_iters; ++k) {
      if (!(spec.bounds(k) == first)) {
        p.varying_loop_bounds = true;
        break;
      }
    }
  }
  return p;
}

}  // namespace nowlb::loop
