#include "loop/hooks.hpp"

#include "util/check.hpp"

namespace nowlb::loop {

int place_hook(const std::vector<HookLevel>& levels, sim::Time hook_overhead,
               double max_fraction) {
  NOWLB_CHECK(!levels.empty());
  NOWLB_CHECK(hook_overhead >= 0);
  for (int i = static_cast<int>(levels.size()) - 1; i >= 0; --i) {
    const auto& lvl = levels[static_cast<std::size_t>(i)];
    if (lvl.body_cost > 0 &&
        static_cast<double>(hook_overhead) <=
            max_fraction * static_cast<double>(lvl.body_cost)) {
      return i;
    }
  }
  return 0;  // even the outermost level is fine-grained: hook there anyway
}

}  // namespace nowlb::loop
