// Grain-size control by strip mining (§4.4).
//
// Pipelined loops communicate per iteration of the pipelined (inner) loop;
// when iterations are smaller than the OS scheduling quantum, execution
// times between synchronization points become erratic under
// multiprogramming and communication overhead dominates. The compiler
// strip-mines the inner loop; the block size is chosen *at startup* from a
// measurement of actual iteration times so that one block takes
// ~1.5 x quantum (150 ms on the paper's system).
#pragma once

#include <algorithm>

#include "sim/context.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace nowlb::loop {

/// Block size (iterations) so one block costs ~`target`; at least 1, at
/// most `extent`.
int block_size_for(sim::Time target, sim::Time per_iteration, int extent);

/// Paper's target: 1.5 x the scheduling quantum.
sim::Time grain_target(sim::Time quantum);

/// Startup calibration: run `measure_iters` iterations of the inner loop
/// via `one_iteration` (a coroutine that performs/charges one iteration),
/// time them, and derive the block size for `extent` total iterations.
/// Mirrors "the number of loop iterations in a block is set automatically
/// at startup time based on measurements".
template <typename OneIteration>
sim::Task<int> calibrate_block_size(sim::Context& ctx, sim::Time quantum,
                                    int extent, int measure_iters,
                                    OneIteration one_iteration) {
  const sim::Time t0 = ctx.now();
  int done = 0;
  for (int i = 0; i < measure_iters && i < extent; ++i) {
    co_await one_iteration(i);
    ++done;
  }
  const sim::Time elapsed = ctx.now() - t0;
  const sim::Time per_iter =
      done > 0 ? std::max<sim::Time>(1, elapsed / done) : 1;
  co_return block_size_for(grain_target(quantum), per_iter, extent);
}

}  // namespace nowlb::loop
