// LoopNestSpec: the declarative description of a sequential loop nest that
// a parallelizing compiler's front end extracts (bounds, dependences,
// nesting, iteration-size behaviour).
//
// This is the input to "automatic generation": from a spec, the framework
// derives the application properties of Table 1, the movement restriction,
// the hook placement, the strip-mine block size, and the master control
// program — every compiler task of Table 2 is implemented against this
// structure rather than against Fortran syntax (see DESIGN.md §2).
#pragma once

#include <functional>
#include <string>

#include "data/slice.hpp"
#include "sim/time.hpp"

namespace nowlb::loop {

struct LoopNestSpec {
  std::string name;

  /// Iterations of the distributed loop == number of data slices.
  int distributed_extent = 0;

  /// Iterations of the inner loop nested in each distributed iteration
  /// (e.g. rows per column); 1 if the distributed loop body is flat.
  int inner_extent = 1;

  /// How many times the distributed loop is invoked (enclosing loop).
  int outer_iters = 1;

  /// The distributed loop carries dependences between iterations
  /// (neighbouring slices communicate; execution pipelines).
  bool loop_carried_dependences = false;

  /// Statements outside the distributed loop reference distributed data
  /// (broadcast/exchange before or after each invocation).
  bool communication_outside_loop = false;

  /// Bounds of the distributed loop per outer iteration; identity when the
  /// bounds are static. (LU: [k+1, n) for outer iteration k.)
  std::function<data::SliceRange(int outer)> bounds;

  /// Iteration cost varies with the distributed index (LU: column updates
  /// shrink as the active region shrinks).
  bool index_dependent_iteration_size = false;

  /// Iteration cost depends on data values (conditionals in the body).
  bool data_dependent_iteration_size = false;

  /// Virtual CPU cost of one (outer, slice) iteration of the distributed
  /// loop — the calibrated model of the sequential body.
  std::function<sim::Time(int outer, data::SliceId slice)> iteration_cost;

  data::SliceRange bounds_for(int outer) const {
    if (bounds) return bounds(outer);
    return {0, distributed_extent};
  }
};

/// The derived per-application properties — one row of the paper's Table 1.
struct AppProperties {
  std::string name;
  bool loop_carried_dependences = false;
  bool communication_outside_loop = false;
  bool repeated_execution = false;
  bool varying_loop_bounds = false;
  bool index_dependent_iteration_size = false;
  bool data_dependent_iteration_size = false;
};

/// Analyze a spec into its Table-1 row.
AppProperties analyze(const LoopNestSpec& spec);

}  // namespace nowlb::loop
