#include "loop/grain.hpp"

#include "util/check.hpp"

namespace nowlb::loop {

sim::Time grain_target(sim::Time quantum) { return quantum + quantum / 2; }

int block_size_for(sim::Time target, sim::Time per_iteration, int extent) {
  NOWLB_CHECK(per_iteration > 0);
  NOWLB_CHECK(extent >= 1);
  const auto blocks = static_cast<int>(target / per_iteration);
  return std::clamp(blocks, 1, extent);
}

}  // namespace nowlb::loop
