// Runtime invariant layer: passive observers over the load-balancing
// protocol and the distributed-data layer.
//
// An Invariant sees every status report, instruction, work transfer and
// slice-ownership change of a run, stamped with virtual time, and records
// Failures into the owning InvariantSet instead of throwing — a fuzzing
// run wants every violated invariant of a seed, not just the first.
//
// The InvariantSet is the wiring hub. It implements lb::RuntimeHooks, the
// lb layer's abstract observer interface, so the lb runtime reports to it
// without any include of check/ (lb carries only a nullable RuntimeHooks*
// in LbConfig); all hookpoints fire synchronously at zero virtual cost,
// so an instrumented run dispatches the exact same event sequence as a
// bare one.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/ownership.hpp"
#include "data/slice.hpp"
#include "lb/hooks.hpp"
#include "lb/plan.hpp"
#include "lb/protocol.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace nowlb::check {

/// One recorded invariant violation.
struct Failure {
  std::string checker;
  std::string message;
  sim::Time at = 0;
};

class InvariantSet;

class Invariant {
 public:
  virtual ~Invariant() = default;
  virtual const char* name() const = 0;

  // ---- master-side hookpoints (lb/master.cpp) ----
  /// One full collection: reports[r] is valid where mask[r] is set.
  virtual void on_master_reports(sim::Time /*t*/, int /*round*/,
                                 const std::vector<lb::StatusReport>&,
                                 const std::vector<bool>& /*mask*/) {}
  /// The per-round balancing decision over the remaining distribution.
  virtual void on_master_decision(sim::Time /*t*/, const lb::Decision&,
                                  const std::vector<int>& /*remaining*/) {}
  /// Instructions handed to one rank (observed at send time).
  virtual void on_master_instructions(sim::Time /*t*/, int /*rank*/,
                                      const lb::Instructions&) {}

  // ---- slave-side hookpoints (lb/slave.cpp) ----
  virtual void on_slave_report(sim::Time /*t*/, int /*rank*/,
                               const lb::StatusReport&) {}
  /// Instructions applied by a slave (normal, polled, or pre-paid path).
  virtual void on_slave_instructions(sim::Time /*t*/, int /*rank*/,
                                     const lb::Instructions&) {}
  /// A transfer's send half completed: `actual` units packed of the
  /// `ordered` target and put on the wire towards `to_rank`.
  virtual void on_units_packed(sim::Time /*t*/, int /*from_rank*/,
                               int /*to_rank*/, int /*ordered*/,
                               int /*actual*/) {}
  /// A transfer's receive half completed: `actual` units integrated.
  virtual void on_units_unpacked(sim::Time /*t*/, int /*rank*/,
                                 int /*from_rank*/, int /*ordered*/,
                                 int /*actual*/) {}

  // ---- fault-tolerance hookpoints (lb/master.cpp, lb/transport.cpp) ----
  /// Master evicted `rank` (pid) after a missed-report heartbeat deadline.
  virtual void on_rank_evicted(sim::Time /*t*/, int /*rank*/,
                               sim::Pid /*pid*/) {}
  /// Master assigned orphaned unit ids from an evicted rank to `rank`.
  virtual void on_orphans_assigned(sim::Time /*t*/, int /*rank*/,
                                   const std::vector<int>& /*ids*/) {}
  /// Slave `rank` reconstructed and integrated adopted unit ids.
  virtual void on_adopted(sim::Time /*t*/, int /*rank*/,
                          const std::vector<int>& /*ids*/) {}
  /// Reliable transport delivered (src, tag, seq) to dst's application.
  virtual void on_transport_deliver(sim::Time /*t*/, sim::Pid /*src*/,
                                    sim::Pid /*dst*/, int /*tag*/,
                                    std::uint32_t /*seq*/) {}
  /// Sender exhausted retransmit attempts for a message towards dst.
  virtual void on_transport_gave_up(sim::Time /*t*/, sim::Pid /*src*/,
                                    sim::Pid /*dst*/, int /*tag*/) {}

  // ---- data-layer hookpoints (data/dist_array.hpp via SliceLedger) ----
  virtual void on_slice_added(sim::Time /*t*/, int /*rank*/,
                              data::SliceId /*id*/) {}
  virtual void on_slice_removed(sim::Time /*t*/, int /*rank*/,
                                data::SliceId /*id*/) {}

  // ---- lifecycle ----
  virtual void on_run_end(sim::Time /*t*/) {}

 protected:
  /// Record a violation (defined after InvariantSet).
  void fail(sim::Time t, std::string message);

 private:
  friend class InvariantSet;
  InvariantSet* set_ = nullptr;
};

class InvariantSet : public data::SliceLedger, public lb::RuntimeHooks {
 public:
  /// Observation-layer fault injection: corrupt the event stream fed to the
  /// checkers to prove the failure path fires (the simulated system itself
  /// stays correct). kSkipCredit drops one transfer's packed credit;
  /// kWrongRound mislabels one applied instruction's round.
  enum class Fault { kNone, kSkipCredit, kWrongRound };

  Invariant& add(std::unique_ptr<Invariant> checker) {
    checker->set_ = this;
    checkers_.push_back(std::move(checker));
    return *checkers_.back();
  }

  /// Stamp data-layer events (which carry no time) with this clock.
  void bind_clock(const sim::Engine* clock) { clock_ = clock; }

  void inject_fault(Fault f) { fault_ = f; }

  const std::vector<Failure>& failures() const { return failures_; }
  bool ok() const { return failures_.empty(); }

  void record(Failure f) {
    // Cap collection: one bad seed can violate an invariant per event.
    if (failures_.size() < kMaxFailures) failures_.push_back(std::move(f));
  }

  /// Multi-line human-readable failure summary.
  std::string report() const {
    std::string out;
    for (const Failure& f : failures_) {
      out += "  [" + f.checker + "] t=" +
             std::to_string(sim::to_seconds(f.at)) + "s: " + f.message + "\n";
    }
    return out;
  }

  // ---- lb::RuntimeHooks dispatch (called from lb/master.cpp,
  // lb/slave.cpp, lb/transport.cpp) ----
  void on_master_reports(sim::Time t, int round,
                         const std::vector<lb::StatusReport>& reports,
                         const std::vector<bool>& mask) override {
    for (auto& c : checkers_) c->on_master_reports(t, round, reports, mask);
  }
  void on_master_decision(sim::Time t, const lb::Decision& d,
                          const std::vector<int>& remaining) override {
    for (auto& c : checkers_) c->on_master_decision(t, d, remaining);
  }
  void on_master_instructions(sim::Time t, int rank,
                              const lb::Instructions& ins) override {
    for (auto& c : checkers_) c->on_master_instructions(t, rank, ins);
  }
  void on_slave_report(sim::Time t, int rank,
                       const lb::StatusReport& rep) override {
    for (auto& c : checkers_) c->on_slave_report(t, rank, rep);
  }
  void on_slave_instructions(sim::Time t, int rank,
                             const lb::Instructions& ins) override {
    if (fault_ == Fault::kWrongRound && !fault_fired_) {
      fault_fired_ = true;
      lb::Instructions wrong = ins;
      // +2, not +1: a pre-paid instruction legitimately runs one round
      // ahead, so +1 could land inside the allowed window.
      wrong.round += 2;
      for (auto& c : checkers_) c->on_slave_instructions(t, rank, wrong);
      return;
    }
    for (auto& c : checkers_) c->on_slave_instructions(t, rank, ins);
  }
  void on_units_packed(sim::Time t, int from_rank, int to_rank, int ordered,
                       int actual) override {
    if (fault_ == Fault::kSkipCredit && !fault_fired_) {
      fault_fired_ = true;
      return;  // the transfer's credit never reaches the checkers
    }
    for (auto& c : checkers_) {
      c->on_units_packed(t, from_rank, to_rank, ordered, actual);
    }
  }
  void on_units_unpacked(sim::Time t, int rank, int from_rank, int ordered,
                         int actual) override {
    for (auto& c : checkers_) {
      c->on_units_unpacked(t, rank, from_rank, ordered, actual);
    }
  }
  void on_rank_evicted(sim::Time t, int rank, sim::Pid pid) override {
    for (auto& c : checkers_) c->on_rank_evicted(t, rank, pid);
  }
  void on_orphans_assigned(sim::Time t, int rank,
                           const std::vector<int>& ids) override {
    for (auto& c : checkers_) c->on_orphans_assigned(t, rank, ids);
  }
  void on_adopted(sim::Time t, int rank, const std::vector<int>& ids) override {
    for (auto& c : checkers_) c->on_adopted(t, rank, ids);
  }
  void on_transport_deliver(sim::Time t, sim::Pid src, sim::Pid dst, int tag,
                            std::uint32_t seq) override {
    for (auto& c : checkers_) c->on_transport_deliver(t, src, dst, tag, seq);
  }
  void on_transport_gave_up(sim::Time t, sim::Pid src, sim::Pid dst,
                            int tag) override {
    for (auto& c : checkers_) c->on_transport_gave_up(t, src, dst, tag);
  }
  void on_run_end(sim::Time t) {
    for (auto& c : checkers_) c->on_run_end(t);
  }

  // ---- data::SliceLedger (installed via data::SliceLedgerScope) ----
  void on_slice_added(int rank, data::SliceId id) override {
    const sim::Time t = clock_ ? clock_->now() : 0;
    for (auto& c : checkers_) c->on_slice_added(t, rank, id);
  }
  void on_slice_removed(int rank, data::SliceId id) override {
    const sim::Time t = clock_ ? clock_->now() : 0;
    for (auto& c : checkers_) c->on_slice_removed(t, rank, id);
  }

 private:
  static constexpr std::size_t kMaxFailures = 64;

  std::vector<std::unique_ptr<Invariant>> checkers_;
  std::vector<Failure> failures_;
  const sim::Engine* clock_ = nullptr;
  Fault fault_ = Fault::kNone;
  bool fault_fired_ = false;
};

inline void Invariant::fail(sim::Time t, std::string message) {
  if (set_ != nullptr) set_->record({name(), std::move(message), t});
}

}  // namespace nowlb::check
