// nowlb-trace: replay one fuzzer scenario with the flight recorder
// attached and export everything it saw — a Chrome trace_event JSON for
// Perfetto / about://tracing, a Prometheus metrics dump, and the decision
// ledger with one explained line per balancing round.
//
//   nowlb-trace --app=mm --seed=7                      # writes trace.json
//   nowlb-trace --app=sor --seed=3 --out=s.json --metrics=s.prom
//   nowlb-trace --app=mm --seed=7 --explain            # decision ledger
//   nowlb-trace --app=mm --seed=7 --drop-rate=0.05 --kill-slave=1@3
//
// The run is replayed twice, once bare and once recorded, and the engine
// event-trace hashes are compared: recording must never perturb the
// simulation.

#include <cstdio>
#include <fstream>
#include <string>

#include "check/scenario.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"

namespace {

using nowlb::check::App;
using nowlb::check::FuzzResult;
using nowlb::check::Scenario;

}  // namespace

int main(int argc, char** argv) {
  const nowlb::Cli cli(argc, argv);
  static const char* kKnown[] = {"help",      "app",        "seed",
                                 "out",       "metrics",    "explain",
                                 "drop-rate", "dup-rate",   "reorder-us",
                                 "kill-slave"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const std::string name = arg.substr(2, arg.find('=') - 2);
    bool known = false;
    for (const char* k : kKnown) known = known || name == k;
    if (!known) {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      return 2;
    }
  }
  if (cli.has("help")) {
    std::printf(
        "usage: nowlb-trace [--app=mm|sor|lu] [--seed=S] [--out=FILE]\n"
        "                   [--metrics=FILE] [--explain]\n"
        "                   [--drop-rate=P] [--dup-rate=P] [--reorder-us=D]\n"
        "                   [--kill-slave=RANK@ROUND]  (MM only)\n"
        "\n"
        "Replays the seeded fuzzer scenario with the flight recorder\n"
        "attached and writes a Chrome trace_event JSON (default\n"
        "trace.json; load it in Perfetto or about://tracing). --metrics\n"
        "dumps the metrics registry as Prometheus text; --explain prints\n"
        "the decision ledger, one line per balancing round.\n");
    return 0;
  }

  const std::string app_flag = cli.get("app", "mm");
  App app;
  if (app_flag == "mm") {
    app = App::kMm;
  } else if (app_flag == "sor") {
    app = App::kSor;
  } else if (app_flag == "lu") {
    app = App::kLu;
  } else {
    std::fprintf(stderr, "unknown --app=%s\n", app_flag.c_str());
    return 2;
  }

  nowlb::check::FaultPlan plan;
  plan.drop_rate = cli.get_double("drop-rate", 0.0);
  plan.dup_rate = cli.get_double("dup-rate", 0.0);
  plan.reorder_delay =
      static_cast<nowlb::sim::Time>(cli.get_int("reorder-us", 0)) *
      nowlb::sim::kMicrosecond;
  if (plan.drop_rate < 0 || plan.drop_rate >= 1 || plan.dup_rate < 0 ||
      plan.dup_rate >= 1 || plan.reorder_delay < 0) {
    std::fprintf(stderr, "fault rates must be in [0, 1), delays >= 0\n");
    return 2;
  }
  const std::string kill_flag = cli.get("kill-slave", "");
  if (!kill_flag.empty()) {
    const std::size_t at = kill_flag.find('@');
    try {
      plan.kill_rank = std::stoi(kill_flag.substr(0, at));
      if (at != std::string::npos) {
        plan.kill_round = std::stoi(kill_flag.substr(at + 1));
      }
    } catch (...) {
      plan.kill_rank = -1;
    }
    if (plan.kill_rank < 0 || plan.kill_round < 1 || app != App::kMm) {
      std::fprintf(stderr,
                   "--kill-slave expects RANK@ROUND and --app=mm\n");
      return 2;
    }
  }

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  Scenario sc = nowlb::check::generate_scenario(seed, app);
  if (plan.any()) nowlb::check::apply_fault_plan(sc, plan);
  std::printf("scenario: %s\n", sc.describe().c_str());

  // Bare run first: the recorded replay must dispatch the identical event
  // sequence, or the recorder is perturbing the system it observes.
  const FuzzResult bare = nowlb::check::run_scenario(sc);
  nowlb::obs::Observability hub;
  const FuzzResult res =
      nowlb::check::run_scenario(sc, nowlb::check::InvariantSet::Fault::kNone,
                                 &hub);
  if (res.trace_hash != bare.trace_hash) {
    std::printf(
        "RECORDER PERTURBED THE RUN: trace %016llx with recording vs "
        "%016llx without\n",
        static_cast<unsigned long long>(res.trace_hash),
        static_cast<unsigned long long>(bare.trace_hash));
  }

  std::printf("result: %s, %.3fs virtual, trace %016llx (recording "
              "changed nothing: %s)\n",
              res.ok ? "ok" : "FAIL", res.elapsed_s,
              static_cast<unsigned long long>(res.trace_hash),
              res.trace_hash == bare.trace_hash ? "yes" : "NO");
  for (const auto& f : res.failures) {
    std::printf("  [%s] t=%.6fs: %s\n", f.checker.c_str(),
                nowlb::sim::to_seconds(f.at), f.message.c_str());
  }
  std::printf("recorded: %zu trace event(s) across %zu lane(s), %zu "
              "ledger round(s), %llu dropped\n",
              hub.trace.events().size(), hub.trace.lanes().size(),
              hub.ledger.records().size(),
              static_cast<unsigned long long>(hub.trace.dropped()));

  const std::string out_path = cli.get("out", "trace.json");
  if (!out_path.empty() && out_path != "none") {
    if (nowlb::obs::write_chrome_trace_file(out_path, hub.trace)) {
      std::printf("trace: wrote %s (load in Perfetto or about://tracing)\n",
                  out_path.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", out_path.c_str());
      return 2;
    }
  }
  const std::string metrics_path = cli.get("metrics", "");
  if (!metrics_path.empty()) {
    std::ofstream mout(metrics_path);
    if (!mout) {
      std::fprintf(stderr, "metrics: failed to write %s\n",
                   metrics_path.c_str());
      return 2;
    }
    mout << hub.metrics.prometheus_text();
    std::printf("metrics: wrote %s\n", metrics_path.c_str());
  }
  if (cli.get_bool("explain", false)) {
    std::printf("-- decision ledger --\n");
    std::fputs(hub.ledger.explain().c_str(), stdout);
  }
  const bool perturbed = res.trace_hash != bare.trace_hash;
  return res.ok && !perturbed ? 0 : 1;
}
