// Concrete invariants over the load-balancing runtime. Each checker is
// independent and purely observational; add the ones that apply to the
// scenario's configuration to an InvariantSet (see scenario.cpp).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "check/invariant.hpp"

namespace nowlb::check {

/// Work conservation. Units leave a rank only by being packed onto the
/// wire and enter only by being unpacked; every packed transfer must be
/// unpacked by its destination with the exact same unit count (per-edge
/// FIFO — the network preserves per-pair ordering), and no transfer may be
/// in flight when the run ends. Also validates the master's plans (targets
/// redistribute exactly the reported remaining work) and report sanity
/// (no negative counts or durations).
class WorkConservationChecker final : public Invariant {
 public:
  const char* name() const override { return "conservation"; }

  void on_master_decision(sim::Time t, const lb::Decision& d,
                          const std::vector<int>& remaining) override;
  void on_slave_report(sim::Time t, int rank,
                       const lb::StatusReport& rep) override;
  void on_units_packed(sim::Time t, int from_rank, int to_rank, int ordered,
                       int actual) override;
  void on_units_unpacked(sim::Time t, int rank, int from_rank, int ordered,
                         int actual) override;
  void on_run_end(sim::Time t) override;

 private:
  // (from, to) -> FIFO of packed-but-not-yet-unpacked unit counts.
  std::map<std::pair<int, int>, std::vector<int>> in_flight_;
};

/// Block-distribution contiguity (restricted / adjacent-shift mode only,
/// Fig. 1b). Every planned transfer is between adjacent ranks; each rank's
/// slice set is a contiguous index range at every stable point (after a
/// complete pack or unpack — mid-unpack the set is legitimately gappy);
/// and at run end the per-rank blocks are disjoint and ordered by rank.
class ContiguityChecker final : public Invariant {
 public:
  explicit ContiguityChecker(int nslaves) : sets_(nslaves) {}
  const char* name() const override { return "contiguity"; }

  void on_master_decision(sim::Time t, const lb::Decision& d,
                          const std::vector<int>& remaining) override;
  void on_units_packed(sim::Time t, int from_rank, int to_rank, int ordered,
                       int actual) override;
  void on_units_unpacked(sim::Time t, int rank, int from_rank, int ordered,
                         int actual) override;
  void on_slice_added(sim::Time t, int rank, data::SliceId id) override;
  void on_slice_removed(sim::Time t, int rank, data::SliceId id) override;
  void on_run_end(sim::Time t) override;

 private:
  void check_contiguous(sim::Time t, int rank, const char* when);

  std::vector<std::set<data::SliceId>> sets_;
};

/// Pipelining lag (Fig. 2). The master computes the instructions for round
/// r + lag from round r's reports: lag is 1 in pipelined phase mode and 0
/// in synchronous or done-flag (reply-style) mode. On the slave side an
/// applied instruction's round is the slave's last report round, or one
/// ahead of it (a pre-sent pipelined instruction caught by a wildcard
/// receive) — never stale, never further ahead.
class PipelineLagChecker final : public Invariant {
 public:
  explicit PipelineLagChecker(int lag) : lag_(lag) {}
  const char* name() const override { return "pipeline"; }

  void on_master_reports(sim::Time t, int round,
                         const std::vector<lb::StatusReport>& reports,
                         const std::vector<bool>& mask) override;
  void on_master_instructions(sim::Time t, int rank,
                              const lb::Instructions& ins) override;
  void on_slave_report(sim::Time t, int rank,
                       const lb::StatusReport& rep) override;
  void on_slave_instructions(sim::Time t, int rank,
                             const lb::Instructions& ins) override;

 private:
  int lag_;
  int last_collected_ = 0;
  std::map<int, int> last_report_;  // rank -> round of last report sent
};

/// No-duplicate / no-lost slice ownership — the property the locator
/// protocol (§4.6) silently depends on. Every slice id is held by exactly
/// one rank or is in flight between two; at run end nothing is in flight
/// and (when the scenario knows the total) every slice is accounted for.
class SliceOwnershipChecker final : public Invariant {
 public:
  /// `expected_total` < 0 disables the end-of-run coverage check.
  explicit SliceOwnershipChecker(int expected_total = -1)
      : expected_total_(expected_total) {}
  const char* name() const override { return "ownership"; }

  void on_slice_added(sim::Time t, int rank, data::SliceId id) override;
  void on_slice_removed(sim::Time t, int rank, data::SliceId id) override;
  void on_run_end(sim::Time t) override;

 private:
  int expected_total_;
  std::map<data::SliceId, int> owner_;   // id -> holding rank
  std::set<data::SliceId> in_flight_;    // removed, not yet re-added
};

/// The full checker complement for a scenario: conservation + pipeline lag
/// + ownership always; contiguity only in restricted-movement mode.
void add_standard_checkers(InvariantSet& set, int nslaves, int lag,
                           bool restricted, int expected_slices);

}  // namespace nowlb::check
