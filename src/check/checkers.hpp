// Concrete invariants over the load-balancing runtime. Each checker is
// independent and purely observational; add the ones that apply to the
// scenario's configuration to an InvariantSet (see scenario.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "check/invariant.hpp"

namespace nowlb::sim {
class World;
}

namespace nowlb::obs {
class DecisionLedger;
}

namespace nowlb::check {

/// Work conservation. Units leave a rank only by being packed onto the
/// wire and enter only by being unpacked; every packed transfer must be
/// unpacked by its destination with the exact same unit count (per-edge
/// FIFO — the network preserves per-pair ordering), and no transfer may be
/// in flight when the run ends. Also validates the master's plans (targets
/// redistribute exactly the reported remaining work) and report sanity
/// (no negative counts or durations). Transfers on an edge touching an
/// evicted rank are written off: the sender or receiver is gone and the
/// orphan-recovery path (EvictionChecker) accounts for the units instead.
class WorkConservationChecker final : public Invariant {
 public:
  const char* name() const override { return "conservation"; }

  void on_master_decision(sim::Time t, const lb::Decision& d,
                          const std::vector<int>& remaining) override;
  void on_slave_report(sim::Time t, int rank,
                       const lb::StatusReport& rep) override;
  void on_units_packed(sim::Time t, int from_rank, int to_rank, int ordered,
                       int actual) override;
  void on_units_unpacked(sim::Time t, int rank, int from_rank, int ordered,
                         int actual) override;
  void on_rank_evicted(sim::Time t, int rank, sim::Pid pid) override;
  void on_run_end(sim::Time t) override;

 private:
  // (from, to) -> FIFO of packed-but-not-yet-unpacked unit counts.
  std::map<std::pair<int, int>, std::vector<int>> in_flight_;
  std::set<int> dead_;
};

/// Block-distribution contiguity (restricted / adjacent-shift mode only,
/// Fig. 1b). Every planned transfer is between adjacent ranks; each rank's
/// slice set is a contiguous index range at every stable point (after a
/// complete pack or unpack — mid-unpack the set is legitimately gappy);
/// and at run end the per-rank blocks are disjoint and ordered by rank.
class ContiguityChecker final : public Invariant {
 public:
  explicit ContiguityChecker(int nslaves) : sets_(nslaves) {}
  const char* name() const override { return "contiguity"; }

  void on_master_decision(sim::Time t, const lb::Decision& d,
                          const std::vector<int>& remaining) override;
  void on_units_packed(sim::Time t, int from_rank, int to_rank, int ordered,
                       int actual) override;
  void on_units_unpacked(sim::Time t, int rank, int from_rank, int ordered,
                         int actual) override;
  void on_slice_added(sim::Time t, int rank, data::SliceId id) override;
  void on_slice_removed(sim::Time t, int rank, data::SliceId id) override;
  void on_run_end(sim::Time t) override;

 private:
  void check_contiguous(sim::Time t, int rank, const char* when);

  std::vector<std::set<data::SliceId>> sets_;
};

/// Pipelining lag (Fig. 2). The master computes the instructions for round
/// r + lag from round r's reports: lag is 1 in pipelined phase mode and 0
/// in synchronous or done-flag (reply-style) mode. On the slave side an
/// applied instruction's round is the slave's last report round, or one
/// ahead of it (a pre-sent pipelined instruction caught by a wildcard
/// receive) — never stale, never further ahead.
class PipelineLagChecker final : public Invariant {
 public:
  explicit PipelineLagChecker(int lag) : lag_(lag) {}
  const char* name() const override { return "pipeline"; }

  void on_master_reports(sim::Time t, int round,
                         const std::vector<lb::StatusReport>& reports,
                         const std::vector<bool>& mask) override;
  void on_master_instructions(sim::Time t, int rank,
                              const lb::Instructions& ins) override;
  void on_slave_report(sim::Time t, int rank,
                       const lb::StatusReport& rep) override;
  void on_slave_instructions(sim::Time t, int rank,
                             const lb::Instructions& ins) override;

 private:
  int lag_;
  int last_collected_ = 0;
  std::map<int, int> last_report_;  // rank -> round of last report sent
};

/// No-duplicate / no-lost slice ownership — the property the locator
/// protocol (§4.6) silently depends on. Every slice id is held by exactly
/// one rank or is in flight between two; at run end nothing is in flight
/// and (when the scenario knows the total) every slice is accounted for.
/// A slice re-added while its recorded owner is an evicted rank is an
/// adoption, not a duplicate: ownership transfers silently. The run-end
/// checks stay strict — they are exactly what proves recovery re-homed
/// every orphan.
class SliceOwnershipChecker final : public Invariant {
 public:
  /// `expected_total` < 0 disables the end-of-run coverage check.
  explicit SliceOwnershipChecker(int expected_total = -1)
      : expected_total_(expected_total) {}
  const char* name() const override { return "ownership"; }

  void on_slice_added(sim::Time t, int rank, data::SliceId id) override;
  void on_slice_removed(sim::Time t, int rank, data::SliceId id) override;
  void on_rank_evicted(sim::Time t, int rank, sim::Pid pid) override;
  void on_run_end(sim::Time t) override;

 private:
  int expected_total_;
  std::map<data::SliceId, int> owner_;   // id -> holding rank
  std::set<data::SliceId> in_flight_;    // removed, not yet re-added
  std::set<int> dead_;
};

/// Fault-recovery bookkeeping. Every orphaned unit id the master assigns
/// must go to a live rank, be adopted exactly once by that rank, and no
/// assignment may still be outstanding at run end; a rank must never adopt
/// units it was not assigned. (No-op in fault-free runs: no events fire.)
class EvictionChecker final : public Invariant {
 public:
  const char* name() const override { return "eviction"; }

  void on_rank_evicted(sim::Time t, int rank, sim::Pid pid) override;
  void on_orphans_assigned(sim::Time t, int rank,
                           const std::vector<int>& ids) override;
  void on_adopted(sim::Time t, int rank, const std::vector<int>& ids) override;
  void on_run_end(sim::Time t) override;

 private:
  std::set<int> dead_;
  std::map<int, int> pending_;  // unit id -> assigned rank, not yet adopted
  int adopted_total_ = 0;
};

/// Reliable-transport delivery order: per (src, dst, tag) channel the
/// delivered sequence numbers are strictly consecutive from 0 — no loss,
/// no duplicate, no reorder survives the retransmit/ack layer. Retry
/// exhaustion (gave-up) is counted but never failed on: it is legal both
/// towards a crashed peer racing its own eviction and towards a finished
/// peer whose last ack was lost; a gave-up that actually loses protocol
/// state surfaces through the termination / conservation / oracle checks.
class TransportChecker final : public Invariant {
 public:
  const char* name() const override { return "transport"; }

  void on_transport_deliver(sim::Time t, sim::Pid src, sim::Pid dst, int tag,
                            std::uint32_t seq) override;
  void on_transport_gave_up(sim::Time t, sim::Pid src, sim::Pid dst,
                            int tag) override;

  std::uint64_t gave_ups() const { return gave_ups_; }

 private:
  std::map<std::tuple<sim::Pid, sim::Pid, int>, std::uint32_t> next_seq_;
  std::uint64_t gave_ups_ = 0;
};

/// Decision-ledger arithmetic: cross-checks the flight recorder against
/// the invariant bus. Exactly one ledger record per completed report
/// collection; a moved round's ordered transfers redistribute exactly the
/// reported remaining work (per rank, target - remaining == inflow -
/// outflow); a cancelled or wind-down round orders zero moves and leaves
/// the assignment untouched (target == remaining).
class LedgerChecker final : public Invariant {
 public:
  /// `ledger` must outlive the checker; records already present at
  /// construction (a hub shared across runs) are skipped.
  explicit LedgerChecker(const obs::DecisionLedger* ledger);
  const char* name() const override { return "ledger"; }

  void on_master_reports(sim::Time t, int round,
                         const std::vector<lb::StatusReport>& reports,
                         const std::vector<bool>& mask) override;
  void on_run_end(sim::Time t) override;

 private:
  const obs::DecisionLedger* ledger_;
  std::size_t start_;               // records present before this run
  std::uint64_t collections_ = 0;   // report collections observed
};

/// Crash-fault injector: kills one slave process the first time the master
/// completes a report collection for round >= `trigger_round`. Not a
/// checker — it perturbs the simulated system — but it rides the invariant
/// bus because the master's collection loop is the only deterministic,
/// app-independent place to anchor "mid-run" on.
class CrashInjector final : public Invariant {
 public:
  CrashInjector(sim::World& world, sim::Pid victim, int trigger_round)
      : world_(world), victim_(victim), trigger_round_(trigger_round) {}
  const char* name() const override { return "crash-injector"; }

  void on_master_reports(sim::Time t, int round,
                         const std::vector<lb::StatusReport>& reports,
                         const std::vector<bool>& mask) override;
  bool fired() const { return fired_; }

 private:
  sim::World& world_;
  sim::Pid victim_;
  int trigger_round_;
  bool fired_ = false;
};

/// The full checker complement for a scenario: conservation + pipeline lag
/// + ownership + eviction + transport always (the fault checkers are
/// no-ops in fault-free runs); contiguity only in restricted-movement mode.
void add_standard_checkers(InvariantSet& set, int nslaves, int lag,
                           bool restricted, int expected_slices);

}  // namespace nowlb::check
