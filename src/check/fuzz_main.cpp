// nowlb-fuzz: deterministic simulation fuzzing for the load balancer.
//
// Runs N seeded scenarios per application with every invariant checker
// attached. Each failing seed is re-run to prove the failure is
// deterministic (identical event-trace hash and failure list), and a
// minimal repro command is printed.
//
//   nowlb-fuzz --seeds=200                 # seeds 1..200 x {mm, sor, lu}
//   nowlb-fuzz --app=sor --seed=1337       # replay one scenario, verbose
//   nowlb-fuzz --seeds=50 --inject-fault=skip-credit   # prove detection
//   nowlb-fuzz --seeds=50 --drop-rate=0.05 --dup-rate=0.02   # lossy net
//   nowlb-fuzz --app=mm --seeds=25 --drop-rate=0.05 --kill-slave=1@3

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

using nowlb::check::App;
using nowlb::check::FuzzResult;
using nowlb::check::InvariantSet;
using nowlb::check::Scenario;

struct FailureRecord {
  std::uint64_t seed;
  App app;
  bool deterministic;
};

std::string repro_command(const Scenario& sc, const std::string& fault_flag,
                          const nowlb::check::FaultPlan& plan) {
  std::string cmd = "nowlb-fuzz --app=" + std::string(app_name(sc.app)) +
                    " --seed=" + std::to_string(sc.seed);
  if (!fault_flag.empty()) cmd += " --inject-fault=" + fault_flag;
  if (plan.drop_rate > 0) {
    cmd += " --drop-rate=" + std::to_string(plan.drop_rate);
  }
  if (plan.dup_rate > 0) cmd += " --dup-rate=" + std::to_string(plan.dup_rate);
  if (plan.reorder_delay > 0) {
    cmd += " --reorder-us=" +
           std::to_string(plan.reorder_delay / nowlb::sim::kMicrosecond);
  }
  if (plan.kill_rank >= 0) {
    cmd += " --kill-slave=" + std::to_string(plan.kill_rank) + "@" +
           std::to_string(plan.kill_round);
  }
  return cmd;
}

void print_failures(const FuzzResult& res) {
  for (const auto& f : res.failures) {
    std::printf("    [%s] t=%.6fs: %s\n", f.checker.c_str(),
                nowlb::sim::to_seconds(f.at), f.message.c_str());
  }
}

bool parse_level(const std::string& name, nowlb::LogLevel* out) {
  if (name == "trace") *out = nowlb::LogLevel::Trace;
  else if (name == "debug") *out = nowlb::LogLevel::Debug;
  else if (name == "info") *out = nowlb::LogLevel::Info;
  else if (name == "warn") *out = nowlb::LogLevel::Warn;
  else if (name == "error") *out = nowlb::LogLevel::Error;
  else if (name == "off") *out = nowlb::LogLevel::Off;
  else return false;
  return true;
}

/// `--log=debug` sets the global level; `--log=transport=debug,lb=info`
/// raises individual components. Tokens combine: `debug,transport=trace`.
bool apply_log_flag(const std::string& flag) {
  std::size_t pos = 0;
  while (pos <= flag.size()) {
    const std::size_t comma = flag.find(',', pos);
    const std::string token = flag.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? flag.size() + 1 : comma + 1;
    if (token.empty()) continue;
    nowlb::LogLevel lvl;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (!parse_level(token, &lvl)) return false;
      nowlb::Log::set_level(lvl);
    } else {
      if (!parse_level(token.substr(eq + 1), &lvl)) return false;
      nowlb::Log::set_level(token.substr(0, eq), lvl);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const nowlb::Cli cli(argc, argv);
  // A misspelled flag must not silently fall back to defaults: a fuzzer
  // that quietly runs the wrong scenario set reports green for nothing.
  static const char* kKnown[] = {
      "help", "seeds",        "base", "seed",    "app",
      "log",  "inject-fault", "verbose",
      "drop-rate", "dup-rate", "reorder-us", "kill-slave",
      "trace", "metrics", "explain"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const std::string name = arg.substr(2, arg.find('=') - 2);
    bool known = false;
    for (const char* k : kKnown) known = known || name == k;
    if (!known) {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      return 2;
    }
  }
  if (cli.has("help")) {
    std::printf(
        "usage: nowlb-fuzz [--seeds=N] [--base=B] [--seed=S]\n"
        "                  [--app=mm|sor|lu|all] [--inject-fault=skip-credit|"
        "wrong-round]\n"
        "                  [--drop-rate=P] [--dup-rate=P] [--reorder-us=D]\n"
        "                  [--kill-slave=RANK@ROUND]  (MM only)\n"
        "                  [--trace=FILE] [--metrics=FILE] [--explain]\n"
        "                  [--log=LEVEL|component=LEVEL,...] [--verbose]\n"
        "\n"
        "  --trace=FILE    write a Chrome trace_event JSON (Perfetto/\n"
        "                  about://tracing) of every run in the sweep\n"
        "  --metrics=FILE  dump the metrics registry as Prometheus text\n"
        "  --explain       print the decision ledger: one line per\n"
        "                  balancing round with rates, gate and moves\n");
    return 0;
  }

  const std::string app_flag = cli.get("app", "all");
  std::vector<App> apps;
  if (app_flag == "all") {
    apps = {App::kMm, App::kSor, App::kLu};
  } else if (app_flag == "mm") {
    apps = {App::kMm};
  } else if (app_flag == "sor") {
    apps = {App::kSor};
  } else if (app_flag == "lu") {
    apps = {App::kLu};
  } else {
    std::fprintf(stderr, "unknown --app=%s\n", app_flag.c_str());
    return 2;
  }

  const std::string log_flag = cli.get("log", "");
  if (!log_flag.empty() && !apply_log_flag(log_flag)) {
    std::fprintf(stderr,
                 "bad --log=%s (want LEVEL or component=LEVEL, comma-"
                 "separated; levels: trace debug info warn error off)\n",
                 log_flag.c_str());
    return 2;
  }

  const std::string fault_flag = cli.get("inject-fault", "");
  auto fault = InvariantSet::Fault::kNone;
  if (fault_flag == "skip-credit") {
    fault = InvariantSet::Fault::kSkipCredit;
  } else if (fault_flag == "wrong-round") {
    fault = InvariantSet::Fault::kWrongRound;
  } else if (!fault_flag.empty()) {
    std::fprintf(stderr, "unknown --inject-fault=%s\n", fault_flag.c_str());
    return 2;
  }

  nowlb::check::FaultPlan plan;
  plan.drop_rate = cli.get_double("drop-rate", 0.0);
  plan.dup_rate = cli.get_double("dup-rate", 0.0);
  plan.reorder_delay =
      static_cast<nowlb::sim::Time>(cli.get_int("reorder-us", 0)) *
      nowlb::sim::kMicrosecond;
  if (plan.drop_rate < 0 || plan.drop_rate >= 1 || plan.dup_rate < 0 ||
      plan.dup_rate >= 1 || plan.reorder_delay < 0) {
    std::fprintf(stderr, "fault rates must be in [0, 1), delays >= 0\n");
    return 2;
  }
  const std::string kill_flag = cli.get("kill-slave", "");
  if (!kill_flag.empty()) {
    const std::size_t at = kill_flag.find('@');
    try {
      plan.kill_rank = std::stoi(kill_flag.substr(0, at));
      if (at != std::string::npos) {
        plan.kill_round = std::stoi(kill_flag.substr(at + 1));
      }
    } catch (...) {
      plan.kill_rank = -1;
    }
    if (plan.kill_rank < 0 || plan.kill_round < 1) {
      std::fprintf(stderr, "--kill-slave expects RANK@ROUND (e.g. 1@3)\n");
      return 2;
    }
    if (app_flag != "mm") {
      std::fprintf(stderr,
                   "--kill-slave requires --app=mm (SOR/LU have no "
                   "crash-recovery path)\n");
      return 2;
    }
  }

  const long long seeds_int = cli.get_int("seeds", 50);
  if (seeds_int <= 0) {
    std::fprintf(stderr, "--seeds=%s must be a positive integer\n",
                 cli.get("seeds", "").c_str());
    return 2;
  }
  std::uint64_t base = static_cast<std::uint64_t>(cli.get_int("base", 1));
  std::uint64_t nseeds = static_cast<std::uint64_t>(seeds_int);
  if (cli.has("seed")) {
    base = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    nseeds = 1;
  }
  const bool verbose = cli.get_bool("verbose", nseeds == 1);

  // Flight recorder, shared across the sweep. Attaching it never perturbs
  // the simulation (identical trace hash), so --trace/--explain replay the
  // exact run they explain. File status goes to stderr: stdout stays
  // byte-identical with recording on or off.
  const std::string trace_path = cli.get("trace", "");
  const std::string metrics_path = cli.get("metrics", "");
  const bool explain = cli.get_bool("explain", false);
  const bool want_obs =
      !trace_path.empty() || !metrics_path.empty() || explain;
  nowlb::obs::Observability hub;
  nowlb::obs::Observability* obs = want_obs ? &hub : nullptr;

  int runs = 0;
  std::vector<FailureRecord> failed;
  for (std::uint64_t seed = base; seed < base + nseeds; ++seed) {
    for (App app : apps) {
      Scenario sc = nowlb::check::generate_scenario(seed, app);
      if (plan.any()) nowlb::check::apply_fault_plan(sc, plan);
      const std::size_t ledger_mark = hub.ledger.records().size();
      const FuzzResult res = nowlb::check::run_scenario(sc, fault, obs);
      ++runs;
      if (verbose) {
        std::printf("%s: %s (%.3fs virtual, trace %016llx)\n",
                    sc.describe().c_str(), res.ok ? "ok" : "FAIL",
                    res.elapsed_s,
                    static_cast<unsigned long long>(res.trace_hash));
      }
      if (explain) {
        const auto& recs = hub.ledger.records();
        std::printf("-- decision ledger: %s (%zu round(s)) --\n",
                    sc.describe().c_str(), recs.size() - ledger_mark);
        for (std::size_t i = ledger_mark; i < recs.size(); ++i) {
          std::printf(
              "%s\n",
              nowlb::obs::DecisionLedger::explain_line(recs[i]).c_str());
        }
      }
      if (res.ok) continue;

      std::printf("FAIL %s\n", sc.describe().c_str());
      print_failures(res);

      // Re-run the seed: the simulation is deterministic, so the replay
      // must reproduce the identical event trace and failure list.
      const FuzzResult replay = nowlb::check::run_scenario(sc, fault);
      const bool same = replay.trace_hash == res.trace_hash &&
                        replay.failures.size() == res.failures.size();
      if (same) {
        std::printf("  replay: deterministic (trace %016llx, %zu failure(s) "
                    "again)\n",
                    static_cast<unsigned long long>(replay.trace_hash),
                    replay.failures.size());
      } else {
        std::printf("  replay: NOT DETERMINISTIC (trace %016llx vs %016llx, "
                    "%zu vs %zu failures) — determinism bug\n",
                    static_cast<unsigned long long>(res.trace_hash),
                    static_cast<unsigned long long>(replay.trace_hash),
                    res.failures.size(), replay.failures.size());
      }
      std::printf("  repro: %s\n",
                  repro_command(sc, fault_flag, plan).c_str());
      failed.push_back({seed, app, same});
    }
  }

  if (!trace_path.empty()) {
    if (nowlb::obs::write_chrome_trace_file(trace_path, hub.trace)) {
      std::fprintf(stderr, "trace: wrote %zu event(s) to %s\n",
                   hub.trace.events().size(), trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (out) {
      out << hub.metrics.prometheus_text();
      std::fprintf(stderr, "metrics: wrote %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "metrics: failed to write %s\n",
                   metrics_path.c_str());
    }
  }

  if (failed.empty()) {
    std::printf("nowlb-fuzz: %d scenario(s) passed, 0 failed\n", runs);
    return 0;
  }
  std::printf("nowlb-fuzz: %d scenario(s), %zu FAILED:\n", runs,
              failed.size());
  for (const auto& f : failed) {
    std::printf("  --app=%s --seed=%llu%s\n", app_name(f.app),
                static_cast<unsigned long long>(f.seed),
                f.deterministic ? "" : "  [non-deterministic!]");
  }
  return 1;
}
