// nowlb-fuzz: deterministic simulation fuzzing for the load balancer.
//
// Runs N seeded scenarios per application with every invariant checker
// attached. Each failing seed is re-run to prove the failure is
// deterministic (identical event-trace hash and failure list), and a
// minimal repro command is printed.
//
//   nowlb-fuzz --seeds=200                 # seeds 1..200 x {mm, sor, lu}
//   nowlb-fuzz --app=sor --seed=1337       # replay one scenario, verbose
//   nowlb-fuzz --seeds=50 --inject-fault=skip-credit   # prove detection

#include <cstdio>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

using nowlb::check::App;
using nowlb::check::FuzzResult;
using nowlb::check::InvariantSet;
using nowlb::check::Scenario;

struct FailureRecord {
  std::uint64_t seed;
  App app;
  bool deterministic;
};

std::string repro_command(const Scenario& sc, const std::string& fault_flag) {
  std::string cmd = "nowlb-fuzz --app=" + std::string(app_name(sc.app)) +
                    " --seed=" + std::to_string(sc.seed);
  if (!fault_flag.empty()) cmd += " --inject-fault=" + fault_flag;
  return cmd;
}

void print_failures(const FuzzResult& res) {
  for (const auto& f : res.failures) {
    std::printf("    [%s] t=%.6fs: %s\n", f.checker.c_str(),
                nowlb::sim::to_seconds(f.at), f.message.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const nowlb::Cli cli(argc, argv);
  // A misspelled flag must not silently fall back to defaults: a fuzzer
  // that quietly runs the wrong scenario set reports green for nothing.
  static const char* kKnown[] = {"help",    "seeds",        "base", "seed",
                                 "app",     "inject-fault", "log",  "verbose"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const std::string name = arg.substr(2, arg.find('=') - 2);
    bool known = false;
    for (const char* k : kKnown) known = known || name == k;
    if (!known) {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      return 2;
    }
  }
  if (cli.has("help")) {
    std::printf(
        "usage: nowlb-fuzz [--seeds=N] [--base=B] [--seed=S]\n"
        "                  [--app=mm|sor|lu|all] [--inject-fault=skip-credit|"
        "wrong-round]\n"
        "                  [--verbose]\n");
    return 0;
  }

  const std::string app_flag = cli.get("app", "all");
  std::vector<App> apps;
  if (app_flag == "all") {
    apps = {App::kMm, App::kSor, App::kLu};
  } else if (app_flag == "mm") {
    apps = {App::kMm};
  } else if (app_flag == "sor") {
    apps = {App::kSor};
  } else if (app_flag == "lu") {
    apps = {App::kLu};
  } else {
    std::fprintf(stderr, "unknown --app=%s\n", app_flag.c_str());
    return 2;
  }

  const std::string log_flag = cli.get("log", "");
  if (log_flag == "debug") {
    nowlb::Log::set_level(nowlb::LogLevel::Debug);
  } else if (log_flag == "info") {
    nowlb::Log::set_level(nowlb::LogLevel::Info);
  }

  const std::string fault_flag = cli.get("inject-fault", "");
  auto fault = InvariantSet::Fault::kNone;
  if (fault_flag == "skip-credit") {
    fault = InvariantSet::Fault::kSkipCredit;
  } else if (fault_flag == "wrong-round") {
    fault = InvariantSet::Fault::kWrongRound;
  } else if (!fault_flag.empty()) {
    std::fprintf(stderr, "unknown --inject-fault=%s\n", fault_flag.c_str());
    return 2;
  }

  const long long seeds_int = cli.get_int("seeds", 50);
  if (seeds_int <= 0) {
    std::fprintf(stderr, "--seeds=%s must be a positive integer\n",
                 cli.get("seeds", "").c_str());
    return 2;
  }
  std::uint64_t base = static_cast<std::uint64_t>(cli.get_int("base", 1));
  std::uint64_t nseeds = static_cast<std::uint64_t>(seeds_int);
  if (cli.has("seed")) {
    base = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    nseeds = 1;
  }
  const bool verbose = cli.get_bool("verbose", nseeds == 1);

  int runs = 0;
  std::vector<FailureRecord> failed;
  for (std::uint64_t seed = base; seed < base + nseeds; ++seed) {
    for (App app : apps) {
      const Scenario sc = nowlb::check::generate_scenario(seed, app);
      const FuzzResult res = nowlb::check::run_scenario(sc, fault);
      ++runs;
      if (verbose) {
        std::printf("%s: %s (%.3fs virtual, trace %016llx)\n",
                    sc.describe().c_str(), res.ok ? "ok" : "FAIL",
                    res.elapsed_s,
                    static_cast<unsigned long long>(res.trace_hash));
      }
      if (res.ok) continue;

      std::printf("FAIL %s\n", sc.describe().c_str());
      print_failures(res);

      // Re-run the seed: the simulation is deterministic, so the replay
      // must reproduce the identical event trace and failure list.
      const FuzzResult replay = nowlb::check::run_scenario(sc, fault);
      const bool same = replay.trace_hash == res.trace_hash &&
                        replay.failures.size() == res.failures.size();
      if (same) {
        std::printf("  replay: deterministic (trace %016llx, %zu failure(s) "
                    "again)\n",
                    static_cast<unsigned long long>(replay.trace_hash),
                    replay.failures.size());
      } else {
        std::printf("  replay: NOT DETERMINISTIC (trace %016llx vs %016llx, "
                    "%zu vs %zu failures) — determinism bug\n",
                    static_cast<unsigned long long>(res.trace_hash),
                    static_cast<unsigned long long>(replay.trace_hash),
                    res.failures.size(), replay.failures.size());
      }
      std::printf("  repro: %s\n", repro_command(sc, fault_flag).c_str());
      failed.push_back({seed, app, same});
    }
  }

  if (failed.empty()) {
    std::printf("nowlb-fuzz: %d scenario(s) passed, 0 failed\n", runs);
    return 0;
  }
  std::printf("nowlb-fuzz: %d scenario(s), %zu FAILED:\n", runs,
              failed.size());
  for (const auto& f : failed) {
    std::printf("  --app=%s --seed=%llu%s\n", app_name(f.app),
                static_cast<unsigned long long>(f.seed),
                f.deterministic ? "" : "  [non-deterministic!]");
  }
  return 1;
}
