#include "check/scenario.hpp"

#include <algorithm>
#include <utility>

#include "check/checkers.hpp"
#include "data/ownership.hpp"
#include "lb/cluster.hpp"
#include "load/generators.hpp"
#include "obs/attach.hpp"
#include "obs/obs.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace nowlb::check {

using sim::Time;
using sim::to_seconds;

const char* app_name(App app) {
  switch (app) {
    case App::kMm:
      return "mm";
    case App::kSor:
      return "sor";
    case App::kLu:
      return "lu";
  }
  return "?";
}

std::string Scenario::describe() const {
  std::string s = std::string(app_name(app)) + " seed=" +
                  std::to_string(seed) + " slaves=" + std::to_string(slaves);
  switch (app) {
    case App::kMm:
      s += " n=" + std::to_string(mm.n) + " repeats=" +
           std::to_string(mm.repeats);
      break;
    case App::kSor:
      s += " n=" + std::to_string(sor.n) + " sweeps=" +
           std::to_string(sor.sweeps);
      break;
    case App::kLu:
      s += " n=" + std::to_string(lu.n);
      break;
  }
  s += " pipelined=" + std::to_string(lb.pipelined ? 1 : 0) +
       " period_ms=" + std::to_string(lb.min_period / sim::kMillisecond) +
       " latency_us=" + std::to_string(world.net.latency / sim::kMicrosecond);
  s += " loads=";
  for (int k : loads) s += std::to_string(k);
  if (faults.any()) {
    s += " faults[drop=" + std::to_string(faults.drop_rate) +
         " dup=" + std::to_string(faults.dup_rate) +
         " reorder_us=" +
         std::to_string(faults.reorder_delay / sim::kMicrosecond);
    if (faults.kill_rank >= 0) {
      s += " kill=" + std::to_string(faults.kill_rank) + "@r" +
           std::to_string(faults.kill_round);
    }
    s += "]";
  }
  return s;
}

Scenario generate_scenario(std::uint64_t seed, App app) {
  // Salt by app so mm/sor/lu scenarios for the same seed differ.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(app));

  Scenario sc;
  sc.seed = seed;
  sc.app = app;
  sc.slaves = 1 + static_cast<int>(rng.below(6));

  // ---- simulated world: host scheduler and network costs ----
  static constexpr Time kQuanta[] = {5 * sim::kMillisecond,
                                     10 * sim::kMillisecond,
                                     20 * sim::kMillisecond,
                                     50 * sim::kMillisecond};
  sc.world.host.quantum = kQuanta[rng.below(4)];
  sc.world.host.context_switch = 10 * sim::kMicrosecond;
  sc.world.net.latency =
      static_cast<Time>(rng.uniform(20.0, 2000.0)) * sim::kMicrosecond;
  sc.world.net.local_latency =
      static_cast<Time>(rng.uniform(5.0, 20.0)) * sim::kMicrosecond;
  sc.world.net.bandwidth_bps = rng.uniform(10e6, 100e6);
  sc.world.msg.send_overhead =
      static_cast<Time>(rng.uniform(50.0, 300.0)) * sim::kMicrosecond;
  sc.world.msg.recv_overhead =
      static_cast<Time>(rng.uniform(50.0, 300.0)) * sim::kMicrosecond;
  sc.world.seed = rng.next_u64();

  // ---- balancer configuration ----
  sc.lb.min_period =
      static_cast<Time>(rng.uniform(50.0, 600.0)) * sim::kMillisecond;
  sc.lb.quantum = sc.world.host.quantum;
  sc.lb.improvement_threshold = rng.uniform(0.05, 0.30);
  sc.lb.filtering = rng.below(2) == 0;
  sc.lb.profitability_check = rng.below(2) == 0;
  sc.lb.initial_interaction_cost =
      static_cast<Time>(rng.uniform(0.5, 4.0)) * sim::kMillisecond;
  sc.lb.initial_move_cost =
      static_cast<Time>(rng.uniform(0.5, 4.0)) * sim::kMillisecond;
  // SOR's ghost pipeline and LU's done-flag polling both require pipelined
  // interactions; MM exercises the synchronous (Fig. 2a) path too.
  sc.lb.pipelined = app == App::kMm ? rng.below(2) == 0 : true;

  // ---- application (small sizes: the fuzzer runs hundreds of seeds) ----
  double seq_s = 0;
  switch (app) {
    case App::kMm:
      sc.mm.n = 16 + static_cast<int>(rng.below(33));
      sc.mm.repeats = 1 + static_cast<int>(rng.below(3));
      sc.mm.real_compute = true;
      sc.mm.seed = rng.next_u64();
      seq_s = mm_seq_time_s(sc.mm);
      break;
    case App::kSor:
      sc.sor.n = 16 + static_cast<int>(rng.below(25));
      sc.sor.sweeps = 2 + static_cast<int>(rng.below(3));
      sc.sor.real_compute = true;
      sc.sor.block_rows =
          rng.below(2) == 0 ? 0 : 2 + static_cast<int>(rng.below(7));
      sc.sor.seed = rng.next_u64();
      seq_s = sor_seq_time_s(sc.sor);
      break;
    case App::kLu:
      sc.lu.n = 16 + static_cast<int>(rng.below(33));
      sc.lu.real_compute = true;
      sc.lu.seed = rng.next_u64();
      seq_s = lu_seq_time_s(sc.lu);
      break;
  }

  // ---- competing loads on random ranks ----
  sc.loads.assign(sc.slaves, 0);
  const int nloads = static_cast<int>(rng.below(sc.slaves + 1));
  sc.load_period =
      static_cast<Time>(rng.uniform(1.0, 10.0)) * sim::kSecond;
  for (int i = 0; i < nloads; ++i) {
    sc.loads[rng.below(sc.slaves)] = 1 + static_cast<int>(rng.below(4));
  }

  // A competing load can halve a rank's rate and a 1-slave run has no one
  // to shed work to; 20x sequential plus a fixed margin is far beyond any
  // legitimate completion time, so tripping it means livelock/deadlock.
  sc.time_bound = sim::from_seconds(20.0 * seq_s + 60.0);
  return sc;
}

void apply_fault_plan(Scenario& sc, const FaultPlan& plan) {
  if (!plan.any()) return;  // an empty plan perturbs nothing, not even the
                            // transport: faults off stays bit-identical
  sc.faults = plan;
  if (sc.faults.kill_rank >= 0 && sc.app != App::kMm) sc.faults.kill_rank = -1;

  // Lossy network, confined to the lb protocol tags: the runtime's
  // report/instruction/movement traffic (and its acks) rides the reliable
  // transport, while the applications' data plane (ghost exchanges, pivot
  // broadcasts) has no retransmit layer and must stay lossless.
  sc.world.net.drop_prob = sc.faults.drop_rate;
  sc.world.net.dup_prob = sc.faults.dup_rate;
  sc.world.net.max_extra_delay = sc.faults.reorder_delay;
  sc.world.net.fault_seed = sc.world.seed ^ 0xfa01753cd15ab1eull;
  sc.world.net.fault_tag_lo = lb::kTagReport;
  sc.world.net.fault_tag_hi = lb::kTagAck;
  sc.lb.transport.enabled = true;

  if (sc.faults.kill_rank >= 0) {
    // A crash needs a survivor to adopt the orphans.
    if (sc.slaves < 2) sc.slaves = 2;
    sc.loads.resize(static_cast<std::size_t>(sc.slaves), 0);
    sc.faults.kill_rank %= sc.slaves;
    if (sc.faults.kill_round < 1) sc.faults.kill_round = 1;
    // Heartbeat regime: generously above the report period so a slow but
    // live rank is never falsely evicted, yet far below the watchdog.
    sc.lb.heartbeat_timeout = 20 * sc.lb.min_period + 10 * sim::kSecond;
    sc.time_bound += 3 * sc.lb.heartbeat_timeout + 30 * sim::kSecond;
  }
}

namespace {

void attach_loads(lb::Cluster& cluster, const Scenario& sc) {
  for (int r = 0; r < sc.slaves; ++r) {
    switch (sc.loads[r]) {
      case 0:
        break;
      case 1:
        cluster.add_load(r, load::constant());
        break;
      case 2:
        cluster.add_load(r, load::oscillating(sc.load_period,
                                              sc.load_period / 2));
        break;
      case 3:
        cluster.add_load(r, load::ramp(sc.load_period));
        break;
      case 4:
        cluster.add_load(r, load::random_bursts(
                                 sc.load_period / 20, sc.load_period / 4,
                                 sc.load_period / 20, sc.load_period / 3));
        break;
    }
  }
}

}  // namespace

FuzzResult run_scenario(const Scenario& sc, InvariantSet::Fault fault,
                        obs::Observability* obs) {
  sim::World world(sc.world);
  // Attach before the cluster is built: the master/slave/transport
  // emitters bind to the hub at construction.
  obs::attach(world, obs);

  InvariantSet set;
  set.bind_clock(&world.engine());
  set.inject_fault(fault);
  if (obs != nullptr) {
    set.add(std::make_unique<LedgerChecker>(&obs->ledger));
  }
  const bool restricted = sc.app == App::kSor;
  const int lag =
      sc.app == App::kLu ? 0 : (sc.lb.pipelined ? 1 : 0);
  int expected_slices = 0;
  switch (sc.app) {
    case App::kMm:
      expected_slices = sc.mm.n;
      break;
    case App::kSor:
      expected_slices = sc.sor.n - 2;
      break;
    case App::kLu:
      expected_slices = sc.lu.n;
      break;
  }
  add_standard_checkers(set, sc.slaves, lag, restricted, expected_slices);
  data::SliceLedgerScope ledger_scope(&set);

  lb::LbConfig lbcfg = sc.lb;
  lbcfg.check = &set;

  std::shared_ptr<apps::MmShared> mm;
  std::shared_ptr<apps::SorShared> sor;
  std::shared_ptr<apps::LuShared> lu;
  // Sequential-oracle reference, computed from a pre-run input copy (the
  // parallel run mutates the shared state in place).
  std::vector<std::vector<double>> reference;

  // Build the cluster (the config helpers force the app's movement mode).
  lb::ClusterConfig ccfg;
  switch (sc.app) {
    case App::kMm:
      mm = std::make_shared<apps::MmShared>();
      apps::mm_make_inputs(sc.mm, *mm);
      ccfg = apps::mm_cluster_config(sc.mm, sc.slaves, lbcfg);
      break;
    case App::kSor:
      sor = std::make_shared<apps::SorShared>();
      apps::sor_make_inputs(sc.sor, *sor);
      reference = sor->grid;
      apps::sor_sequential(sc.sor, reference);
      ccfg = apps::sor_cluster_config(sc.sor, sc.slaves, lbcfg);
      break;
    case App::kLu:
      lu = std::make_shared<apps::LuShared>();
      apps::lu_make_inputs(sc.lu, *lu);
      reference = lu->a;
      apps::lu_sequential(sc.lu, reference);
      ccfg = apps::lu_cluster_config(sc.lu, sc.slaves, lbcfg);
      break;
  }

  lb::Cluster cluster(world, ccfg);
  switch (sc.app) {
    case App::kMm:
      apps::mm_build(cluster, sc.mm, mm);
      break;
    case App::kSor:
      apps::sor_build(cluster, sc.sor, sor);
      break;
    case App::kLu:
      apps::lu_build(cluster, sc.lu, lu);
      break;
  }
  attach_loads(cluster, sc);

  // Crash-fault injection: kill the victim once the master has completed
  // the trigger round's collection (pids exist only after spawn).
  if (sc.faults.kill_rank >= 0) {
    set.add(std::make_unique<CrashInjector>(
        world, cluster.slave_pid(sc.faults.kill_rank), sc.faults.kill_round));
  }

  // Watchdog: a correct run always finishes well before the bound; firing
  // it leaves essential processes outstanding, reported below.
  world.engine().schedule_at(sc.time_bound, [&world] { world.engine().stop(); });

  world.run();

  const Time end = world.now();
  const bool terminated = world.essential_remaining() == 0;
  if (!terminated) {
    std::string stuck;
    for (sim::Pid p = 0; p < static_cast<sim::Pid>(world.process_count());
         ++p) {
      const sim::Process& proc = world.process(p);
      if (proc.essential() && !proc.finished()) {
        if (!stuck.empty()) stuck += ", ";
        stuck += proc.name();
      }
    }
    const std::vector<std::string>* probes = nullptr;
    if (sor) probes = &sor->probe;
    if (lu) probes = &lu->probe;
    if (probes != nullptr) {
      stuck += " | probes:";
      for (int r = 0; r < sc.slaves; ++r) {
        stuck += " [" + std::to_string(r) + "] " + (*probes)[r];
      }
    }
    set.record({"termination",
                std::to_string(world.essential_remaining()) +
                    " essential process(es) still running at the " +
                    std::to_string(to_seconds(sc.time_bound)) +
                    "s time bound: " + stuck,
                end});
  }
  set.on_run_end(end);
  if (terminated) {
    // Numerical oracle: the parallel kernels preserve the sequential FP
    // evaluation order, so the comparison is bit-exact.
    switch (sc.app) {
      case App::kMm: {
        if (mm->c != apps::mm_sequential(sc.mm, *mm)) {
          set.record({"oracle", "MM result differs from sequential", end});
        }
        for (std::size_t j = 0; j < mm->compute_count_per_column.size();
             ++j) {
          if (mm->compute_count_per_column[j] != sc.mm.repeats) {
            set.record(
                {"oracle",
                 "column " + std::to_string(j) + " computed " +
                     std::to_string(mm->compute_count_per_column[j]) +
                     " times, expected " + std::to_string(sc.mm.repeats),
                 end});
            break;
          }
        }
        break;
      }
      case App::kSor:
        if (sor->grid != reference) {
          set.record({"oracle", "SOR grid differs from sequential", end});
        }
        break;
      case App::kLu:
        if (lu->a != reference) {
          set.record({"oracle", "LU factors differ from sequential", end});
        }
        break;
    }
  }

  FuzzResult res;
  res.ok = set.ok();
  res.failures = set.failures();
  res.elapsed_s = to_seconds(end);
  res.trace_hash = world.engine().trace_hash();
  return res;
}

}  // namespace nowlb::check
