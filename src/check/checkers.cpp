#include "check/checkers.hpp"

#include <cstdlib>
#include <numeric>
#include <string>

#include "obs/ledger.hpp"
#include "sim/world.hpp"

namespace nowlb::check {

namespace {
std::string edge(int from, int to) {
  return std::to_string(from) + "->" + std::to_string(to);
}
}  // namespace

// ------------------------------------------------- WorkConservationChecker

void WorkConservationChecker::on_master_decision(
    sim::Time t, const lb::Decision& d, const std::vector<int>& remaining) {
  const int total = std::accumulate(remaining.begin(), remaining.end(), 0);
  const int target_total =
      std::accumulate(d.target.begin(), d.target.end(), 0);
  if (target_total != total) {
    fail(t, "plan redistributes " + std::to_string(target_total) +
                " units of " + std::to_string(total));
  }
  for (std::size_t r = 0; r < d.target.size(); ++r) {
    if (d.target[r] < 0) {
      fail(t, "negative target " + std::to_string(d.target[r]) + " for rank " +
                  std::to_string(r));
    }
  }
  for (const lb::Transfer& tr : d.transfers) {
    if (tr.count <= 0 || tr.from_rank == tr.to_rank) {
      fail(t, "degenerate transfer " + edge(tr.from_rank, tr.to_rank) +
                  " count=" + std::to_string(tr.count));
    }
  }
}

void WorkConservationChecker::on_slave_report(sim::Time t, int rank,
                                              const lb::StatusReport& rep) {
  if (rep.units_done < 0 || rep.elapsed_s < 0 || rep.remaining < 0 ||
      rep.lb_blocked_s < 0 || rep.move_time_s < 0 || rep.moved_units < 0) {
    fail(t, "rank " + std::to_string(rank) + " report r" +
                std::to_string(rep.round) + " has a negative field");
  }
}

void WorkConservationChecker::on_units_packed(sim::Time t, int from_rank,
                                              int to_rank, int ordered,
                                              int actual) {
  if (actual < 0 || actual > ordered) {
    fail(t, "pack " + edge(from_rank, to_rank) + " shipped " +
                std::to_string(actual) + " of ordered " +
                std::to_string(ordered));
  }
  in_flight_[{from_rank, to_rank}].push_back(actual);
}

void WorkConservationChecker::on_units_unpacked(sim::Time t, int rank,
                                                int from_rank, int ordered,
                                                int actual) {
  if (actual > ordered) {
    fail(t, "unpack " + edge(from_rank, rank) + " yielded " +
                std::to_string(actual) + " of ordered " +
                std::to_string(ordered));
  }
  auto& fifo = in_flight_[{from_rank, rank}];
  if (fifo.empty()) {
    fail(t, "unpack " + edge(from_rank, rank) + " of " +
                std::to_string(actual) + " units with no matching pack");
    return;
  }
  if (fifo.front() != actual) {
    fail(t, "transfer " + edge(from_rank, rank) + " packed " +
                std::to_string(fifo.front()) + " units but unpacked " +
                std::to_string(actual));
  }
  fifo.erase(fifo.begin());
}

void WorkConservationChecker::on_rank_evicted(sim::Time, int rank, sim::Pid) {
  dead_.insert(rank);
}

void WorkConservationChecker::on_run_end(sim::Time t) {
  for (const auto& [key, fifo] : in_flight_) {
    if (fifo.empty()) continue;
    // A transfer to or from an evicted rank legitimately dies on the wire;
    // its units re-enter via the orphan census (checked by EvictionChecker
    // and the ownership coverage check), not via unpack.
    if (dead_.count(key.first) != 0 || dead_.count(key.second) != 0) continue;
    const int lost = std::accumulate(fifo.begin(), fifo.end(), 0);
    fail(t, std::to_string(lost) + " units in " + std::to_string(fifo.size()) +
                " transfer(s) " + edge(key.first, key.second) +
                " never delivered");
  }
}

// ------------------------------------------------------ ContiguityChecker

void ContiguityChecker::on_master_decision(sim::Time t, const lb::Decision& d,
                                           const std::vector<int>&) {
  for (const lb::Transfer& tr : d.transfers) {
    if (std::abs(tr.from_rank - tr.to_rank) != 1) {
      fail(t, "non-adjacent transfer " + edge(tr.from_rank, tr.to_rank) +
                  " in restricted mode");
    }
  }
}

void ContiguityChecker::on_units_packed(sim::Time t, int from_rank, int, int,
                                        int) {
  check_contiguous(t, from_rank, "after pack");
}

void ContiguityChecker::on_units_unpacked(sim::Time t, int rank, int, int,
                                          int) {
  check_contiguous(t, rank, "after unpack");
}

void ContiguityChecker::on_slice_added(sim::Time, int rank,
                                       data::SliceId id) {
  if (rank >= 0 && rank < static_cast<int>(sets_.size())) {
    sets_[rank].insert(id);
  }
}

void ContiguityChecker::on_slice_removed(sim::Time, int rank,
                                         data::SliceId id) {
  if (rank >= 0 && rank < static_cast<int>(sets_.size())) {
    sets_[rank].erase(id);
  }
}

void ContiguityChecker::on_run_end(sim::Time t) {
  int prev_rank = -1;
  data::SliceId prev_max = 0;
  for (int r = 0; r < static_cast<int>(sets_.size()); ++r) {
    check_contiguous(t, r, "at run end");
    if (sets_[r].empty()) continue;
    if (prev_rank >= 0 && *sets_[r].begin() <= prev_max) {
      fail(t, "blocks out of rank order: rank " + std::to_string(prev_rank) +
                  " holds up to " + std::to_string(prev_max) + ", rank " +
                  std::to_string(r) + " starts at " +
                  std::to_string(*sets_[r].begin()));
    }
    prev_rank = r;
    prev_max = *sets_[r].rbegin();
  }
}

void ContiguityChecker::check_contiguous(sim::Time t, int rank,
                                         const char* when) {
  const auto& s = sets_[rank];
  if (s.empty()) return;
  const auto span = *s.rbegin() - *s.begin() + 1;
  if (span != static_cast<data::SliceId>(s.size())) {
    fail(t, "rank " + std::to_string(rank) + " block non-contiguous " + when +
                ": " + std::to_string(s.size()) + " slices span [" +
                std::to_string(*s.begin()) + ", " +
                std::to_string(*s.rbegin()) + "]");
  }
}

// ----------------------------------------------------- PipelineLagChecker

void PipelineLagChecker::on_master_reports(
    sim::Time t, int round, const std::vector<lb::StatusReport>& reports,
    const std::vector<bool>& mask) {
  if (round != last_collected_ + 1) {
    fail(t, "collected round " + std::to_string(round) + " after round " +
                std::to_string(last_collected_));
  }
  for (std::size_t r = 0; r < reports.size(); ++r) {
    if (mask[r] && reports[r].round != round) {
      fail(t, "rank " + std::to_string(r) + " report labelled round " +
                  std::to_string(reports[r].round) + " in collection " +
                  std::to_string(round));
    }
  }
  last_collected_ = round;
}

void PipelineLagChecker::on_master_instructions(sim::Time t, int rank,
                                                const lb::Instructions& ins) {
  if (ins.round != last_collected_ + lag_) {
    fail(t, "instructions for rank " + std::to_string(rank) + " carry round " +
                std::to_string(ins.round) + "; expected " +
                std::to_string(last_collected_ + lag_) + " (last collection " +
                std::to_string(last_collected_) + " + lag " +
                std::to_string(lag_) + ")");
  }
}

void PipelineLagChecker::on_slave_report(sim::Time t, int rank,
                                         const lb::StatusReport& rep) {
  const int prev = last_report_[rank];
  if (rep.round != prev + 1) {
    fail(t, "rank " + std::to_string(rank) + " reported round " +
                std::to_string(rep.round) + " after round " +
                std::to_string(prev));
  }
  last_report_[rank] = rep.round;
}

void PipelineLagChecker::on_slave_instructions(sim::Time t, int rank,
                                               const lb::Instructions& ins) {
  const int reported = last_report_[rank];
  // A pre-sent pipelined instruction may run one round ahead of the
  // slave's last report; anything else is stale or from the future.
  if (ins.round != reported && ins.round != reported + 1) {
    fail(t, "rank " + std::to_string(rank) + " applied instructions for round " +
                std::to_string(ins.round) + " at report round " +
                std::to_string(reported));
  }
}

// -------------------------------------------------- SliceOwnershipChecker

void SliceOwnershipChecker::on_slice_added(sim::Time t, int rank,
                                           data::SliceId id) {
  const auto [it, inserted] = owner_.emplace(id, rank);
  if (!inserted) {
    // Re-adding a dead rank's slice is adoption: the orphan is
    // reconstructed by its recovery assignee and ownership transfers.
    if (dead_.count(it->second) == 0) {
      fail(t, "slice " + std::to_string(id) + " added to rank " +
                  std::to_string(rank) + " while owned by rank " +
                  std::to_string(it->second));
    }
    it->second = rank;
  }
  in_flight_.erase(id);
}

void SliceOwnershipChecker::on_slice_removed(sim::Time t, int rank,
                                             data::SliceId id) {
  const auto it = owner_.find(id);
  if (it == owner_.end()) {
    fail(t, "slice " + std::to_string(id) + " removed from rank " +
                std::to_string(rank) + " but owned by no one");
    return;
  }
  if (it->second != rank) {
    fail(t, "slice " + std::to_string(id) + " removed from rank " +
                std::to_string(rank) + " but owned by rank " +
                std::to_string(it->second));
  }
  owner_.erase(it);
  in_flight_.insert(id);
}

void SliceOwnershipChecker::on_rank_evicted(sim::Time, int rank, sim::Pid) {
  dead_.insert(rank);
}

void SliceOwnershipChecker::on_run_end(sim::Time t) {
  if (!in_flight_.empty()) {
    fail(t, std::to_string(in_flight_.size()) +
                " slice(s) still in flight at run end (first: " +
                std::to_string(*in_flight_.begin()) + ")");
  }
  if (expected_total_ >= 0 &&
      static_cast<int>(owner_.size()) != expected_total_) {
    fail(t, "expected " + std::to_string(expected_total_) +
                " owned slices at run end, found " +
                std::to_string(owner_.size()));
  }
}

// --------------------------------------------------------- EvictionChecker

void EvictionChecker::on_rank_evicted(sim::Time t, int rank, sim::Pid) {
  if (!dead_.insert(rank).second) {
    fail(t, "rank " + std::to_string(rank) + " evicted twice");
  }
}

void EvictionChecker::on_orphans_assigned(sim::Time t, int rank,
                                          const std::vector<int>& ids) {
  if (dead_.count(rank) != 0) {
    fail(t, "orphans assigned to evicted rank " + std::to_string(rank));
  }
  for (int id : ids) {
    const auto it = pending_.find(id);
    if (it != pending_.end() && dead_.count(it->second) == 0) {
      fail(t, "orphan " + std::to_string(id) + " assigned to rank " +
                  std::to_string(rank) + " while still assigned to live rank " +
                  std::to_string(it->second));
    }
    pending_[id] = rank;
  }
}

void EvictionChecker::on_adopted(sim::Time t, int rank,
                                 const std::vector<int>& ids) {
  for (int id : ids) {
    const auto it = pending_.find(id);
    if (it == pending_.end()) {
      fail(t, "rank " + std::to_string(rank) + " adopted unit " +
                  std::to_string(id) + " it was never assigned");
      continue;
    }
    if (it->second != rank) {
      fail(t, "unit " + std::to_string(id) + " adopted by rank " +
                  std::to_string(rank) + " but assigned to rank " +
                  std::to_string(it->second));
    }
    pending_.erase(it);
    ++adopted_total_;
  }
}

void EvictionChecker::on_run_end(sim::Time t) {
  if (!pending_.empty()) {
    fail(t, std::to_string(pending_.size()) +
                " orphan(s) assigned but never adopted (first: unit " +
                std::to_string(pending_.begin()->first) + " -> rank " +
                std::to_string(pending_.begin()->second) + ")");
  }
}

// -------------------------------------------------------- TransportChecker

void TransportChecker::on_transport_deliver(sim::Time t, sim::Pid src,
                                            sim::Pid dst, int tag,
                                            std::uint32_t seq) {
  auto& next = next_seq_[{src, dst, tag}];
  if (seq != next) {
    fail(t, "channel " + std::to_string(src) + "->" + std::to_string(dst) +
                " tag " + std::to_string(tag) + " delivered seq " +
                std::to_string(seq) + ", expected " + std::to_string(next));
  }
  next = seq + 1;
}

void TransportChecker::on_transport_gave_up(sim::Time, sim::Pid, sim::Pid,
                                            int) {
  ++gave_ups_;
}

// ---------------------------------------------------------- LedgerChecker

LedgerChecker::LedgerChecker(const obs::DecisionLedger* ledger)
    : ledger_(ledger), start_(ledger->records().size()) {}

void LedgerChecker::on_master_reports(sim::Time, int,
                                      const std::vector<lb::StatusReport>&,
                                      const std::vector<bool>&) {
  ++collections_;
}

void LedgerChecker::on_run_end(sim::Time t) {
  const auto& recs = ledger_->records();
  const std::size_t n = recs.size() - start_;
  if (n != collections_) {
    fail(t, "ledger holds " + std::to_string(n) + " record(s) for " +
                std::to_string(collections_) + " report collection(s)");
  }
  for (std::size_t i = start_; i < recs.size(); ++i) {
    const obs::DecisionRecord& rec = recs[i];
    const std::string where = "round " + std::to_string(rec.round) + " (" +
                              obs::gate_name(rec.gate) + ")";
    const std::size_t ranks = rec.remaining.size();
    if (rec.target.size() != ranks) {
      fail(rec.t, where + ": target has " + std::to_string(rec.target.size()) +
                      " rank(s), remaining has " + std::to_string(ranks));
      continue;
    }
    if (rec.gate != obs::Gate::kMove) {
      if (!rec.moves.empty()) {
        fail(rec.t, where + " ordered " + std::to_string(rec.moves.size()) +
                        " move(s); only a move gate may order movement");
      }
      if (rec.target != rec.remaining) {
        fail(rec.t, where + " changed the assignment without moving");
      }
      continue;
    }
    // Moved round: the ordered transfers must account exactly for the
    // per-rank difference between the new target and the reported state.
    std::vector<long> delta(ranks, 0);
    for (const obs::Move& m : rec.moves) {
      if (m.from < 0 || m.to < 0 || m.from >= static_cast<int>(ranks) ||
          m.to >= static_cast<int>(ranks) || m.from == m.to || m.count <= 0) {
        fail(rec.t, where + " ordered a malformed move " + edge(m.from, m.to) +
                        " x" + std::to_string(m.count));
        continue;
      }
      delta[static_cast<std::size_t>(m.from)] -= m.count;
      delta[static_cast<std::size_t>(m.to)] += m.count;
    }
    for (std::size_t r = 0; r < ranks; ++r) {
      if (rec.target[r] - rec.remaining[r] != delta[r]) {
        fail(rec.t, where + " rank " + std::to_string(r) + ": target " +
                        std::to_string(rec.target[r]) + " - remaining " +
                        std::to_string(rec.remaining[r]) +
                        " != ordered flow " + std::to_string(delta[r]));
      }
    }
  }
}

// ---------------------------------------------------------- CrashInjector

void CrashInjector::on_master_reports(sim::Time, int round,
                                      const std::vector<lb::StatusReport>&,
                                      const std::vector<bool>&) {
  if (fired_ || round < trigger_round_) return;
  fired_ = true;
  world_.kill(victim_);
}

// ------------------------------------------------------------------ wiring

void add_standard_checkers(InvariantSet& set, int nslaves, int lag,
                           bool restricted, int expected_slices) {
  set.add(std::make_unique<WorkConservationChecker>());
  set.add(std::make_unique<PipelineLagChecker>(lag));
  set.add(std::make_unique<SliceOwnershipChecker>(expected_slices));
  set.add(std::make_unique<EvictionChecker>());
  set.add(std::make_unique<TransportChecker>());
  if (restricted) set.add(std::make_unique<ContiguityChecker>(nslaves));
}

}  // namespace nowlb::check
