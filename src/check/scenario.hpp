// Seeded scenario generation and execution for the simulation fuzzer.
//
// One seed deterministically fixes everything about a run — slave count,
// problem size, heterogeneous message costs, competing-load placement,
// balancing configuration, termination mode — so any failure is replayed
// exactly by re-running the seed. run_scenario() executes the scenario
// with the full invariant complement attached plus a watchdog time bound,
// then cross-checks the numerical result against the sequential oracle.
#pragma once

#include <cstdint>
#include <string>

#include "apps/lu.hpp"
#include "apps/mm.hpp"
#include "apps/sor.hpp"
#include "check/invariant.hpp"
#include "sim/config.hpp"

namespace nowlb::obs {
struct Observability;
}

namespace nowlb::check {

enum class App { kMm, kSor, kLu };

const char* app_name(App app);

/// Fault-injection plan layered onto a generated scenario. All fields
/// default to off, and generate_scenario() draws nothing for it, so
/// fault-free seeds are bit-identical with or without this feature.
struct FaultPlan {
  double drop_rate = 0;         // network drop probability
  double dup_rate = 0;          // network duplication probability
  sim::Time reorder_delay = 0;  // max extra per-message delay (reordering)
  int kill_rank = -1;           // slave to crash-fault (-1: none)
  int kill_round = 3;           // master collection round to crash at

  bool any() const {
    return drop_rate > 0 || dup_rate > 0 || reorder_delay > 0 ||
           kill_rank >= 0;
  }
};

/// Everything a run needs, derived deterministically from (seed, app).
struct Scenario {
  std::uint64_t seed = 0;
  App app = App::kMm;

  int slaves = 1;
  sim::WorldConfig world;
  lb::LbConfig lb;
  apps::MmConfig mm;
  apps::SorConfig sor;
  apps::LuConfig lu;

  /// Competing-load generator per rank: 0 none, 1 constant, 2 oscillating,
  /// 3 ramp, 4 random bursts.
  std::vector<int> loads;
  /// Oscillating-load period (also scales ramp/burst durations).
  sim::Time load_period = 0;

  /// Watchdog: the run must terminate within this much virtual time.
  sim::Time time_bound = 0;

  /// Active fault plan (off unless apply_fault_plan was called).
  FaultPlan faults;

  /// One-line human-readable summary for failure output.
  std::string describe() const;
};

Scenario generate_scenario(std::uint64_t seed, App app);

/// Layer a fault plan onto a generated scenario: arms the lossy network on
/// the lb protocol tags, enables the reliable transport, and — for a kill
/// plan — enables the heartbeat regime, guarantees a survivor rank, and
/// widens the watchdog bound to absorb detection and recovery time.
/// Crash faults are only supported for MM (SOR's ghost chain and LU's
/// pivot broadcast have no recovery path); a kill plan on another app is
/// dropped, keeping the message-level faults.
void apply_fault_plan(Scenario& sc, const FaultPlan& plan);

struct FuzzResult {
  bool ok = true;
  std::vector<Failure> failures;
  double elapsed_s = 0;          // virtual time at run end
  std::uint64_t trace_hash = 0;  // engine event-trace hash (determinism)
};

/// Execute the scenario under all applicable checkers. `fault` corrupts
/// the observation stream (never the simulated system) to exercise the
/// failure path. With `obs` set, the flight recorder is attached to the
/// run (traces, metrics, decision ledger) and a LedgerChecker cross-checks
/// the ledger arithmetic against the invariant bus; recording never
/// perturbs the simulation, so the trace hash is identical either way.
FuzzResult run_scenario(const Scenario& sc,
                        InvariantSet::Fault fault = InvariantSet::Fault::kNone,
                        obs::Observability* obs = nullptr);

}  // namespace nowlb::check
