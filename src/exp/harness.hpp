// Experiment harness: runs the paper's measurement scenarios and computes
// its metrics (§5.1).
//
//   speedup    = T_sequential / T_elapsed
//   efficiency = T_sequential / sum_over_slaves(T_elapsed - T_competing)
//
// where T_competing is the CPU time consumed by competing tasks on each
// slave's workstation (the paper's getrusage measurement; exact here).
// The sequential time is the calibrated cost model's single-processor
// execution time.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/lu.hpp"
#include "apps/mm.hpp"
#include "apps/sor.hpp"
#include "lb/cluster.hpp"
#include "obs/obs.hpp"
#include "sim/world.hpp"
#include "util/stats.hpp"

namespace nowlb::exp {

/// A competing load to attach to one slave's host.
struct LoadSpec {
  int rank = 0;
  std::function<sim::ProcessBody()> make;
};

/// One measured run.
struct Measurement {
  double elapsed_s = 0;     // application completion (wall, virtual)
  double seq_s = 0;         // sequential execution time
  double speedup = 0;       // seq / elapsed
  double efficiency = 0;    // paper's resource-usage efficiency
  double competing_cpu_s = 0;  // total competing CPU during the run
  lb::MasterStats stats;
  /// Engine determinism fingerprint and event count for the run — the
  /// perf/determinism suites assert these are bit-identical across
  /// repeats and across host-side optimizations.
  std::uint64_t trace_hash = 0;
  std::uint64_t dispatched_events = 0;
};

struct ExperimentConfig {
  int slaves = 4;
  lb::LbConfig lb;
  sim::WorldConfig world;
  std::vector<LoadSpec> loads;
  /// Extract the run's balancing timeline into the Trace output: decision
  /// records and the lb.* series synthesized from them.
  bool want_trace = false;
  /// Optional external flight recorder (not owned; must outlive the run) —
  /// e.g. one hub shared by a whole bench sweep. When null and want_trace
  /// is set, a run-local hub is created automatically.
  obs::Observability* obs = nullptr;
};

/// Trace extracted from a run (for Fig. 9-style plots and --explain).
/// The lb.* series (lb.raw_rate.N / lb.adj_rate.N / lb.work.N /
/// lb.period_s) are synthesized from the decision ledger — one point per
/// decision round; application series recorded into the world Recorder are
/// copied alongside, in first-recorded order.
struct Trace {
  std::vector<std::string> names;
  std::vector<Series> series;
  /// Decision-ledger records, one per balancing round (all gates,
  /// including phase wind-down and recovery-frozen rounds).
  std::vector<obs::DecisionRecord> rounds;
  const Series* find(const std::string& name) const;
};

Measurement run_mm(const apps::MmConfig& app, const ExperimentConfig& cfg,
                   Trace* trace = nullptr);
Measurement run_sor(const apps::SorConfig& app, const ExperimentConfig& cfg,
                    Trace* trace = nullptr);
Measurement run_lu(const apps::LuConfig& app, const ExperimentConfig& cfg,
                   Trace* trace = nullptr);

/// Paper-calibrated defaults: 100 ms quantum hosts on a 100 MB/s network,
/// 500 ms minimum balancing period.
sim::WorldConfig paper_world();
lb::LbConfig paper_lb();

/// Run `reps` repetitions with varied world seeds, accumulating the three
/// headline numbers ("average of at least 3 measurements" with range bars).
struct RepeatedMeasurement {
  Accumulator elapsed_s;
  Accumulator speedup;
  Accumulator efficiency;
  lb::MasterStats last_stats;
};
RepeatedMeasurement repeat(
    int reps, const ExperimentConfig& cfg,
    const std::function<Measurement(const ExperimentConfig&)>& run_once);

}  // namespace nowlb::exp
