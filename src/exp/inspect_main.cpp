// nowlb-inspect: record a run to a run file, then explain where its time
// went — per-round causal breakdowns, a parallel-efficiency series, the
// critical path, and an A/B diff of two runs (DESIGN.md §13).
//
//   nowlb-inspect --record=bal.nir --app=mm --n=160 --load=0
//   nowlb-inspect --record=nolb.nir --app=mm --n=160 --load=0 --no-balance
//   nowlb-inspect --report=bal.nir --top=5
//   nowlb-inspect --report=bal.nir --json
//   nowlb-inspect --report=bal.nir --diff=nolb.nir
//
// The diff is the paper's Figs. 5-9 claim as a single number: the same
// workload with balancing on vs off, compared by measured efficiency.
// Malformed or truncated run files fail the load with a nonzero exit.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "apps/mm.hpp"
#include "apps/sor.hpp"
#include "exp/harness.hpp"
#include "load/generators.hpp"
#include "obs/causal.hpp"
#include "obs/critical_path.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "obs/runfile.hpp"
#include "util/cli.hpp"

namespace {

using nowlb::obs::CausalGraph;
using nowlb::obs::CriticalPath;
using nowlb::obs::LoadedRun;
using nowlb::obs::RoundBreakdown;

int record(const nowlb::Cli& cli) {
  const std::string path = cli.get("record", "");
  const std::string app = cli.get("app", "mm");
  const int slaves = static_cast<int>(cli.get_int("slaves", 4));
  const int load_rank = static_cast<int>(cli.get_int("load", -1));
  const bool no_balance = cli.get_bool("no-balance", false);

  nowlb::obs::Observability hub;
  nowlb::exp::ExperimentConfig cfg;
  cfg.slaves = slaves;
  cfg.world = nowlb::exp::paper_world();
  cfg.world.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1994));
  cfg.lb = nowlb::exp::paper_lb();
  cfg.lb.causal = true;  // wire-level round propagation for the analyzer
  if (no_balance) {
    // Balancing off: the gate can never pass, so no work ever moves — the
    // paper's "without load balancing" baseline.
    cfg.lb.improvement_threshold = 1e18;
  }
  if (load_rank >= 0) {
    if (load_rank >= slaves) {
      std::fprintf(stderr, "--load=%d out of range (%d slaves)\n", load_rank,
                   slaves);
      return 2;
    }
    cfg.loads.push_back(
        {load_rank, [] { return nowlb::load::constant(); }});
  }
  cfg.obs = &hub;

  nowlb::exp::Measurement m;
  std::map<std::string, std::string> meta;
  if (app == "mm") {
    nowlb::apps::MmConfig mm;
    mm.n = static_cast<int>(cli.get_int("n", 160));
    mm.repeats = static_cast<int>(cli.get_int("repeats", 1));
    m = nowlb::exp::run_mm(mm, cfg);
    meta["n"] = std::to_string(mm.n);
  } else if (app == "sor") {
    nowlb::apps::SorConfig sor;
    sor.n = static_cast<int>(cli.get_int("n", 400));
    sor.sweeps = static_cast<int>(cli.get_int("repeats", 8));
    m = nowlb::exp::run_sor(sor, cfg);
    meta["n"] = std::to_string(sor.n);
  } else {
    std::fprintf(stderr, "unknown --app=%s (mm|sor)\n", app.c_str());
    return 2;
  }

  auto fmt = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return std::string(buf);
  };
  meta["app"] = app;
  meta["slaves"] = std::to_string(slaves);
  meta["seed"] = std::to_string(cfg.world.seed);
  meta["balance"] = no_balance ? "off" : "on";
  if (load_rank >= 0) meta["load_rank"] = std::to_string(load_rank);
  meta["elapsed_s"] = fmt(m.elapsed_s);
  meta["speedup"] = fmt(m.speedup);
  meta["efficiency"] = fmt(m.efficiency);  // the paper's §5.1 metric

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 2;
  }
  nowlb::obs::write_runfile(out, hub.trace, hub.ledger, meta);
  std::printf(
      "recorded %s: app=%s slaves=%d balance=%s elapsed=%.3fs "
      "efficiency=%.3f (%zu events, %zu ledger rounds)\n",
      path.c_str(), app.c_str(), slaves, no_balance ? "off" : "on",
      m.elapsed_s, m.efficiency, hub.trace.events().size(),
      hub.ledger.records().size());
  return 0;
}

bool load(const std::string& path, LoadedRun& run) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!nowlb::obs::load_runfile(in, run, error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

double meta_num(const LoadedRun& run, const std::string& key) {
  auto it = run.meta.find(key);
  if (it == run.meta.end()) return 0;
  return std::strtod(it->second.c_str(), nullptr);
}

void print_text_report(const LoadedRun& run, const CausalGraph& g,
                       std::size_t top_k) {
  std::printf("run:");
  for (const auto& [key, value] : run.meta) {
    std::printf(" %s=%s", key.c_str(), value.c_str());
  }
  std::printf("\n");
  std::printf(
      "%5s %5s %6s %5s %9s %9s %9s %9s %9s %6s\n", "round", "ranks", "gate",
      "moved", "compute", "blocked", "transprt", "decision", "migrate",
      "eff");
  for (const RoundBreakdown& r : g.rounds) {
    std::printf("%5d %5d %6s %5ld %8.3fs %8.3fs %8.3fs %8.3fs %8.3fs %5.1f%%\n",
                r.round, r.ranks,
                r.gate >= 0
                    ? nowlb::obs::gate_name(static_cast<nowlb::obs::Gate>(r.gate))
                    : "-",
                r.units_moved, r.compute_s, r.blocked_s, r.transport_s,
                r.decision_s, r.migration_s, 100 * r.efficiency);
  }
  std::printf("overall: %d ranks, wall %.3fs, compute %.3fs, efficiency "
              "%.1f%%",
              g.nranks, g.wall_s(), g.total_compute_s(),
              100 * g.efficiency());
  const double paper_eff = meta_num(run, "efficiency");
  if (paper_eff > 0) std::printf(" (paper metric %.1f%%)", 100 * paper_eff);
  std::printf("\n");
  if (!g.evicted.empty()) {
    std::printf("evicted ranks:");
    for (int r : g.evicted) std::printf(" %d", r);
    std::printf("\n");
  }

  const CriticalPath path = nowlb::obs::critical_path(g);
  std::printf("critical path: %zu steps, %.3fs of %.3fs wall\n",
              path.steps.size(), nowlb::sim::to_seconds(path.length()),
              g.wall_s());
  for (const auto& w : nowlb::obs::top_edges(path, top_k)) {
    std::printf("  %-14s", nowlb::obs::span_kind_name(w.kind));
    if (w.rank >= 0) {
      std::printf(" rank %-3d", w.rank);
    } else {
      std::printf(" master  ");
    }
    std::printf(" %8.3fs over %3d step(s)", nowlb::sim::to_seconds(w.total),
                w.count);
    if (w.blocked_s > 0) std::printf(" (%.3fs blocked)", w.blocked_s);
    std::printf("\n");
  }
  for (const std::string& p : g.problems) {
    std::printf("PROBLEM: %s\n", p.c_str());
  }
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

void print_json_report(const LoadedRun& run, const CausalGraph& g,
                       std::size_t top_k) {
  std::ostringstream os;
  os << "{\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : run.meta) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, key);
    os << "\":\"";
    json_escape(os, value);
    os << "\"";
  }
  os << "},\"nranks\":" << g.nranks << ",\"wall_s\":" << g.wall_s()
     << ",\"compute_s\":" << g.total_compute_s()
     << ",\"efficiency\":" << g.efficiency() << ",\"rounds\":[";
  first = true;
  for (const RoundBreakdown& r : g.rounds) {
    if (!first) os << ",";
    first = false;
    os << "{\"round\":" << r.round << ",\"ranks\":" << r.ranks
       << ",\"gate\":" << r.gate << ",\"units_moved\":" << r.units_moved
       << ",\"compute_s\":" << r.compute_s
       << ",\"blocked_s\":" << r.blocked_s
       << ",\"transport_s\":" << r.transport_s
       << ",\"decision_s\":" << r.decision_s
       << ",\"migration_s\":" << r.migration_s
       << ",\"efficiency\":" << r.efficiency << "}";
  }
  os << "],\"critical_path\":[";
  const CriticalPath path = nowlb::obs::critical_path(g);
  first = true;
  for (const auto& w : nowlb::obs::top_edges(path, top_k)) {
    if (!first) os << ",";
    first = false;
    os << "{\"kind\":\"" << nowlb::obs::span_kind_name(w.kind)
       << "\",\"rank\":" << w.rank
       << ",\"total_s\":" << nowlb::sim::to_seconds(w.total)
       << ",\"steps\":" << w.count << ",\"blocked_s\":" << w.blocked_s
       << "}";
  }
  os << "],\"problems\":[";
  first = true;
  for (const std::string& p : g.problems) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    json_escape(os, p);
    os << "\"";
  }
  os << "]}";
  std::printf("%s\n", os.str().c_str());
}

int diff(const LoadedRun& a, const CausalGraph& ga, const std::string& path_b) {
  LoadedRun b;
  if (!load(path_b, b)) return 1;
  const CausalGraph gb =
      nowlb::obs::build_causal_graph(b.trace, b.ledger);

  auto describe = [](const char* tag, const LoadedRun& run,
                     const CausalGraph& g) {
    auto get = [&](const char* key) {
      auto it = run.meta.find(key);
      return it == run.meta.end() ? std::string("?") : it->second;
    };
    std::printf("%s: app=%s balance=%s elapsed=%.3fs efficiency=%.1f%% "
                "(trace-derived %.1f%%), %zu rounds\n",
                tag, get("app").c_str(), get("balance").c_str(),
                meta_num(run, "elapsed_s"), 100 * meta_num(run, "efficiency"),
                100 * g.efficiency(), g.rounds.size());
  };
  describe("A", a, ga);
  describe("B", b, gb);

  const double eff_a = meta_num(a, "efficiency");
  const double eff_b = meta_num(b, "efficiency");
  const double el_a = meta_num(a, "elapsed_s");
  const double el_b = meta_num(b, "elapsed_s");
  if (eff_a > 0 && eff_b > 0) {
    std::printf("efficiency delta (A - B): %+.1f points\n",
                100 * (eff_a - eff_b));
  }
  if (el_a > 0 && el_b > 0) {
    std::printf("elapsed delta: A is %+.1f%% vs B (%.3fs vs %.3fs)\n",
                100 * (el_a - el_b) / el_b, el_a, el_b);
  }
  const bool ok = ga.well_formed() && gb.well_formed();
  for (const std::string& p : ga.problems) std::printf("A PROBLEM: %s\n", p.c_str());
  for (const std::string& p : gb.problems) std::printf("B PROBLEM: %s\n", p.c_str());
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const nowlb::Cli cli(argc, argv);
  static const char* kKnown[] = {"help",    "record", "app",    "n",
                                 "repeats", "slaves", "seed",   "load",
                                 "no-balance", "report", "json", "top",
                                 "diff"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const std::string name = arg.substr(2, arg.find('=') - 2);
    bool known = false;
    for (const char* k : kKnown) known = known || name == k;
    if (!known) {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      return 2;
    }
  }
  if (cli.has("help") || (!cli.has("record") && !cli.has("report"))) {
    std::printf(
        "usage: nowlb-inspect --record=FILE [--app=mm|sor] [--n=N]\n"
        "                     [--repeats=R] [--slaves=P] [--seed=S]\n"
        "                     [--load=RANK] [--no-balance]\n"
        "       nowlb-inspect --report=FILE [--json] [--top=K]\n"
        "       nowlb-inspect --report=FILE --diff=FILE2\n"
        "\n"
        "--record runs the experiment with causal tracing enabled and\n"
        "writes a run file. --report reconstructs the causal round DAG:\n"
        "per-round time breakdown (compute / blocked / transport /\n"
        "decision / migration), efficiency series, and the critical\n"
        "path's top contributors. --diff compares two runs — balancing\n"
        "on vs off on the same workload reproduces the paper's\n"
        "efficiency claim as one number.\n");
    return cli.has("help") ? 0 : 2;
  }

  if (cli.has("record")) return record(cli);

  LoadedRun run;
  if (!load(cli.get("report", ""), run)) return 1;
  const CausalGraph g = nowlb::obs::build_causal_graph(run.trace, run.ledger);
  const auto top_k = static_cast<std::size_t>(cli.get_int("top", 5));

  if (cli.has("diff")) return diff(run, g, cli.get("diff", ""));
  if (cli.get_bool("json", false)) {
    print_json_report(run, g, top_k);
  } else {
    print_text_report(run, g, top_k);
  }
  return g.well_formed() ? 0 : 1;
}
