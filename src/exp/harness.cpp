#include "exp/harness.hpp"

#include "load/generators.hpp"
#include "obs/attach.hpp"
#include "util/check.hpp"

namespace nowlb::exp {

const Series* Trace::find(const std::string& name) const {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return &series[i];
  }
  return nullptr;
}

sim::WorldConfig paper_world() {
  sim::WorldConfig wc;  // defaults are the paper calibration (DESIGN.md §5)
  return wc;
}

lb::LbConfig paper_lb() {
  lb::LbConfig cfg;  // defaults follow the paper (config.hpp)
  return cfg;
}

namespace {

struct RunParts {
  std::unique_ptr<obs::Observability> local_obs;
  obs::Observability* obs = nullptr;   // effective hub (external or local)
  std::size_t ledger_start = 0;        // first record belonging to this run
  sim::World world;
  lb::Cluster cluster;

  RunParts(const ExperimentConfig& cfg, lb::ClusterConfig cc)
      : local_obs(cfg.obs == nullptr && cfg.want_trace
                      ? std::make_unique<obs::Observability>()
                      : nullptr),
        obs(cfg.obs != nullptr ? cfg.obs : local_obs.get()),
        ledger_start(obs != nullptr ? obs->ledger.records().size() : 0),
        world(cfg.world),
        // The hub must be attached before the cluster spawns the master
        // and slaves: their emitters bind to it at construction.
        cluster(attach(world, obs), std::move(cc)) {}

  static sim::World& attach(sim::World& w, obs::Observability* o) {
    obs::attach(w, o);
    return w;
  }
};

/// Rebuild the classic fig9 series from the decision ledger. Only rounds
/// where the planner actually ran (move/threshold/profit/hold gates)
/// produce points — the same rounds the old recorder-based path traced.
void synthesize_lb_series(const std::vector<obs::DecisionRecord>& rounds,
                          Trace* trace) {
  auto add_point = [trace](const std::string& name, double t, double v) {
    for (std::size_t i = 0; i < trace->names.size(); ++i) {
      if (trace->names[i] == name) {
        trace->series[i].add(t, v);
        return;
      }
    }
    trace->names.push_back(name);
    trace->series.emplace_back();
    trace->series.back().add(t, v);
  };
  for (const auto& rec : rounds) {
    switch (rec.gate) {
      case obs::Gate::kMove:
      case obs::Gate::kBelowThreshold:
      case obs::Gate::kNotProfitable:
      case obs::Gate::kHold:
        break;
      default:
        continue;  // wind-down / frozen rounds: no planner output
    }
    const double t = sim::to_seconds(rec.t);
    for (std::size_t r = 0; r < rec.raw_rates.size(); ++r) {
      // Build each name via append (GCC 12's -O3 -Wrestrict misfires on
      // the `const char* + std::string&&` operator+ overload here).
      std::string suffix = ".";
      suffix += std::to_string(r);
      std::string name = "lb.raw_rate";
      add_point(name + suffix, t, rec.raw_rates[r]);
      name = "lb.adj_rate";
      add_point(name + suffix, t, rec.rates[r]);
      name = "lb.work";
      add_point(name + suffix, t, static_cast<double>(rec.target[r]));
    }
    add_point("lb.period_s", t, rec.period_s);
  }
}

Measurement finish(const ExperimentConfig& cfg, RunParts& parts,
                   double seq_s, Trace* trace) {
  auto& w = parts.world;
  auto& cluster = parts.cluster;
  for (const auto& load : cfg.loads) {
    cluster.add_load(load.rank, load.make());
  }
  w.run();

  Measurement m;
  m.elapsed_s = sim::to_seconds(w.now());
  m.seq_s = seq_s;
  m.speedup = seq_s / m.elapsed_s;
  m.trace_hash = w.engine().trace_hash();
  m.dispatched_events = w.engine().dispatched_events();
  if (cluster.has_master()) m.stats = cluster.stats();

  // efficiency = T_seq / sum_p (elapsed - competing CPU on p's host)
  double denominator = 0;
  for (int r = 0; r < cfg.slaves; ++r) {
    double competing = 0;
    for (sim::Pid load_pid : cluster.loads(r)) {
      competing += sim::to_seconds(w.cpu_used(load_pid));
    }
    m.competing_cpu_s += competing;
    denominator += m.elapsed_s - competing;
  }
  NOWLB_CHECK(denominator > 0, "no available CPU time measured");
  m.efficiency = seq_s / denominator;

  if (trace != nullptr && cfg.want_trace && parts.obs != nullptr) {
    // Application-level series recorded into the world Recorder come
    // first, in first-recorded order.
    for (const auto& name : w.recorder().names()) {
      trace->names.push_back(name);
      trace->series.push_back(*w.recorder().find(name));
    }
    const auto& recs = parts.obs->ledger.records();
    trace->rounds.assign(
        recs.begin() + static_cast<std::ptrdiff_t>(parts.ledger_start),
        recs.end());
    synthesize_lb_series(trace->rounds, trace);
  }
  return m;
}

}  // namespace

Measurement run_mm(const apps::MmConfig& app, const ExperimentConfig& cfg,
                   Trace* trace) {
  auto cc = apps::mm_cluster_config(app, cfg.slaves, cfg.lb);
  RunParts parts(cfg, std::move(cc));
  auto shared = std::make_shared<apps::MmShared>();
  apps::mm_make_inputs(app, *shared);
  apps::mm_build(parts.cluster, app, shared);
  return finish(cfg, parts, apps::mm_seq_time_s(app), trace);
}

Measurement run_sor(const apps::SorConfig& app, const ExperimentConfig& cfg,
                    Trace* trace) {
  auto cc = apps::sor_cluster_config(app, cfg.slaves, cfg.lb);
  RunParts parts(cfg, std::move(cc));
  auto shared = std::make_shared<apps::SorShared>();
  apps::sor_make_inputs(app, *shared);
  apps::sor_build(parts.cluster, app, shared);
  return finish(cfg, parts, apps::sor_seq_time_s(app), trace);
}

Measurement run_lu(const apps::LuConfig& app, const ExperimentConfig& cfg,
                   Trace* trace) {
  auto cc = apps::lu_cluster_config(app, cfg.slaves, cfg.lb);
  RunParts parts(cfg, std::move(cc));
  auto shared = std::make_shared<apps::LuShared>();
  apps::lu_make_inputs(app, *shared);
  apps::lu_build(parts.cluster, app, shared);
  return finish(cfg, parts, apps::lu_seq_time_s(app), trace);
}

RepeatedMeasurement repeat(
    int reps, const ExperimentConfig& cfg,
    const std::function<Measurement(const ExperimentConfig&)>& run_once) {
  RepeatedMeasurement out;
  for (int r = 0; r < reps; ++r) {
    ExperimentConfig varied = cfg;
    varied.world.seed = cfg.world.seed + static_cast<std::uint64_t>(r);
    const Measurement m = run_once(varied);
    out.elapsed_s.add(m.elapsed_s);
    out.speedup.add(m.speedup);
    out.efficiency.add(m.efficiency);
    out.last_stats = m.stats;
  }
  return out;
}

}  // namespace nowlb::exp
