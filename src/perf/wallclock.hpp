// Host wall-clock access for the perf harness.
//
// This is the ONE place in src/ that reads host time. Everything simulated
// runs on sim::Engine's virtual clock (enforced by nowlb-lint D001); the
// harness measures how fast the host chews through that virtual work, so
// it must read a real clock — hence the scoped suppressions below.
#pragma once

#include <chrono>
#include <string>

namespace nowlb::perf {

/// Monotonic host seconds (arbitrary epoch); subtract two readings.
inline double wall_seconds() {
  // NOLINTNEXTLINE(nowlb-wallclock: the perf harness times host execution by design; never on a simulation path)
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Host date as "YYYY-MM-DD" (UTC) for the BENCH_<date>.json filename.
std::string utc_date();

}  // namespace nowlb::perf
