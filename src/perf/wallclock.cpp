#include "perf/wallclock.hpp"

#include <ctime>

namespace nowlb::perf {

std::string utc_date() {
  // NOLINTNEXTLINE(nowlb-wallclock: report metadata stamps the host date; never on a simulation path)
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  // NOLINTNEXTLINE(nowlb-wallclock: report metadata, as above)
  gmtime_r(&now, &tm);
  char buf[16];
  std::strftime(buf, sizeof buf, "%Y-%m-%d", &tm);
  return buf;
}

}  // namespace nowlb::perf
