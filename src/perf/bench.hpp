// Benchmark registry and runner (DESIGN.md §12).
//
// A Benchmark is a named closure returning one metric sample per timed
// repetition. The runner executes `warmup` untimed repetitions, then
// `reps` timed ones, and summarizes with nearest-rank median and p90 —
// robust to the occasional scheduler hiccup that poisons a mean.
//
// The simulated workload inside a sample is bit-identical from rep to rep
// (fixed seeds, virtual time); only the host's wall time varies. That is
// what makes the BENCH_*.json trajectory comparable across commits.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace nowlb::perf {

struct BenchOptions {
  bool quick = false;  // CI mode: fewer reps/warmup (same workload sizes)
  int reps = 0;        // 0: default (quick ? 5 : 9)
  int warmup = -1;     // <0: default (quick ? 1 : 2)

  int effective_reps() const { return reps > 0 ? reps : (quick ? 5 : 9); }
  int effective_warmup() const {
    return warmup >= 0 ? warmup : (quick ? 1 : 2);
  }
};

struct BenchResult {
  std::string name;
  std::string group;  // "micro" | "figure" | "fuzz"
  std::string unit;   // "events/s", "msgs/s", "s", ...
  bool higher_is_better = true;
  int reps = 0;
  int warmup = 0;
  std::vector<double> samples;  // one per timed repetition, in run order
  /// Auxiliary deterministic facts about the workload (virtual elapsed
  /// time, lb rounds from the decision ledger, units moved, ...).
  std::map<std::string, double> extra;

  double median() const;
  double p90() const;
  double min() const;
  double max() const;
};

struct Benchmark {
  std::string name;
  std::string group;
  std::string unit;
  bool higher_is_better = true;
  /// One repetition; returns the sample. May fill `extra` (kept from the
  /// last repetition, where every repetition writes the same values).
  std::function<double(const BenchOptions&, std::map<std::string, double>&)>
      run;
};

class Suite {
 public:
  void add(Benchmark b) { benchmarks_.push_back(std::move(b)); }
  const std::vector<Benchmark>& benchmarks() const { return benchmarks_; }

  /// Run every benchmark whose name contains `filter` (empty: all),
  /// logging one line per benchmark to `log`.
  std::vector<BenchResult> run(const BenchOptions& opt,
                               const std::string& filter,
                               std::ostream& log) const;

 private:
  std::vector<Benchmark> benchmarks_;
};

/// The full nowlb suite: engine/transport/serialization micro benchmarks,
/// fig5-fig9 macro wall times, and fuzz scenario classes.
Suite default_suite();

}  // namespace nowlb::perf
