// BENCH_*.json report writer (schema documented in DESIGN.md §12).
#pragma once

#include <string>
#include <vector>

#include "perf/bench.hpp"

namespace nowlb::perf {

/// Bump when the JSON layout changes incompatibly; scripts/bench_compare.py
/// refuses to compare across schema versions.
inline constexpr int kBenchSchemaVersion = 1;

struct ReportMeta {
  std::string date;   // "YYYY-MM-DD"
  std::string label;  // free-form ("ci", "pre-opt", ...)
  bool quick = false;
};

std::string to_json(const ReportMeta& meta,
                    const std::vector<BenchResult>& results);

}  // namespace nowlb::perf
