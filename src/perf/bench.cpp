#include "perf/bench.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace nowlb::perf {

namespace {

/// Nearest-rank percentile (p in [0,100]) of a non-empty sample set.
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  return v[rank - 1];
}

}  // namespace

double BenchResult::median() const { return percentile(samples, 50); }
double BenchResult::p90() const { return percentile(samples, 90); }
double BenchResult::min() const {
  return samples.empty() ? 0 : *std::min_element(samples.begin(),
                                                 samples.end());
}
double BenchResult::max() const {
  return samples.empty() ? 0 : *std::max_element(samples.begin(),
                                                 samples.end());
}

std::vector<BenchResult> Suite::run(const BenchOptions& opt,
                                    const std::string& filter,
                                    std::ostream& log) const {
  std::vector<const Benchmark*> selected;
  for (const Benchmark& b : benchmarks_) {
    if (filter.empty() || b.name.find(filter) != std::string::npos) {
      selected.push_back(&b);
    }
  }
  std::vector<BenchResult> out(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    BenchResult& r = out[i];
    r.name = selected[i]->name;
    r.group = selected[i]->group;
    r.unit = selected[i]->unit;
    r.higher_is_better = selected[i]->higher_is_better;
    r.reps = opt.effective_reps();
    r.warmup = opt.effective_warmup();
  }
  // Rounds are interleaved across benchmarks (all warmups, then rep 0 of
  // every benchmark, then rep 1, ...): a transient host-load spike then
  // contaminates one sample of many benchmarks instead of every sample of
  // one, which medians shrug off.
  for (int w = 0; w < opt.effective_warmup(); ++w) {
    for (const Benchmark* b : selected) {
      std::map<std::string, double> scratch;
      b->run(opt, scratch);
    }
  }
  for (int rep = 0; rep < opt.effective_reps(); ++rep) {
    for (std::size_t i = 0; i < selected.size(); ++i) {
      out[i].extra.clear();
      out[i].samples.push_back(selected[i]->run(opt, out[i].extra));
    }
  }
  for (const BenchResult& r : out) {
    log << "  " << r.name << ": median " << r.median() << " " << r.unit
        << " (p90 " << r.p90() << ", " << r.reps << " reps)\n";
  }
  return out;
}

}  // namespace nowlb::perf
