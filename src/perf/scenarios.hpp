// Canonical figure and fuzz workloads shared by nowlb-bench and the
// determinism regression suite (tests/perf/determinism_test.cpp).
//
// Each figure scenario is a downscaled fig5-fig9 configuration: small
// enough to run in a test, large enough to exercise the full runtime
// (master protocol, movement, competing loads). A run reports the engine
// trace hash, the dispatched-event count and a fixed-format printed
// summary — the three fingerprints the determinism suite pins across
// repeats, across obs recording, and across host-side optimizations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.hpp"

namespace nowlb::perf {

struct FigureRun {
  std::uint64_t trace_hash = 0;
  std::uint64_t dispatched_events = 0;
  double elapsed_virtual_s = 0;  // application completion, virtual time
  int lb_rounds = 0;             // balancing rounds (master stats)
  int units_moved = 0;           // units in ordered transfers
  int ledger_records = 0;        // decision-ledger rows (with_obs only)
  /// The run's printed output, fixed format — "all printed figure output
  /// is bit-identical" is asserted on this string.
  std::string summary;
};

struct FigureScenario {
  const char* name;  // "fig5.mm_dedicated", ...
  FigureRun (*run)(bool with_obs);
};

/// The five reproduced figures, in paper order.
const std::vector<FigureScenario>& figure_scenarios();

/// One fuzz scenario class: a representative seed per (app, fault mode).
struct FuzzCase {
  const char* name;  // "fuzz.mm.clean", "fuzz.sor.faults", ...
  check::App app = check::App::kMm;
  std::uint64_t seed = 0;
  check::FaultPlan faults;  // default: fault-free
};

const std::vector<FuzzCase>& fuzz_cases();

/// Execute one fuzz case (optionally with the flight recorder attached).
check::FuzzResult run_fuzz_case(const FuzzCase& c, bool with_obs);

}  // namespace nowlb::perf
