#include "perf/scenarios.hpp"

#include <cstdio>

#include "exp/harness.hpp"
#include "load/generators.hpp"
#include "obs/obs.hpp"

namespace nowlb::perf {

namespace {

/// Fixed-format printed line for a figure run. Every field is derived
/// from virtual time or protocol counters, so two runs of the same
/// scenario must produce byte-identical strings.
FigureRun finish(const char* name, const exp::Measurement& m,
                 const obs::Observability* hub) {
  FigureRun r;
  r.trace_hash = m.trace_hash;
  r.dispatched_events = m.dispatched_events;
  r.elapsed_virtual_s = m.elapsed_s;
  r.lb_rounds = m.stats.rounds;
  r.units_moved = m.stats.units_moved;
  r.ledger_records =
      hub != nullptr ? static_cast<int>(hub->ledger.records().size()) : 0;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s: elapsed=%.9fs speedup=%.6f eff=%.6f rounds=%d moved=%d "
                "events=%llu",
                name, m.elapsed_s, m.speedup, m.efficiency, m.stats.rounds,
                m.stats.units_moved,
                static_cast<unsigned long long>(m.dispatched_events));
  r.summary = buf;
  return r;
}

exp::ExperimentConfig base_config(int slaves, bool with_obs,
                                  obs::Observability* hub) {
  exp::ExperimentConfig cfg;
  cfg.slaves = slaves;
  cfg.world = exp::paper_world();
  cfg.lb = exp::paper_lb();
  if (with_obs) cfg.obs = hub;
  return cfg;
}

FigureRun run_fig5(bool with_obs) {
  obs::Observability hub;
  auto cfg = base_config(4, with_obs, &hub);
  apps::MmConfig mm;  // paper-default n=500
  const auto m = exp::run_mm(mm, cfg);
  return finish("fig5.mm_dedicated", m, with_obs ? &hub : nullptr);
}

FigureRun run_fig6(bool with_obs) {
  obs::Observability hub;
  auto cfg = base_config(4, with_obs, &hub);
  apps::SorConfig sor;  // paper-default n=2000, 20 sweeps
  const auto m = exp::run_sor(sor, cfg);
  return finish("fig6.sor_dedicated", m, with_obs ? &hub : nullptr);
}

FigureRun run_fig7(bool with_obs) {
  obs::Observability hub;
  auto cfg = base_config(4, with_obs, &hub);
  cfg.loads.push_back({0, [] { return load::constant(); }});
  apps::MmConfig mm;
  const auto m = exp::run_mm(mm, cfg);
  return finish("fig7.mm_loaded", m, with_obs ? &hub : nullptr);
}

FigureRun run_fig8(bool with_obs) {
  obs::Observability hub;
  auto cfg = base_config(4, with_obs, &hub);
  cfg.loads.push_back({0, [] { return load::constant(); }});
  apps::SorConfig sor;
  const auto m = exp::run_sor(sor, cfg);
  return finish("fig8.sor_loaded", m, with_obs ? &hub : nullptr);
}

FigureRun run_fig9(bool with_obs) {
  obs::Observability hub;
  auto cfg = base_config(4, with_obs, &hub);
  cfg.loads.push_back({0, [] {
                         return load::oscillating(20 * sim::kSecond,
                                                  10 * sim::kSecond);
                       }});
  apps::MmConfig mm;
  mm.repeats = 3;  // three phases across the oscillating load
  const auto m = exp::run_mm(mm, cfg);
  return finish("fig9.mm_oscillating", m, with_obs ? &hub : nullptr);
}

}  // namespace

const std::vector<FigureScenario>& figure_scenarios() {
  static const std::vector<FigureScenario> kScenarios = {
      {"fig5.mm_dedicated", run_fig5},   {"fig6.sor_dedicated", run_fig6},
      {"fig7.mm_loaded", run_fig7},      {"fig8.sor_loaded", run_fig8},
      {"fig9.mm_oscillating", run_fig9},
  };
  return kScenarios;
}

const std::vector<FuzzCase>& fuzz_cases() {
  static const std::vector<FuzzCase> kCases = [] {
    std::vector<FuzzCase> v;
    v.push_back({"fuzz.mm.clean", check::App::kMm, 11, {}});
    v.push_back({"fuzz.sor.clean", check::App::kSor, 12, {}});
    v.push_back({"fuzz.lu.clean", check::App::kLu, 13, {}});
    FuzzCase faulty{"fuzz.mm.faults", check::App::kMm, 14, {}};
    faulty.faults.drop_rate = 0.15;
    faulty.faults.dup_rate = 0.1;
    faulty.faults.reorder_delay = 3 * sim::kMillisecond;
    v.push_back(faulty);
    return v;
  }();
  return kCases;
}

check::FuzzResult run_fuzz_case(const FuzzCase& c, bool with_obs) {
  check::Scenario sc = check::generate_scenario(c.seed, c.app);
  if (c.faults.any()) check::apply_fault_plan(sc, c.faults);
  obs::Observability hub;
  return check::run_scenario(sc, check::InvariantSet::Fault::kNone,
                             with_obs ? &hub : nullptr);
}

}  // namespace nowlb::perf
