// nowlb-bench: the repo's perf harness (DESIGN.md §12).
//
//   nowlb-bench                      # full run, writes BENCH_<date>.json
//   nowlb-bench --quick              # CI mode: fewer reps, same workloads
//   nowlb-bench --filter=engine      # subset by substring
//   nowlb-bench --out=FILE           # report path override
//   nowlb-bench --list               # print benchmark names and exit
//   nowlb-bench --hashes             # print determinism fingerprints
//
// Compare two reports with scripts/bench_compare.py.
#include <fstream>
#include <iostream>

#include "perf/bench.hpp"
#include "perf/report.hpp"
#include "perf/scenarios.hpp"
#include "perf/wallclock.hpp"
#include "util/cli.hpp"

using namespace nowlb;

namespace {

/// Golden-fingerprint table for tests/perf/determinism_test.cpp: run every
/// figure scenario and fuzz case once and print hash/output constants.
int print_hashes() {
  std::cout << std::hex;
  for (const auto& fig : perf::figure_scenarios()) {
    const auto r = fig.run(/*with_obs=*/false);
    std::cout << "{\"" << fig.name << "\", 0x" << r.trace_hash << "ull, "
              << std::dec << r.dispatched_events << std::hex << "},\n";
    std::cout << "//   " << r.summary << "\n";
  }
  for (const auto& fc : perf::fuzz_cases()) {
    const auto r = perf::run_fuzz_case(fc, /*with_obs=*/false);
    std::cout << "{\"" << fc.name << "\", 0x" << r.trace_hash << "ull},"
              << (r.ok ? "" : "  // NOT OK") << "\n";
  }
  std::cout << std::dec;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.get_bool("hashes", false)) return print_hashes();

  perf::Suite suite = perf::default_suite();
  if (cli.get_bool("list", false)) {
    for (const auto& b : suite.benchmarks()) {
      std::cout << b.name << " (" << b.group << ", " << b.unit << ")\n";
    }
    return 0;
  }

  perf::BenchOptions opt;
  opt.quick = cli.get_bool("quick", false);
  opt.reps = static_cast<int>(cli.get_int("reps", 0));
  opt.warmup = static_cast<int>(cli.get_int("warmup", -1));
  const std::string filter = cli.get("filter", "");

  perf::ReportMeta meta;
  meta.date = perf::utc_date();
  meta.label = cli.get("label", "");
  meta.quick = opt.quick;
  const std::string out =
      cli.get("out", "BENCH_" + meta.date + ".json");

  std::cout << "nowlb-bench: " << (opt.quick ? "quick" : "full") << " run, "
            << opt.effective_reps() << " reps, warmup "
            << opt.effective_warmup() << "\n";
  const auto results = suite.run(opt, filter, std::cout);
  if (results.empty()) {
    std::cerr << "no benchmark matches filter '" << filter << "'\n";
    return 2;
  }

  std::ofstream f(out);
  if (!f) {
    std::cerr << "cannot write " << out << "\n";
    return 1;
  }
  f << perf::to_json(meta, results);
  std::cout << "wrote " << out << " (" << results.size()
            << " benchmarks)\n";
  return 0;
}
