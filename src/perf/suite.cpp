// The nowlb benchmark suite: what BENCH_*.json tracks.
//
// micro/  — events/sec through the discrete-event core (priority-queue
//           drain, timer schedule/cancel churn), messages/sec through the
//           reliable transport (clean and lossy links), and the two
//           serialization hot paths (protocol framing, slice pack/unpack).
// figure/ — host wall time per reproduced figure (fig5-fig9, downscaled).
// fuzz/   — host wall time per fuzz scenario class.
//
// Every workload is seeded and virtual-time driven, so the work per sample
// is bit-identical across repetitions and commits; only host speed varies.
// Workload sizes are the same in --quick mode (it only cuts reps/warmup):
// a quick run must measure the same quantity as the full-run committed
// baseline it is compared against, or the comparison is biased.
#include <utility>
#include <vector>

#include "apps/mm.hpp"
#include "data/dist_array.hpp"
#include "exp/harness.hpp"
#include "lb/protocol.hpp"
#include "lb/transport.hpp"
#include "msg/serialize.hpp"
#include "perf/bench.hpp"
#include "perf/scenarios.hpp"
#include "perf/wallclock.hpp"
#include "sim/engine.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace nowlb::perf {

namespace {

// ---- engine micro ----

/// Schedule n events at shuffled virtual times, then drain the queue.
double engine_drain(const BenchOptions&,
                    std::map<std::string, double>& extra) {
  constexpr int n = 200'000;
  sim::Engine eng;
  Rng rng(42);
  int fired = 0;
  const double t0 = wall_seconds();
  for (int i = 0; i < n; ++i) {
    const auto t = static_cast<sim::Time>(rng.below(sim::kSecond));
    eng.schedule_at(t, [&fired] { ++fired; });
  }
  eng.run();
  const double dt = wall_seconds() - t0;
  extra["events"] = n;
  extra["trace_hash"] = static_cast<double>(eng.trace_hash() >> 32);
  return fired / dt;
}

/// Rolling schedule/cancel churn: the retransmit-timer pattern. Keeps a
/// window of armed timers, cancels the oldest, and periodically advances
/// virtual time so the queue also pops cancelled entries.
double engine_timer_churn(const BenchOptions&,
                          std::map<std::string, double>& extra) {
  constexpr int n = 1'000'000;
  constexpr int kWindow = 64;
  sim::Engine eng;
  std::vector<sim::Engine::EventId> window;
  window.reserve(kWindow);
  std::size_t oldest = 0;
  int ops = 0;
  const double t0 = wall_seconds();
  for (int i = 0; i < n; ++i) {
    const auto dt = static_cast<sim::Time>((i % 97 + 1) * sim::kMicrosecond);
    auto id = eng.schedule_after(dt, [] {});
    ++ops;
    if (window.size() < kWindow) {
      window.push_back(id);
    } else {
      eng.cancel(window[oldest]);
      ++ops;
      window[oldest] = id;
      oldest = (oldest + 1) % kWindow;
    }
    if (i % 1024 == 1023) {
      eng.run_until(eng.now() + 20 * sim::kMicrosecond);
    }
  }
  for (auto& id : window) eng.cancel(id);
  eng.run();
  const double dt = wall_seconds() - t0;
  extra["ops"] = ops;
  return ops / dt;
}

// ---- transport micro ----

constexpr sim::Tag kData = 7;
constexpr sim::Tag kBye = 8;

sim::WorldConfig transport_world(bool lossy) {
  sim::WorldConfig cfg;
  cfg.host.context_switch = 0;
  cfg.msg.send_overhead = 0;
  cfg.msg.recv_overhead = 0;
  cfg.net.latency = sim::kMillisecond;
  cfg.net.local_latency = 0;
  cfg.net.header_bytes = 0;
  if (lossy) {
    cfg.net.drop_prob = 0.3;
    cfg.net.dup_prob = 0.2;
    cfg.net.max_extra_delay = 5 * sim::kMillisecond;
    cfg.net.fault_tag_lo = kData;
    cfg.net.fault_tag_hi = kData;
  }
  return cfg;
}

/// N reliable application messages sender -> receiver; the sample is
/// application messages per host second (acks and retransmits ride along
/// as part of the cost).
double transport_pump(const BenchOptions&, bool lossy,
                      std::map<std::string, double>& extra) {
  constexpr int count = 20'000;
  lb::TransportConfig tc;
  tc.enabled = true;
  sim::World w(transport_world(lossy));
  auto& h0 = w.add_host();
  auto& h1 = w.add_host();
  std::uint64_t retransmits = 0;
  sim::Pid rx = w.spawn(h1, "rx", [&](sim::Context& ctx) -> sim::Task<> {
    lb::Transport t(ctx, tc, {kData}, nullptr);
    for (int i = 0; i < count; ++i) co_await ctx.recv(kData);
    co_await ctx.recv(kBye);
  });
  w.spawn(h0, "tx", [&](sim::Context& ctx) -> sim::Task<> {
    lb::Transport t(ctx, tc, {kData}, nullptr);
    for (int i = 0; i < count; ++i) {
      co_await t.send(rx, kData, sim::Bytes(64));
    }
    co_await t.drain();
    retransmits = t.stats().retransmits;
    co_await ctx.send(rx, kBye, sim::Bytes(0));
  });
  const double t0 = wall_seconds();
  w.run();
  const double dt = wall_seconds() - t0;
  extra["messages"] = count;
  extra["retransmits"] = static_cast<double>(retransmits);
  extra["trace_hash"] = static_cast<double>(w.engine().trace_hash() >> 32);
  return count / dt;
}

// ---- serialization micro ----

/// Encode+decode one balancing round's wire traffic (report with FT
/// inventory, instructions with move orders) — the lb/protocol hot path.
double protocol_roundtrip(const BenchOptions&,
                          std::map<std::string, double>& extra) {
  constexpr int iters = 100'000;
  lb::StatusReport rep;
  rep.round = 7;
  rep.units_done = 123.5;
  rep.elapsed_s = 0.5;
  rep.remaining = 99;
  rep.ft = 1;
  rep.inventory.resize(256);
  for (int i = 0; i < 256; ++i) rep.inventory[i] = i;
  lb::Instructions ins;
  ins.round = 8;
  ins.units_until_next = 250;
  for (int i = 0; i < 8; ++i) {
    ins.orders.push_back({i, 10 + i, static_cast<std::uint8_t>(i % 2)});
  }
  std::size_t sink = 0;
  const double t0 = wall_seconds();
  for (int i = 0; i < iters; ++i) {
    const auto rb = msg::encode(rep, rep.encoded_size());
    const auto ib = msg::encode(ins, ins.encoded_size());
    sink += msg::decode<lb::StatusReport>(rb).inventory.size();
    sink += msg::decode<lb::Instructions>(ib).orders.size();
  }
  const double dt = wall_seconds() - t0;
  extra["roundtrips"] = iters;
  extra["sink"] = static_cast<double>(sink & 0xff);
  return iters / dt;
}

/// Slice gather/scatter: pack half the slices out of one DistArray and
/// unpack them into another — the work-movement payload path.
double slice_pack_unpack(const BenchOptions&,
                         std::map<std::string, double>& extra) {
  constexpr int iters = 1'000;
  constexpr int kSlices = 128;
  constexpr std::size_t kLen = 256;
  std::vector<data::SliceId> half;
  for (int s = 0; s < kSlices / 2; ++s) half.push_back(s);
  const double t0 = wall_seconds();
  for (int i = 0; i < iters; ++i) {
    data::DistArray<double> from(kLen);
    data::DistArray<double> to(kLen);
    for (int s = 0; s < kSlices; ++s) {
      from.add(s, std::vector<double>(kLen, s * 1.0), s);
    }
    const auto payload = from.pack_and_remove(half);
    to.unpack_and_add(payload);
  }
  const double dt = wall_seconds() - t0;
  extra["slices_per_iter"] = kSlices / 2;
  return iters * (kSlices / 2) / dt;
}

// ---- observability overhead ----

/// Flight-recorder tax: one reduced MM run plain, then the identical run
/// with a hub attached and causal propagation on (the maximal
/// instrumentation a user can switch on). The sample is the wall-time
/// ratio instrumented/plain — bench_compare gates it, so observability
/// can never silently slow the simulator down.
double obs_overhead(const BenchOptions&,
                    std::map<std::string, double>& extra) {
  auto run_once = [](obs::Observability* hub) {
    exp::ExperimentConfig cfg;
    cfg.slaves = 4;
    cfg.world = exp::paper_world();
    cfg.lb = exp::paper_lb();
    if (hub != nullptr) {
      cfg.obs = hub;
      cfg.lb.causal = true;
    }
    apps::MmConfig mm;
    mm.n = 200;
    const double t0 = wall_seconds();
    const exp::Measurement m = exp::run_mm(mm, cfg);
    return std::make_pair(wall_seconds() - t0, m.dispatched_events);
  };
  // A single reduced run is sub-millisecond; amortize the ratio over
  // several pairs so one scheduler hiccup can't swing the sample.
  constexpr int kPairs = 8;
  obs::Observability hub;
  double plain_dt = 0;
  double obs_dt = 0;
  std::uint64_t plain_events = 0;
  std::uint64_t obs_events = 0;
  for (int i = 0; i < kPairs; ++i) {
    hub.clear();
    const auto [pd, pe] = run_once(nullptr);
    const auto [od, oe] = run_once(&hub);
    plain_dt += pd;
    obs_dt += od;
    plain_events = pe;
    obs_events = oe;
  }
  extra["plain_s"] = plain_dt;
  extra["with_obs_s"] = obs_dt;
  extra["trace_events"] = static_cast<double>(hub.trace.events().size());
  extra["ledger_records"] =
      static_cast<double>(hub.ledger.records().size());
  // Attachment must be pure observation: identical event counts whether
  // or not the hub is on (the determinism tests pin the hashes; this
  // keeps the evidence in the bench report too).
  extra["events_delta"] =
      static_cast<double>(obs_events) - static_cast<double>(plain_events);
  return obs_dt / plain_dt;
}

}  // namespace

Suite default_suite() {
  Suite s;
  s.add({"engine.drain", "micro", "events/s", true, engine_drain});
  s.add({"engine.timer_churn", "micro", "ops/s", true, engine_timer_churn});
  s.add({"transport.clean", "micro", "msgs/s", true,
         [](const BenchOptions& o, std::map<std::string, double>& e) {
           return transport_pump(o, /*lossy=*/false, e);
         }});
  s.add({"transport.lossy", "micro", "msgs/s", true,
         [](const BenchOptions& o, std::map<std::string, double>& e) {
           return transport_pump(o, /*lossy=*/true, e);
         }});
  s.add({"msg.protocol_roundtrip", "micro", "rounds/s", true,
         protocol_roundtrip});
  s.add({"data.slice_pack_unpack", "micro", "slices/s", true,
         slice_pack_unpack});
  s.add({"obs.overhead", "micro", "x", false, obs_overhead});

  for (const FigureScenario& fig : figure_scenarios()) {
    s.add({fig.name, "figure", "s", false,
           [&fig](const BenchOptions&, std::map<std::string, double>& e) {
             const double t0 = wall_seconds();
             const FigureRun r = fig.run(/*with_obs=*/true);
             const double dt = wall_seconds() - t0;
             e["virtual_elapsed_s"] = r.elapsed_virtual_s;
             e["lb.rounds"] = r.lb_rounds;
             e["lb.units_moved"] = r.units_moved;
             e["lb.ledger_records"] = r.ledger_records;
             e["events"] = static_cast<double>(r.dispatched_events);
             e["trace_hash_hi"] = static_cast<double>(r.trace_hash >> 32);
             return dt;
           }});
  }

  for (const FuzzCase& fc : fuzz_cases()) {
    s.add({fc.name, "fuzz", "s", false,
           [&fc](const BenchOptions&, std::map<std::string, double>& e) {
             const double t0 = wall_seconds();
             const auto r = run_fuzz_case(fc, /*with_obs=*/false);
             const double dt = wall_seconds() - t0;
             e["ok"] = r.ok ? 1 : 0;
             e["virtual_elapsed_s"] = r.elapsed_s;
             e["trace_hash_hi"] = static_cast<double>(r.trace_hash >> 32);
             return dt;
           }});
  }
  return s;
}

}  // namespace nowlb::perf
