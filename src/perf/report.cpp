#include "perf/report.hpp"

#include <iomanip>
#include <sstream>

namespace nowlb::perf {

namespace {

void put_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

std::string to_json(const ReportMeta& meta,
                    const std::vector<BenchResult>& results) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\n";
  os << "  \"schema_version\": " << kBenchSchemaVersion << ",\n";
  os << "  \"generator\": \"nowlb-bench\",\n";
  os << "  \"date\": ";
  put_escaped(os, meta.date);
  os << ",\n  \"label\": ";
  put_escaped(os, meta.label);
  os << ",\n  \"quick\": " << (meta.quick ? "true" : "false") << ",\n";
  os << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    os << "    {\n      \"name\": ";
    put_escaped(os, r.name);
    os << ",\n      \"group\": ";
    put_escaped(os, r.group);
    os << ",\n      \"unit\": ";
    put_escaped(os, r.unit);
    os << ",\n      \"higher_is_better\": "
       << (r.higher_is_better ? "true" : "false") << ",\n";
    os << "      \"reps\": " << r.reps << ",\n";
    os << "      \"warmup\": " << r.warmup << ",\n";
    os << "      \"median\": " << r.median() << ",\n";
    os << "      \"p90\": " << r.p90() << ",\n";
    os << "      \"min\": " << r.min() << ",\n";
    os << "      \"max\": " << r.max() << ",\n";
    os << "      \"samples\": [";
    for (std::size_t j = 0; j < r.samples.size(); ++j) {
      if (j) os << ", ";
      os << r.samples[j];
    }
    os << "],\n      \"extra\": {";
    bool first = true;
    for (const auto& [k, v] : r.extra) {
      if (!first) os << ", ";
      first = false;
      put_escaped(os, k);
      os << ": " << v;
    }
    os << "}\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace nowlb::perf
