#!/usr/bin/env python3
"""Compare two nowlb-bench reports and fail on perf regressions.

Usage:
  bench_compare.py --baseline OLD.json --current NEW.json [--threshold 0.15]
  bench_compare.py --current NEW.json            # baseline = latest BENCH_*
  bench_compare.py --self-test                   # exercise the comparator

The baseline defaults to the lexicographically newest BENCH_*.json at the
repository root (the dated filenames sort chronologically). A benchmark
regresses when its median moves against its direction by more than
--threshold (default 15%): below baseline*(1-t) for throughput benchmarks
(higher_is_better), above baseline*(1+t) for wall-time benchmarks. To stay
robust against one-sided scheduler noise (a loaded host only ever slows
samples down), the current report's *best* sample must also be beyond the
threshold: a genuine regression shifts the whole distribution, noise
spikes do not.

Benchmarks present in the baseline but missing from the current report are
regressions too — the trajectory must not silently lose coverage. New
benchmarks in the current report are reported but never fail.

Exit status: 0 clean, 1 regression(s), 2 usage/schema error.
"""

import argparse
import glob
import json
import os
import sys

EXPECTED_SCHEMA = 1

# Absolute ceilings checked against the *current* report regardless of any
# baseline: these quantities have a budget, not just a trajectory. The
# flight recorder's wall-time tax (instrumented/plain ratio) must stay
# within 5%.
ABS_LIMITS = {
    "obs.overhead": 1.05,
}


def load_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if report.get("schema_version") != EXPECTED_SCHEMA:
        print(
            f"bench_compare: {path}: schema_version "
            f"{report.get('schema_version')!r} != {EXPECTED_SCHEMA}; refusing "
            "to compare across schemas",
            file=sys.stderr,
        )
        sys.exit(2)
    return report


def latest_baseline(root):
    candidates = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not candidates:
        sys.exit(f"bench_compare: no BENCH_*.json under {root}")
    return candidates[-1]


def compare(baseline, current, threshold):
    """Return (regressions, lines): failed names and a full report."""
    base = {b["name"]: b for b in baseline["benchmarks"]}
    cur = {b["name"]: b for b in current["benchmarks"]}
    regressions = []
    lines = []
    for name in sorted(base):
        b = base[name]
        if name not in cur:
            regressions.append(name)
            lines.append(f"  MISSING   {name}: in baseline but not in current")
            continue
        c = cur[name]
        higher = bool(b.get("higher_is_better", True))
        old, new = b["median"], c["median"]
        if old == 0:
            lines.append(f"  SKIP      {name}: baseline median is 0")
            continue
        change = (new - old) / old
        direction = change if higher else -change
        samples = c.get("samples") or [new]
        best = max(samples) if higher else min(samples)
        best_direction = (best - old) / old * (1 if higher else -1)
        arrow = f"{change:+7.1%} ({old:.6g} -> {new:.6g} {b.get('unit', '')})"
        if direction < -threshold and best_direction < -threshold:
            regressions.append(name)
            lines.append(f"  REGRESSED {name}: {arrow}")
        elif direction < -threshold:
            lines.append(f"  noisy     {name}: {arrow}, but best sample "
                         f"{best:.6g} is within threshold")
        elif direction > threshold:
            lines.append(f"  IMPROVED  {name}: {arrow}")
        else:
            lines.append(f"  ok        {name}: {arrow}")
    for name in sorted(set(cur) - set(base)):
        lines.append(f"  NEW       {name}: no baseline yet")
    for name in sorted(ABS_LIMITS):
        if name not in cur:
            continue
        limit = ABS_LIMITS[name]
        median = cur[name]["median"]
        if median > limit:
            regressions.append(name)
            lines.append(f"  OVERLIMIT {name}: median {median:.6g} exceeds "
                         f"absolute ceiling {limit:.6g}")
    return regressions, lines


def run_compare(args):
    baseline_path = args.baseline or latest_baseline(args.root)
    baseline = load_report(baseline_path)
    current = load_report(args.current)
    print(f"bench_compare: {baseline_path} -> {args.current} "
          f"(threshold {args.threshold:.0%})")
    regressions, lines = compare(baseline, current, args.threshold)
    print("\n".join(lines))
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s): "
              + ", ".join(regressions), file=sys.stderr)
        return 1
    print("bench_compare: no regressions")
    return 0


def self_test():
    """Doctored-report cases pinning the comparator's behaviour."""
    def report(**medians):
        benchmarks = []
        for name, (median, higher) in medians.items():
            benchmarks.append({
                "name": name,
                "unit": "x/s" if higher else "s",
                "higher_is_better": higher,
                "median": median,
                "samples": [median],
            })
        return {"schema_version": EXPECTED_SCHEMA, "benchmarks": benchmarks}

    base = report(thru=(100.0, True), wall=(2.0, False))

    # 1. >15% throughput drop and >15% wall-time growth both regress.
    bad = report(thru=(80.0, True), wall=(2.5, False))
    regs, _ = compare(base, bad, 0.15)
    assert regs == ["thru", "wall"], regs

    # 2. Changes inside the threshold pass in both directions.
    ok = report(thru=(90.0, True), wall=(2.2, False))
    regs, _ = compare(base, ok, 0.15)
    assert regs == [], regs

    # 3. Large improvements never fail (direction-aware).
    better = report(thru=(200.0, True), wall=(1.0, False))
    regs, lines = compare(base, better, 0.15)
    assert regs == [], regs
    assert sum("IMPROVED" in l for l in lines) == 2, lines

    # 4. A benchmark dropped from the current report is a regression.
    partial = report(thru=(100.0, True))
    regs, _ = compare(base, partial, 0.15)
    assert regs == ["wall"], regs

    # 5. New benchmarks are reported but never fail.
    grown = report(thru=(100.0, True), wall=(2.0, False), fresh=(1.0, True))
    regs, lines = compare(base, grown, 0.15)
    assert regs == [], regs
    assert any("NEW" in l for l in lines), lines

    # 6. Exactly at the threshold is not a regression (strict inequality).
    edge = report(thru=(85.0, True), wall=(2.3, False))
    regs, _ = compare(base, edge, 0.15)
    assert regs == [], regs

    # 7. A regressed median is excused when the best sample is healthy
    #    (one-sided noise), but not when every sample regressed.
    noisy = report(thru=(70.0, True), wall=(3.0, False))
    noisy["benchmarks"][0]["samples"] = [70.0, 99.0]   # best is fine
    noisy["benchmarks"][1]["samples"] = [3.0, 2.9]     # all beyond
    regs, lines = compare(base, noisy, 0.15)
    assert regs == ["wall"], regs
    assert any("noisy" in l for l in lines), lines

    # 8. Absolute ceilings bind even when the trajectory looks fine (and
    #    even for benchmarks with no baseline at all).
    taxed = report(thru=(100.0, True), wall=(2.0, False))
    taxed["benchmarks"].append({
        "name": "obs.overhead", "unit": "x", "higher_is_better": False,
        "median": 1.2, "samples": [1.2],
    })
    regs, lines = compare(base, taxed, 0.15)
    assert regs == ["obs.overhead"], regs
    assert any("OVERLIMIT" in l for l in lines), lines
    taxed["benchmarks"][-1]["median"] = 1.03
    regs, _ = compare(base, taxed, 0.15)
    assert regs == [], regs

    print("bench_compare: self-test passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="baseline report (default: latest "
                    "BENCH_*.json under --root)")
    ap.add_argument("--current", help="report to check")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative median drift (default 0.15)")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root to search for BENCH_*.json")
    ap.add_argument("--self-test", action="store_true",
                    help="run the comparator's own unit checks and exit")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.current:
        ap.error("--current is required (or use --self-test)")
    sys.exit(run_compare(args))


if __name__ == "__main__":
    main()
