#!/usr/bin/env python3
"""Schema check for the flight recorder's Chrome trace_event JSON.

Usage: validate_trace.py [--require-causal] TRACE.json

Validates that the file is well-formed JSON, uses the trace_event object
format ({"traceEvents": [...]}), and that every event satisfies the subset
of the spec the exporter emits:

  * metadata events (ph=M): process_name / thread_name with args.name
  * instant events (ph=i): scope s="t", numeric non-negative ts
  * complete events (ph=X): numeric non-negative ts and dur
  * every event carries integer pid/tid and an args object
  * non-metadata events are sorted by ts (Perfetto does not require this,
    but the exporter guarantees it)

Causal well-formedness (DESIGN.md §13) is always checked when cz.* events
are present, and required to be present with --require-causal:

  * cz.window round ids are strictly monotone per rank. Figure sweeps
    share one hub across several runs whose events the exporter merges by
    timestamp, so when a (rank, round) window appears more than once the
    trace is multi-run and this check is skipped (the others still apply);
    single-run traces are checked strictly.
  * causal span durations are non-negative
  * every instruction application (lb/slave.instr) has a parent report
    span (lb/slave.report, same rank and round) unless the rank was
    evicted (lb/lb.evict) — a killed rank's round subgraph just ends

The per-run form of all three rules also lives in the C++ analyzer
(obs/causal.cpp), which `nowlb-inspect` applies to run files.

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"validate_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def check_causal(events: list, required: bool) -> int:
    """The trace-level mirror of obs/causal.cpp's well-formedness rules."""
    windows = []  # (rank, round, index) of cz.window, in file order
    reports = set()  # (rank, round) of lb/slave.report
    instrs = []  # (rank, round, index) of lb/slave.instr
    evicted = set()  # ranks declared dead by the master
    causal_events = 0
    for i, e in enumerate(events):
        if e.get("ph") == "M":
            continue
        cat = e.get("cat")
        name = e.get("name")
        args = e["args"]
        if cat == "cz":
            causal_events += 1
            if e["ph"] == "X" and e.get("dur", 0) < 0:
                fail(f"event {i}: causal span {name} has negative dur")
            if name == "cz.window":
                rank = args.get("rank")
                rnd = args.get("round")
                if rank is None or rnd is None:
                    fail(f"event {i}: cz.window missing rank/round args")
                windows.append((rank, rnd, i))
        elif cat == "lb":
            if name == "slave.report":
                reports.add((args.get("rank"), args.get("round")))
            elif name == "slave.instr":
                instrs.append((args.get("rank"), args.get("round"), i))
            elif name == "lb.evict":
                evicted.add(args.get("rank"))
    # A duplicated (rank, round) window means several runs share this hub
    # (figure sweep) and their streams are merged by timestamp: per-rank
    # monotonicity is only defined per run, so check it on single-run
    # traces only.
    single_run = len({(r, n) for r, n, _ in windows}) == len(windows)
    if single_run:
        last = {}  # rank -> last window round
        for rank, rnd, i in windows:
            if rank in last and rnd <= last[rank]:
                fail(
                    f"event {i}: rank {rank} window rounds not monotone"
                    f" ({rnd} after {last[rank]})"
                )
            last[rank] = rnd
    for rank, rnd, i in instrs:
        if (rank, rnd) not in reports and rank not in evicted:
            fail(
                f"event {i}: instruction application round {rnd} on rank"
                f" {rank} has no parent report span"
            )
    if required and causal_events == 0:
        fail("--require-causal: no cz.* events in the trace")
    return causal_events


def main() -> None:
    args = sys.argv[1:]
    require_causal = "--require-causal" in args
    args = [a for a in args if a != "--require-causal"]
    if len(args) != 1:
        fail("usage: validate_trace.py [--require-causal] TRACE.json")
    try:
        with open(args[0], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args[0]}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail('top level must be an object with a "traceEvents" array')
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail('"traceEvents" must be a non-empty array')

    last_ts = None
    counts = {"M": 0, "i": 0, "X": 0}
    for i, e in enumerate(events):
        where = f"event {i}"
        if not isinstance(e, dict):
            fail(f"{where}: not an object")
        ph = e.get("ph")
        if ph not in counts:
            fail(f"{where}: unexpected ph={ph!r}")
        counts[ph] += 1
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                fail(f"{where}: {key} must be an integer")
        if not isinstance(e.get("args"), dict):
            fail(f"{where}: missing args object")
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                fail(f"{where}: metadata name {e.get('name')!r}")
            if not isinstance(e["args"].get("name"), str):
                fail(f"{where}: metadata args.name must be a string")
            continue
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(f"{where}: missing event name")
        if not isinstance(e.get("cat"), str):
            fail(f"{where}: missing cat")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"{where}: ts {ts} goes backwards (prev {last_ts})")
        last_ts = ts
        if ph == "i":
            if e.get("s") != "t":
                fail(f"{where}: instant must have scope s=\"t\"")
        else:  # X
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: bad dur {dur!r}")
        for k, v in e["args"].items():
            if not isinstance(v, (int, float)):
                fail(f"{where}: arg {k!r} must be numeric, got {v!r}")

    if counts["i"] + counts["X"] == 0:
        fail("trace contains only metadata")
    causal = check_causal(events, require_causal)
    print(
        f"validate_trace: ok — {counts['M']} metadata, {counts['i']} instant,"
        f" {counts['X']} complete event(s), {causal} causal"
    )


if __name__ == "__main__":
    main()
