#!/usr/bin/env python3
"""Schema check for the flight recorder's Chrome trace_event JSON.

Usage: validate_trace.py TRACE.json

Validates that the file is well-formed JSON, uses the trace_event object
format ({"traceEvents": [...]}), and that every event satisfies the subset
of the spec the exporter emits:

  * metadata events (ph=M): process_name / thread_name with args.name
  * instant events (ph=i): scope s="t", numeric non-negative ts
  * complete events (ph=X): numeric non-negative ts and dur
  * every event carries integer pid/tid and an args object
  * non-metadata events are sorted by ts (Perfetto does not require this,
    but the exporter guarantees it)

Exit status 0 on success; 1 with a diagnostic on the first violation.
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"validate_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: validate_trace.py TRACE.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail('top level must be an object with a "traceEvents" array')
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail('"traceEvents" must be a non-empty array')

    last_ts = None
    counts = {"M": 0, "i": 0, "X": 0}
    for i, e in enumerate(events):
        where = f"event {i}"
        if not isinstance(e, dict):
            fail(f"{where}: not an object")
        ph = e.get("ph")
        if ph not in counts:
            fail(f"{where}: unexpected ph={ph!r}")
        counts[ph] += 1
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                fail(f"{where}: {key} must be an integer")
        if not isinstance(e.get("args"), dict):
            fail(f"{where}: missing args object")
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                fail(f"{where}: metadata name {e.get('name')!r}")
            if not isinstance(e["args"].get("name"), str):
                fail(f"{where}: metadata args.name must be a string")
            continue
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(f"{where}: missing event name")
        if not isinstance(e.get("cat"), str):
            fail(f"{where}: missing cat")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"{where}: ts {ts} goes backwards (prev {last_ts})")
        last_ts = ts
        if ph == "i":
            if e.get("s") != "t":
                fail(f"{where}: instant must have scope s=\"t\"")
        else:  # X
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: bad dur {dur!r}")
        for k, v in e["args"].items():
            if not isinstance(v, (int, float)):
                fail(f"{where}: arg {k!r} must be numeric, got {v!r}")

    if counts["i"] + counts["X"] == 0:
        fail("trace contains only metadata")
    print(
        f"validate_trace: ok — {counts['M']} metadata, {counts['i']} instant,"
        f" {counts['X']} complete event(s)"
    )


if __name__ == "__main__":
    main()
