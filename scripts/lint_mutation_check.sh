#!/usr/bin/env bash
# Seeded-mutation smoke for nowlb-lint's wire-contract rules.
#
# Copies src/lb into a scratch tree, injects one protocol drift at a time
# (swapped encode fields, dropped decode read, stale encoded_size, missing
# trailer case, marker collision, orphaned / one-sided tags), and asserts
# the expected rule fires. This proves the W/T/P/F verifier is not
# vacuously green: if the AST-lite extractor ever regresses into treating
# real protocol bodies as opaque, these mutants survive and the script
# fails.
#
# Usage: scripts/lint_mutation_check.sh <path-to-nowlb-lint>
set -u

LINT="${1:-build/src/analyze/nowlb-lint}"
REPO="$(cd "$(dirname "$0")/.." && pwd)"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

if [ ! -x "$LINT" ]; then
  echo "lint_mutation_check: nowlb-lint not found at $LINT" >&2
  exit 2
fi
LINT="$(cd "$(dirname "$LINT")" && pwd)/$(basename "$LINT")"

fresh_tree() {
  rm -rf "$SCRATCH/src"
  mkdir -p "$SCRATCH/src"
  cp -r "$REPO/src/lb" "$SCRATCH/src/"
}

# mutate <name> <expected-rule-regex> <python-edit-script>
# The python script runs inside $SCRATCH with the fresh tree in place.
failures=0
total=0
mutate() {
  local name="$1" want="$2" edit="$3"
  total=$((total + 1))
  fresh_tree
  (cd "$SCRATCH" && python3 -c "$edit")
  local out
  out="$(cd "$SCRATCH" && "$LINT" --root=src --label=mut 2>&1)"
  local status=$?
  if [ "$status" -eq 0 ]; then
    echo "FAIL [$name]: mutant survived (lint exited 0)"
    failures=$((failures + 1))
    return
  fi
  if ! grep -qE "$want" <<<"$out"; then
    echo "FAIL [$name]: expected /$want/ in output:"
    sed 's/^/    /' <<<"$out"
    failures=$((failures + 1))
    return
  fi
  echo "ok   [$name] -> $(grep -oE "$want" <<<"$out" | head -1)"
}

# Baseline sanity: the unmutated copy must lint clean, else every mutant
# "fires" trivially and the test proves nothing.
fresh_tree
if ! (cd "$SCRATCH" && "$LINT" --root=src --label=mut); then
  echo "FAIL [clean-copy]: unmutated src/lb does not lint clean" >&2
  exit 1
fi
echo "ok   [clean-copy] unmutated src/lb lints clean"

P='src/lb/protocol.hpp'

mutate "W001-swapped-puts" '\[W001 ' "
s = open('$P').read()
s = s.replace('.put(units_done).put(elapsed_s)', '.put(elapsed_s).put(units_done)')
open('$P', 'w').write(s)
"

mutate "W001-dropped-decode-read" '\[W001 ' "
s = open('$P').read()
s = s.replace('    s.remaining = r.get<std::int32_t>();\n', '')
open('$P', 'w').write(s)
"

mutate "W002-stale-encoded-size" '\[W002 ' "
s = open('$P').read()
s = s.replace(' + sizeof(moved_units)', '')
open('$P', 'w').write(s)
"

mutate "W002-double-counted-field" '\[W002 ' "
s = open('$P').read()
s = s.replace('sizeof(moved_units) + sizeof(done)',
              'sizeof(moved_units) + sizeof(done) + sizeof(done)')
open('$P', 'w').write(s)
"

mutate "T002-missing-trailer-case" '\[T002 ' "
s = open('$P').read()
s = s.replace('''      } else if (marker == kTrailerCausal) {
        s.causal = 1;
        s.ctx_round = r.get<std::int32_t>();
      } else {''', '      } else {', 1)
open('$P', 'w').write(s)
"

mutate "T001-marker-collision" '\[T001 ' "
s = open('$P').read()
s = s.replace('kTrailerCausal = 2', 'kTrailerCausal = 1')
open('$P', 'w').write(s)
"

mutate "T003-swapped-trailer-order" '\[T003 ' "
s = open('$P').read()
s = s.replace('''    if (ft) {
      w.put(kTrailerFt);
      w.put_vec(inventory);
    }
    if (causal) {
      w.put(kTrailerCausal);
      w.put(ctx_round);
    }''', '''    if (causal) {
      w.put(kTrailerCausal);
      w.put(ctx_round);
    }
    if (ft) {
      w.put(kTrailerFt);
      w.put_vec(inventory);
    }''')
open('$P', 'w').write(s)
"

mutate "P001-orphan-tag" '\[P001 ' "
s = open('$P').read()
s = s.replace('inline constexpr sim::Tag kTagAck = 9004;',
              'inline constexpr sim::Tag kTagAck = 9004;\n'
              'inline constexpr sim::Tag kTagOrphan = 9005;')
open('$P', 'w').write(s)
"

mutate "P002-send-only-tag" '\[P002 ' "
s = open('$P').read()
s = s.replace('inline constexpr sim::Tag kTagAck = 9004;',
              'inline constexpr sim::Tag kTagAck = 9004;\n'
              'inline constexpr sim::Tag kTagBlast = 9005;')
open('$P', 'w').write(s)
m = open('src/lb/master.cpp').read()
m = m.replace('namespace nowlb::lb {',
              'namespace nowlb::lb {\n'
              'inline void blast(Ctl& c) { c.send(0, kTagBlast, {}); }', 1)
open('src/lb/master.cpp', 'w').write(m)
"

mutate "F001-recv-only-tag" '\[F001 ' "
s = open('$P').read()
s = s.replace('inline constexpr sim::Tag kTagAck = 9004;',
              'inline constexpr sim::Tag kTagAck = 9004;\n'
              'inline constexpr sim::Tag kTagGhostly = 9005;')
open('$P', 'w').write(s)
m = open('src/lb/master.cpp').read()
m = m.replace('namespace nowlb::lb {',
              'namespace nowlb::lb {\n'
              'inline bool ghostly(sim::Tag t) { return t == kTagGhostly; }',
              1)
open('src/lb/master.cpp', 'w').write(m)
"

mutate "F002-pair-asymmetry" '\[F002 ' "
s = open('$P').read()
s = s.replace('inline constexpr sim::Tag kTagAck = 9004;',
              'inline constexpr sim::Tag kTagAck = 9004;\n'
              'inline constexpr sim::Tag kTagSide = 9005;')
open('$P', 'w').write(s)
m = open('src/lb/master.cpp').read()
m = m.replace('namespace nowlb::lb {',
              'namespace nowlb::lb {\n'
              'inline void side_send(Ctl& c) { c.send(0, kTagSide, {}); }', 1)
open('src/lb/master.cpp', 'w').write(m)
t = open('src/lb/transport.cpp').read()
t = t.replace('namespace nowlb::lb {',
              'namespace nowlb::lb {\n'
              'inline bool is_side(sim::Tag t) { return t == kTagSide; }', 1)
open('src/lb/transport.cpp', 'w').write(t)
"

mutate "W003-one-sided-struct" '\[W003 ' "
s = open('$P').read()
s = s.replace('''  static MoveOrder decode(msg::Reader& r) {
    MoveOrder m;
    m.peer_rank = r.get<std::int32_t>();
    m.count = r.get<std::int32_t>();
    m.is_send = r.get<std::uint8_t>();
    return m;
  }''', '')
open('$P', 'w').write(s)
"

echo
if [ "$failures" -ne 0 ]; then
  echo "lint_mutation_check: $failures/$total mutants survived" >&2
  exit 1
fi
echo "lint_mutation_check: all $total mutants killed"
