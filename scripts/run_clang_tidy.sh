#!/usr/bin/env bash
# Run clang-tidy over every src/ translation unit using the repo's
# .clang-tidy config. Exits non-zero on any finding (WarningsAsErrors: '*').
#
#   BUILD_DIR=build CLANG_TIDY=clang-tidy-18 scripts/run_clang_tidy.sh
#
# Requires a configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default
# preset sets it). If no clang-tidy binary exists on PATH the script skips
# with exit 0 so container images without LLVM don't fail tier-1 locally;
# CI always has one and runs this as a hard gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

TIDY=${CLANG_TIDY:-}
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
              clang-tidy-18 clang-tidy-17 clang-tidy-16; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY=$cand
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: no clang-tidy on PATH; skipping (install LLVM to enable)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" \
       "configure with: cmake --preset default" >&2
  exit 2
fi

mapfile -t FILES < <(find src -name '*.cpp' | sort)
echo "run_clang_tidy: $TIDY over ${#FILES[@]} files (config: .clang-tidy)"

# xargs -P fans out one clang-tidy process per core; any failure fails the
# whole run. --quiet keeps output to actual findings.
printf '%s\n' "${FILES[@]}" |
  xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet
echo "run_clang_tidy: clean"
