// Matrix multiplication on a shared workstation network.
//
// Runs the paper's 500x500 MM on N slaves with a constant competing load
// on workstation 0, with and without dynamic load balancing, and prints
// execution time, speedup and the paper's efficiency metric for both.
//
//   ./examples/mm_adaptive [--n=500] [--slaves=6]
#include <iostream>

#include "exp/harness.hpp"
#include "load/generators.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  apps::MmConfig mm;
  mm.n = static_cast<int>(cli.get_int("n", 500));

  exp::ExperimentConfig cfg;
  cfg.slaves = static_cast<int>(cli.get_int("slaves", 6));
  cfg.world = exp::paper_world();
  cfg.lb = exp::paper_lb();
  cfg.loads.push_back({0, [] { return load::constant(); }});

  std::cout << "MM " << mm.n << "x" << mm.n << " on " << cfg.slaves
            << " slaves, constant competing load on slave 0\n";
  std::cout << "sequential time: " << apps::mm_seq_time_s(mm) << " s\n\n";

  mm.use_lb = false;
  const auto static_run = exp::run_mm(mm, cfg);
  std::cout << "static distribution:     " << static_run.elapsed_s
            << " s, speedup " << static_run.speedup << ", efficiency "
            << static_run.efficiency << "\n";

  mm.use_lb = true;
  const auto dlb_run = exp::run_mm(mm, cfg);
  std::cout << "dynamic load balancing:  " << dlb_run.elapsed_s
            << " s, speedup " << dlb_run.speedup << ", efficiency "
            << dlb_run.efficiency << "\n";
  std::cout << "  rounds " << dlb_run.stats.rounds << ", moves "
            << dlb_run.stats.moves_ordered << ", units moved "
            << dlb_run.stats.units_moved << ", period "
            << dlb_run.stats.last_period_s << " s\n";
  return 0;
}
