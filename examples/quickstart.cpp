// Quickstart: the smallest complete nowlb program.
//
// Builds a 3-workstation cluster plus a master, runs a synthetic
// distributed loop (120 work units of 50 ms each) with dynamic load
// balancing while one workstation carries a competing task, and prints
// what the balancer did.
//
//   ./examples/quickstart [--slaves=3] [--units=120]
#include <iostream>

#include "lb/cluster.hpp"
#include "load/generators.hpp"
#include "msg/serialize.hpp"
#include "sim/world.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int slaves = static_cast<int>(cli.get_int("slaves", 3));
  const int units_per_slave = static_cast<int>(cli.get_int("units", 120)) / slaves;

  sim::World world;  // defaults: 100 ms quantum, 100 MB/s network

  lb::ClusterConfig cc;
  cc.slaves = slaves;
  cc.initial_counts.assign(slaves, units_per_slave);
  cc.lb.quantum = world.config().host.quantum;
  lb::Cluster cluster(world, cc);

  // Work state: a simple per-rank counter of abstract units. Real
  // applications keep distributed arrays here (see mm_adaptive.cpp).
  std::vector<int> units(slaves, units_per_slave);
  std::vector<int> done(slaves, 0);

  cluster.spawn([&](sim::Context& ctx, int rank,
                    const lb::Cluster& c) -> sim::Task<> {
    lb::SlaveAgent::WorkOps ops;
    ops.remaining = [&, rank] { return units[rank]; };
    ops.pack = [&, rank](int count,
                         int) -> sim::Task<std::pair<sim::Bytes, int>> {
      const int actual = std::min(count, units[rank]);
      units[rank] -= actual;
      msg::Writer w;
      w.put(actual);
      co_return std::make_pair(w.take(), actual);
    };
    ops.unpack = [&, rank](const sim::Bytes& b, int) -> sim::Task<int> {
      msg::Reader r(b);
      const int got = r.get<int>();
      units[rank] += got;
      co_return got;
    };
    lb::SlaveAgent agent = c.make_agent(ctx, rank, std::move(ops));

    agent.begin_phase();
    for (;;) {
      while (units[rank] > 0) {
        co_await ctx.compute(50 * sim::kMillisecond);  // one work unit
        --units[rank];
        ++done[rank];
        agent.add_units(1);
        co_await agent.hook();  // the compiler-inserted balancing hook
      }
      co_await agent.drain();
      if (agent.phase_done()) break;
    }
  });

  // Workstation 0 is shared with another user.
  cluster.add_load(0, load::constant());

  world.run();

  std::cout << "completed in " << sim::to_seconds(world.now())
            << " virtual seconds\n";
  for (int r = 0; r < slaves; ++r) {
    std::cout << "  slave " << r << " computed " << done[r] << " units"
              << (r == 0 ? "  (loaded workstation)" : "") << "\n";
  }
  const auto& st = cluster.stats();
  std::cout << "balancing rounds: " << st.rounds
            << ", movements ordered: " << st.moves_ordered
            << ", units moved: " << st.units_moved << "\n";
  return 0;
}
