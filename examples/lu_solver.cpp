// LU factorization with real arithmetic and verification: factorizes a
// diagonally dominant matrix on a loaded cluster, then checks the factors
// against sequential execution (they must match bit-for-bit: the update
// order per column is identical wherever the column lives).
//
//   ./examples/lu_solver [--n=120] [--slaves=4]
#include <cmath>
#include <iostream>

#include "apps/lu.hpp"
#include "exp/harness.hpp"
#include "lb/cluster.hpp"
#include "load/generators.hpp"
#include "sim/world.hpp"
#include "util/cli.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  apps::LuConfig lu;
  lu.n = static_cast<int>(cli.get_int("n", 120));
  lu.real_compute = true;
  lu.update_cost = 200 * sim::kMicrosecond;
  const int slaves = static_cast<int>(cli.get_int("slaves", 4));

  sim::World world;
  auto shared = std::make_shared<apps::LuShared>();
  apps::lu_make_inputs(lu, *shared);

  // Sequential reference on a copy.
  auto reference = shared->a;
  apps::lu_sequential(lu, reference);

  lb::Cluster cluster(world, apps::lu_cluster_config(lu, slaves,
                                                     nowlb::exp::paper_lb()));
  apps::lu_build(cluster, lu, shared);
  cluster.add_load(1, load::constant());
  world.run();

  std::cout << "LU n=" << lu.n << " on " << slaves
            << " slaves (load on slave 1) finished in "
            << sim::to_seconds(world.now()) << " virtual seconds\n";
  std::cout << "balancing rounds: " << cluster.stats().rounds
            << ", columns moved: " << cluster.stats().units_moved << "\n";

  // Verify.
  bool identical = shared->a == reference;
  std::cout << "factors identical to sequential execution: "
            << (identical ? "yes" : "NO — BUG") << "\n";

  // Show final column ownership (work migrated away from the loaded slave).
  std::vector<int> owned(static_cast<std::size_t>(slaves), 0);
  for (int owner : shared->final_owner) {
    if (owner >= 0) ++owned[static_cast<std::size_t>(owner)];
  }
  for (int r = 0; r < slaves; ++r) {
    std::cout << "  slave " << r << " ends owning " << owned[r] << " columns"
              << (r == 1 ? "  (loaded)" : "") << "\n";
  }
  return identical ? 0 : 1;
}
