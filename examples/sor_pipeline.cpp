// Pipelined SOR on a shared workstation network — the paper's hardest
// scenario: restricted (adjacent-only) work movement, mid-sweep column
// transfers with catch-up / set-aside reconciliation, and automatic
// strip-size calibration. Default: a constant competing load on slave 0
// (Fig. 8); pass --oscillate for the Fig. 9-style 20 s on/off load (note:
// a 20 s oscillation is faster than restricted pipelined balancing can
// converge at small problem sizes, so DLB may lose there — instructive!).
//
//   ./examples/sor_pipeline [--n=2000] [--sweeps=20] [--slaves=6] [--oscillate]
#include <iostream>

#include "exp/harness.hpp"
#include "load/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nowlb;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  apps::SorConfig sor;
  sor.n = static_cast<int>(cli.get_int("n", 2000));
  sor.sweeps = static_cast<int>(cli.get_int("sweeps", 20));

  exp::ExperimentConfig cfg;
  cfg.slaves = static_cast<int>(cli.get_int("slaves", 6));
  cfg.world = exp::paper_world();
  cfg.lb = exp::paper_lb();
  cfg.want_trace = true;
  if (cli.get_bool("oscillate", false)) {
    cfg.loads.push_back({0, [] {
                           return load::oscillating(20 * sim::kSecond,
                                                    10 * sim::kSecond);
                         }});
  } else {
    cfg.loads.push_back({0, [] { return load::constant(); }});
  }

  std::cout << "SOR " << sor.n << "x" << sor.n << " x" << sor.sweeps
            << " sweeps on " << cfg.slaves
            << " slaves; competing load on slave 0\n";
  std::cout << "sequential time: " << apps::sor_seq_time_s(sor) << " s\n\n";

  sor.use_lb = false;
  const auto st = exp::run_sor(sor, cfg);
  std::cout << "static:  " << st.elapsed_s << " s, efficiency "
            << st.efficiency << "\n";

  sor.use_lb = true;
  exp::Trace trace;
  const auto dy = exp::run_sor(sor, cfg, &trace);
  std::cout << "dynamic: " << dy.elapsed_s << " s, efficiency "
            << dy.efficiency << "  (" << dy.stats.rounds << " rounds, "
            << dy.stats.units_moved << " columns moved)\n\n";

  if (const Series* work = trace.find("lb.work.0")) {
    std::cout << ascii_chart(work->t, work->v, 72, 10,
                             "columns assigned to slave 0 over time");
  }
  return 0;
}
